#!/usr/bin/env sh
# CI gate — everything the repo promises, in the order it fails fastest.
#
# The build is fully offline (vendored shims, no registry access), so this
# runs on any machine with a stock Rust toolchain: `./ci.sh`.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> determinism: figure bins byte-identical across thread counts"
cargo build --release -q -p lazarus-bench
for bin in fig5_strategies fig6_attacks; do
    one=$(LAZARUS_THREADS=1 "target/release/$bin" 10 42 1)
    four=$(LAZARUS_THREADS=4 "target/release/$bin" 10 42 1)
    if [ "$one" != "$four" ]; then
        echo "FAIL: $bin output differs between 1 and 4 threads" >&2
        exit 1
    fi
    echo "    $bin: identical"
done

echo "CI green."
