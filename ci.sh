#!/usr/bin/env sh
# CI gate — everything the repo promises, in the order it fails fastest.
#
# The build is fully offline (vendored shims, no registry access), so this
# runs on any machine with a stock Rust toolchain: `./ci.sh`.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> no println!/eprintln! in library crates (trace events only; bench exempt)"
offenders=$(grep -rn 'println!(\|eprintln!(' crates/*/src --include='*.rs' \
    | grep -v '^crates/bench/' \
    | grep -v ':[[:space:]]*//' || true)
if [ -n "$offenders" ]; then
    echo "FAIL: raw prints in library crates — route through lazarus-obs tracing:" >&2
    echo "$offenders" >&2
    exit 1
fi
echo "    library crates clean"

echo "==> no unwrap() on the BFT ingress path (malformed input must reject, not panic)"
for f in replica.rs consensus.rs messages.rs client.rs storage.rs batcher.rs; do
    # Only the production half of each module counts — cut at the test module.
    offenders=$(awk '/^(#\[cfg\(test\)\]|mod tests)/{exit} {print FILENAME":"NR": "$0}' \
        "crates/bft/src/$f" | grep '\.unwrap()' | grep -v 'unwrap_or' || true)
    if [ -n "$offenders" ]; then
        echo "FAIL: unwrap() on the ingress path — reject() the message instead:" >&2
        echo "$offenders" >&2
        exit 1
    fi
done
echo "    ingress modules panic-free"

echo "==> no unwrap() in the health streaming fold (a stale producer must clamp, not panic)"
offenders=$(awk '/^(#\[cfg\(test\)\]|mod tests)/{exit} {print FILENAME":"NR": "$0}' \
    crates/obs/src/health.rs | grep '\.unwrap()' | grep -v 'unwrap_or' || true)
if [ -n "$offenders" ]; then
    echo "FAIL: unwrap() in obs::health — fold/evict must be total:" >&2
    echo "$offenders" >&2
    exit 1
fi
echo "    health fold panic-free"

echo "==> determinism: figure bins byte-identical across thread counts"
cargo build --release -q -p lazarus-bench
metrics_dir=$(mktemp -d)
trap 'rm -rf "$metrics_dir"' EXIT
for bin in fig5_strategies fig6_attacks; do
    one=$(LAZARUS_THREADS=1 LAZARUS_METRICS_DIR="$metrics_dir" "target/release/$bin" 10 42 1)
    mv "$metrics_dir/${bin}_metrics.json" "$metrics_dir/${bin}_metrics.t1.json"
    four=$(LAZARUS_THREADS=4 LAZARUS_METRICS_DIR="$metrics_dir" "target/release/$bin" 10 42 1)
    if [ "$one" != "$four" ]; then
        echo "FAIL: $bin output differs between 1 and 4 threads" >&2
        exit 1
    fi
    if ! cmp -s "$metrics_dir/${bin}_metrics.t1.json" "$metrics_dir/${bin}_metrics.json"; then
        echo "FAIL: ${bin}_metrics.json differs between 1 and 4 threads" >&2
        exit 1
    fi
    echo "    $bin: stdout and metrics json identical"
done

echo "==> nemesis smoke: every fault scenario, 2 seeds, zero violations"
LAZARUS_METRICS_DIR="$metrics_dir" target/release/nemesis 2 > /dev/null
echo "    nemesis sweep green"

echo "==> pipelining: bench_pipeline thread-count invariant + windowed nemesis smoke"
# The window sweep is virtual-time only, so both the report and the
# metrics snapshot must be byte-identical at any worker count.
for t in 1 4; do
    mkdir -p "$metrics_dir/pipe$t"
    LAZARUS_THREADS=$t LAZARUS_METRICS_DIR="$metrics_dir/pipe$t" \
        target/release/bench_pipeline --smoke "$metrics_dir/pipe$t/BENCH_pipeline.json" > /dev/null
done
for f in BENCH_pipeline.json bench_pipeline_metrics.json; do
    if ! cmp -s "$metrics_dir/pipe1/$f" "$metrics_dir/pipe4/$f"; then
        echo "FAIL: $f differs between 1 and 4 threads" >&2
        exit 1
    fi
done
# The full fault matrix must stay green with four slots in flight.
LAZARUS_WINDOW=4 LAZARUS_METRICS_DIR="$metrics_dir" target/release/nemesis 2 > /dev/null
echo "    bench_pipeline thread-count invariant, window=4 nemesis green"

echo "==> durable storage: journal recovery smoke + bench_cst thread-count invariant"
# bench_cst writes a journal into a temp dir, reopens it, and replays —
# the recovery smoke — then asserts the interrupted chunked transfer
# resumed with zero re-fetched chunks. Its report is all virtual time, so
# it must be byte-identical at any worker count.
LAZARUS_THREADS=1 target/release/bench_cst "$metrics_dir/BENCH_cst.t1.json" > /dev/null
LAZARUS_THREADS=4 target/release/bench_cst "$metrics_dir/BENCH_cst.json" > /dev/null
if ! cmp -s "$metrics_dir/BENCH_cst.t1.json" "$metrics_dir/BENCH_cst.json"; then
    echo "FAIL: BENCH_cst.json differs between 1 and 4 threads" >&2
    exit 1
fi
echo "    journal recovery green, BENCH_cst.json thread-count invariant"

echo "==> causal tracing: streams validate, DAG complete, identical across thread counts"
trace1="$metrics_dir/trace1"
for t in 1 4 8; do
    LAZARUS_THREADS=$t LAZARUS_TRACE_DIR="$metrics_dir/trace$t" \
        LAZARUS_METRICS_DIR="$metrics_dir" \
        target/release/nemesis 1 partition > /dev/null
done
# Validates every JSONL line against the schema (exit 2) and the causal
# DAG for orphan events (exit 1).
target/release/trace_analyze "$trace1" > /dev/null
for t in 4 8; do
    for f in replica_0.jsonl replica_1.jsonl replica_2.jsonl replica_3.jsonl \
             queues.jsonl trace_summary.json trace_chrome.json; do
        if ! cmp -s "$trace1/$f" "$metrics_dir/trace$t/$f"; then
            echo "FAIL: $f differs between 1 and $t threads" >&2
            exit 1
        fi
    done
done
echo "    flight streams schema-clean, orphan-free, thread-count invariant"

echo "==> health ablation: demotion improves heal time, outputs thread-count invariant"
for t in 1 4; do
    mkdir -p "$metrics_dir/health$t"
    LAZARUS_THREADS=$t LAZARUS_METRICS_DIR="$metrics_dir/health$t" \
        target/release/fig_health_ablation mute > /dev/null
done
for f in fig_health_ablation_results.json fig_health_ablation_metrics.json; do
    if ! cmp -s "$metrics_dir/health1/$f" "$metrics_dir/health4/$f"; then
        echo "FAIL: $f differs between 1 and 4 threads" >&2
        exit 1
    fi
done
echo "    ablation green, results and metrics json identical"

echo "==> perf: bench_suite deterministic outputs + regression gate vs committed baseline"
# The suite's JSON and profiler outputs are virtual-time only, so they
# must be byte-identical across worker counts.
for t in 1 4; do
    mkdir -p "$metrics_dir/perf$t"
    LAZARUS_THREADS=$t LAZARUS_PROFILE_DIR="$metrics_dir/perf$t" \
        target/release/bench_suite --smoke "$metrics_dir/perf$t/BENCH_suite.json" > /dev/null
done
for f in BENCH_suite.json profile.json profile.folded queues.jsonl; do
    if ! cmp -s "$metrics_dir/perf1/$f" "$metrics_dir/perf4/$f"; then
        echo "FAIL: $f differs between 1 and 4 threads" >&2
        exit 1
    fi
done
# Gate against the committed baseline: tolerances are per metric suffix
# (_ops_s -10%, _us +15%, _p999_us/_max_us +25%); a genuine perf change
# regenerates results/BENCH_baseline.json with bench_suite --smoke.
target/release/perf_report results/BENCH_baseline.json \
    "$metrics_dir/perf1/BENCH_suite.json" > /dev/null
# The gate must actually bite: an injected 50% throughput drop has to
# flip the exit code.
sed 's/"throughput_ops_s":[0-9][0-9]*\(\.[0-9][0-9]*\)\{0,1\}/"throughput_ops_s":1.0/g' \
    "$metrics_dir/perf1/BENCH_suite.json" > "$metrics_dir/perf1/regressed.json"
if target/release/perf_report results/BENCH_baseline.json \
    "$metrics_dir/perf1/regressed.json" > /dev/null 2>&1; then
    echo "FAIL: perf_report passed an injected throughput regression" >&2
    exit 1
fi
echo "    bench_suite thread-count invariant, baseline gate green, gate bites"

echo "CI green."
