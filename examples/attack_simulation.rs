//! Surviving WannaCry: strategy comparison under an injected attack.
//!
//! Builds the §6 evaluation world, injects a WannaCry-like campaign
//! (a wormable SMB RCE hitting every Windows version with a day-0 exploit),
//! and replays 200 runs of each selection strategy through the attack
//! window — a miniature of the paper's Figure 6.
//!
//! Run with: `cargo run --release --example attack_simulation`

use lazarus::osint::date::Date;
use lazarus::osint::synth::{attacks, SyntheticWorld, WorldConfig};
use lazarus::risk::epoch::{EpochConfig, Evaluator, ThreatScope};
use lazarus::risk::strategies::StrategyKind;

fn main() {
    let mut world = SyntheticWorld::generate(WorldConfig::paper_study(99));
    let oses = world.config.oses.clone();
    let id = world.campaigns.len();
    let (campaign, vulns) = attacks::wannacry(id, &oses, Date::from_ymd(2018, 3, 12));
    println!(
        "injected WannaCry-like campaign: {} CVEs, ground truth hits {} OS versions",
        campaign.cves.len(),
        campaign.affected.len()
    );
    world.inject(campaign, vulns);

    let eval = Evaluator::new(&world, EpochConfig::paper());
    let window = (Date::from_ymd(2018, 1, 1), Date::from_ymd(2018, 6, 1));
    println!("\n{:<10} {:>12} {:>16}", "strategy", "compromised", "reconfigurations");
    for kind in StrategyKind::ALL {
        let stats = eval.run_window(kind, window, &ThreatScope::Campaigns(vec![id]), 200, 7);
        println!(
            "{:<10} {:>11.1}% {:>16}",
            kind.name(),
            stats.compromised_pct(),
            stats.reconfigurations
        );
    }
    println!(
        "\nLazarus avoids running two Windows versions at once (their shared history \
         makes the pair risk high), so the worm rarely reaches f+1 = 2 replicas."
    );
}
