//! A diverse BFT key-value store with a live replica rotation.
//!
//! Runs the replicated KVS on the paper's §7.3 configuration
//! (Debian 8, OpenSuse 42.1, Fedora 26, Solaris 11) in the performance
//! simulator, drives a YCSB 50/50 workload, then performs a Lazarus-style
//! rotation — add Ubuntu 16.04, remove OpenSuse 42.1 — while clients keep
//! running, and reports throughput before / during / after.
//!
//! Run with: `cargo run --release --example diverse_kvs`

use std::sync::Arc;

use lazarus::apps::kvs::KvsService;
use lazarus::apps::ycsb::{YcsbConfig, YcsbWorkload};
use lazarus::bft::types::{Epoch, Membership, ReplicaId};
use lazarus::testbed::cluster::{SimCluster, SimConfig};
use lazarus::testbed::oscatalog::{by_short_id, reconfig_set, vm_profile};
use lazarus::testbed::sim::SEC;
use parking_lot::Mutex;

fn main() {
    let oses = reconfig_set(); // DE8, OS42, FE26, SO11
    println!("initial replicas:");
    for (i, os) in oses.iter().enumerate() {
        println!("    r{i} = {os}");
    }

    let membership = Membership::new(Epoch(0), (0..4).map(ReplicaId).collect());
    let cfg = SimConfig { checkpoint_period: 50_000, ..SimConfig::default() };
    let mut sim = SimCluster::new(cfg);
    for (i, os) in oses.iter().enumerate() {
        sim.add_node(
            ReplicaId(i as u32),
            vm_profile(*os),
            membership.clone(),
            Box::new(KvsService::with_ballast(50_000_000)), // 50 MB of state
        );
    }
    let workload = Arc::new(Mutex::new(YcsbWorkload::new(YcsbConfig::fig9(), 7)));
    sim.add_clients(1, 8, membership.clone(), move |_| workload.lock().next_op());

    // Rotation: boot UB16 at t=20 s (40 s boot), add it at ~61 s, remove
    // OS42 (replica 1) at ~91 s.
    let ub16 = by_short_id("UB16").expect("catalog").profile;
    let joined = membership.reconfigured(Some(ReplicaId(4)), None);
    sim.boot_joiner_at(20 * SEC, ReplicaId(4), ub16, joined, Box::new(KvsService::new()));
    sim.inject_reconfig_at(61 * SEC, Epoch(0), Some(ReplicaId(4)), None);
    sim.inject_reconfig_at(91 * SEC, Epoch(1), None, Some(ReplicaId(1)));
    sim.power_off_at(96 * SEC, ReplicaId(1));

    sim.run_until(150 * SEC);

    println!("\nthroughput:");
    println!(
        "    before rotation (5–20 s):   {:>8.0} ops/s",
        sim.metrics.throughput(5 * SEC, 20 * SEC)
    );
    println!(
        "    during join    (61–91 s):   {:>8.0} ops/s",
        sim.metrics.throughput(61 * SEC, 91 * SEC)
    );
    println!(
        "    after rotation (100–150 s): {:>8.0} ops/s",
        sim.metrics.throughput(100 * SEC, 150 * SEC)
    );
    println!("\nevents:");
    // One entry per replica per epoch, stamped with each station's own
    // completion time — sort so the first (earliest) adoption is reported.
    let mut changes = sim.epoch_changes.clone();
    changes.sort_by_key(|(t, m)| (m.epoch.0, *t));
    let mut seen = std::collections::HashSet::new();
    for (t, m) in &changes {
        if seen.insert(m.epoch) {
            println!("    t={:>3}s epoch {} (n = {})", t / SEC, m.epoch, m.n());
        }
    }
    for (t, r) in &sim.transfers {
        println!("    t={:>3}s state transfer complete at {r}", t / SEC);
    }
    println!("\ncompleted {} client operations in 150 virtual seconds", sim.metrics.completed());
    assert!(sim.metrics.completed() > 0);
}
