//! A BFT ordering service for a permissioned blockchain, end to end.
//!
//! Submits transactions through the full BFT protocol (testkit cluster of
//! four replicas running [`OrderingService`]), lets the service cut
//! 10-transaction blocks, and verifies that every replica built the exact
//! same hash chain.
//!
//! Run with: `cargo run --release --example fabric_ordering`

use lazarus::apps::fabric::{header_op, submit_op, OrderingService};
use lazarus::bft::client::Client;
use lazarus::bft::replica::{Ctx, Replica, ReplicaConfig};
use lazarus::bft::types::{ClientId, Epoch, Membership, ReplicaId};

use bytes::Bytes;
use lazarus::bft::messages::Message;
use lazarus::bft::replica::Action;
use std::collections::VecDeque;

/// A minimal synchronous pump for `OrderingService` replicas (the bft
/// testkit is specialized to its counter service, so this example wires the
/// generic replica API directly — it is exactly what an embedder does).
struct Pump {
    replicas: Vec<Replica<OrderingService>>,
    queue: VecDeque<(ReplicaId, Message)>,
    replies: Vec<(ClientId, lazarus::bft::messages::Reply)>,
}

impl Pump {
    fn new(n: u32, block_size: usize) -> Pump {
        let membership = Membership::new(Epoch(0), (0..n).map(ReplicaId).collect());
        let mut replicas = Vec::new();
        for id in 0..n {
            let cfg = ReplicaConfig::new(ReplicaId(id), membership.clone());
            let (replica, _) = Replica::new(cfg, OrderingService::new(block_size));
            replicas.push(replica);
        }
        Pump { replicas, queue: VecDeque::new(), replies: Vec::new() }
    }

    fn run(&mut self) {
        while let Some((to, message)) = self.queue.pop_front() {
            let actions = self.replicas[to.0 as usize].on_message(message, Ctx::UNTRACED);
            for action in actions {
                match action {
                    Action::Send(peer, m) => self.queue.push_back((peer, m)),
                    Action::SendClient(c, r) => self.replies.push((c, r)),
                    _ => {}
                }
            }
        }
    }
}

fn main() {
    let mut pump = Pump::new(4, 10);
    let membership = pump.replicas[0].membership().clone();
    let mut client = Client::new(ClientId(1), membership, b"lazarus-deployment");

    // Submit 35 transactions → 3 full blocks + 5 pending.
    let mut receipts = Vec::new();
    for i in 0..35u32 {
        let tx = format!("transfer #{i}: alice -> bob : {} coins", i * 3 + 1);
        for (to, m) in client.invoke(submit_op(tx.as_bytes())) {
            pump.queue.push_back((to, m));
        }
        pump.run();
        for (cid, reply) in std::mem::take(&mut pump.replies) {
            if cid == client.id() {
                if let Some(done) = client.on_reply(reply) {
                    if done.result.first() == Some(&b'B') {
                        let block = u64::from_be_bytes(done.result[1..9].try_into().unwrap());
                        receipts.push((i, block));
                    }
                }
            }
        }
    }
    println!("sealed blocks (tx → block):");
    for (tx, block) in &receipts {
        println!("    tx #{tx} sealed block {block}");
    }

    // Query block 2's header through the ordered path.
    for (to, m) in client.invoke(header_op(2)) {
        pump.queue.push_back((to, m));
    }
    pump.run();
    for (cid, reply) in std::mem::take(&mut pump.replies) {
        if cid == client.id() {
            if let Some(done) = client.on_reply(reply) {
                println!(
                    "\nblock 2 header: {} bytes (number | prev-hash | tx-root | count)",
                    done.result.len()
                );
            }
        }
    }

    // Every replica holds the identical verified chain.
    let reference = pump.replicas[0].service().header(3).expect("3 blocks").digest();
    for r in &pump.replicas {
        assert!(r.service().verify_chain(), "chain verifies on {}", r.id());
        assert_eq!(r.service().height(), 3);
        assert_eq!(r.service().header(3).unwrap().digest(), reference);
    }
    println!("\n✓ all 4 replicas agree on a verified 3-block chain (+5 pending txs)");
    let _ = Bytes::new();
}
