//! Quickstart: the whole Lazarus loop in one file.
//!
//! 1. Generate a synthetic OSINT world and render it as *real* NVD JSON
//!    feeds plus vendor advisory documents.
//! 2. Ingest everything through the Data manager (the same parsers a live
//!    deployment would use).
//! 3. Bootstrap the controller: it picks the most failure-independent
//!    4-OS configuration and plans its deployment.
//! 4. Run daily monitoring rounds and print every reconfiguration.
//!
//! Run with: `cargo run --release --example quickstart`

use lazarus::core::controller::{Controller, ControllerConfig};
use lazarus::core::DeploymentStep;
use lazarus::osint::catalog::study_oses;
use lazarus::osint::datamgr::DataManager;
use lazarus::osint::date::Date;
use lazarus::osint::kb::KnowledgeBase;
use lazarus::osint::sources::{
    CveDetailsSource, DebianSource, ExploitDbSource, FreeBsdSource, MicrosoftSource, OracleSource,
    OsintSource, RedhatSource, UbuntuSource,
};
use lazarus::osint::synth::{SyntheticWorld, WorldConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A year and a half of synthetic vulnerability history.
    let mut config = WorldConfig::paper_study(2024);
    config.start = Date::from_ymd(2017, 1, 1);
    config.end = Date::from_ymd(2018, 7, 1);
    let world = SyntheticWorld::generate(config);
    println!("world: {} campaigns → {} CVEs", world.campaigns.len(), world.vulnerabilities.len());

    // 2. Ingest through the real collection pipeline: NVD JSON feeds plus
    //    the eight secondary sources, crawled concurrently.
    let data = DataManager::new(KnowledgeBase::new());
    let feeds = world.nvd_feeds();
    data.sync_feeds(&feeds)?;
    let docs = world.vendor_documents();
    let exploitdb = ExploitDbSource::new(world.exploitdb_document());
    let ubuntu = UbuntuSource::new(docs.ubuntu);
    let debian = DebianSource::new(docs.debian);
    let redhat = RedhatSource::new(docs.redhat);
    let oracle = OracleSource::new(docs.oracle);
    let freebsd = FreeBsdSource::new(docs.freebsd);
    let microsoft = MicrosoftSource::new(docs.microsoft);
    let cvedetails = CveDetailsSource::new(docs.cvedetails);
    let sources: Vec<&(dyn OsintSource + Sync)> =
        vec![&exploitdb, &ubuntu, &debian, &redhat, &oracle, &freebsd, &microsoft, &cvedetails];
    let stats = data.sync_sources(&sources, Date::from_ymd(2017, 1, 1))?;
    println!(
        "knowledge base: {} CVEs, {} enrichments applied",
        data.read(|kb| kb.len()),
        stats.enrichments_applied
    );

    // 3. Bootstrap the controller over the 21-OS catalog.
    let mut controller = Controller::new(ControllerConfig::new(study_oses()), data);
    let report = controller.bootstrap(Date::from_ymd(2018, 6, 1));
    println!(
        "\ninitial CONFIG (risk {:.1} ≤ threshold {:.1}):",
        report.config_risk, report.threshold
    );
    for os in controller.active_config() {
        println!("    {os}");
    }

    // 4. A month of daily monitoring rounds.
    for day in 2..=30 {
        let today = Date::from_ymd(2018, 6, day);
        let report = controller.monitor_round(today);
        for alarm in &report.alarms {
            println!("{today}  ALARM {} (exploited: {})", alarm.cve, alarm.exploited);
        }
        for step in &report.plan {
            if let DeploymentStep::PowerOn { os, replica, .. } = step {
                println!("{today}  power on {os} as {replica}");
            }
            if let DeploymentStep::RemoveReplica { replica, .. } = step {
                println!("{today}  remove {replica} (quarantined)");
            }
        }
    }
    println!("\nfinal CONFIG:");
    for os in controller.active_config() {
        println!("    {os}");
    }
    println!("\naudit events: {}", controller.audit().len());
    Ok(())
}
