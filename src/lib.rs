//! # Lazarus — automatic management of diversity in BFT systems
//!
//! A from-scratch Rust reproduction of *Lazarus: Automatic Management of
//! Diversity in BFT Systems* (Garcia, Bessani, Neves — Middleware '19):
//! a control plane that continuously mines OSINT vulnerability feeds,
//! clusters similar vulnerability descriptions to uncover hidden sharing,
//! scores the risk of every replica configuration, and reconfigures a BFT
//! replica group to always run the most failure-independent set of
//! operating systems.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`osint`] | CVE/CVSS/CPE model, NVD feed parsing, eight OSINT source parsers, knowledge base, synthetic world generator |
//! | [`nlp`] | TF-IDF vectorization, K-means++ clustering, elbow method |
//! | [`risk`] | the extended score (Eqs. 1–4), configuration risk (Eq. 5), Algorithm 1, the five §6 strategies, the epoch evaluator |
//! | [`bft`] | the BFT state-machine-replication library (consensus, leader change, checkpoints, state transfer, reconfiguration) |
//! | [`testbed`] | discrete-event performance simulator, OS catalog (Table 2), VM/LTU substrate |
//! | [`apps`] | KVS (+YCSB), SieveQ, Fabric-like ordering service |
//! | [`core`] | the controller: Data / Risk / Deploy managers and the monitoring loop |
//!
//! See `examples/` for runnable end-to-end scenarios, and
//! `crates/bench/src/bin/` for the per-figure reproduction harnesses.

#![warn(missing_docs)]

pub use lazarus_apps as apps;
pub use lazarus_bft as bft;
pub use lazarus_core as core;
pub use lazarus_nlp as nlp;
pub use lazarus_osint as osint;
pub use lazarus_risk as risk;
pub use lazarus_testbed as testbed;
