//! Figure 5: compromised system runs over eight months, five strategies.
//!
//! Protocol (§6.1): learning phase 2014-01-01 onward; execution phase
//! January–August 2018 in monthly slots; 1000 runs per slot; a run is
//! compromised when a single (ground-truth) weakness published that month
//! hits `f + 1 = 2` of its running replicas while unpatched.
//!
//! The paper replays one real history; the synthetic equivalent replays
//! several independent worlds (seeds) and averages them, so a single
//! generated campaign cannot dominate a month.
//!
//! Usage: `fig5_strategies [runs] [base_seed] [worlds]`
//! (defaults: 1000, 42, 5 — `runs` is split across the worlds).

use lazarus_bench::write_metrics_json;
use lazarus_osint::synth::{SyntheticWorld, WorldConfig};
use lazarus_risk::epoch::{EpochConfig, Evaluator, ThreatScope};
use lazarus_risk::strategies::StrategyKind;

fn main() {
    // Unclocked bundle: counter adds and histogram observations commute, and
    // the per-month gauges below are set from this (single) thread in month
    // order — so `fig5_metrics.json` is byte-identical at any LAZARUS_THREADS.
    let obs = lazarus_obs::Obs::unclocked();
    let mut args = std::env::args().skip(1);
    let runs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let worlds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let runs_per_world = (runs / worlds).max(1);

    println!(
        "=== Figure 5 — compromised runs over eight months          ({worlds} worlds × {runs_per_world} runs/slot, base seed {seed}) ==="
    );
    // World generation + oracle construction is per-seed independent, so it
    // fans out across the worker pool; collection stays in seed order, so
    // the printed figure is byte-identical to a sequential sweep.
    let evals: Vec<Evaluator> = lazarus_risk::par::par_map_indexed(worlds, |w| {
        let world = SyntheticWorld::generate(WorldConfig::paper_study(seed + w as u64));
        Evaluator::new(&world, EpochConfig::paper())
    });

    println!(
        "\n{:<10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "month", "Lazarus", "CVSSv3", "Common", "Random", "Equal"
    );
    let mut totals = [0.0f64; 5];
    let windows = Evaluator::month_windows(2018, 1, 8);
    for (start, end) in &windows {
        print!("{:<10}", format!("{}-{:02}", start.year(), start.month()));
        let month = format!("{}-{:02}", start.year(), start.month());
        for (i, kind) in StrategyKind::ALL.iter().enumerate() {
            let mut compromised = 0usize;
            let mut total_runs = 0usize;
            for eval in &evals {
                let stats = eval.run_window_observed(
                    *kind,
                    (*start, *end),
                    &ThreatScope::PublishedInWindow,
                    runs_per_world,
                    seed,
                    Some(&obs),
                );
                compromised += stats.compromised;
                total_runs += stats.runs;
            }
            let pct = 100.0 * compromised as f64 / total_runs.max(1) as f64;
            obs.registry
                .gauge_with(
                    "fig5_compromised_pct",
                    &[("month", month.as_str()), ("strategy", kind.name())],
                )
                .set(pct);
            totals[i] += pct;
            print!(" {:>8.1}%", pct);
        }
        println!();
    }
    print!("{:<10}", "mean");
    for t in totals {
        print!(" {:>8.1}%", t / windows.len() as f64);
    }
    println!();
    println!(
        "\npaper shape: Lazarus best overall; Random/Equal worst \
         (\"changing OSes every day with no criteria tends to create unsafe configurations\")."
    );
    match write_metrics_json("fig5_strategies", &obs.registry) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write metrics: {e}"),
    }
}
