//! Pipelining benchmark: throughput and client latency across the
//! consensus window sweep (`window ∈ {1, 2, 4, 8}`) crossed with the two
//! batch-sizing policies (fixed vs adaptive), on the echo hot path and the
//! YCSB 50/50 key-value workload.
//!
//! Outputs:
//! - `BENCH_pipeline.json` (or `[out_path]`) — schema-versioned report with
//!   one workload entry per `(workload, window, policy)` cell, diffable by
//!   `perf_report` against a committed baseline.
//! - `bench_pipeline_metrics.json` (under `$LAZARUS_METRICS_DIR` when set)
//!   — the representative cell's observability snapshot plus a
//!   `pipeline_ops_s{workload=…,window=…,policy=…}` gauge per cell.
//!
//! Every number is virtual-time, so both files are byte-identical across
//! runs and at any `LAZARUS_THREADS` setting.
//!
//! Usage: `bench_pipeline [--smoke] [out_path]`.

use bytes::Bytes;
use lazarus_apps::kvs::KvsService;
use lazarus_apps::ycsb::{YcsbConfig, YcsbWorkload};
use lazarus_bench::perf::Suite;
use lazarus_bench::{measure_throughput_configured, write_bench_json, ThroughputRun};
use lazarus_bft::batcher::BatchPolicy;
use lazarus_bft::service::CounterService;
use lazarus_obs::Registry;
use lazarus_testbed::cluster::SimConfig;
use lazarus_testbed::oscatalog::PerfProfile;
use parking_lot::Mutex;
use std::sync::Arc;

/// The window sweep every cell grid covers.
const WINDOWS: [u64; 4] = [1, 2, 4, 8];

/// Bench knobs, scaled down by `--smoke`.
///
/// `max_batch` is deliberately smaller than the client population: a
/// closed-loop load that fits in one batch hides the pipeline entirely
/// (window 1 already decides every pending op per round trip). Capping the
/// batch puts the sweep in the regime the paper's pipelining argument is
/// about — more slots in flight, not bigger batches.
struct Preset {
    smoke: bool,
    max_batch: usize,
    echo_clients: usize,
    echo_secs: u64,
    ycsb_clients: usize,
    ycsb_secs: u64,
}

const FULL: Preset = Preset {
    smoke: false,
    max_batch: 16,
    echo_clients: 64,
    echo_secs: 3,
    ycsb_clients: 64,
    ycsb_secs: 3,
};

const SMOKE: Preset = Preset {
    smoke: true,
    max_batch: 8,
    echo_clients: 24,
    echo_secs: 2,
    ycsb_clients: 24,
    ycsb_secs: 2,
};

fn policy_name(policy: BatchPolicy) -> &'static str {
    match policy {
        BatchPolicy::Fixed => "fixed",
        BatchPolicy::Adaptive => "adaptive",
    }
}

/// Runs one `(workload, window, policy)` cell and folds it into the suite.
fn run_cell(
    preset: &Preset,
    workload: &str,
    window: u64,
    policy: BatchPolicy,
    suite: &mut Suite,
) -> ThroughputRun {
    let cfg = SimConfig {
        window,
        batch_policy: policy,
        max_batch: preset.max_batch,
        ..SimConfig::default()
    };
    let profiles = [PerfProfile::bare_metal(); 4];
    let run = match workload {
        "echo" => measure_throughput_configured(
            cfg,
            &profiles,
            || Box::new(CounterService::new()),
            |_| Bytes::new(),
            preset.echo_clients,
            preset.echo_secs,
        ),
        _ => {
            let gen = Arc::new(Mutex::new(YcsbWorkload::new(YcsbConfig::fig10(), 7)));
            measure_throughput_configured(
                cfg,
                &profiles,
                || Box::new(KvsService::new()),
                move |_| gen.lock().next_op(),
                preset.ycsb_clients,
                preset.ycsb_secs,
            )
        }
    };
    let cell = format!("{workload}_w{window}_{}", policy_name(policy));
    println!("{cell}: {:.0} ops/s", run.throughput_ops_s);
    suite.push(&cell, "throughput_ops_s", run.throughput_ops_s);
    if let Some(s) = run.summary {
        suite.push(&cell, "latency_p50_us", s.p50_us as f64);
        suite.push(&cell, "latency_p99_us", s.p99_us as f64);
        suite.push(&cell, "completed_ops", s.count as f64);
    }
    run
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_pipeline.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other if !other.starts_with('-') => out_path = other.to_string(),
            other => {
                eprintln!("unknown argument {other:?}; usage: bench_pipeline [--smoke] [out_path]");
                std::process::exit(2);
            }
        }
    }
    let preset = if smoke { SMOKE } else { FULL };
    println!("=== bench_pipeline ({} preset) ===", if preset.smoke { "smoke" } else { "full" });
    let wall_start = std::time::Instant::now();

    let mut suite = Suite::new();
    suite.push("meta", "smoke", if preset.smoke { 1.0 } else { 0.0 });

    // The representative cell's registry (echo, window 4, adaptive) anchors
    // the metrics report; the per-cell gauges are added to it below.
    let mut metrics_registry: Option<Registry> = None;
    let mut ops: Vec<(String, u64, &'static str, f64)> = Vec::new();
    for workload in ["echo", "ycsb"] {
        for &window in &WINDOWS {
            for policy in [BatchPolicy::Fixed, BatchPolicy::Adaptive] {
                let run = run_cell(&preset, workload, window, policy, &mut suite);
                ops.push((workload.to_string(), window, policy_name(policy), run.throughput_ops_s));
                if workload == "echo" && window == 4 && policy == BatchPolicy::Adaptive {
                    metrics_registry = Some(run.obs.registry.clone());
                }
            }
        }
    }

    // Headline: the paper-style claim that a deeper window with adaptive
    // batching beats the classic one-slot pipeline.
    for workload in ["echo", "ycsb"] {
        let base = ops
            .iter()
            .find(|(w, win, pol, _)| w == workload && *win == 1 && *pol == "fixed")
            .map(|(_, _, _, v)| *v)
            .unwrap_or(0.0);
        let best = ops
            .iter()
            .filter(|(w, win, pol, _)| w == workload && *win >= 2 && *pol == "adaptive")
            .map(|(_, _, _, v)| *v)
            .fold(0.0f64, f64::max);
        if base > 0.0 {
            println!(
                "{workload}: best pipelined+adaptive {:.0} ops/s vs single-slot {:.0} (+{:.0}%)",
                best,
                base,
                (best / base - 1.0) * 100.0
            );
        }
    }

    let registry = metrics_registry.expect("representative cell ran");
    for (workload, window, policy, v) in &ops {
        registry
            .gauge_with(
                "pipeline_ops_s",
                &[("workload", workload), ("window", &window.to_string()), ("policy", policy)],
            )
            .set(*v);
    }
    match lazarus_bench::write_metrics_json("bench_pipeline", &registry) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write metrics: {e}");
            std::process::exit(1);
        }
    }

    println!("wall {:.1}s", wall_start.elapsed().as_secs_f64());
    match write_bench_json(&out_path, &suite.to_json()) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
