//! Ablation: how much does cluster-inferred sharing matter?
//!
//! Sweeps the similarity gate of the risk oracle: 0.0 (raw cluster-union
//! linking), the 0.5 default, 0.75, and 1.0 (cluster inference disabled —
//! only directly-listed sharing counts). For each setting, replays the
//! Figure 5 protocol with the Lazarus strategy and reports compromised
//! runs. The expected shape: the 0.5 gate wins; 1.0 misses the split-CVE
//! campaigns (Table 1's lesson); 0.0 drowns the signal in topic noise.
//!
//! Usage: `ablation_clusters [runs] [seed]` (defaults 300, 42).

use lazarus_nlp::VulnClusters;
use lazarus_osint::date::Date;
use lazarus_osint::kb::KnowledgeBase;
use lazarus_osint::synth::{SyntheticWorld, WorldConfig};
use lazarus_risk::algorithm::{Reconfigurator, ReplicaSets};
use lazarus_risk::oracle::RiskOracle;
use lazarus_risk::score::ScoreParams;
use lazarus_risk::strategies::min_config_risk;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    println!(
        "=== Ablation — similarity gate for cluster-inferred sharing ({runs} runs/setting) ==="
    );
    let world = SyntheticWorld::generate(WorldConfig::paper_study(seed));
    let kb: KnowledgeBase = world.vulnerabilities.iter().cloned().collect();
    let clusters = VulnClusters::build(&world.vulnerabilities, 4242);
    let universe = world.config.oses.clone();

    // Ground-truth threat views for the compromise check.
    let threats: Vec<(Date, u64, Vec<Option<Date>>)> = world
        .campaigns
        .iter()
        .map(|c| {
            let mut mask = 0u64;
            let mut protect = vec![None; universe.len()];
            for (i, os) in universe.iter().enumerate() {
                if c.hits(*os) {
                    mask |= 1 << i;
                    let cpe = os.to_cpe();
                    protect[i] = c
                        .cves
                        .iter()
                        .filter_map(|cve| kb.get(*cve))
                        .filter(|v| v.affects(&cpe))
                        .filter_map(|v| v.patch_date_for(&cpe))
                        .min();
                }
            }
            (c.published, mask, protect)
        })
        .collect();

    let window = (Date::from_ymd(2018, 1, 1), Date::from_ymd(2018, 9, 1));
    let registry = lazarus_obs::Registry::new();
    println!("\n{:<22} {:>12}", "similarity gate", "compromised");
    for gate in [0.0, 0.5, 0.75, 1.01] {
        let oracle = RiskOracle::build_with_similarity(
            &kb,
            &clusters,
            &universe,
            ScoreParams::paper(),
            gate,
        );
        // Precompute daily matrices (independent per day → worker pool).
        let days: Vec<_> =
            lazarus_risk::par::par_map_indexed((window.1 - window.0).max(0) as usize, |d| {
                let date = window.0 + d as i32;
                let m = oracle.matrix(date);
                let min = min_config_risk(&m, 4);
                (date, m, min)
            });
        // Runs are independent seeded trials; fan them out and fold the
        // per-run flags in seed order (the count is order-independent, but
        // deterministic collection keeps the harness byte-reproducible).
        let compromised: usize = lazarus_risk::par::par_map_indexed(runs, |run| {
            let mut rng = StdRng::seed_from_u64(seed ^ (run as u64) << 17);
            let mut recon = Reconfigurator::with_threshold(0.0);
            recon.threshold = days[0].2 + 15.0;
            let mut sets =
                ReplicaSets::new(recon.initial_config(&days[0].1, 4, &mut rng), universe.len());
            for (i, (date, matrix, min)) in days.iter().enumerate() {
                if i > 0 {
                    recon.threshold = min + 15.0;
                    recon.monitor(&mut sets, matrix, &mut rng);
                }
                for (published, mask, protect) in &threats {
                    if *published < window.0 || *published > *date {
                        continue;
                    }
                    let exposed = sets
                        .config
                        .iter()
                        .filter(|&&r| mask & (1 << r) != 0 && protect[r].is_none_or(|p| p > *date))
                        .count();
                    if exposed > 1 {
                        return 1usize;
                    }
                }
            }
            0usize
        })
        .into_iter()
        .sum();
        let label = if gate > 1.0 {
            "disabled (direct only)".to_string()
        } else {
            format!("cosine ≥ {gate:.2}")
        };
        let gate_label = format!("{gate:.2}");
        registry
            .gauge_with("ablation_clusters_compromised_pct", &[("gate", gate_label.as_str())])
            .set(100.0 * compromised as f64 / runs as f64);
        println!("{label:<22} {:>11.1}%", 100.0 * compromised as f64 / runs as f64);
    }
    println!(
        "\nReads with EXPERIMENTS.md: gating trades recall for precision. Disabling \
         inference (direct listings only) misses split-CVE campaigns entirely; the raw \
         union degenerates toward a per-OS vulnerability-volume metric whose behaviour \
         depends on the world's structure."
    );
    match lazarus_bench::write_metrics_json("ablation_clusters", &registry) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write metrics: {e}"),
    }
}
