//! Ablation: the threshold slack of the adaptive Algorithm-1 threshold.
//!
//! Sweeps `slack` (the margin over the day's minimum achievable risk) and
//! reports Figure-5-style compromise rates plus reconfiguration counts —
//! the safety/churn trade-off behind the paper's `threshold` parameter.
//!
//! Usage: `ablation_threshold [runs] [seed]` (defaults 300, 42).

use lazarus_osint::synth::{SyntheticWorld, WorldConfig};
use lazarus_risk::epoch::{EpochConfig, Evaluator, ThreatScope};
use lazarus_risk::strategies::StrategyKind;

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    println!("=== Ablation — Algorithm 1 threshold slack ({runs} runs/setting) ===");
    let world = SyntheticWorld::generate(WorldConfig::paper_study(seed));
    let registry = lazarus_obs::Registry::new();
    println!("\n{:<10} {:>12} {:>18}", "slack", "compromised", "reconfigs/run");
    for slack in [2.0, 8.0, 15.0, 30.0, 60.0, 120.0] {
        let cfg = EpochConfig { threshold: slack, ..EpochConfig::paper() };
        let eval = Evaluator::new(&world, cfg);
        let mut compromised = 0usize;
        let mut reconfigs = 0usize;
        for (start, end) in Evaluator::month_windows(2018, 1, 8) {
            let stats = eval.run_window(
                StrategyKind::Lazarus,
                (start, end),
                &ThreatScope::PublishedInWindow,
                runs,
                seed,
            );
            compromised += stats.compromised;
            reconfigs += stats.reconfigurations;
        }
        let total_runs = runs * 8;
        let slack_label = format!("{slack}");
        let labels = [("slack", slack_label.as_str())];
        registry
            .gauge_with("ablation_threshold_compromised_pct", &labels)
            .set(100.0 * compromised as f64 / total_runs as f64);
        registry
            .gauge_with("ablation_threshold_reconfigs_per_run", &labels)
            .set(reconfigs as f64 / total_runs as f64);
        println!(
            "{:<10} {:>11.1}% {:>18.2}",
            slack,
            100.0 * compromised as f64 / total_runs as f64,
            reconfigs as f64 / total_runs as f64
        );
    }
    println!(
        "\nReads with EXPERIMENTS.md: smaller slack buys more reconfigurations (churn) \
         for a modest safety change; the compromise floor is set by hidden (stealth) \
         sharing that no threshold can see."
    );
    match lazarus_bench::write_metrics_json("ablation_threshold", &registry) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write metrics: {e}"),
    }
}
