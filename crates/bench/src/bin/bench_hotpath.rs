//! Hot-path benchmark: ops/s for the §7.1 echo microbenchmark and
//! wall-clock time for the Figure 5 strategy sweep, written to
//! `BENCH_hotpath.json` for regression tracking.
//!
//! Exercises the zero-copy PR end to end: memoized batch digests and the
//! serialize-once broadcast drive the microbenchmark throughput; the
//! deterministic worker pool drives the Figure 5 wall clock.
//!
//! Usage: `bench_hotpath [runs_per_slot] [seed] [worlds] [out_path]`
//! (defaults: 200, 42, 2, `BENCH_hotpath.json`).

use std::time::Instant;

use lazarus_bench::{fmt_kops, microbenchmark, write_bench_json, write_metrics_json};
use lazarus_osint::json::Value;
use lazarus_osint::synth::{SyntheticWorld, WorldConfig};
use lazarus_risk::epoch::{EpochConfig, Evaluator, ThreatScope};
use lazarus_risk::strategies::StrategyKind;
use lazarus_testbed::oscatalog::PerfProfile;

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let worlds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let out_path = args.next().unwrap_or_else(|| "BENCH_hotpath.json".to_string());

    println!("=== Hot-path benchmark (threads: {}) ===", lazarus_risk::par::worker_count());

    // §7.1 echo microbenchmark, 4 bare-metal replicas, 0/0 and 1024/1024.
    let profiles = vec![PerfProfile::bare_metal(); 4];
    let t = Instant::now();
    let ops_small = microbenchmark(&profiles, 0, 600);
    let ops_large = microbenchmark(&profiles, 1024, 300);
    let echo_wall = t.elapsed().as_secs_f64();
    println!(
        "echo microbench: 0/0 {} ops/s, 1024/1024 {} ops/s  ({echo_wall:.2}s wall)",
        fmt_kops(ops_small),
        fmt_kops(ops_large)
    );

    // Figure 5 sweep wall-clock: worlds × 8 months × 5 strategies.
    let t = Instant::now();
    let evals: Vec<Evaluator> = lazarus_risk::par::par_map_indexed(worlds, |w| {
        let world = SyntheticWorld::generate(WorldConfig::paper_study(seed + w as u64));
        Evaluator::new(&world, EpochConfig::paper())
    });
    let obs = lazarus_obs::Obs::unclocked();
    let mut compromised = 0usize;
    for (start, end) in Evaluator::month_windows(2018, 1, 8) {
        for kind in StrategyKind::ALL {
            for eval in &evals {
                compromised += eval
                    .run_window_observed(
                        kind,
                        (start, end),
                        &ThreatScope::PublishedInWindow,
                        runs,
                        seed,
                        Some(&obs),
                    )
                    .compromised;
            }
        }
    }
    let fig5_wall = t.elapsed().as_secs_f64();
    println!(
        "fig5 sweep: {worlds} worlds x 8 months x 5 strategies x {runs} runs \
         ({compromised} compromised)  ({fig5_wall:.2}s wall)"
    );

    let report = Value::Object(vec![
        (
            "echo_microbench".to_string(),
            Value::Object(vec![
                ("payload_0_ops_s".to_string(), Value::Number(ops_small)),
                ("payload_1024_ops_s".to_string(), Value::Number(ops_large)),
                ("wall_clock_s".to_string(), Value::Number(echo_wall)),
            ]),
        ),
        (
            "fig5_strategies".to_string(),
            Value::Object(vec![
                ("wall_clock_s".to_string(), Value::Number(fig5_wall)),
                ("worlds".to_string(), Value::Number(worlds as f64)),
                ("runs_per_slot".to_string(), Value::Number(runs as f64)),
                ("seed".to_string(), Value::Number(seed as f64)),
            ]),
        ),
        ("threads".to_string(), Value::Number(lazarus_risk::par::worker_count() as f64)),
    ]);
    match write_bench_json(&out_path, &report) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("failed to write {out_path}: {e}"),
    }

    let reg = &obs.registry;
    reg.gauge_with("hotpath_echo_ops_s", &[("payload", "0")]).set(ops_small);
    reg.gauge_with("hotpath_echo_ops_s", &[("payload", "1024")]).set(ops_large);
    reg.gauge("hotpath_echo_wall_s").set(echo_wall);
    reg.gauge("hotpath_fig5_wall_s").set(fig5_wall);
    match write_metrics_json("bench_hotpath", reg) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write metrics: {e}"),
    }
}
