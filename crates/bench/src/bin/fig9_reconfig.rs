//! Figure 9: KVS throughput during a Lazarus-driven reconfiguration
//! (add the new replica, then remove the old one), under a YCSB 50/50
//! workload with 1 KiB values over ~500 MB of state.
//!
//! Two panels, as in the paper:
//! * (a) homogeneous bare metal — replica boot takes >2 minutes;
//! * (b) Lazarus diverse [DE8 OS42 FE26 SO11], adding UB16 (40 s boot) and
//!   removing OS42.
//!
//! Both panels show the two throughput-dip types: state *checkpoints*
//! (periodic snapshot serialization) and the state *transfer* to the
//! joining replica.
//!
//! Usage: `fig9_reconfig [state_mb]` (default 500).
//!
//! With `LAZARUS_TRACE_DIR=<dir>` set, each panel records causal flight
//! streams and dumps `replica_<id>.jsonl` + analyzer outputs into
//! `<dir>/panel_<tag>/`. The rings are bounded, so a long run keeps the
//! *last* `FlightRecorder::DEFAULT_CAPACITY` events per replica — the
//! interesting tail covering the reconfiguration and state transfer.

use bytes::Bytes;
use lazarus_apps::kvs::KvsService;
use lazarus_apps::ycsb::{YcsbConfig, YcsbWorkload};
use lazarus_bench::write_metrics_json;
use lazarus_bft::types::{Epoch, Membership, ReplicaId};
use lazarus_obs::Registry;
use lazarus_testbed::cluster::{SimCluster, SimConfig};
use lazarus_testbed::oscatalog::{by_short_id, reconfig_set, vm_profile, PerfProfile};
use lazarus_testbed::sim::{Micros, SEC};
use parking_lot::Mutex;
use std::sync::Arc;

const WINDOW: Micros = 200 * SEC;

struct Panel {
    name: &'static str,
    /// Short label for metric series (`panel="a"` / `panel="b"`).
    tag: &'static str,
    profiles: Vec<PerfProfile>,
    joiner: PerfProfile,
    /// Which replica leaves (index into the initial four).
    remove: u32,
}

fn run_panel(panel: &Panel, state_mb: usize, registry: &Registry) {
    let membership = Membership::new(Epoch(0), (0..4).map(ReplicaId).collect());
    // Periods are in consensus slots; with ~6 closed-loop clients batches
    // hold a handful of requests, so ~25k slots ≈ 40-60 s between
    // checkpoints — two dips inside the window, as in the paper.
    let cfg = SimConfig { checkpoint_period: 25_000, ..SimConfig::default() };
    let mut sim = SimCluster::new_observed(cfg);
    let trace_dir = std::env::var("LAZARUS_TRACE_DIR").ok();
    if trace_dir.is_some() {
        sim.enable_flight(lazarus_obs::causal::FlightRecorder::DEFAULT_CAPACITY);
    }
    let ballast = state_mb * 1_000_000;
    for (r, p) in panel.profiles.iter().enumerate() {
        sim.add_node(
            ReplicaId(r as u32),
            *p,
            membership.clone(),
            Box::new(KvsService::with_ballast(ballast)),
        );
    }
    let workload = Arc::new(Mutex::new(YcsbWorkload::new(YcsbConfig::fig9(), 11)));
    sim.add_clients(1, 6, membership.clone(), move |_| workload.lock().next_op());

    // Timeline: power the joiner on at t = 10 s (boot runs in the
    // background); reconfigure ADD once it is up; REMOVE 30 s later.
    let boot_at = 10 * SEC;
    let up_at = boot_at + panel.joiner.boot;
    let joined_membership = membership.reconfigured(Some(ReplicaId(4)), None);
    sim.boot_joiner_at(
        boot_at,
        ReplicaId(4),
        panel.joiner,
        joined_membership,
        Box::new(KvsService::new()),
    );
    sim.inject_reconfig_at(up_at + SEC, Epoch(0), Some(ReplicaId(4)), None);
    let remove_at = up_at + 31 * SEC;
    sim.inject_reconfig_at(remove_at, Epoch(1), None, Some(ReplicaId(panel.remove)));
    sim.power_off_at(remove_at + 5 * SEC, ReplicaId(panel.remove));

    sim.run_until(WINDOW);

    println!("\n--- Figure 9{} ---", panel.name);
    println!("boot starts t=10s (boot {}s, background)", panel.joiner.boot / SEC);
    let mut seen = std::collections::HashSet::new();
    for (t, m) in &sim.epoch_changes {
        if !seen.insert(m.epoch) {
            continue; // one line per epoch (each replica reports it)
        }
        if m.epoch == Epoch(1) {
            println!("replica added    t={}s (epoch 1, n={})", t / SEC, m.n());
        } else if m.epoch == Epoch(2) {
            println!("replica removed  t={}s (epoch 2, n={})", t / SEC, m.n());
        }
    }
    for (t, r) in &sim.transfers {
        println!("state transfer done t={}s at {r}", t / SEC);
    }
    println!("{:>6}  {:>10}", "t(s)", "ops/s");
    for (t, thr) in sim.metrics.throughput_series(2 * SEC, WINDOW) {
        println!("{:>6}  {:>10.0}", t / SEC, thr);
    }
    if let Some(summary) = sim.metrics.summary() {
        println!("client latency: {summary}");
    }

    // Fold the panel into the shared report: headline gauges, the raw
    // client-latency distribution, and the replica-side commit latency from
    // the instrumented cluster (all virtual-time).
    let labels = [("panel", panel.tag)];
    registry
        .gauge_with("fig9_peak_ops_s", &labels)
        .set(sim.metrics.peak_throughput(10 * SEC, WINDOW));
    registry.gauge_with("fig9_completed_ops", &labels).set(sim.metrics.completed() as f64);
    registry.gauge_with("fig9_state_transfers", &labels).set(sim.transfers.len() as f64);
    sim.metrics.fill_histogram(&registry.histogram_with("fig9_client_latency_us", &labels));
    if let Some(obs) = sim.obs() {
        let commit = obs.registry.histogram("bft_commit_latency_us").snapshot();
        if let Some(p99) = commit.quantile(0.99) {
            registry.gauge_with("fig9_commit_latency_p99_us", &labels).set(p99 as f64);
        }
    }

    if let Some(dir) = trace_dir {
        let dir = std::path::PathBuf::from(dir).join(format!("panel_{}", panel.tag));
        let streams = sim.flight_streams();
        let queues = sim.queue_samples();
        let analysis = lazarus_bench::flight::dump_traced_with_queues(&dir, &streams, queues)
            .expect("write trace dir");
        println!(
            "trace: {} events, {} committed slots in window, {} orphans, {} queue samples → {}",
            analysis.events.len(),
            analysis.committed_slots().count(),
            analysis.orphans.len(),
            queues.len(),
            dir.display()
        );
    }
}

fn main() {
    let state_mb: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(500);
    println!("=== Figure 9 — KVS throughput during reconfiguration (YCSB 50/50, 1 KiB values, {state_mb} MB state) ===");
    let registry = Registry::new();

    let bare = Panel {
        name: "(a) bare metal (homogeneous)",
        tag: "a",
        profiles: vec![PerfProfile::bare_metal(); 4],
        joiner: PerfProfile::bare_metal(),
        remove: 1,
    };
    run_panel(&bare, state_mb, &registry);

    let lazarus = Panel {
        name: "(b) Lazarus (diverse: DE8 OS42 FE26 SO11, +UB16 −OS42)",
        tag: "b",
        profiles: reconfig_set().iter().map(|o| vm_profile(*o)).collect(),
        joiner: by_short_id("UB16").expect("catalog").profile,
        remove: 1, // OS42
    };
    run_panel(&lazarus, state_mb, &registry);

    println!(
        "\npaper shape: both panels dip at state checkpoints and during the state \
         transfer; the VM (b) boots ~3× faster than bare metal (40 s vs >2 min), so \
         the joiner is ready much earlier, while its transfer runs somewhat slower."
    );
    match write_metrics_json("fig9_reconfig", &registry) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write metrics: {e}"),
    }
    let _ = Bytes::new();
}
