//! Figure 6: compromised runs under the notable 2017/2018 attacks —
//! WannaCry, StackClash, Petya, and all three together.
//!
//! Protocol (§6.2): the learning phase runs to the end of 2017; the
//! execution phase covers the full eight months; each attack's campaign is
//! injected into the world with its real profile (wormable Windows RCE with
//! a day-0 exploit; a cross-Unix stack-clash privilege escalation published
//! as per-lineage CVEs; a ransomware chain).
//!
//! Usage: `fig6_attacks [runs] [seed]` (defaults: 1000, 42).

use lazarus_bench::write_metrics_json;
use lazarus_osint::date::Date;
use lazarus_osint::synth::{attacks, SyntheticWorld, WorldConfig};
use lazarus_risk::epoch::{EpochConfig, Evaluator, ThreatScope};
use lazarus_risk::strategies::StrategyKind;

fn main() {
    let obs = lazarus_obs::Obs::unclocked();
    let mut args = std::env::args().skip(1);
    let runs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    println!("=== Figure 6 — compromised runs with notable attacks ({runs} runs, seed {seed}) ===");
    let mut world = SyntheticWorld::generate(WorldConfig::paper_study(seed));
    let oses = world.config.oses.clone();
    let base = world.campaigns.len();

    let (wc, wv) = attacks::wannacry(base, &oses, Date::from_ymd(2018, 2, 15));
    let wannacry_id = wc.id;
    world.inject(wc, wv);
    let (sc, sv) = attacks::stackclash(base + 1, &oses, Date::from_ymd(2018, 4, 19));
    let stackclash_id = sc.id;
    world.inject(sc, sv);
    let (pc, pv) = attacks::petya(base + 2, &oses, Date::from_ymd(2018, 6, 27));
    let petya_id = pc.id;
    world.inject(pc, pv);

    let eval = Evaluator::new(&world, EpochConfig::paper());
    let window = (Date::from_ymd(2018, 1, 1), Date::from_ymd(2018, 9, 1));

    let scopes: [(&str, Vec<usize>); 4] = [
        ("WannaCry", vec![wannacry_id]),
        ("StackClash", vec![stackclash_id]),
        ("Petya", vec![petya_id]),
        ("All", vec![wannacry_id, stackclash_id, petya_id]),
    ];

    println!(
        "\n{:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "attack", "Lazarus", "CVSSv3", "Common", "Random", "Equal"
    );
    for (name, ids) in scopes {
        print!("{name:<12}");
        for kind in StrategyKind::ALL {
            let stats = eval.run_window_observed(
                kind,
                window,
                &ThreatScope::Campaigns(ids.clone()),
                runs,
                seed,
                Some(&obs),
            );
            obs.registry
                .gauge_with("fig6_compromised_pct", &[("attack", name), ("strategy", kind.name())])
                .set(stats.compromised_pct());
            print!(" {:>8.1}%", stats.compromised_pct());
        }
        println!();
    }
    println!(
        "\npaper shape: Lazarus handles every scenario with almost no compromised \
         executions; StackClash is the most destructive attack (it hits every Unix lineage)."
    );
    match write_metrics_json("fig6_attacks", &obs.registry) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write metrics: {e}"),
    }
}
