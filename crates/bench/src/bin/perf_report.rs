//! Benchmark-regression gate: diffs two `BENCH_suite.json` files under
//! the per-metric tolerance policy in `lazarus_bench::perf` and prints a
//! verdict table.
//!
//! Usage: `perf_report <baseline.json> <candidate.json> [--tolerance X]`
//!
//! `--tolerance X` (a fraction, e.g. `0.5` = 50 %) replaces every metric's
//! default tolerance — the escape hatch for noisy environments.
//!
//! Exit codes: `0` no gated metric regressed; `1` at least one regressed
//! (dropped beyond tolerance, rose beyond tolerance for latency, or
//! vanished from the candidate); `2` usage or schema error.

use std::path::PathBuf;

use lazarus_bench::perf::{diff, policy_for, Status, Suite};
use lazarus_bench::print_table;

fn main() {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut tolerance: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => {
                let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--tolerance expects a fraction, e.g. 0.25");
                    std::process::exit(2);
                };
                tolerance = Some(v);
            }
            other if !other.starts_with('-') => paths.push(PathBuf::from(other)),
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: perf_report <old> <new> [--tolerance X]"
                );
                std::process::exit(2);
            }
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("usage: perf_report <old> <new> [--tolerance X]");
        std::process::exit(2);
    };

    let load = |path: &PathBuf| {
        Suite::load(path).unwrap_or_else(|e| {
            eprintln!("perf_report: {e}");
            std::process::exit(2);
        })
    };
    let old = load(old_path);
    let new = load(new_path);
    let report = diff(&old, &new, tolerance);

    let fmt = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.1}"));
    let rows: Vec<(String, String)> = report
        .verdicts
        .iter()
        .map(|v| {
            let change = v.change.map_or("-".to_string(), |c| format!("{:+.1}%", c * 100.0));
            let (tag, gate) = match v.status {
                Status::Ok => ("ok", String::new()),
                Status::Improved => ("IMPROVED", String::new()),
                Status::Regressed => ("REGRESSED", String::new()),
                Status::Info => ("info", " (not gated)".to_string()),
            };
            let tol = policy_for(&v.metric)
                .map(|p| tolerance.unwrap_or(p.tolerance))
                .map_or(String::new(), |t| format!(" tol {:.0}%", t * 100.0));
            (
                format!("{}/{}", v.workload, v.metric),
                format!("{} -> {} ({change}) {tag}{tol}{gate}", fmt(v.old), fmt(v.new)),
            )
        })
        .collect();
    print_table(
        &format!("perf_report — {} vs {}", old_path.display(), new_path.display()),
        ("metric", "old -> new"),
        &rows,
    );

    let regressed: Vec<&str> = report
        .verdicts
        .iter()
        .filter(|v| v.status == Status::Regressed)
        .map(|v| v.metric.as_str())
        .collect();
    if regressed.is_empty() {
        println!("\nverdict: PASS ({} metrics compared)", report.verdicts.len());
    } else {
        eprintln!("\nverdict: REGRESSED — {}", regressed.join(", "));
        std::process::exit(1);
    }
}
