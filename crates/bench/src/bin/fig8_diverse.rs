//! Figure 8: microbenchmark throughput for the three diverse replica sets
//! of §7.2 — fastest [UB17 UB16 FE24 OS42], one-per-family
//! [UB16 W10 SO10 OB61], and slowest [OB60 OB61 SO10 SO11].

use lazarus_bench::{fmt_kops, microbenchmark, print_table, write_metrics_json};
use lazarus_obs::Registry;
use lazarus_testbed::oscatalog::{
    cross_family_set, fastest_set, slowest_set, vm_profile, PerfProfile,
};

fn main() {
    println!("=== Figure 8 — diverse-set microbenchmark (0/0 and 1024/1024) ===");
    let registry = Registry::new();
    let bm = vec![PerfProfile::bare_metal(); 4];
    let bm_small = microbenchmark(&bm, 0, 1400);
    let bm_large = microbenchmark(&bm, 1024, 600);
    registry.gauge_with("fig8_ops_s", &[("payload", "0"), ("set", "BM")]).set(bm_small);
    registry.gauge_with("fig8_ops_s", &[("payload", "1024"), ("set", "BM")]).set(bm_large);

    let sets = [
        ("fastest [UB17 UB16 FE24 OS42]", fastest_set()),
        ("families [UB16 W10 SO10 OB61]", cross_family_set()),
        ("slowest  [OB60 OB61 SO10 SO11]", slowest_set()),
    ];
    let mut rows = Vec::new();
    for (name, oses) in sets {
        let profiles: Vec<PerfProfile> = oses.iter().map(|o| vm_profile(*o)).collect();
        let t0 = microbenchmark(&profiles, 0, 1400);
        let t1 = microbenchmark(&profiles, 1024, 600);
        let set = name.split_whitespace().next().unwrap_or(name);
        registry.gauge_with("fig8_ops_s", &[("payload", "0"), ("set", set)]).set(t0);
        registry.gauge_with("fig8_ops_s", &[("payload", "1024"), ("set", set)]).set(t1);
        rows.push((
            name.to_string(),
            format!(
                "{:>8}  {:>8}   ({:>3.0}% / {:>3.0}% of BM)",
                fmt_kops(t0),
                fmt_kops(t1),
                100.0 * t0 / bm_small,
                100.0 * t1 / bm_large
            ),
        ));
    }
    rows.push((
        "BM baseline".into(),
        format!("{:>8}  {:>8}", fmt_kops(bm_small), fmt_kops(bm_large)),
    ));
    print_table("throughput (ops/s)", ("set", "     0/0  1024/1024"), &rows);
    println!(
        "\npaper shape: fastest ≈ 39k/11.5k (65%/82% of BM); the cross-family set sits \
         close to the slowest set because BFT progresses at the speed of the 3rd-fastest \
         replica (a single-core Solaris VM); slowest ≈ 6k/2.5k."
    );
    match write_metrics_json("fig8_diverse", &registry) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write metrics: {e}"),
    }
}
