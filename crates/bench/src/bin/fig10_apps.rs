//! Figure 10: the three BFT applications (KVS, SieveQ, BFT-Fabric ordering)
//! on bare metal, the fastest diverse set, and the slowest diverse set.
//!
//! Workloads (§7.4): KVS under YCSB 50/50 with 4 KiB values; SieveQ with
//! 1 KiB messages (its filtering layers aggregate validated traffic before
//! it reaches the replicated core); Fabric ordering with 1 KiB transactions
//! in 10-transaction blocks.

use bytes::Bytes;
use lazarus_apps::fabric::{submit_op, OrderingService};
use lazarus_apps::kvs::KvsService;
use lazarus_apps::sieveq::{enqueue_op, SieveQService};
use lazarus_apps::ycsb::{YcsbConfig, YcsbWorkload};
use lazarus_bench::{
    fmt_kops, measure_throughput, measure_throughput_observed, print_table, write_metrics_json,
};
use lazarus_obs::Registry;
use lazarus_testbed::oscatalog::{fastest_set, slowest_set, vm_profile, PerfProfile};
use lazarus_testbed::LatencySummary;
use parking_lot::Mutex;
use std::sync::Arc;

/// SieveQ's front-end layers aggregate this many validated client messages
/// into one ordered operation.
const SIEVEQ_AGGREGATION: usize = 4;

fn kvs_throughput(profiles: &[PerfProfile], registry: &Registry) -> (f64, Option<LatencySummary>) {
    let workload = Arc::new(Mutex::new({
        let mut w = YcsbWorkload::new(YcsbConfig::fig10(), 7);
        w.attach_obs(registry); // op-mix counters: ycsb_ops_total{op=…}
        w
    }));
    let run = measure_throughput_observed(
        profiles,
        || Box::new(KvsService::new()),
        move |_| workload.lock().next_op(),
        250,
        4,
    );
    (run.throughput_ops_s, run.summary)
}

fn sieveq_throughput(profiles: &[PerfProfile]) -> f64 {
    // Each ordered op carries SIEVEQ_AGGREGATION filtered 1 KiB messages.
    let body = Bytes::from(vec![0x51u8; 1024 * SIEVEQ_AGGREGATION]);
    let ops = measure_throughput(
        profiles,
        || Box::new(SieveQService::new()),
        move |op| {
            let mut msg = body.to_vec();
            // unique prefix so duplicate suppression never fires
            msg[..8].copy_from_slice(&op.to_be_bytes());
            enqueue_op(&msg)
        },
        250,
        4,
    );
    ops * SIEVEQ_AGGREGATION as f64
}

fn fabric_throughput(profiles: &[PerfProfile]) -> f64 {
    measure_throughput(
        profiles,
        || Box::new(OrderingService::new(10)),
        |op| {
            let mut tx = vec![0xFAu8; 1024];
            tx[..8].copy_from_slice(&op.to_be_bytes());
            submit_op(&tx)
        },
        250,
        4,
    )
}

fn main() {
    println!("=== Figure 10 — BFT applications on BM / fastest / slowest sets ===");
    let registry = Registry::new();
    let configs: [(&str, Vec<PerfProfile>); 3] = [
        ("BM", vec![PerfProfile::bare_metal(); 4]),
        ("fastest", fastest_set().iter().map(|o| vm_profile(*o)).collect()),
        ("slowest", slowest_set().iter().map(|o| vm_profile(*o)).collect()),
    ];

    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    let mut bm: Option<(f64, f64, f64)> = None;
    for (name, profiles) in &configs {
        let (kvs, kvs_summary) = kvs_throughput(profiles, &registry);
        let sieveq = sieveq_throughput(profiles);
        let fabric = fabric_throughput(profiles);
        registry.gauge_with("fig10_ops_s", &[("app", "kvs"), ("config", name)]).set(kvs);
        registry.gauge_with("fig10_ops_s", &[("app", "sieveq"), ("config", name)]).set(sieveq);
        registry.gauge_with("fig10_ops_s", &[("app", "fabric"), ("config", name)]).set(fabric);
        if let Some(s) = kvs_summary {
            registry.gauge_with("fig10_kvs_p99_us", &[("config", name)]).set(s.p99_us as f64);
            summaries.push((*name, s));
        }
        let suffix = match &bm {
            Some((k, s, f)) => format!(
                "   ({:>3.0}% / {:>3.0}% / {:>3.0}% of BM)",
                100.0 * kvs / k,
                100.0 * sieveq / s,
                100.0 * fabric / f
            ),
            None => {
                bm = Some((kvs, sieveq, fabric));
                String::new()
            }
        };
        rows.push((
            name.to_string(),
            format!(
                "{:>8}  {:>10}  {:>8}{suffix}",
                fmt_kops(kvs),
                fmt_kops(sieveq),
                fmt_kops(fabric)
            ),
        ));
    }
    print_table(
        "peak sustained throughput (KVS: ops/s, SieveQ: msgs/s, Fabric: tx/s)",
        ("config", "     KVS      SieveQ    Fabric"),
        &rows,
    );
    println!("\nKVS client latency:");
    for (name, s) in &summaries {
        println!("    {name:<8} {s}");
    }
    println!(
        "\npaper shape: on the fastest set KVS ≈ 86%, SieveQ ≈ 94% and Fabric ≈ 91% of their \
         BM throughput — SieveQ loses the least because its filtering layers run before the \
         replicated state machine; the slowest set drops to 18–53%."
    );
    match write_metrics_json("fig10_apps", &registry) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write metrics: {e}"),
    }
}
