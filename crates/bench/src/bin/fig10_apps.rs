//! Figure 10: the three BFT applications (KVS, SieveQ, BFT-Fabric ordering)
//! on bare metal, the fastest diverse set, and the slowest diverse set.
//!
//! Workloads (§7.4): KVS under YCSB 50/50 with 4 KiB values; SieveQ with
//! 1 KiB messages (its filtering layers aggregate validated traffic before
//! it reaches the replicated core); Fabric ordering with 1 KiB transactions
//! in 10-transaction blocks.

use bytes::Bytes;
use lazarus_apps::fabric::{submit_op, OrderingService};
use lazarus_apps::kvs::KvsService;
use lazarus_apps::sieveq::{enqueue_op, SieveQService};
use lazarus_apps::ycsb::{YcsbConfig, YcsbWorkload};
use lazarus_bench::{fmt_kops, measure_throughput, print_table};
use lazarus_testbed::oscatalog::{fastest_set, slowest_set, vm_profile, PerfProfile};
use parking_lot::Mutex;
use std::sync::Arc;

/// SieveQ's front-end layers aggregate this many validated client messages
/// into one ordered operation.
const SIEVEQ_AGGREGATION: usize = 4;

fn kvs_throughput(profiles: &[PerfProfile]) -> f64 {
    let workload = Arc::new(Mutex::new(YcsbWorkload::new(YcsbConfig::fig10(), 7)));
    measure_throughput(
        profiles,
        || Box::new(KvsService::new()),
        move |_| workload.lock().next_op(),
        250,
        4,
    )
}

fn sieveq_throughput(profiles: &[PerfProfile]) -> f64 {
    // Each ordered op carries SIEVEQ_AGGREGATION filtered 1 KiB messages.
    let body = Bytes::from(vec![0x51u8; 1024 * SIEVEQ_AGGREGATION]);
    let ops = measure_throughput(
        profiles,
        || Box::new(SieveQService::new()),
        move |op| {
            let mut msg = body.to_vec();
            // unique prefix so duplicate suppression never fires
            msg[..8].copy_from_slice(&op.to_be_bytes());
            enqueue_op(&msg)
        },
        250,
        4,
    );
    ops * SIEVEQ_AGGREGATION as f64
}

fn fabric_throughput(profiles: &[PerfProfile]) -> f64 {
    measure_throughput(
        profiles,
        || Box::new(OrderingService::new(10)),
        |op| {
            let mut tx = vec![0xFAu8; 1024];
            tx[..8].copy_from_slice(&op.to_be_bytes());
            submit_op(&tx)
        },
        250,
        4,
    )
}

fn main() {
    println!("=== Figure 10 — BFT applications on BM / fastest / slowest sets ===");
    let configs: [(&str, Vec<PerfProfile>); 3] = [
        ("BM", vec![PerfProfile::bare_metal(); 4]),
        ("fastest", fastest_set().iter().map(|o| vm_profile(*o)).collect()),
        ("slowest", slowest_set().iter().map(|o| vm_profile(*o)).collect()),
    ];

    let mut rows = Vec::new();
    let mut bm: Option<(f64, f64, f64)> = None;
    for (name, profiles) in &configs {
        let kvs = kvs_throughput(profiles);
        let sieveq = sieveq_throughput(profiles);
        let fabric = fabric_throughput(profiles);
        let suffix = match &bm {
            Some((k, s, f)) => format!(
                "   ({:>3.0}% / {:>3.0}% / {:>3.0}% of BM)",
                100.0 * kvs / k,
                100.0 * sieveq / s,
                100.0 * fabric / f
            ),
            None => {
                bm = Some((kvs, sieveq, fabric));
                String::new()
            }
        };
        rows.push((
            name.to_string(),
            format!(
                "{:>8}  {:>10}  {:>8}{suffix}",
                fmt_kops(kvs),
                fmt_kops(sieveq),
                fmt_kops(fabric)
            ),
        ));
    }
    print_table(
        "peak sustained throughput (KVS: ops/s, SieveQ: msgs/s, Fabric: tx/s)",
        ("config", "     KVS      SieveQ    Fabric"),
        &rows,
    );
    println!(
        "\npaper shape: on the fastest set KVS ≈ 86%, SieveQ ≈ 94% and Fabric ≈ 91% of their \
         BM throughput — SieveQ loses the least because its filtering layers run before the \
         replicated state machine; the slowest set drops to 18–53%."
    );
}
