//! Table 1: the three similar XSS vulnerabilities reported against
//! different OSes, recovered as one cluster by the description pipeline.

use lazarus_nlp::VulnClusters;
use lazarus_osint::fixtures;
use lazarus_osint::model::CveId;
use lazarus_osint::synth::{SyntheticWorld, WorldConfig};

fn main() {
    println!("=== Table 1 — similar vulnerabilities affecting different OSes ===\n");
    let triplet = fixtures::table1_triplet();
    for v in &triplet {
        let platforms: Vec<String> = v.affected.iter().map(|p| p.cpe.to_string()).collect();
        println!("{} ({})", v.id, v.published);
        println!("    {}", v.description);
        println!("    platforms: {}\n", platforms.join(", "));
    }

    // Embed the triplet in a realistic corpus and cluster.
    let mut config = WorldConfig::paper_study(1);
    config.end = lazarus_osint::date::Date::from_ymd(2016, 1, 1);
    let world = SyntheticWorld::generate(config);
    let mut corpus = world.vulnerabilities;
    corpus.extend(triplet);
    let clusters = VulnClusters::build(&corpus, 42);
    let registry = lazarus_obs::Registry::new();
    clusters.record_stats(&registry);
    println!(
        "clustered {} descriptions into k = {} clusters (elbow method)",
        clusters.len(),
        clusters.k()
    );

    let a = CveId::new(2014, 157);
    let b = CveId::new(2015, 3988);
    let c = CveId::new(2016, 4428);
    println!("\ncluster of CVE-2014-0157: {:?}", clusters.cluster_of(a));
    println!("cluster of CVE-2015-3988: {:?}", clusters.cluster_of(b));
    println!("cluster of CVE-2016-4428: {:?}", clusters.cluster_of(c));
    println!("\nsame_cluster(0157, 3988) = {}", clusters.same_cluster(a, b));
    println!("same_cluster(0157, 4428) = {}", clusters.same_cluster(a, c));
    println!("cosine(0157, 4428) = {:.3}", clusters.similarity(a, c).unwrap_or(0.0));
    assert!(
        clusters.same_cluster(a, b) && clusters.same_cluster(a, c),
        "the Table 1 triplet must land in one cluster"
    );
    println!("\n✓ the triplet lands in one cluster despite disjoint product lists");
    registry
        .gauge("table1_triplet_same_cluster")
        .set(f64::from(u8::from(clusters.same_cluster(a, b) && clusters.same_cluster(a, c))));
    registry.gauge("table1_cosine_0157_4428").set(clusters.similarity(a, c).unwrap_or(0.0));
    match lazarus_bench::write_metrics_json("table1_clusters", &registry) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write metrics: {e}"),
    }
}
