//! `fig_health_ablation` — does feeding replica health into the control
//! plane's role selection actually buy anything, or is risk-based
//! configuration choice alone enough?
//!
//! Two placement arms under three persistent-Byzantine nemesis scenarios
//! (`mute`, `corrupt`, `equivocate` — replica 0 misbehaves from boot):
//!
//! * **risk-only** — the controller picks the configuration by risk alone
//!   and is blind to runtime roles: the cluster boots at view 0, so the
//!   faulty replica leads until the watchdog heals it.
//! * **risk+health** — a short probe run feeds rolling health snapshots
//!   into [`Controller::ingest_health`]; after the demotion hysteresis,
//!   [`Controller::plan_leader`] names a healthy leader and the
//!   measurement run boots at that replica's view.
//!
//! Headline metric: time-to-heal (first client completion). The stall a
//! bad boot leader causes is bounded by the watchdog, so with 18k+
//! completions per run the log-bucketed p99 barely moves — but the heal
//! time collapses from the watchdog latency to the first commit.
//!
//! Usage: `fig_health_ablation [scenario]` (default: all three).
//! Writes `fig_health_ablation_results.json` next to
//! [`lazarus_bench::metrics_path`] plus the standard `*_metrics.json`;
//! fixed seeds → byte-identical files at any `LAZARUS_THREADS`.

use lazarus_bench::{metrics_path, print_table, write_bench_json, write_metrics_json};
use lazarus_core::{Controller, ControllerConfig, HealthPolicy};
use lazarus_obs::Obs;
use lazarus_osint::catalog::study_oses;
use lazarus_osint::datamgr::DataManager;
use lazarus_osint::json::Value;
use lazarus_osint::kb::KnowledgeBase;
use lazarus_testbed::nemesis::{probe_health, run_scenario_placed, PlacedRun};
use lazarus_testbed::sim::{Micros, MS};

/// The three from-boot Byzantine scenarios (fault plans target replica 0).
const SCENARIOS: [&str; 3] = ["mute", "corrupt", "equivocate"];

/// Fault-plan seeds per scenario (results are averaged across them).
const SEEDS: [u64; 2] = [1, 2];

/// Probe instants: after the leader-stall detector's onset
/// ([`lazarus_obs::HealthConfig::stall_after_us`]) but before the
/// watchdog's own view change heals the evidence away (~400 ms). Two
/// snapshots satisfy the demotion hysteresis.
const PROBE_AT: [Micros; 2] = [330 * MS, 390 * MS];

/// Demotion policy for the probe evidence. A Byzantine replica that still
/// *receives* and decides keeps perfect latency sub-scores, so its
/// composite floors near 700 even at stability 0 — the demotion bar must
/// sit above that floor, and the promotion bar below the honest replicas'
/// probe-time scores (~960, liveness mid-decay in a stalled cluster).
const POLICY: HealthPolicy = HealthPolicy {
    demote_score: 850,
    demote_p99_us: 40_000,
    promote_score: 900,
    hysteresis_rounds: 2,
};

struct ArmStats {
    time_to_heal_us: f64,
    completed_total: f64,
    completed_after_heal: f64,
    client_p99_us: f64,
    client_mean_us: f64,
    passed: bool,
}

fn arm_stats(runs: &[PlacedRun]) -> ArmStats {
    let n = runs.len().max(1) as f64;
    let mean = |f: &dyn Fn(&PlacedRun) -> f64| runs.iter().map(f).sum::<f64>() / n;
    ArmStats {
        time_to_heal_us: mean(&|r| r.first_commit_us.unwrap_or(u64::MAX) as f64),
        completed_total: mean(&|r| r.verdict.completed_total as f64),
        completed_after_heal: mean(&|r| r.verdict.completed_after_heal as f64),
        client_p99_us: mean(&|r| r.latency.map_or(f64::NAN, |l| l.p99_us as f64)),
        client_mean_us: mean(&|r| r.latency.map_or(f64::NAN, |l| l.mean_us)),
        passed: runs.iter().all(|r| r.verdict.passed()),
    }
}

fn stats_json(s: &ArmStats) -> Value {
    Value::Object(vec![
        ("time_to_heal_us".into(), Value::Number(s.time_to_heal_us)),
        ("completed_total".into(), Value::Number(s.completed_total)),
        ("completed_after_heal".into(), Value::Number(s.completed_after_heal)),
        ("client_p99_us".into(), Value::Number(s.client_p99_us)),
        ("client_mean_us".into(), Value::Number(s.client_mean_us)),
        ("passed".into(), Value::Bool(s.passed)),
    ])
}

fn main() {
    let filter = std::env::args().nth(1);
    let scenarios: Vec<&str> = match filter.as_deref() {
        None => SCENARIOS.to_vec(),
        Some(name) => {
            assert!(SCENARIOS.contains(&name), "unknown ablation scenario {name:?}");
            vec![name]
        }
    };

    // The controller that consumes the probe evidence. An empty knowledge
    // base is fine: leader planning reads only the ingested health
    // snapshots, never the OSINT plane. Its obs bundle collects the
    // `reconfig_decision` trace events and the demotion counter.
    let ctl_obs = Obs::unclocked();

    let mut rows = Vec::new();
    let mut report = Vec::new();
    let mut improved = 0usize;
    let mut all_passed = true;

    for scenario in &scenarios {
        let mut risk_only = Vec::new();
        let mut risk_health = Vec::new();
        let mut placements = Vec::new();

        for &seed in &SEEDS {
            // Arm A: risk-only placement — boot at view 0, faulty leader.
            risk_only.push(run_scenario_placed(scenario, seed, 0));

            // Arm B: probe, ingest, plan, then boot at the chosen view.
            let mut controller = Controller::new(
                ControllerConfig::new(study_oses()),
                DataManager::new(KnowledgeBase::new()),
            );
            controller.attach_obs(&ctl_obs);
            controller.set_health_policy(POLICY);
            controller.assume_leader(0); // the risk plane's blind placement
            for snapshot in probe_health(scenario, seed, &PROBE_AT) {
                controller.ingest_health(&snapshot);
            }
            let decision = controller.plan_leader();
            println!(
                "{scenario}/{seed}: {} -> leader {} (score {})",
                decision.reason, decision.leader, decision.leader_score
            );
            placements.push((seed, decision));
            let placed_view = u64::from(placements.last().map(|(_, d)| d.leader).unwrap_or(0));
            risk_health.push(run_scenario_placed(scenario, seed, placed_view));
        }

        let a = arm_stats(&risk_only);
        let b = arm_stats(&risk_health);
        all_passed &= a.passed && b.passed;
        let healed_faster = b.time_to_heal_us < a.time_to_heal_us;
        improved += usize::from(healed_faster);
        rows.push((
            (*scenario).to_string(),
            format!(
                "{:>8.0} -> {:>6.0}  ({:+.1}% ops)",
                a.time_to_heal_us,
                b.time_to_heal_us,
                (b.completed_total - a.completed_total) / a.completed_total * 100.0
            ),
        ));
        report.push((
            (*scenario).to_string(),
            Value::Object(vec![
                ("risk_only".into(), stats_json(&a)),
                ("risk_health".into(), stats_json(&b)),
                ("healed_faster".into(), Value::Bool(healed_faster)),
                (
                    "placements".into(),
                    Value::Array(
                        placements
                            .iter()
                            .map(|(seed, d)| {
                                Value::Object(vec![
                                    ("seed".into(), Value::Number(*seed as f64)),
                                    ("decision".into(), Value::String(d.reason.to_string())),
                                    ("leader".into(), Value::Number(f64::from(d.leader))),
                                    (
                                        "demoted".into(),
                                        d.demoted
                                            .map_or(Value::Null, |r| Value::Number(f64::from(r))),
                                    ),
                                    (
                                        "leader_score".into(),
                                        Value::Number(f64::from(d.leader_score)),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }

    print_table(
        "Health ablation: time-to-heal µs, risk-only -> risk+health",
        ("scenario", "heal time"),
        &rows,
    );

    let snapshot = ctl_obs.registry.snapshot();
    let demotions = snapshot
        .counters
        .iter()
        .find(|(name, _)| name == "controller_leader_demotions_total")
        .map_or(0, |&(_, v)| v);
    println!("\ncontroller_leader_demotions_total = {demotions}");

    let results = Value::Object(vec![
        ("seeds".into(), Value::Array(SEEDS.iter().map(|&s| Value::Number(s as f64)).collect())),
        ("probe_at_us".into(), {
            Value::Array(PROBE_AT.iter().map(|&t| Value::Number(t as f64)).collect())
        }),
        ("demotions".into(), Value::Number(demotions as f64)),
        ("scenarios".into(), Value::Object(report)),
    ]);
    let results_path =
        metrics_path("fig_health_ablation").with_file_name("fig_health_ablation_results.json");
    write_bench_json(results_path.to_str().expect("utf8 path"), &results)
        .expect("write results json");
    write_metrics_json("fig_health_ablation", &ctl_obs.registry).expect("write metrics json");
    println!("wrote {}", results_path.display());

    // The figure's claim, enforced: health-aware placement must heal
    // strictly faster in at least two of the three scenarios (always, when
    // running a single-scenario CI slice), and no arm may lose safety.
    let need = if scenarios.len() == 1 { 1 } else { 2 };
    if improved < need || !all_passed {
        eprintln!("ablation failed: improved={improved}/{need} all_passed={all_passed}");
        std::process::exit(1);
    }
}
