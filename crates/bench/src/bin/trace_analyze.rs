//! Offline causal-trace analyzer: merges the per-replica flight streams a
//! traced run dumps (`LAZARUS_TRACE_DIR` on `nemesis` / `fig9_reconfig`)
//! into one global DAG and renders per-slot commit timelines, critical
//! paths, anomaly counts, and a Perfetto-loadable Chrome trace.
//!
//! Usage: `trace_analyze <dir> [--slot N]`
//!
//! Reads every `replica_*.jsonl` under `<dir>`, validating each line
//! against the flight-event schema (exit 2 on the first violation). When
//! `queues.jsonl` is present its samples are validated too and rendered
//! into the Chrome trace as per-replica counter tracks. Writes
//! `<dir>/trace_summary.json` and `<dir>/trace_chrome.json`, prints a
//! per-slot phase table, and — with `--slot N` — the full critical path of
//! slot N. Exits 1 when the DAG has orphan events (a parent span missing
//! from every stream: ring eviction or a truncated capture).
//!
//! Output is a pure function of the input streams: rerunning over the same
//! directory yields byte-identical JSON.

use std::path::PathBuf;

use lazarus_bench::flight::{load_dir, load_queue_samples, merge, Analysis};
use lazarus_bench::print_table;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(dir) = args.next().map(PathBuf::from) else {
        eprintln!("usage: trace_analyze <dir> [--slot N]");
        std::process::exit(2);
    };
    let slot_filter: Option<u64> = match (args.next().as_deref(), args.next()) {
        (Some("--slot"), Some(n)) => match n.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("--slot expects a slot number, got {n:?}");
                std::process::exit(2);
            }
        },
        (Some(other), _) => {
            eprintln!("unknown argument {other:?}; usage: trace_analyze <dir> [--slot N]");
            std::process::exit(2);
        }
        (None, _) => None,
    };

    let streams = match load_dir(&dir) {
        Ok(streams) => streams,
        Err(err) => {
            eprintln!("trace_analyze: {err}");
            std::process::exit(2);
        }
    };
    let names: Vec<String> = streams.iter().map(|(name, _)| name.clone()).collect();
    let queues = match load_queue_samples(&dir) {
        Ok(queues) => queues,
        Err(err) => {
            eprintln!("trace_analyze: {err}");
            std::process::exit(2);
        }
    };
    let analysis = Analysis::build(merge(streams.into_iter().map(|(_, evs)| evs).collect()));

    println!(
        "=== trace_analyze — {} events from {} stream(s): {} ===",
        analysis.events.len(),
        names.len(),
        names.join(", ")
    );

    let rows: Vec<(String, String)> = analysis
        .committed_slots()
        .map(|(seq, slot)| {
            let phases = slot
                .phases()
                .iter()
                .map(|(name, dur)| {
                    let short = name.trim_end_matches("_us");
                    match dur {
                        Some(d) => format!("{short}={d}us"),
                        None => format!("{short}=?"),
                    }
                })
                .collect::<Vec<_>>()
                .join(" ");
            let path_len = analysis.critical_path(*seq).len();
            (format!("slot {seq}"), format!("{phases} | path {path_len} hops"))
        })
        .collect();
    print_table("per-slot phase breakdown (committed slots)", ("slot", "phases"), &rows);

    let a = &analysis.anomalies;
    println!(
        "\nanomalies: view_changes={} help_revotes={} cst_fetches={} drops={} delays={} dups={} storms={}",
        a.view_changes, a.help_revotes, a.cst_fetches, a.drops, a.delays, a.dups, a.storms.len()
    );

    if !queues.is_empty() {
        let nodes: std::collections::BTreeSet<u32> = queues.iter().map(|s| s.node).collect();
        let peak_inbox = queues.iter().map(|s| s.inbox).max().unwrap_or(0);
        let peak_pending = queues.iter().map(|s| s.pending).max().unwrap_or(0);
        let peak_gap = queues.iter().map(|s| s.decided_gap).max().unwrap_or(0);
        println!(
            "queues: {} samples across {} node(s) — peak inbox={} pending={} decided_gap={} (rendered as Perfetto counter tracks)",
            queues.len(),
            nodes.len(),
            peak_inbox,
            peak_pending,
            peak_gap
        );
    }

    if let Some(seq) = slot_filter {
        let path = analysis.critical_path(seq);
        if path.is_empty() {
            println!("\nslot {seq}: no commit recorded — no critical path");
        } else {
            println!("\ncritical path of slot {seq} (root → commit):");
            for ev in path {
                println!("  {}", ev.to_jsonl());
            }
        }
    }

    let summary_path = dir.join("trace_summary.json");
    let chrome_path = dir.join("trace_chrome.json");
    std::fs::write(&summary_path, analysis.summary_json().to_json())
        .expect("write trace_summary.json");
    std::fs::write(&chrome_path, analysis.chrome_trace_with_queues(&queues).to_json())
        .expect("write trace_chrome.json");
    println!("\nsummary: {} | chrome trace: {}", summary_path.display(), chrome_path.display());

    if !analysis.orphans.is_empty() {
        eprintln!(
            "\nORPHANS: {} event(s) reference a span missing from every stream, e.g. {}",
            analysis.orphans.len(),
            analysis.orphans[0].to_jsonl()
        );
        std::process::exit(1);
    }
}
