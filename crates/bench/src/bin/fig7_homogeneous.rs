//! Figure 7: BFT-SMaRt microbenchmark throughput for homogeneous
//! configurations — bare metal plus each of the 17 testbed OSes — under the
//! 0/0 and 1024/1024 workloads.
//!
//! Usage: `fig7_homogeneous [run_secs]` (default 4 virtual seconds per
//! configuration; the paper uses up to 1400 closed-loop clients).

use lazarus_bench::{fmt_kops, microbenchmark, print_table, write_metrics_json};
use lazarus_obs::Registry;
use lazarus_testbed::oscatalog::{table2, PerfProfile};

fn record(registry: &Registry, config: &str, t0: f64, t1: f64) {
    registry.gauge_with("fig7_ops_s", &[("config", config), ("payload", "0")]).set(t0);
    registry.gauge_with("fig7_ops_s", &[("config", config), ("payload", "1024")]).set(t1);
}

fn main() {
    let clients_small = 600;
    let clients_large = 300;
    let registry = Registry::new();

    println!("=== Figure 7 — homogeneous microbenchmark (0/0 and 1024/1024) ===");
    let mut rows = Vec::new();
    let bm = vec![PerfProfile::bare_metal(); 4];
    let t0 = microbenchmark(&bm, 0, clients_small);
    let t1 = microbenchmark(&bm, 1024, clients_large);
    rows.push(("BM".to_string(), format!("{:>8}  {:>8}", fmt_kops(t0), fmt_kops(t1))));
    record(&registry, "BM", t0, t1);
    let bm_small = t0;
    let bm_large = t1;

    for entry in table2() {
        let profiles = vec![entry.profile; 4];
        let t0 = microbenchmark(&profiles, 0, clients_small);
        let t1 = microbenchmark(&profiles, 1024, clients_large);
        record(&registry, &entry.os.short_id(), t0, t1);
        rows.push((
            entry.os.short_id(),
            format!(
                "{:>8}  {:>8}   ({:>3.0}% / {:>3.0}% of BM)",
                fmt_kops(t0),
                fmt_kops(t1),
                100.0 * t0 / bm_small,
                100.0 * t1 / bm_large
            ),
        ));
    }
    print_table("throughput (ops/s)", ("config", "     0/0  1024/1024"), &rows);
    println!(
        "\npaper shape: BM ≈ 60k/17k; Ubuntu/OpenSuse/Fedora ≈ 66%/75% of BM; \
         Debian/Windows/FreeBSD much slower on 0/0 but closer on 1024/1024; \
         single-core Solaris/OpenBSD ≲ 3k with both workloads."
    );
    match write_metrics_json("fig7_homogeneous", &registry) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write metrics: {e}"),
    }
}
