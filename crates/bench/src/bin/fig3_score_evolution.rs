//! Figure 3: score evolution over time for the paper's three example
//! vulnerabilities (CVE-2018-8303 NE, CVE-2018-8012 NPE, CVE-2016-7180 OP).

use lazarus_osint::date::Date;
use lazarus_osint::fixtures;
use lazarus_osint::model::Vulnerability;
use lazarus_risk::score::ScoreParams;

fn series(label: &str, v: &Vulnerability, from: Date, days: i32, step: i32) {
    let params = ScoreParams::paper();
    println!("\n--- {label}: {} (CVSS {}) ---", v.id, v.cvss.base_score());
    if let Some(d) = v.patches.iter().map(|p| p.released).min() {
        println!("    patch available {d}");
    }
    if let Some(d) = v.first_exploit_date() {
        println!("    exploit available {d}");
    }
    let mut day = from;
    while day <= from + days {
        println!("    {day}  score {:5.2}", params.score(v, day));
        day += step;
    }
}

fn main() {
    println!("=== Figure 3 — score evolution for three vulnerabilities ===");
    let registry = lazarus_obs::Registry::new();
    // (a) NE: published 2018-09-07, exploit 2018-09-24, never patched.
    let ne = fixtures::cve_2018_8303();
    series("(a) NE", &ne, Date::from_ymd(2018, 9, 7), 30, 3);
    // (b) NPE: published 2018-05-20, patch 05-27, exploit 05-30.
    let npe = fixtures::cve_2018_8012();
    series("(b) NPE", &npe, Date::from_ymd(2018, 5, 20), 30, 2);
    // (c) OP: published 2016-09-08, patch 09-19, decaying for a year.
    let op = fixtures::cve_2016_7180();
    series("(c) OP", &op, Date::from_ymd(2016, 9, 8), 380, 60);

    // The paper's annotated values.
    let params = ScoreParams::paper();
    println!("\nPaper annotations vs computed:");
    println!(
        "    CVE-2018-8303 at exploit day: paper ≈ 10.1 (8.1×1.25), computed {:.2}",
        params.score(&ne, Date::from_ymd(2018, 9, 24))
    );
    println!(
        "    CVE-2018-8012 peak (exploit out, pre-patch): paper 9.37, computed {:.2}",
        params.score(&npe, Date::from_ymd(2018, 5, 24))
    );
    println!(
        "    CVE-2018-8012 after patch: paper 4.6, computed {:.2}",
        params.score(&npe, Date::from_ymd(2018, 5, 27))
    );
    println!(
        "    CVE-2016-7180 a year after patch: paper 0.75-band, computed {:.2}",
        params.score(&op, Date::from_ymd(2017, 9, 19))
    );

    let annotations: [(&str, &Vulnerability, Date); 4] = [
        ("CVE-2018-8303@exploit", &ne, Date::from_ymd(2018, 9, 24)),
        ("CVE-2018-8012@peak", &npe, Date::from_ymd(2018, 5, 24)),
        ("CVE-2018-8012@patched", &npe, Date::from_ymd(2018, 5, 27)),
        ("CVE-2016-7180@1y", &op, Date::from_ymd(2017, 9, 19)),
    ];
    for (point, v, day) in annotations {
        registry.gauge_with("fig3_score", &[("point", point)]).set(params.score(v, day));
    }
    match lazarus_bench::write_metrics_json("fig3_score_evolution", &registry) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("failed to write metrics: {e}"),
    }
}
