//! Durable-storage + chunked-CST benchmark: state-transfer latency vs
//! state size, a designee-rotation resume with zero re-fetched chunks,
//! and journal recovery cost vs journal size, written to `BENCH_cst.json`
//! for regression tracking.
//!
//! Every number in the report is virtual (sim-time or the journal's
//! byte-derived replay model), so the JSON is byte-identical across runs
//! and at any `LAZARUS_THREADS` setting — ci diffs it directly.
//!
//! Usage: `bench_cst [out_path]` (default `BENCH_cst.json`).

use bytes::Bytes;
use lazarus_bench::write_bench_json;
use lazarus_bft::crypto::{AuthTag, Digest};
use lazarus_bft::log::Checkpoint;
use lazarus_bft::messages::{Batch, Request};
use lazarus_bft::service::BlobService;
use lazarus_bft::storage::{Journal, JournalConfig, Storage};
use lazarus_bft::types::{ClientId, Epoch, Membership, ReplicaId, SeqNo};
use lazarus_osint::json::Value;
use lazarus_testbed::cluster::{SimCluster, SimConfig};
use lazarus_testbed::faults::FaultPlan;
use lazarus_testbed::oscatalog::PerfProfile;
use lazarus_testbed::sim::{Micros, MS, SEC};

/// Chunk size every transfer below runs at (fine-grained so a multi-MB
/// blob becomes dozens of chunks).
const CHUNK: usize = 64 * 1024;

/// When the joiner powers on; it is up `boot` later.
const BOOT_AT: Micros = 350 * MS;

const JOINER: ReplicaId = ReplicaId(4);

/// Bare metal with boot compressed to 50 ms: these runs measure the
/// *transfer*, not the BIOS.
fn fast_boot() -> PerfProfile {
    PerfProfile { boot: 50 * MS, ..PerfProfile::bare_metal() }
}

struct TransferOutcome {
    /// Sim time the joiner finished installing the state, if it did.
    done_at: Option<Micros>,
    up_at: Micros,
    fetched: u64,
    rejected: u64,
    resumed: u64,
}

/// One joiner-transfer run: four donors seeded with a `blob`-byte service
/// state, a joiner booting empty at 350 ms, and (optionally) a power
/// pause of the joiner mid-transfer to force a designee rotation.
fn transfer_run(
    blob: usize,
    donor_profile: PerfProfile,
    pause: Option<(Micros, Micros)>,
) -> TransferOutcome {
    let membership = Membership::new(Epoch(0), (0..4).map(ReplicaId).collect());
    let cfg = SimConfig {
        cst_chunk_bytes: CHUNK,
        // Keep the genesis checkpoint stable for the whole run so an
        // interrupted transfer certifies the *same* manifest again and
        // resumes instead of starting over.
        checkpoint_period: 100_000,
        ..SimConfig::default()
    };
    let mut sim = SimCluster::new_observed(cfg);
    for r in 0..4 {
        sim.add_node(
            ReplicaId(r),
            donor_profile,
            membership.clone(),
            Box::new(BlobService::new(blob)),
        );
    }
    let up_at = BOOT_AT + fast_boot().boot;
    sim.boot_joiner_at(
        BOOT_AT,
        JOINER,
        fast_boot(),
        membership.reconfigured(Some(JOINER), None),
        Box::new(BlobService::new(0)),
    );
    if let Some((down, up)) = pause {
        sim.install_faults(FaultPlan::new(1).crash_restart(JOINER, down, up));
    }
    sim.add_clients(1, 4, membership, |_| Bytes::new());
    sim.run_until(4 * SEC);

    let snapshot = sim.obs().expect("observed cluster").registry.snapshot();
    let counter = |name: &str| {
        snapshot.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
    };
    TransferOutcome {
        done_at: sim.transfers.iter().find(|(_, r)| *r == JOINER).map(|(t, _)| *t),
        up_at,
        fetched: counter("bft_cst_chunks_fetched_total"),
        rejected: counter("bft_cst_chunks_rejected_total"),
        resumed: counter("bft_cst_chunks_resumed_total"),
    }
}

/// Chunks in the manifest of a `blob`-byte [`BlobService`] snapshot
/// (8-byte length header + payload).
fn chunk_count(blob: usize) -> u64 {
    ((blob + 8) as u64).div_ceil(CHUNK as u64)
}

/// Writes a journal with one `snapshot_bytes` stable checkpoint plus
/// `batches` decided 1 KiB batches, then reopens it and reports the
/// recovery replay: (virtual µs, bytes scanned, records applied).
fn journal_run(snapshot_bytes: usize, batches: u64) -> (u64, u64, u64) {
    let dir = std::env::temp_dir()
        .join(format!("lazarus_bench_cst_{}_{snapshot_bytes}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || JournalConfig { fsync: false, ..JournalConfig::new(&dir) };
    let (mut journal, _) = Journal::open(cfg()).expect("fresh journal opens");
    let snapshot = Bytes::from(vec![0xAB; snapshot_bytes]);
    let checkpoint = Checkpoint { seq: SeqNo(100), digest: Digest::of(&snapshot), snapshot };
    journal.commit_checkpoint(&checkpoint, &[]).expect("checkpoint persists");
    for i in 0..batches {
        let request = Request {
            client: ClientId(1),
            op: i,
            payload: Bytes::from(vec![0u8; 1024]),
            tag: AuthTag([0u8; 32]),
        };
        journal.append_batch(SeqNo(101 + i), &Batch::new(vec![request])).expect("append persists");
    }
    drop(journal);
    let (_journal, recovered) = Journal::open(cfg()).expect("journal reopens");
    let out = (recovered.virtual_recovery_us(), recovered.bytes_scanned, recovered.records);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_cst.json".to_string());
    let n = Value::Number;

    // Chunked transfer latency vs state size.
    println!("=== Chunked CST benchmark (chunk {} KiB) ===", CHUNK / 1024);
    let mut transfer_rows = Vec::new();
    for blob in [256 << 10, 1 << 20, 4 << 20] {
        let run = transfer_run(blob, fast_boot(), None);
        let done = run.done_at.expect("unfaulted transfer completes");
        let latency = done - run.up_at;
        println!(
            "state {:>4} KiB: {:>3} chunks, transfer {:>6} us",
            blob / 1024,
            run.fetched,
            latency
        );
        assert_eq!(run.fetched, chunk_count(blob), "every chunk fetched exactly once");
        transfer_rows.push(Value::Object(vec![
            ("state_bytes".into(), n(blob as f64)),
            ("chunks".into(), n(run.fetched as f64)),
            ("transfer_us".into(), n(latency as f64)),
        ]));
    }

    // Designee-rotation resume: slow donors spread the chunk replies over
    // hundreds of milliseconds, and the joiner is power-paused mid-stream.
    // On restart the CST watchdog rotates the designee, and the transfer
    // finishes by fetching only the still-missing chunks.
    let blob = 4 << 20;
    let slow_donor = PerfProfile { snapshot_mb_s: 10, cores: 1, ..fast_boot() };
    let run = transfer_run(blob, slow_donor, Some((500 * MS, 700 * MS)));
    let done = run.done_at.expect("interrupted transfer still completes");
    let zero_refetch = run.fetched == chunk_count(blob);
    println!(
        "resume: {} chunks kept across rotation, {} fetched total ({} in manifest), done t={} us",
        run.resumed,
        run.fetched,
        chunk_count(blob),
        done
    );
    assert!(run.resumed > 0, "the pause lands mid-transfer, so chunks carry over");
    assert!(zero_refetch, "completed chunks are never re-fetched");
    let resume = Value::Object(vec![
        ("state_bytes".into(), n(blob as f64)),
        ("chunks".into(), n(chunk_count(blob) as f64)),
        ("chunks_resumed".into(), n(run.resumed as f64)),
        ("chunks_fetched_total".into(), n(run.fetched as f64)),
        ("chunks_rejected".into(), n(run.rejected as f64)),
        ("zero_refetch".into(), Value::Bool(zero_refetch)),
        ("done_at_us".into(), n(done as f64)),
    ]);

    // Journal recovery replay vs journal size (virtual replay model).
    println!("\n=== Journal recovery benchmark ===");
    let mut recovery_rows = Vec::new();
    for snapshot_bytes in [64 << 10, 1 << 20, 4 << 20] {
        let (virtual_us, bytes_scanned, records) = journal_run(snapshot_bytes, 50);
        println!(
            "checkpoint {:>4} KiB + 50 batches: scan {:>8} B, {} records, recovery {:>6} virtual us",
            snapshot_bytes / 1024,
            bytes_scanned,
            records,
            virtual_us
        );
        recovery_rows.push(Value::Object(vec![
            ("checkpoint_bytes".into(), n(snapshot_bytes as f64)),
            ("bytes_scanned".into(), n(bytes_scanned as f64)),
            ("records".into(), n(records as f64)),
            ("recovery_virtual_us".into(), n(virtual_us as f64)),
        ]));
    }

    let report = Value::Object(vec![
        ("chunk_bytes".into(), n(CHUNK as f64)),
        ("transfer_latency".into(), Value::Array(transfer_rows)),
        ("resume_across_rotation".into(), resume),
        ("journal_recovery".into(), Value::Array(recovery_rows)),
    ]);
    match write_bench_json(&out_path, &report) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("failed to write {out_path}: {e}"),
    }
}
