//! The nemesis sweep: every named fault scenario × a seed range, verdicts
//! on safety (agreement, validity, monotone checkpoints) and liveness
//! (commits resume after the fault window closes).
//!
//! The sweep is a pure function of its seeds — rerunning it produces a
//! byte-identical `nemesis_results.json` and metrics snapshot, so any
//! failing `(scenario, seed)` pair is a complete, replayable bug report.
//! Exits non-zero when any run fails.
//!
//! Usage: `nemesis [n_seeds] [scenario]` (defaults: 8 seeds, all of
//! [`lazarus_testbed::nemesis::SCENARIOS`]).
//!
//! With `LAZARUS_TRACE_DIR=<dir>` set, additionally re-runs the first
//! scenario under seed 1 with causal flight recording enabled and dumps
//! per-replica `replica_<id>.jsonl` streams plus the analyzer outputs
//! (`trace_summary.json`, `trace_chrome.json`) into `<dir>` — ready for
//! `trace_analyze` or Perfetto. The dump is deterministic: same scenario
//! and seed → byte-identical files at any `LAZARUS_THREADS`.

use lazarus_bench::{metrics_path, write_bench_json, write_metrics_json};
use lazarus_testbed::nemesis::{run_matrix, run_scenario_traced, SCENARIOS};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_seeds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let filter = args.next();
    let scenarios: Vec<&str> = match &filter {
        Some(name) => {
            let name = name.as_str();
            assert!(
                SCENARIOS.contains(&name),
                "unknown scenario {name:?}; pick one of {SCENARIOS:?}"
            );
            vec![SCENARIOS[SCENARIOS.iter().position(|&s| s == name).expect("checked")]]
        }
        None => SCENARIOS.to_vec(),
    };
    let seeds: Vec<u64> = (1..=n_seeds).collect();

    println!("=== Nemesis sweep — {} scenario(s) x {} seed(s) ===", scenarios.len(), seeds.len());
    let report = run_matrix(&scenarios, &seeds);

    let rows: Vec<(String, String)> = scenarios
        .iter()
        .map(|scenario| {
            let runs: Vec<_> = report.verdicts.iter().filter(|v| v.scenario == *scenario).collect();
            let passed = runs.iter().filter(|v| v.passed()).count();
            let commits: u64 = runs.iter().map(|v| v.commits_checked).sum();
            (
                scenario.to_string(),
                format!("{passed}/{} passed, {commits} commits checked", runs.len()),
            )
        })
        .collect();
    lazarus_bench::print_table("nemesis verdicts", ("scenario", "result"), &rows);

    let results_path = metrics_path("nemesis").with_file_name("nemesis_results.json");
    write_bench_json(results_path.to_str().expect("utf-8 path"), &report.to_json())
        .expect("write nemesis_results.json");
    let metrics = write_metrics_json("nemesis", &report.registry).expect("write metrics");
    println!("\nresults: {} | metrics: {}", results_path.display(), metrics.display());

    if let Ok(trace_dir) = std::env::var("LAZARUS_TRACE_DIR") {
        let scenario = scenarios[0];
        let traced = run_scenario_traced(scenario, 1);
        let dir = std::path::PathBuf::from(trace_dir);
        let analysis =
            lazarus_bench::flight::dump_traced_with_queues(&dir, &traced.streams, &traced.queues)
                .expect("write trace dir");
        println!(
            "trace ({scenario}, seed 1): {} events, {} committed slots, {} orphans, {} queue samples → {}",
            analysis.events.len(),
            analysis.committed_slots().count(),
            analysis.orphans.len(),
            traced.queues.len(),
            dir.display()
        );
    }

    if !report.passed() {
        eprintln!("\nFAILURES:");
        for v in report.failures() {
            eprintln!(
                "  {}/seed {}: safety_ok={} liveness_ok={} violations={:?}",
                v.scenario, v.seed, v.safety_ok, v.liveness_ok, v.violations
            );
        }
        std::process::exit(1);
    }
    println!("all runs passed");
}
