//! Figure 2: the score-modifier ladder (age × patch × exploit).
//!
//! Reproduces the eight scenario modifiers the paper lists:
//! `NE 1.25 > N 1 > OE 0.94 > O 0.75 > NPE 0.625 > NP 0.5 > OPE 0.47 >
//! OP 0.37`.

use lazarus_bench::{print_table, write_metrics_json};
use lazarus_risk::score::Scenario;

fn main() {
    let registry = lazarus_obs::Registry::new();
    let ladder = [
        (Scenario::NE, "new + exploit, no patch (worst case)"),
        (Scenario::N, "new, no patch, no exploit"),
        (Scenario::OE, "old + exploit, no patch"),
        (Scenario::O, "old, no patch, no exploit"),
        (Scenario::NPE, "new + exploit + patch"),
        (Scenario::NP, "new + patch"),
        (Scenario::OPE, "old + exploit + patch"),
        (Scenario::OP, "old + patch (best case)"),
    ];
    let rows: Vec<(String, String)> = ladder
        .iter()
        .map(|(s, desc)| {
            let scenario = format!("{s:?}");
            registry
                .gauge_with("fig2_modifier", &[("scenario", scenario.as_str())])
                .set(s.ladder_modifier());
            (format!("{scenario} — {desc}"), format!("{:.4}", s.ladder_modifier()))
        })
        .collect();
    print_table(
        "Figure 2 — modifiers of vulnerability scores (paper: 1.25 1 0.94 0.75 0.625 0.5 0.47 0.37)",
        ("scenario", "modifier"),
        &rows,
    );
    match write_metrics_json("fig2_modifiers", &registry) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write metrics: {e}"),
    }
}
