//! One-shot benchmark suite: runs the repo's representative workloads —
//! echo hot path (two payload sizes), a pipelining-shaped client sweep, a
//! chunked CST join, and a lite reconfiguration — into one
//! schema-versioned `BENCH_suite.json` that `perf_report` diffs against a
//! committed baseline.
//!
//! Every metric in the JSON is virtual-time, so the file is byte-identical
//! across runs and at any `LAZARUS_THREADS` setting. Wall-clock cost goes
//! to stdout only.
//!
//! Usage: `bench_suite [--smoke] [out_path]` (default `BENCH_suite.json`;
//! `--smoke` shrinks client counts, horizons, and state sizes to the CI
//! preset the committed baseline uses).
//!
//! With `LAZARUS_PROFILE_DIR=<dir>` set, the suite also writes the
//! deterministic profiler outputs: `profile.json` (sim-time frames),
//! `profile.folded` (inferno-compatible collapsed stacks), and
//! `queues.jsonl` (per-workload queue samples, concatenated in workload
//! order).

use bytes::Bytes;
use lazarus_bench::perf::Suite;
use lazarus_bench::{
    measure_throughput_configured, measure_throughput_profiled, write_bench_json, ThroughputRun,
};
use lazarus_bft::batcher::BatchPolicy;
use lazarus_bft::service::{BlobService, CounterService};
use lazarus_bft::types::{Epoch, Membership, ReplicaId};
use lazarus_obs::{Profiler, QueueSample};
use lazarus_testbed::cluster::{SimCluster, SimConfig};
use lazarus_testbed::oscatalog::PerfProfile;
use lazarus_testbed::sim::{Micros, MS, SEC};

/// Suite knobs, scaled down by `--smoke`.
struct Preset {
    smoke: bool,
    echo_clients: usize,
    echo_secs: u64,
    sweep_clients: &'static [usize],
    cst_blob: usize,
}

const FULL: Preset = Preset {
    smoke: false,
    echo_clients: 32,
    echo_secs: 3,
    sweep_clients: &[4, 16, 64],
    cst_blob: 1 << 20,
};

const SMOKE: Preset = Preset {
    smoke: true,
    echo_clients: 8,
    echo_secs: 2,
    sweep_clients: &[4, 16],
    cst_blob: 256 << 10,
};

/// Bare metal with boot compressed to 50 ms — join workloads measure the
/// transfer and the reconfiguration, not the BIOS.
fn fast_boot() -> PerfProfile {
    PerfProfile { boot: 50 * MS, ..PerfProfile::bare_metal() }
}

/// Folds one throughput run's client-visible numbers into the suite.
fn push_throughput(suite: &mut Suite, workload: &str, run: &ThroughputRun) {
    suite.push(workload, "throughput_ops_s", run.throughput_ops_s);
    if let Some(s) = run.summary {
        suite.push(workload, "latency_p50_us", s.p50_us as f64);
        suite.push(workload, "latency_p99_us", s.p99_us as f64);
        suite.push(workload, "latency_p999_us", s.p999_us as f64);
        suite.push(workload, "latency_max_us", s.max_us as f64);
        suite.push(workload, "completed_ops", s.count as f64);
    }
}

/// Folds a run's queue-sample peaks into the suite (informational — the
/// backpressure envelope of the workload).
fn push_queue_peaks(suite: &mut Suite, workload: &str, samples: &[QueueSample]) {
    let peak = |f: fn(&QueueSample) -> u64| samples.iter().map(f).max().unwrap_or(0) as f64;
    suite.push(workload, "peak_inbox", peak(|s| s.inbox));
    suite.push(workload, "peak_pending", peak(|s| s.pending));
    suite.push(workload, "peak_decided_gap", peak(|s| s.decided_gap));
    suite.push(workload, "peak_batch_fill", peak(|s| s.batch_fill));
}

/// The §7.1-shaped echo hot path at one payload size.
fn echo_workload(
    preset: &Preset,
    payload: usize,
    workload: &str,
    profiler: &Profiler,
    suite: &mut Suite,
    queues: &mut Vec<QueueSample>,
) {
    let body = Bytes::from(vec![0u8; payload]);
    let run = measure_throughput_profiled(
        &[PerfProfile::bare_metal(); 4],
        || Box::new(CounterService::new()),
        move |_| body.clone(),
        preset.echo_clients,
        preset.echo_secs,
        Some((profiler, workload)),
    );
    println!(
        "{workload}: {:.0} ops/s ({} clients, {} B payload)",
        run.throughput_ops_s, preset.echo_clients, payload
    );
    push_throughput(suite, workload, &run);
    push_queue_peaks(suite, workload, &run.queues);
    queues.extend_from_slice(&run.queues);
}

/// Pipelining-shaped sweep: throughput vs closed-loop client population,
/// with the queue-depth envelope at each level.
fn sweep_workload(
    preset: &Preset,
    profiler: &Profiler,
    suite: &mut Suite,
    queues: &mut Vec<QueueSample>,
) {
    for &clients in preset.sweep_clients {
        let root = format!("pipeline_c{clients}");
        let run = measure_throughput_profiled(
            &[PerfProfile::bare_metal(); 4],
            || Box::new(CounterService::new()),
            |_| Bytes::new(),
            clients,
            preset.echo_secs,
            Some((profiler, &root)),
        );
        println!("pipeline c={clients}: {:.0} ops/s", run.throughput_ops_s);
        suite.push("pipeline", &format!("c{clients}_ops_s"), run.throughput_ops_s);
        let peak_inbox = run.queues.iter().map(|s| s.inbox).max().unwrap_or(0);
        let peak_pending = run.queues.iter().map(|s| s.pending).max().unwrap_or(0);
        suite.push("pipeline", &format!("c{clients}_peak_inbox"), peak_inbox as f64);
        suite.push("pipeline", &format!("c{clients}_peak_pending"), peak_pending as f64);
        queues.extend_from_slice(&run.queues);
    }
}

/// Consensus-window sweep in the batch-capped regime (`max_batch` well
/// below the client population), adaptive batching: the throughput of
/// each window depth lands in the baseline so `perf_report` catches a
/// pipelining regression, not just a hot-path one.
fn window_workload(preset: &Preset, suite: &mut Suite) {
    let clients = if preset.smoke { 24 } else { 64 };
    let max_batch = if preset.smoke { 8 } else { 16 };
    for window in [1u64, 2, 4] {
        let cfg = SimConfig {
            window,
            batch_policy: BatchPolicy::Adaptive,
            max_batch,
            ..SimConfig::default()
        };
        let run = measure_throughput_configured(
            cfg,
            &[PerfProfile::bare_metal(); 4],
            || Box::new(CounterService::new()),
            |_| Bytes::new(),
            clients,
            preset.echo_secs,
        );
        println!("pipeline w={window}: {:.0} ops/s", run.throughput_ops_s);
        suite.push("pipeline", &format!("w{window}_ops_s"), run.throughput_ops_s);
    }
}

/// Chunked CST join: four seeded donors, an empty joiner booting at
/// 350 ms; reports transfer latency and chunk count.
fn cst_workload(
    preset: &Preset,
    profiler: &Profiler,
    suite: &mut Suite,
    queues: &mut Vec<QueueSample>,
) {
    const CHUNK: usize = 64 * 1024;
    const BOOT_AT: Micros = 350 * MS;
    let joiner = ReplicaId(4);
    let membership = Membership::new(Epoch(0), (0..4).map(ReplicaId).collect());
    let cfg =
        SimConfig { cst_chunk_bytes: CHUNK, checkpoint_period: 100_000, ..SimConfig::default() };
    let mut sim = SimCluster::new_observed(cfg);
    sim.attach_profiler(profiler.clone(), "cst");
    for r in 0..4 {
        sim.add_node(
            ReplicaId(r),
            fast_boot(),
            membership.clone(),
            Box::new(BlobService::new(preset.cst_blob)),
        );
    }
    let up_at = BOOT_AT + fast_boot().boot;
    sim.boot_joiner_at(
        BOOT_AT,
        joiner,
        fast_boot(),
        membership.reconfigured(Some(joiner), None),
        Box::new(BlobService::new(0)),
    );
    sim.add_clients(1, 4, membership, |_| Bytes::new());
    sim.run_until(3 * SEC);

    let done = sim
        .transfers
        .iter()
        .find(|(_, r)| *r == joiner)
        .map(|(t, _)| *t)
        .expect("unfaulted transfer completes");
    let snapshot = sim.obs().expect("observed cluster").registry.snapshot();
    let fetched = snapshot
        .counters
        .iter()
        .find(|(n, _)| n == "bft_cst_chunks_fetched_total")
        .map_or(0, |(_, v)| *v);
    println!(
        "cst: {} KiB state, {} chunks, transfer {} us",
        preset.cst_blob / 1024,
        fetched,
        done - up_at
    );
    suite.push("cst", "transfer_us", (done - up_at) as f64);
    suite.push("cst", "chunks", fetched as f64);
    push_queue_peaks(suite, "cst", sim.queue_samples());
    queues.extend_from_slice(sim.queue_samples());
}

/// Lite reconfiguration (fig9-shaped): a joiner is added by epoch change
/// mid-run; reports join timing and the post-join throughput.
fn reconfig_workload(profiler: &Profiler, suite: &mut Suite, queues: &mut Vec<QueueSample>) {
    let membership = Membership::new(Epoch(0), (0..4).map(ReplicaId).collect());
    let cfg = SimConfig { checkpoint_period: 100_000, ..SimConfig::default() };
    let mut sim = SimCluster::new_observed(cfg);
    sim.attach_profiler(profiler.clone(), "reconfig");
    for r in 0..4 {
        sim.add_node(
            ReplicaId(r),
            fast_boot(),
            membership.clone(),
            Box::new(BlobService::new(64 << 10)),
        );
    }
    let boot_at = SEC;
    let up_at = boot_at + fast_boot().boot;
    sim.boot_joiner_at(
        boot_at,
        ReplicaId(4),
        fast_boot(),
        membership.reconfigured(Some(ReplicaId(4)), None),
        Box::new(BlobService::new(0)),
    );
    sim.inject_reconfig_at(up_at + 200 * MS, Epoch(0), Some(ReplicaId(4)), None);
    sim.add_clients(1, 4, membership, |_| Bytes::new());
    let horizon = 4 * SEC;
    sim.run_until(horizon);

    let joined_at = sim
        .epoch_changes
        .iter()
        .find(|(_, m)| m.epoch == Epoch(1))
        .map(|(t, _)| *t)
        .expect("reconfiguration lands");
    let post_ops_s = sim.metrics.throughput(joined_at, horizon);
    println!("reconfig: joined t={} us, post-join {:.0} ops/s", joined_at, post_ops_s);
    suite.push("reconfig", "joined_at_us", joined_at as f64);
    suite.push("reconfig", "post_join_ops_s", post_ops_s);
    suite.push("reconfig", "completed_ops", sim.metrics.completed() as f64);
    push_queue_peaks(suite, "reconfig", sim.queue_samples());
    queues.extend_from_slice(sim.queue_samples());
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_suite.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other if !other.starts_with('-') => out_path = other.to_string(),
            other => {
                eprintln!("unknown argument {other:?}; usage: bench_suite [--smoke] [out_path]");
                std::process::exit(2);
            }
        }
    }
    let preset = if smoke { SMOKE } else { FULL };
    println!("=== bench_suite ({}) ===", if preset.smoke { "smoke preset" } else { "full preset" });

    let wall_start = std::time::Instant::now();
    let profiler = Profiler::unclocked();
    let mut suite = Suite::new();
    suite.push("meta", "smoke", if preset.smoke { 1.0 } else { 0.0 });
    let mut queues: Vec<QueueSample> = Vec::new();

    echo_workload(&preset, 0, "echo_0b", &profiler, &mut suite, &mut queues);
    echo_workload(&preset, 1024, "echo_1k", &profiler, &mut suite, &mut queues);
    sweep_workload(&preset, &profiler, &mut suite, &mut queues);
    window_workload(&preset, &mut suite);
    cst_workload(&preset, &profiler, &mut suite, &mut queues);
    reconfig_workload(&profiler, &mut suite, &mut queues);

    let profile = profiler.snapshot();
    println!(
        "\nprofiled {} frames, {} sim-us total, wall {:.1}s",
        profile.frames.len(),
        profile.total_sim_us(),
        wall_start.elapsed().as_secs_f64()
    );

    if let Ok(dir) = std::env::var("LAZARUS_PROFILE_DIR") {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create profile dir");
        std::fs::write(dir.join("profile.json"), profile.deterministic_json())
            .expect("write profile.json");
        std::fs::write(dir.join("profile.folded"), profile.folded()).expect("write profile.folded");
        let mut body = String::new();
        for sample in &queues {
            body.push_str(&sample.to_jsonl());
            body.push('\n');
        }
        std::fs::write(dir.join("queues.jsonl"), body).expect("write queues.jsonl");
        println!("profile outputs: {}", dir.display());
    }

    match write_bench_json(&out_path, &suite.to_json()) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
