//! Table 2: the 17 testbed OS versions and their VM configurations.

use lazarus_bench::{print_table, write_metrics_json};
use lazarus_testbed::oscatalog::table2;

fn main() {
    let registry = lazarus_obs::Registry::new();
    let rows: Vec<(String, String)> = table2()
        .into_iter()
        .map(|e| {
            let id = e.os.short_id();
            registry.gauge_with("table2_cores", &[("os", id.as_str())]).set(e.profile.cores as f64);
            registry
                .gauge_with("table2_memory_gb", &[("os", id.as_str())])
                .set(e.profile.memory_gb as f64);
            (
                format!("{id} ({})", e.os),
                format!("{} cores, {} GB", e.profile.cores, e.profile.memory_gb),
            )
        })
        .collect();
    registry.gauge("table2_oses").set(rows.len() as f64);
    print_table(
        "Table 2 — OSes used in the experiments and their VM configurations",
        ("ID (name)", "VM resources"),
        &rows,
    );
    match write_metrics_json("table2_oses", &registry) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write metrics: {e}"),
    }
}
