//! Table 2: the 17 testbed OS versions and their VM configurations.

use lazarus_bench::print_table;
use lazarus_testbed::oscatalog::table2;

fn main() {
    let rows: Vec<(String, String)> = table2()
        .into_iter()
        .map(|e| {
            (
                format!("{} ({})", e.os.short_id(), e.os),
                format!("{} cores, {} GB", e.profile.cores, e.profile.memory_gb),
            )
        })
        .collect();
    print_table(
        "Table 2 — OSes used in the experiments and their VM configurations",
        ("ID (name)", "VM resources"),
        &rows,
    );
}
