//! Offline analyzer for causal flight streams.
//!
//! Consumes the per-replica JSONL streams a traced run dumps (one
//! `replica_<id>.jsonl` per node, schema fixed by
//! [`FlightEvent::to_jsonl`]), merges them into one global causal DAG, and
//! derives what a single node's log cannot show: per-slot commit timelines
//! with phase breakdowns (propose → write → accept → commit → exec), the
//! critical path of each slot, and anomaly flags (view changes, help
//! re-votes, CST fetches, message storms). Renders a deterministic summary
//! ([`Analysis::summary_json`]) and a Chrome trace-event file
//! ([`Analysis::chrome_trace`]) loadable in Perfetto / `chrome://tracing`.
//!
//! Everything here is a pure function of the input streams: maps are
//! B-trees, merge order is total (`(at_us, node, span_id)`), and floats
//! only ever hold exact integers (< 2⁵³ by the ID scheme), so two runs
//! over byte-identical streams render byte-identical output.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::path::Path;

use lazarus_bft::obs::MESSAGE_KINDS;
use lazarus_obs::causal::{slot_trace_id, EventKind, FlightEvent, NO_SPAN};
use lazarus_obs::profile::QueueSample;
use lazarus_osint::json::{parse, Value};

/// A node records more than this many `send` events inside one
/// [`STORM_WINDOW_US`] bucket → flagged as a message storm (retransmission
/// or view-change amplification gone wrong).
pub const STORM_THRESHOLD: usize = 2000;
/// Bucket width for storm detection (µs).
pub const STORM_WINDOW_US: u64 = 100_000;

/// A schema violation in a JSONL stream: file, 1-based line, and what was
/// wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// Offending file (or stream label).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What the validator rejected.
    pub what: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.what)
    }
}

impl std::error::Error for SchemaError {}

/// Interns a `kind` string to the `&'static str` vocabulary the recorder
/// uses: a message label or `"-"` for protocol events.
fn intern_kind(kind: &str) -> Option<&'static str> {
    if kind == "-" {
        return Some("-");
    }
    MESSAGE_KINDS.iter().copied().find(|k| *k == kind)
}

fn field_u64(obj: &Value, key: &str) -> Result<u64, String> {
    let v = obj.get(key).ok_or_else(|| format!("missing key {key:?}"))?;
    match v {
        Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 9.007_199_254_740_992e15 => {
            Ok(*n as u64)
        }
        other => Err(format!("key {key:?} is not a u64: {}", other.to_json())),
    }
}

fn field_opt_u64(obj: &Value, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Err(format!("missing key {key:?}")),
        Some(Value::Null) => Ok(None),
        Some(_) => field_u64(obj, key).map(Some),
    }
}

/// Parses and validates one JSONL line against the flight-event schema:
/// well-formed JSON, every field present with the right type, `event` in
/// the closed [`EventKind`] vocabulary, `kind` a known message label (or
/// `"-"`), and IDs inside the f64-exact range.
pub fn parse_line(line: &str) -> Result<FlightEvent, String> {
    let doc = parse(line).map_err(|e| format!("not JSON: {e}"))?;
    let event_name = doc.get("event").ok_or("missing key \"event\"")?;
    let event_name = event_name.as_str("event").map_err(|e| e.to_string())?;
    let event =
        EventKind::parse(event_name).ok_or_else(|| format!("unknown event kind {event_name:?}"))?;
    let kind_str = doc.get("kind").ok_or("missing key \"kind\"")?;
    let kind_str = kind_str.as_str("kind").map_err(|e| e.to_string())?;
    let kind = intern_kind(kind_str).ok_or_else(|| format!("unknown message kind {kind_str:?}"))?;
    let node = field_u64(&doc, "node")?;
    let node = u32::try_from(node).map_err(|_| format!("node {node} exceeds u32"))?;
    let peer = match field_opt_u64(&doc, "peer")? {
        None => None,
        Some(p) => Some(u32::try_from(p).map_err(|_| format!("peer {p} exceeds u32"))?),
    };
    let ev = FlightEvent {
        at_us: field_u64(&doc, "at_us")?,
        node,
        event,
        kind,
        seq: field_opt_u64(&doc, "seq")?,
        view: field_opt_u64(&doc, "view")?,
        peer,
        trace_id: field_u64(&doc, "trace_id")?,
        parent_id: field_u64(&doc, "parent_id")?,
        span_id: field_u64(&doc, "span_id")?,
        extra: field_u64(&doc, "extra")?,
    };
    if ev.span_id == NO_SPAN {
        return Err("span_id 0 is reserved".into());
    }
    Ok(ev)
}

/// Parses and validates one `queues.jsonl` line against the
/// [`QueueSample`] schema (the exact inverse of [`QueueSample::to_jsonl`]).
pub fn parse_queue_line(line: &str) -> Result<QueueSample, String> {
    let doc = parse(line).map_err(|e| format!("not JSON: {e}"))?;
    let node = field_u64(&doc, "node")?;
    let node = u32::try_from(node).map_err(|_| format!("node {node} exceeds u32"))?;
    Ok(QueueSample {
        at_us: field_u64(&doc, "at_us")?,
        node,
        inbox: field_u64(&doc, "inbox")?,
        pending: field_u64(&doc, "pending")?,
        decided_gap: field_u64(&doc, "decided_gap")?,
        batch_fill: field_u64(&doc, "batch_fill")?,
    })
}

/// Loads `queues.jsonl` under `dir`, validating each line. A missing file
/// is not an error — queue sampling is optional — and yields an empty vec.
///
/// # Errors
///
/// [`SchemaError`] on the first invalid line; an opaque message when the
/// file exists but is unreadable.
pub fn load_queue_samples(dir: &Path) -> Result<Vec<QueueSample>, Box<dyn std::error::Error>> {
    let path = dir.join("queues.jsonl");
    if !path.exists() {
        return Ok(Vec::new());
    }
    let body = std::fs::read_to_string(&path)?;
    let mut samples = Vec::new();
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let sample = parse_queue_line(line).map_err(|what| SchemaError {
            file: "queues.jsonl".to_string(),
            line: i + 1,
            what,
        })?;
        samples.push(sample);
    }
    Ok(samples)
}

/// A named per-replica event stream, as loaded from `replica_<id>.jsonl`.
pub type NamedStream = (String, Vec<FlightEvent>);

/// Loads every `replica_*.jsonl` under `dir`, validating each line.
/// Returns streams sorted by file name (node order).
///
/// # Errors
///
/// [`SchemaError`] on the first invalid line; an opaque message when the
/// directory is unreadable or holds no streams.
pub fn load_dir(dir: &Path) -> Result<Vec<NamedStream>, Box<dyn std::error::Error>> {
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("replica_") && n.ends_with(".jsonl"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no replica_*.jsonl streams under {}", dir.display()).into());
    }
    let mut streams = Vec::new();
    for path in files {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string();
        let body = std::fs::read_to_string(&path)?;
        let mut events = Vec::new();
        for (i, line) in body.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let ev = parse_line(line).map_err(|what| SchemaError {
                file: name.clone(),
                line: i + 1,
                what,
            })?;
            events.push(ev);
        }
        streams.push((name, events));
    }
    Ok(streams)
}

/// Dumps a traced run into `dir` (created if missing): one
/// `replica_<id>.jsonl` per stream plus the analyzer outputs
/// `trace_summary.json` and `trace_chrome.json`. Returns the analysis so
/// callers can report on it. This is what `LAZARUS_TRACE_DIR` modes call.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn dump_traced(dir: &Path, streams: &[(u32, Vec<FlightEvent>)]) -> std::io::Result<Analysis> {
    dump_traced_inner(dir, streams, None)
}

/// As [`dump_traced`], but also writes the run's queue samples as
/// `queues.jsonl` and renders them into `trace_chrome.json` as Perfetto
/// counter tracks alongside the span slices.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn dump_traced_with_queues(
    dir: &Path,
    streams: &[(u32, Vec<FlightEvent>)],
    queues: &[QueueSample],
) -> std::io::Result<Analysis> {
    dump_traced_inner(dir, streams, Some(queues))
}

fn dump_traced_inner(
    dir: &Path,
    streams: &[(u32, Vec<FlightEvent>)],
    queues: Option<&[QueueSample]>,
) -> std::io::Result<Analysis> {
    std::fs::create_dir_all(dir)?;
    for (node, events) in streams {
        let mut body = String::new();
        for ev in events {
            body.push_str(&ev.to_jsonl());
            body.push('\n');
        }
        std::fs::write(dir.join(format!("replica_{node}.jsonl")), body)?;
    }
    if let Some(queues) = queues {
        let mut body = String::new();
        for sample in queues {
            body.push_str(&sample.to_jsonl());
            body.push('\n');
        }
        std::fs::write(dir.join("queues.jsonl"), body)?;
    }
    let analysis = Analysis::build(merge(streams.iter().map(|(_, evs)| evs.clone()).collect()));
    std::fs::write(dir.join("trace_summary.json"), analysis.summary_json().to_json())?;
    let chrome = analysis.chrome_trace_with_queues(queues.unwrap_or(&[]));
    std::fs::write(dir.join("trace_chrome.json"), chrome.to_json())?;
    Ok(analysis)
}

/// Merges per-replica streams into one timeline under the total order
/// `(at_us, node, span_id)` — deterministic for any input permutation.
pub fn merge(streams: Vec<Vec<FlightEvent>>) -> Vec<FlightEvent> {
    let mut all: Vec<FlightEvent> = streams.into_iter().flatten().collect();
    all.sort_by_key(|e| (e.at_us, e.node, e.span_id));
    all
}

/// One slot's cross-replica commit timeline: the earliest sighting of each
/// protocol phase anywhere in the cluster.
#[derive(Debug, Clone, Default)]
pub struct SlotTimeline {
    /// First PROPOSE record (leader side).
    pub propose_at: Option<u64>,
    /// First WRITE broadcast.
    pub write_at: Option<u64>,
    /// First ACCEPT broadcast.
    pub accept_at: Option<u64>,
    /// First local decide.
    pub commit_at: Option<u64>,
    /// First execution.
    pub exec_at: Option<u64>,
    /// Nodes that recorded a commit for the slot.
    pub committed_on: BTreeSet<u32>,
    /// Span of the earliest commit (critical-path endpoint).
    pub first_commit_span: Option<u64>,
}

impl SlotTimeline {
    /// Phase durations in µs: propose→write, write→accept, accept→commit,
    /// commit→exec. `None` when either endpoint is missing.
    pub fn phases(&self) -> [(&'static str, Option<u64>); 4] {
        let d = |a: Option<u64>, b: Option<u64>| match (a, b) {
            (Some(a), Some(b)) => Some(b.saturating_sub(a)),
            _ => None,
        };
        [
            ("propose_to_write_us", d(self.propose_at, self.write_at)),
            ("write_to_accept_us", d(self.write_at, self.accept_at)),
            ("accept_to_commit_us", d(self.accept_at, self.commit_at)),
            ("commit_to_exec_us", d(self.commit_at, self.exec_at)),
        ]
    }
}

/// Anomaly counters surfaced by the analyzer.
#[derive(Debug, Clone, Default)]
pub struct Anomalies {
    /// `view_change` events (per-node installs summed).
    pub view_changes: u64,
    /// `help_revote` events.
    pub help_revotes: u64,
    /// `cst_start` events.
    pub cst_fetches: u64,
    /// Transport drops (fault-plan).
    pub drops: u64,
    /// Transport delays.
    pub delays: u64,
    /// Transport duplicates.
    pub dups: u64,
    /// `(node, window_start_us, sends)` buckets over [`STORM_THRESHOLD`].
    pub storms: Vec<(u32, u64, usize)>,
}

/// The global causal DAG plus everything derived from it.
#[derive(Debug)]
pub struct Analysis {
    /// Merged timeline (total order).
    pub events: Vec<FlightEvent>,
    /// Nodes that contributed events.
    pub nodes: BTreeSet<u32>,
    /// Per-slot timelines, slot-ordered.
    pub slots: BTreeMap<u64, SlotTimeline>,
    /// Anomaly counters.
    pub anomalies: Anomalies,
    /// Events whose `parent_id` matches no recorded span (ring eviction or
    /// stream truncation). An intact capture has none.
    pub orphans: Vec<FlightEvent>,
    span_index: HashMap<u64, usize>,
}

impl Analysis {
    /// Builds the DAG and derives slots, anomalies, and orphans.
    #[must_use]
    pub fn build(events: Vec<FlightEvent>) -> Analysis {
        let mut span_index: HashMap<u64, usize> = HashMap::new();
        for (i, ev) in events.iter().enumerate() {
            span_index.entry(ev.span_id).or_insert(i);
        }
        let spans: HashSet<u64> = span_index.keys().copied().collect();
        let mut nodes = BTreeSet::new();
        let mut slots: BTreeMap<u64, SlotTimeline> = BTreeMap::new();
        let mut anomalies = Anomalies::default();
        let mut orphans = Vec::new();
        let mut send_buckets: BTreeMap<(u32, u64), usize> = BTreeMap::new();
        for ev in &events {
            nodes.insert(ev.node);
            if ev.parent_id != NO_SPAN && !spans.contains(&ev.parent_id) {
                orphans.push(ev.clone());
            }
            match ev.event {
                EventKind::ViewChange => anomalies.view_changes += 1,
                EventKind::HelpRevote => anomalies.help_revotes += 1,
                EventKind::CstStart => anomalies.cst_fetches += 1,
                EventKind::Drop => anomalies.drops += 1,
                EventKind::Delay => anomalies.delays += 1,
                EventKind::Dup => anomalies.dups += 1,
                EventKind::Send => {
                    *send_buckets.entry((ev.node, ev.at_us / STORM_WINDOW_US)).or_insert(0) += 1;
                }
                _ => {}
            }
            let Some(seq) = ev.seq else { continue };
            let slot = slots.entry(seq).or_default();
            let first = |cell: &mut Option<u64>, at: u64| {
                if cell.is_none_or(|prev| at < prev) {
                    *cell = Some(at);
                }
            };
            match ev.event {
                EventKind::Propose => first(&mut slot.propose_at, ev.at_us),
                EventKind::Write => first(&mut slot.write_at, ev.at_us),
                EventKind::Accept => first(&mut slot.accept_at, ev.at_us),
                EventKind::Commit => {
                    if slot.commit_at.is_none_or(|prev| ev.at_us < prev) {
                        slot.commit_at = Some(ev.at_us);
                        slot.first_commit_span = Some(ev.span_id);
                    }
                    slot.committed_on.insert(ev.node);
                }
                EventKind::Exec => first(&mut slot.exec_at, ev.at_us),
                _ => {}
            }
        }
        for ((node, bucket), sends) in send_buckets {
            if sends > STORM_THRESHOLD {
                anomalies.storms.push((node, bucket * STORM_WINDOW_US, sends));
            }
        }
        Analysis { events, nodes, slots, anomalies, orphans, span_index }
    }

    /// Slots that committed somewhere.
    pub fn committed_slots(&self) -> impl Iterator<Item = (&u64, &SlotTimeline)> {
        self.slots.iter().filter(|(_, s)| !s.committed_on.is_empty())
    }

    /// The event recording `span_id`, if present.
    #[must_use]
    pub fn by_span(&self, span_id: u64) -> Option<&FlightEvent> {
        self.span_index.get(&span_id).map(|&i| &self.events[i])
    }

    /// The critical path of `seq`: parent-edge walk from the slot's
    /// earliest commit back through the slot's own trace, returned
    /// root-first. The walk stops at the trace boundary — with leader
    /// pipelining, slot `n`'s propose is sent while handling slot `n-1`
    /// traffic, and following that chain would drag in the leader's
    /// entire history — but keeps one hop past it when that hop is a
    /// genuine causal root (e.g. the client request that seeded the
    /// batch). Empty when the slot never committed.
    #[must_use]
    pub fn critical_path(&self, seq: u64) -> Vec<&FlightEvent> {
        let Some(slot) = self.slots.get(&seq) else { return Vec::new() };
        let Some(mut span) = slot.first_commit_span else { return Vec::new() };
        let trace = slot_trace_id(seq);
        let mut path = Vec::new();
        let mut seen = HashSet::new();
        while let Some(ev) = self.by_span(span) {
            if !seen.insert(span) {
                break; // defensive: a cycle would mean corrupted streams
            }
            if ev.trace_id != trace && (ev.parent_id != NO_SPAN || path.is_empty()) {
                break;
            }
            path.push(ev);
            if ev.parent_id == NO_SPAN {
                break;
            }
            span = ev.parent_id;
        }
        path.reverse();
        path
    }

    /// The deterministic analyzer summary (insertion-ordered JSON).
    #[must_use]
    pub fn summary_json(&self) -> Value {
        let n = |v: u64| Value::Number(v as f64);
        let opt = |v: Option<u64>| v.map_or(Value::Null, |x| Value::Number(x as f64));
        let slots: Vec<Value> = self
            .slots
            .iter()
            .map(|(seq, slot)| {
                let path = self.critical_path(*seq);
                let mut obj = vec![
                    ("seq".into(), n(*seq)),
                    ("committed".into(), Value::Bool(!slot.committed_on.is_empty())),
                    (
                        "committed_on".into(),
                        Value::Array(
                            slot.committed_on.iter().map(|id| n(u64::from(*id))).collect(),
                        ),
                    ),
                    ("propose_at_us".into(), opt(slot.propose_at)),
                    ("write_at_us".into(), opt(slot.write_at)),
                    ("accept_at_us".into(), opt(slot.accept_at)),
                    ("commit_at_us".into(), opt(slot.commit_at)),
                    ("exec_at_us".into(), opt(slot.exec_at)),
                ];
                for (name, dur) in slot.phases() {
                    obj.push((name.into(), opt(dur)));
                }
                obj.push(("critical_path_len".into(), n(path.len() as u64)));
                obj.push((
                    "critical_path".into(),
                    Value::Array(path.iter().map(|e| n(e.span_id)).collect()),
                ));
                Value::Object(obj)
            })
            .collect();
        let committed = self.committed_slots().count() as u64;
        Value::Object(vec![
            ("events_total".into(), n(self.events.len() as u64)),
            ("nodes".into(), Value::Array(self.nodes.iter().map(|id| n(u64::from(*id))).collect())),
            ("slots_seen".into(), n(self.slots.len() as u64)),
            ("slots_committed".into(), n(committed)),
            ("orphans".into(), n(self.orphans.len() as u64)),
            (
                "anomalies".into(),
                Value::Object(vec![
                    ("view_changes".into(), n(self.anomalies.view_changes)),
                    ("help_revotes".into(), n(self.anomalies.help_revotes)),
                    ("cst_fetches".into(), n(self.anomalies.cst_fetches)),
                    ("drops".into(), n(self.anomalies.drops)),
                    ("delays".into(), n(self.anomalies.delays)),
                    ("dups".into(), n(self.anomalies.dups)),
                    (
                        "storms".into(),
                        Value::Array(
                            self.anomalies
                                .storms
                                .iter()
                                .map(|(node, at, sends)| {
                                    Value::Object(vec![
                                        ("node".into(), n(u64::from(*node))),
                                        ("window_start_us".into(), n(*at)),
                                        ("sends".into(), n(*sends as u64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("slots".into(), Value::Array(slots)),
        ])
    }

    /// Chrome trace-event JSON (the Perfetto / `chrome://tracing` format):
    /// one `"X"` (complete) slice per `(slot, node)` spanning that node's
    /// first-to-last event for the slot, plus `"i"` (instant) markers for
    /// anomalies and transport faults. `pid` is the replica id.
    #[must_use]
    pub fn chrome_trace(&self) -> Value {
        self.chrome_trace_with_queues(&[])
    }

    /// As [`Analysis::chrome_trace`], with one `"C"` (counter) event per
    /// queue sample and metric — `queue_inbox`, `queue_pending`,
    /// `queue_decided_gap`, `queue_batch_fill` — so Perfetto renders
    /// per-replica backpressure counter tracks under the span tracks.
    #[must_use]
    pub fn chrome_trace_with_queues(&self, queues: &[QueueSample]) -> Value {
        let n = |v: u64| Value::Number(v as f64);
        let mut spans: BTreeMap<(u64, u32), (u64, u64)> = BTreeMap::new();
        for ev in &self.events {
            if let Some(seq) = ev.seq {
                let entry = spans.entry((seq, ev.node)).or_insert((ev.at_us, ev.at_us));
                entry.0 = entry.0.min(ev.at_us);
                entry.1 = entry.1.max(ev.at_us);
            }
        }
        let mut trace_events: Vec<Value> = spans
            .into_iter()
            .map(|((seq, node), (start, end))| {
                Value::Object(vec![
                    ("name".into(), Value::String(format!("slot {seq}"))),
                    ("ph".into(), Value::String("X".into())),
                    ("ts".into(), n(start)),
                    ("dur".into(), n(end.saturating_sub(start))),
                    ("pid".into(), n(u64::from(node))),
                    ("tid".into(), n(seq % 64)),
                ])
            })
            .collect();
        for ev in &self.events {
            let marker = matches!(
                ev.event,
                EventKind::ViewChange
                    | EventKind::HelpRevote
                    | EventKind::CstStart
                    | EventKind::CstDone
                    | EventKind::Drop
                    | EventKind::Delay
                    | EventKind::Dup
            );
            if !marker {
                continue;
            }
            trace_events.push(Value::Object(vec![
                ("name".into(), Value::String(ev.event.as_str().to_string())),
                ("ph".into(), Value::String("i".into())),
                ("ts".into(), n(ev.at_us)),
                ("pid".into(), n(u64::from(ev.node))),
                ("tid".into(), n(0)),
                ("s".into(), Value::String("p".into())),
            ]));
        }
        for sample in queues {
            let counters = [
                ("queue_inbox", sample.inbox),
                ("queue_pending", sample.pending),
                ("queue_decided_gap", sample.decided_gap),
                ("queue_batch_fill", sample.batch_fill),
            ];
            for (name, value) in counters {
                trace_events.push(Value::Object(vec![
                    ("name".into(), Value::String(name.into())),
                    ("ph".into(), Value::String("C".into())),
                    ("ts".into(), n(sample.at_us)),
                    ("pid".into(), n(u64::from(sample.node))),
                    ("tid".into(), n(0)),
                    ("args".into(), Value::Object(vec![("value".into(), n(value))])),
                ]));
            }
        }
        Value::Object(vec![("traceEvents".into(), Value::Array(trace_events))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazarus_obs::causal::slot_trace_id;

    fn ev(
        at_us: u64,
        node: u32,
        event: EventKind,
        seq: Option<u64>,
        parent_id: u64,
        span_id: u64,
    ) -> FlightEvent {
        FlightEvent {
            at_us,
            node,
            event,
            kind: "-",
            seq,
            view: Some(0),
            peer: None,
            trace_id: seq.map_or(0, slot_trace_id),
            parent_id,
            span_id,
            extra: 0,
        }
    }

    #[test]
    fn jsonl_round_trips_through_the_validator() {
        let original = FlightEvent {
            at_us: 42,
            node: 3,
            event: EventKind::Send,
            kind: "PROPOSE",
            seq: Some(7),
            view: Some(1),
            peer: Some(2),
            trace_id: slot_trace_id(7),
            parent_id: 9,
            span_id: 10,
            extra: 5,
        };
        let parsed = parse_line(&original.to_jsonl()).expect("valid line");
        assert_eq!(parsed, original);
    }

    #[test]
    fn validator_rejects_bad_lines() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{\"at_us\":1}").is_err(), "missing keys");
        let bad_event = ev(1, 0, EventKind::Send, None, 0, 1).to_jsonl().replace("send", "warp");
        assert!(parse_line(&bad_event).is_err(), "unknown event kind");
        let bad_span = ev(1, 0, EventKind::Timer, None, 0, 1).to_jsonl();
        assert!(parse_line(&bad_span.replace("\"span_id\":1", "\"span_id\":0")).is_err());
    }

    #[test]
    fn merge_is_a_total_order() {
        let a = vec![
            ev(5, 1, EventKind::Commit, Some(1), 0, 2),
            ev(9, 1, EventKind::Exec, Some(1), 2, 3),
        ];
        let b = vec![ev(5, 0, EventKind::Commit, Some(1), 0, 1)];
        let merged = merge(vec![a, b]);
        assert_eq!(merged.iter().map(|e| e.span_id).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn slot_timeline_and_critical_path() {
        // root timer → propose → write → accept → commit, one slot.
        let events = vec![
            ev(10, 0, EventKind::Timer, None, 0, 1),
            ev(20, 0, EventKind::Propose, Some(1), 1, 2),
            ev(30, 1, EventKind::Write, Some(1), 2, 3),
            ev(40, 1, EventKind::Accept, Some(1), 3, 4),
            ev(50, 1, EventKind::Commit, Some(1), 4, 5),
            ev(55, 1, EventKind::Exec, Some(1), 5, 6),
        ];
        let analysis = Analysis::build(events);
        assert!(analysis.orphans.is_empty());
        let slot = &analysis.slots[&1];
        assert_eq!(slot.propose_at, Some(20));
        assert_eq!(slot.commit_at, Some(50));
        assert_eq!(slot.phases()[0], ("propose_to_write_us", Some(10)),);
        let path: Vec<u64> = analysis.critical_path(1).iter().map(|e| e.span_id).collect();
        assert_eq!(path, vec![1, 2, 3, 4, 5], "root-first walk to the commit");
    }

    #[test]
    fn orphans_and_anomalies_are_counted() {
        let events = vec![
            ev(10, 0, EventKind::ViewChange, None, 999, 1), // dangling parent
            ev(20, 0, EventKind::HelpRevote, Some(2), 1, 2),
            ev(30, 0, EventKind::Drop, None, 1, 3),
        ];
        let analysis = Analysis::build(events);
        assert_eq!(analysis.orphans.len(), 1);
        assert_eq!(analysis.anomalies.view_changes, 1);
        assert_eq!(analysis.anomalies.help_revotes, 1);
        assert_eq!(analysis.anomalies.drops, 1);
    }

    #[test]
    fn summary_and_chrome_json_are_deterministic_and_valid() {
        let events = vec![
            ev(10, 0, EventKind::Propose, Some(1), 0, 1),
            ev(50, 1, EventKind::Commit, Some(1), 1, 2),
            ev(60, 1, EventKind::Drop, None, 0, 3),
        ];
        let a = Analysis::build(events.clone());
        let b = Analysis::build(events);
        assert_eq!(a.summary_json().to_json(), b.summary_json().to_json());
        // Both documents re-parse as valid JSON.
        let summary = parse(&a.summary_json().to_json()).expect("summary is valid JSON");
        assert_eq!(summary.req("slots_committed").unwrap(), &Value::Number(1.0));
        let chrome = parse(&a.chrome_trace().to_json()).expect("chrome trace is valid JSON");
        let slices = chrome.req("traceEvents").unwrap().as_array("traceEvents").unwrap();
        assert!(slices.iter().any(|s| s.get("ph") == Some(&Value::String("X".into()))));
        assert!(slices.iter().any(|s| s.get("ph") == Some(&Value::String("i".into()))));
    }

    #[test]
    fn queue_sample_jsonl_round_trips_through_the_validator() {
        let original = QueueSample {
            at_us: 250_000,
            node: 3,
            inbox: 7,
            pending: 12,
            decided_gap: 2,
            batch_fill: 64,
        };
        let parsed = parse_queue_line(&original.to_jsonl()).expect("valid line");
        assert_eq!(parsed, original);
    }

    #[test]
    fn queue_sample_parser_rejects_malformed_lines() {
        assert!(parse_queue_line("not json").is_err());
        assert!(parse_queue_line(r#"{"at_us":1,"node":0,"inbox":-3}"#).is_err());
        assert!(
            parse_queue_line(
                r#"{"at_us":1,"node":4294967296,"inbox":0,"pending":0,"decided_gap":0,"batch_fill":0}"#
            )
            .is_err(),
            "node must fit in u32"
        );
    }

    #[test]
    fn chrome_trace_renders_queue_samples_as_counter_tracks() {
        let events = vec![ev(10, 0, EventKind::Propose, Some(1), 0, 1)];
        let samples = vec![QueueSample {
            at_us: 250_000,
            node: 1,
            inbox: 5,
            pending: 9,
            decided_gap: 1,
            batch_fill: 32,
        }];
        let a = Analysis::build(events);
        let chrome = parse(&a.chrome_trace_with_queues(&samples).to_json()).expect("valid JSON");
        let entries = chrome.req("traceEvents").unwrap().as_array("traceEvents").unwrap();
        let counters: Vec<&Value> =
            entries.iter().filter(|e| e.get("ph") == Some(&Value::String("C".into()))).collect();
        assert_eq!(counters.len(), 4, "one counter event per queue metric");
        let inbox = counters
            .iter()
            .find(|e| e.get("name") == Some(&Value::String("queue_inbox".into())))
            .expect("inbox counter present");
        assert_eq!(inbox.get("pid"), Some(&Value::Number(1.0)));
        assert_eq!(inbox.get("args").and_then(|a| a.get("value")), Some(&Value::Number(5.0)));
        // Without samples the chrome trace has no counter events.
        let plain = parse(&a.chrome_trace().to_json()).expect("valid JSON");
        let entries = plain.req("traceEvents").unwrap().as_array("traceEvents").unwrap();
        assert!(entries.iter().all(|e| e.get("ph") != Some(&Value::String("C".into()))));
    }
}
