//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Each paper figure has a `fig*`/`table*` binary in `src/bin/`; they share
//! the microbenchmark driver and table formatting below. Run them all via
//! `cargo run --release -p lazarus-bench --bin <name>`.

#![warn(missing_docs)]

use bytes::Bytes;
use lazarus_bft::service::Service;
use lazarus_bft::types::{Epoch, Membership, ReplicaId};
use lazarus_testbed::cluster::{SimCluster, SimConfig};
use lazarus_testbed::oscatalog::PerfProfile;
use lazarus_testbed::sim::{Micros, SEC};

/// Drives a 4-replica cluster under a closed-loop client population and
/// returns the steady-state throughput in ops/s (measured after a 1 s
/// warm-up).
pub fn measure_throughput(
    profiles: &[PerfProfile],
    services: impl Fn() -> Box<dyn Service>,
    payload: impl Fn(u64) -> Bytes + Clone + 'static,
    clients: usize,
    run_secs: u64,
) -> f64 {
    let membership = Membership::new(Epoch(0), (0..profiles.len() as u32).map(ReplicaId).collect());
    let mut sim = SimCluster::new(SimConfig::default());
    for (r, p) in profiles.iter().enumerate() {
        sim.add_node(ReplicaId(r as u32), *p, membership.clone(), services());
    }
    sim.add_clients(1, clients, membership, payload);
    let horizon: Micros = run_secs * SEC;
    sim.run_until(horizon);
    sim.metrics.throughput(SEC, horizon)
}

/// The §7.1 microbenchmark: an echo service under `payload_size`-byte
/// requests/replies.
pub fn microbenchmark(profiles: &[PerfProfile], payload_size: usize, clients: usize) -> f64 {
    let body = Bytes::from(vec![0u8; payload_size]);
    measure_throughput(
        profiles,
        || Box::new(lazarus_bft::service::CounterService::new()),
        move |_| body.clone(),
        clients,
        3,
    )
}

/// Prints a two-column numeric table with a caption.
pub fn print_table(caption: &str, header: (&str, &str), rows: &[(String, String)]) {
    println!("\n=== {caption} ===");
    let w = rows.iter().map(|(a, _)| a.len()).chain([header.0.len()]).max().unwrap_or(8) + 2;
    println!("{:<w$}{}", header.0, header.1);
    for (a, b) in rows {
        println!("{a:<w$}{b}");
    }
}

/// Writes a machine-readable benchmark report as compact JSON.
///
/// Used by `bench_hotpath` to emit `BENCH_hotpath.json`; the value keeps
/// insertion order, so reports diff cleanly between runs.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_bench_json(path: &str, report: &lazarus_osint::json::Value) -> std::io::Result<()> {
    std::fs::write(path, report.to_json())
}

/// Formats an ops/s figure the way the paper's plots label them.
pub fn fmt_kops(value: f64) -> String {
    if value >= 10_000.0 {
        format!("{:.1}k", value / 1000.0)
    } else if value >= 1_000.0 {
        format!("{:.2}k", value / 1000.0)
    } else {
        format!("{value:.0}")
    }
}
