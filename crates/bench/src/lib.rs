//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Each paper figure has a `fig*`/`table*` binary in `src/bin/`; they share
//! the microbenchmark driver and table formatting below. Run them all via
//! `cargo run --release -p lazarus-bench --bin <name>`.

#![warn(missing_docs)]

pub mod flight;
pub mod perf;

use bytes::Bytes;
use lazarus_bft::service::Service;
use lazarus_bft::types::{Epoch, Membership, ReplicaId};
use lazarus_testbed::cluster::{SimCluster, SimConfig};
use lazarus_testbed::oscatalog::PerfProfile;
use lazarus_testbed::sim::{Micros, SEC};

/// Drives a 4-replica cluster under a closed-loop client population and
/// returns the steady-state throughput in ops/s (measured after a 1 s
/// warm-up).
pub fn measure_throughput(
    profiles: &[PerfProfile],
    services: impl Fn() -> Box<dyn Service>,
    payload: impl Fn(u64) -> Bytes + Clone + 'static,
    clients: usize,
    run_secs: u64,
) -> f64 {
    measure_throughput_observed(profiles, services, payload, clients, run_secs).throughput_ops_s
}

/// One [`measure_throughput_observed`] run: the headline number plus the
/// raw material for a `*_metrics.json` report.
pub struct ThroughputRun {
    /// Steady-state throughput in ops/s (after a 1 s warm-up).
    pub throughput_ops_s: f64,
    /// Client-side latency percentiles (`None` when nothing completed).
    pub summary: Option<lazarus_testbed::LatencySummary>,
    /// The simulation's observability bundle: wire counters, per-replica
    /// hot-path metrics and the `sim_client_latency_us` histogram, all on
    /// virtual time.
    pub obs: lazarus_obs::Obs,
    /// Queue/backpressure samples taken on each health tick.
    pub queues: Vec<lazarus_obs::QueueSample>,
}

/// [`measure_throughput`] on an instrumented cluster, returning the full
/// [`ThroughputRun`] so harnesses can fold the run into a metrics report.
pub fn measure_throughput_observed(
    profiles: &[PerfProfile],
    services: impl Fn() -> Box<dyn Service>,
    payload: impl Fn(u64) -> Bytes + Clone + 'static,
    clients: usize,
    run_secs: u64,
) -> ThroughputRun {
    measure_throughput_profiled(profiles, services, payload, clients, run_secs, None)
}

/// As [`measure_throughput_observed`], optionally charging the run's
/// modeled hot-path costs into `profiler` under a `root` frame — the
/// `bench_suite` hook that lets every workload share one [`lazarus_obs::Profiler`]
/// with per-workload roots.
pub fn measure_throughput_profiled(
    profiles: &[PerfProfile],
    services: impl Fn() -> Box<dyn Service>,
    payload: impl Fn(u64) -> Bytes + Clone + 'static,
    clients: usize,
    run_secs: u64,
    profiler: Option<(&lazarus_obs::Profiler, &str)>,
) -> ThroughputRun {
    let membership = Membership::new(Epoch(0), (0..profiles.len() as u32).map(ReplicaId).collect());
    let mut sim = SimCluster::new_observed(SimConfig::default());
    if let Some((p, root)) = profiler {
        sim.attach_profiler(p.clone(), root);
    }
    for (r, p) in profiles.iter().enumerate() {
        sim.add_node(ReplicaId(r as u32), *p, membership.clone(), services());
    }
    sim.add_clients(1, clients, membership, payload);
    let horizon: Micros = run_secs * SEC;
    sim.run_until(horizon);
    let obs = sim.obs().expect("observed cluster").clone();
    ThroughputRun {
        throughput_ops_s: sim.metrics.throughput(SEC, horizon),
        summary: sim.metrics.summary(),
        obs,
        queues: sim.queue_samples().to_vec(),
    }
}

/// As [`measure_throughput_observed`], but on a caller-supplied
/// [`SimConfig`] — the pipelining benchmarks sweep `window` and
/// `batch_policy`, which the default-config helpers pin to the classic
/// one-slot pipeline.
pub fn measure_throughput_configured(
    cfg: SimConfig,
    profiles: &[PerfProfile],
    services: impl Fn() -> Box<dyn Service>,
    payload: impl Fn(u64) -> Bytes + Clone + 'static,
    clients: usize,
    run_secs: u64,
) -> ThroughputRun {
    let membership = Membership::new(Epoch(0), (0..profiles.len() as u32).map(ReplicaId).collect());
    let mut sim = SimCluster::new_observed(cfg);
    for (r, p) in profiles.iter().enumerate() {
        sim.add_node(ReplicaId(r as u32), *p, membership.clone(), services());
    }
    sim.add_clients(1, clients, membership, payload);
    let horizon: Micros = run_secs * SEC;
    sim.run_until(horizon);
    let obs = sim.obs().expect("observed cluster").clone();
    ThroughputRun {
        throughput_ops_s: sim.metrics.throughput(SEC, horizon),
        summary: sim.metrics.summary(),
        obs,
        queues: sim.queue_samples().to_vec(),
    }
}

/// The canonical metrics-report path for a figure binary: `<bin>_metrics.json`
/// in the current directory, or under `$LAZARUS_METRICS_DIR` when set.
pub fn metrics_path(bin: &str) -> std::path::PathBuf {
    let dir = std::env::var("LAZARUS_METRICS_DIR").unwrap_or_else(|_| ".".to_string());
    std::path::Path::new(&dir).join(format!("{bin}_metrics.json"))
}

/// Snapshots `registry` and writes it to [`metrics_path`]`(bin)` as the
/// sorted JSON exposition; returns the path written.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_metrics_json(
    bin: &str,
    registry: &lazarus_obs::Registry,
) -> std::io::Result<std::path::PathBuf> {
    let path = metrics_path(bin);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&path, registry.snapshot().to_json())?;
    Ok(path)
}

/// The §7.1 microbenchmark: an echo service under `payload_size`-byte
/// requests/replies.
pub fn microbenchmark(profiles: &[PerfProfile], payload_size: usize, clients: usize) -> f64 {
    let body = Bytes::from(vec![0u8; payload_size]);
    measure_throughput(
        profiles,
        || Box::new(lazarus_bft::service::CounterService::new()),
        move |_| body.clone(),
        clients,
        3,
    )
}

/// Prints a two-column numeric table with a caption.
pub fn print_table(caption: &str, header: (&str, &str), rows: &[(String, String)]) {
    println!("\n=== {caption} ===");
    let w = rows.iter().map(|(a, _)| a.len()).chain([header.0.len()]).max().unwrap_or(8) + 2;
    println!("{:<w$}{}", header.0, header.1);
    for (a, b) in rows {
        println!("{a:<w$}{b}");
    }
}

/// Writes a machine-readable benchmark report as compact JSON.
///
/// Used by `bench_hotpath` to emit `BENCH_hotpath.json`; the value keeps
/// insertion order, so reports diff cleanly between runs.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_bench_json(path: &str, report: &lazarus_osint::json::Value) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent().filter(|p| !p.as_os_str().is_empty())
    {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, report.to_json())
}

/// Formats an ops/s figure the way the paper's plots label them.
pub fn fmt_kops(value: f64) -> String {
    if value >= 10_000.0 {
        format!("{:.1}k", value / 1000.0)
    } else if value >= 1_000.0 {
        format!("{:.2}k", value / 1000.0)
    } else {
        format!("{value:.0}")
    }
}
