//! Benchmark-suite schema and regression gating.
//!
//! `bench_suite` writes one schema-versioned `BENCH_suite.json` per run
//! ([`Suite`]); `perf_report` diffs two such files with per-metric
//! tolerance policies ([`policy_for`]) and emits a verdict table plus an
//! exit code CI can gate on. Only virtual-time (deterministic) metrics
//! belong in a suite — wall-clock numbers vary per host and would make
//! the committed baseline machine-specific.
//!
//! Tolerance policy is keyed on metric-name suffix:
//!
//! | suffix                | direction     | default tolerance |
//! |-----------------------|---------------|-------------------|
//! | `_ops_s`              | higher better | 10 %              |
//! | `_p999_us`, `_max_us` | lower better  | 25 % (tail noise) |
//! | `_us`                 | lower better  | 15 %              |
//! | anything else         | informational | not gated         |

use lazarus_osint::json::{parse, Value};

/// Schema tag stamped into every `BENCH_suite.json`.
pub const SUITE_SCHEMA: &str = "lazarus-bench-suite-v1";

/// One benchmark-suite run: named workloads, each a list of named numeric
/// metrics. Insertion order is preserved so reports diff cleanly.
#[derive(Debug, Clone, Default)]
pub struct Suite {
    /// `(workload, [(metric, value)])` in insertion order.
    pub workloads: Vec<(String, Vec<(String, f64)>)>,
}

impl Suite {
    /// An empty suite.
    #[must_use]
    pub fn new() -> Suite {
        Suite::default()
    }

    /// Records `metric = value` under `workload`, creating the workload
    /// section on first use.
    pub fn push(&mut self, workload: &str, metric: &str, value: f64) {
        let section = match self.workloads.iter_mut().find(|(w, _)| w == workload) {
            Some((_, metrics)) => metrics,
            None => {
                self.workloads.push((workload.to_string(), Vec::new()));
                &mut self.workloads.last_mut().expect("just pushed").1
            }
        };
        section.push((metric.to_string(), value));
    }

    /// Renders the suite as its schema-versioned JSON document.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let workloads = self
            .workloads
            .iter()
            .map(|(name, metrics)| {
                let fields = metrics.iter().map(|(m, v)| (m.clone(), Value::Number(*v))).collect();
                (name.clone(), Value::Object(fields))
            })
            .collect();
        Value::Object(vec![
            ("schema".into(), Value::String(SUITE_SCHEMA.into())),
            ("workloads".into(), Value::Object(workloads)),
        ])
    }

    /// Parses a suite document, validating the schema tag.
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed JSON, a missing or foreign
    /// `schema` tag, or non-numeric metric values.
    pub fn from_json(body: &str) -> Result<Suite, String> {
        let doc = parse(body).map_err(|e| format!("not JSON: {e}"))?;
        match doc.get("schema") {
            Some(Value::String(s)) if s == SUITE_SCHEMA => {}
            Some(Value::String(s)) => {
                return Err(format!("schema {s:?}, expected {SUITE_SCHEMA:?}"))
            }
            _ => return Err(format!("missing schema tag (expected {SUITE_SCHEMA:?})")),
        }
        let Some(Value::Object(workloads)) = doc.get("workloads") else {
            return Err("missing workloads object".into());
        };
        let mut suite = Suite::new();
        for (workload, metrics) in workloads {
            let Value::Object(fields) = metrics else {
                return Err(format!("workload {workload:?} is not an object"));
            };
            for (metric, value) in fields {
                let Value::Number(v) = value else {
                    return Err(format!("{workload}/{metric} is not a number"));
                };
                suite.push(workload, metric, *v);
            }
        }
        Ok(suite)
    }

    /// Reads and parses a suite file.
    ///
    /// # Errors
    ///
    /// A human-readable message on I/O or parse failure.
    pub fn load(path: &std::path::Path) -> Result<Suite, String> {
        let body = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Suite::from_json(&body).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Whether a metric should go up or down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger values are better (throughput).
    HigherBetter,
    /// Smaller values are better (latency).
    LowerBetter,
}

/// How a metric is gated: its direction and the relative change (as a
/// fraction of the old value) tolerated before a regression is declared.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricPolicy {
    /// Which way the metric should move.
    pub direction: Direction,
    /// Tolerated adverse relative change, e.g. `0.10` = 10 %.
    pub tolerance: f64,
}

/// The gating policy for a metric name, by suffix; `None` means the
/// metric is informational and never gates.
#[must_use]
pub fn policy_for(metric: &str) -> Option<MetricPolicy> {
    if metric.ends_with("_ops_s") {
        Some(MetricPolicy { direction: Direction::HigherBetter, tolerance: 0.10 })
    } else if metric.ends_with("_p999_us") || metric.ends_with("_max_us") {
        Some(MetricPolicy { direction: Direction::LowerBetter, tolerance: 0.25 })
    } else if metric.ends_with("_us") {
        Some(MetricPolicy { direction: Direction::LowerBetter, tolerance: 0.15 })
    } else {
        None
    }
}

/// One metric's comparison outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Within tolerance (or moved the right way, but not enough to call
    /// out).
    Ok,
    /// Moved the right way beyond tolerance — worth a look, never fails.
    Improved,
    /// Moved the wrong way beyond tolerance, or vanished from the new
    /// suite.
    Regressed,
    /// Not gated: no policy, zero baseline, or only present on one side.
    Info,
}

/// One `(workload, metric)` comparison between two suites.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Workload section the metric lives in.
    pub workload: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value (`None` when the metric is new).
    pub old: Option<f64>,
    /// Candidate value (`None` when the metric vanished).
    pub new: Option<f64>,
    /// Relative change `(new - old) / old`, when both sides exist and the
    /// baseline is non-zero.
    pub change: Option<f64>,
    /// Gate outcome.
    pub status: Status,
}

/// A full suite-vs-suite comparison.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Per-metric verdicts, in baseline order; new-only metrics follow.
    pub verdicts: Vec<Verdict>,
}

impl Report {
    /// True when any metric regressed — the CI failure condition.
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.verdicts.iter().any(|v| v.status == Status::Regressed)
    }
}

/// Diffs `new` against the `old` baseline. `tolerance_override`, when set,
/// replaces every metric's default tolerance (the `--tolerance` flag).
///
/// A gated metric regresses when it moves against its direction by more
/// than its tolerance, or when it exists in the baseline but not in the
/// candidate. Metrics with a zero baseline, without a policy, or only
/// present in the candidate are informational.
#[must_use]
pub fn diff(old: &Suite, new: &Suite, tolerance_override: Option<f64>) -> Report {
    let lookup = |suite: &Suite, workload: &str, metric: &str| -> Option<f64> {
        suite
            .workloads
            .iter()
            .find(|(w, _)| w == workload)
            .and_then(|(_, ms)| ms.iter().find(|(m, _)| m == metric).map(|(_, v)| *v))
    };
    let mut report = Report::default();
    for (workload, metrics) in &old.workloads {
        for (metric, old_v) in metrics {
            let new_v = lookup(new, workload, metric);
            let policy = policy_for(metric).map(|p| MetricPolicy {
                tolerance: tolerance_override.unwrap_or(p.tolerance),
                ..p
            });
            let (change, status) = match (new_v, policy) {
                (None, Some(_)) => (None, Status::Regressed),
                (None, None) => (None, Status::Info),
                (Some(_), None) => (None, Status::Info),
                (Some(n), Some(p)) => {
                    if *old_v == 0.0 {
                        (None, Status::Info)
                    } else {
                        let change = (n - old_v) / old_v;
                        let adverse = match p.direction {
                            Direction::HigherBetter => -change,
                            Direction::LowerBetter => change,
                        };
                        let status = if adverse > p.tolerance {
                            Status::Regressed
                        } else if adverse < -p.tolerance {
                            Status::Improved
                        } else {
                            Status::Ok
                        };
                        (Some(change), status)
                    }
                }
            };
            report.verdicts.push(Verdict {
                workload: workload.clone(),
                metric: metric.clone(),
                old: Some(*old_v),
                new: new_v,
                change,
                status,
            });
        }
    }
    for (workload, metrics) in &new.workloads {
        for (metric, new_v) in metrics {
            if lookup(old, workload, metric).is_none() {
                report.verdicts.push(Verdict {
                    workload: workload.clone(),
                    metric: metric.clone(),
                    old: None,
                    new: Some(*new_v),
                    change: None,
                    status: Status::Info,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite(pairs: &[(&str, &str, f64)]) -> Suite {
        let mut s = Suite::new();
        for (w, m, v) in pairs {
            s.push(w, m, *v);
        }
        s
    }

    #[test]
    fn suite_json_round_trips_with_schema_tag() {
        let s = suite(&[("echo", "throughput_ops_s", 1234.5), ("echo", "p50_us", 80.0)]);
        let body = s.to_json().to_json();
        assert!(body.contains(SUITE_SCHEMA));
        let back = Suite::from_json(&body).expect("round trip");
        assert_eq!(back.workloads.len(), 1);
        assert_eq!(back.workloads[0].1, s.workloads[0].1);
    }

    #[test]
    fn foreign_schema_is_rejected() {
        let err = Suite::from_json(r#"{"schema":"other-v9","workloads":{}}"#).unwrap_err();
        assert!(err.contains("other-v9"), "{err}");
        assert!(Suite::from_json(r#"{"workloads":{}}"#).is_err());
    }

    #[test]
    fn policy_maps_suffixes_to_direction_and_tolerance() {
        let p = policy_for("throughput_ops_s").expect("gated");
        assert_eq!(p.direction, Direction::HigherBetter);
        assert!((p.tolerance - 0.10).abs() < 1e-12);
        let p = policy_for("latency_p50_us").expect("gated");
        assert_eq!(p.direction, Direction::LowerBetter);
        assert!((p.tolerance - 0.15).abs() < 1e-12);
        let p = policy_for("latency_p999_us").expect("gated");
        assert!((p.tolerance - 0.25).abs() < 1e-12);
        let p = policy_for("latency_max_us").expect("gated");
        assert!((p.tolerance - 0.25).abs() < 1e-12);
        assert!(policy_for("completed_ops").is_none());
    }

    #[test]
    fn identical_suites_pass() {
        let s = suite(&[("echo", "throughput_ops_s", 1000.0), ("echo", "p50_us", 100.0)]);
        let report = diff(&s, &s, None);
        assert!(!report.regressed());
        assert!(report.verdicts.iter().all(|v| v.status == Status::Ok));
    }

    #[test]
    fn throughput_drop_beyond_tolerance_regresses() {
        let old = suite(&[("echo", "throughput_ops_s", 1000.0)]);
        let ok = suite(&[("echo", "throughput_ops_s", 950.0)]);
        assert!(!diff(&old, &ok, None).regressed(), "5% drop is within the 10% gate");
        let bad = suite(&[("echo", "throughput_ops_s", 800.0)]);
        let report = diff(&old, &bad, None);
        assert!(report.regressed(), "20% drop must trip the 10% gate");
        let v = &report.verdicts[0];
        assert_eq!(v.status, Status::Regressed);
        assert!((v.change.expect("both sides") + 0.2).abs() < 1e-9);
    }

    #[test]
    fn latency_rise_gates_by_suffix_tolerance() {
        let old = suite(&[("echo", "p50_us", 100.0), ("echo", "latency_p999_us", 100.0)]);
        let new = suite(&[("echo", "p50_us", 120.0), ("echo", "latency_p999_us", 120.0)]);
        let report = diff(&old, &new, None);
        let by_name =
            |m: &str| report.verdicts.iter().find(|v| v.metric == m).expect("present").status;
        assert_eq!(by_name("p50_us"), Status::Regressed, "20% > 15% tolerance");
        assert_eq!(by_name("latency_p999_us"), Status::Ok, "20% <= 25% tail tolerance");
    }

    #[test]
    fn improvements_and_new_metrics_never_fail() {
        let old = suite(&[("echo", "throughput_ops_s", 1000.0)]);
        let new = suite(&[("echo", "throughput_ops_s", 2000.0), ("echo", "completed_ops", 5.0)]);
        let report = diff(&old, &new, None);
        assert!(!report.regressed());
        assert_eq!(report.verdicts[0].status, Status::Improved);
        assert_eq!(report.verdicts[1].status, Status::Info);
    }

    #[test]
    fn vanished_gated_metric_regresses() {
        let old = suite(&[("echo", "throughput_ops_s", 1000.0)]);
        let new = suite(&[("echo", "p50_us", 100.0)]);
        let report = diff(&old, &new, None);
        assert!(report.regressed());
        assert_eq!(report.verdicts[0].new, None);
    }

    #[test]
    fn tolerance_override_replaces_defaults() {
        let old = suite(&[("echo", "throughput_ops_s", 1000.0)]);
        let new = suite(&[("echo", "throughput_ops_s", 800.0)]);
        assert!(diff(&old, &new, None).regressed());
        assert!(!diff(&old, &new, Some(0.5)).regressed(), "50% override lets a 20% drop pass");
    }

    #[test]
    fn zero_baseline_is_informational() {
        let old = suite(&[("echo", "p50_us", 0.0)]);
        let new = suite(&[("echo", "p50_us", 50.0)]);
        let report = diff(&old, &new, None);
        assert!(!report.regressed());
        assert_eq!(report.verdicts[0].status, Status::Info);
    }
}
