//! End-to-end checks of the causal tracing pipeline: a traced nemesis run
//! through the offline analyzer, determinism of the dump, DAG
//! completeness for committed slots, and the anomaly-vs-metrics
//! cross-check.

use lazarus_bench::flight::{dump_traced, load_dir, merge, Analysis};
use lazarus_core::{Controller, ControllerConfig, HealthPolicy};
use lazarus_obs::causal::EventKind;
use lazarus_obs::{AnomalyKind, Obs};
use lazarus_osint::catalog::study_oses;
use lazarus_osint::datamgr::DataManager;
use lazarus_osint::kb::KnowledgeBase;
use lazarus_testbed::nemesis::{probe_health, run_scenario_traced};

fn counter(snapshot: &lazarus_obs::Snapshot, name: &str) -> u64 {
    snapshot.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
}

#[test]
fn traced_partition_run_yields_a_complete_causal_dag() {
    let traced = run_scenario_traced("partition", 1);
    assert!(traced.verdict.passed(), "baseline scenario passes: {:?}", traced.verdict);

    let analysis =
        Analysis::build(merge(traced.streams.iter().map(|(_, evs)| evs.clone()).collect()));
    // Every committed slot has a full phase timeline and a critical path
    // that terminates at a causal root.
    let committed: Vec<u64> = analysis.committed_slots().map(|(seq, _)| *seq).collect();
    assert!(committed.len() > 10, "a 3 s run commits plenty of slots ({})", committed.len());
    for seq in &committed {
        let slot = &analysis.slots[seq];
        assert!(slot.propose_at.is_some(), "slot {seq} has a propose");
        assert!(slot.commit_at.is_some(), "slot {seq} has a commit");
        let path = analysis.critical_path(*seq);
        assert!(path.len() >= 2, "slot {seq} path spans hops");
        // The path stays inside the slot's trace, except for a true causal
        // root at the head (e.g. the client request that seeded the batch).
        let trace = lazarus_obs::causal::slot_trace_id(*seq);
        assert!(
            path[0].parent_id == 0 || path[0].trace_id == trace,
            "slot {seq} path head is a root or in-trace"
        );
        assert!(path[1..].iter().all(|e| e.trace_id == trace), "slot {seq} path is in-trace");
        assert_eq!(path.last().unwrap().event, EventKind::Commit);
    }
    // No orphan events anywhere: the DAG is complete.
    assert!(
        analysis.orphans.is_empty(),
        "no dangling parents, got e.g. {}",
        analysis.orphans[0].to_jsonl()
    );
    // The partition fault plan leaves transport-visible scars.
    assert!(analysis.anomalies.drops > 0, "a 2|2 partition drops messages");
}

#[test]
fn traced_dump_and_analyzer_outputs_are_deterministic() {
    let a = run_scenario_traced("partition", 7);
    let b = run_scenario_traced("partition", 7);
    let dir_a = std::env::temp_dir().join(format!("lazarus_trace_a_{}", std::process::id()));
    let dir_b = std::env::temp_dir().join(format!("lazarus_trace_b_{}", std::process::id()));
    dump_traced(&dir_a, &a.streams).expect("dump a");
    dump_traced(&dir_b, &b.streams).expect("dump b");
    for file in ["replica_0.jsonl", "replica_3.jsonl", "trace_summary.json", "trace_chrome.json"] {
        let body_a = std::fs::read(dir_a.join(file)).expect("read a");
        let body_b = std::fs::read(dir_b.join(file)).expect("read b");
        assert_eq!(body_a, body_b, "{file} is byte-identical across reruns");
        assert!(!body_a.is_empty(), "{file} has content");
    }
    // The dumped streams survive the validating loader and rebuild the
    // same analysis.
    let streams = load_dir(&dir_a).expect("every dumped line passes the schema validator");
    let reloaded = Analysis::build(merge(streams.into_iter().map(|(_, evs)| evs).collect()));
    let direct = Analysis::build(merge(a.streams.iter().map(|(_, evs)| evs.clone()).collect()));
    assert_eq!(reloaded.summary_json().to_json(), direct.summary_json().to_json());
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn analyzer_anomaly_counts_match_replica_metrics() {
    // A crashed-and-restarted leader forces view changes and help
    // re-votes; both surface once as flight events and once as counters.
    let traced = run_scenario_traced("leader-crash", 3);
    let analysis =
        Analysis::build(merge(traced.streams.iter().map(|(_, evs)| evs.clone()).collect()));
    let view_changes = counter(&traced.snapshot, "bft_view_changes_total");
    let help_revotes = counter(&traced.snapshot, "bft_help_revotes_total");
    assert!(view_changes > 0, "a leader crash forces a view change");
    assert_eq!(analysis.anomalies.view_changes, view_changes, "view-change counts agree");
    assert_eq!(analysis.anomalies.help_revotes, help_revotes, "help-revote counts agree");
    // Every completed transfer the metrics saw started as a CstStart
    // flight event; fetches may outnumber completions.
    assert!(
        analysis.anomalies.cst_fetches >= counter(&traced.snapshot, "bft_state_transfers_total"),
        "cst fetches are at least the completed transfers"
    );
}

#[test]
fn health_anomaly_counters_match_fault_and_analyzer_evidence() {
    // A mute leader goes silent from boot: the online health ticks must
    // count a silence onset, and the final reduction must flag exactly the
    // muted replica — cross-checked against the fault plan's own injection
    // stats and the flight streams (replica 0 records no Send events while
    // everyone else floods the wire).
    let traced = run_scenario_traced("mute", 5);
    assert!(traced.verdict.stats.muted > 0, "the fault plan swallowed egress");
    let silences = counter(&traced.snapshot, "health_anomalies_total{kind=\"silence\"}");
    assert!(silences >= 1, "online ticks counted the silence onset (got {silences})");

    let h0 = traced.health.replica(0).expect("replica 0 tracked");
    assert!(h0.anomalies.contains(&AnomalyKind::Silence), "muted replica flagged: {h0:?}");
    assert_eq!(h0.liveness_score, 0, "no egress -> fully decayed liveness");
    for replica in 1..4 {
        let h = traced.health.replica(replica).expect("tracked");
        assert!(h.anomalies.is_empty(), "honest replica {replica} unflagged: {h:?}");
    }

    let sends_by_node = |node: u32| {
        traced
            .streams
            .iter()
            .find(|(id, _)| *id == node)
            .map_or(0, |(_, evs)| evs.iter().filter(|e| e.event == EventKind::Send).count())
    };
    assert_eq!(sends_by_node(0), 0, "the muted replica never reaches the wire");
    assert!(sends_by_node(1) > 100, "honest replicas flood the wire");
}

#[test]
fn chunked_cst_and_recovery_metrics_match_flight_events() {
    // Chunked transfer under chunk corruption: every *verified* chunk
    // fetch surfaces once as a `cst_chunk` flight event and once in the
    // fetched counter, while corrupt replies only bump the rejected
    // counter (they are re-requested, never installed).
    let traced = run_scenario_traced("corrupt-chunk", 19);
    assert!(traced.verdict.passed(), "corrupt-chunk scenario passes: {:?}", traced.verdict);
    let chunk_events: u64 = traced
        .streams
        .iter()
        .map(|(_, evs)| evs.iter().filter(|e| e.event == EventKind::CstChunk).count() as u64)
        .sum();
    let fetched = counter(&traced.snapshot, "bft_cst_chunks_fetched_total");
    assert!(fetched > 0, "the joiner fetched chunks");
    assert_eq!(chunk_events, fetched, "verified fetches and flight events agree");
    let rejected = counter(&traced.snapshot, "bft_cst_chunks_rejected_total");
    assert!(rejected > 0, "the corruption knob produced rejected chunks");

    // Durable reboot: exactly one `recover` flight event (replica 2 loses
    // power once), and the recovery-duration gauge carries the journal
    // replay's virtual time.
    let traced = run_scenario_traced("crash-torn-write", 13);
    assert!(traced.verdict.passed(), "crash-torn-write scenario passes: {:?}", traced.verdict);
    let recover_events: usize = traced
        .streams
        .iter()
        .map(|(_, evs)| evs.iter().filter(|e| e.event == EventKind::Recover).count())
        .sum();
    assert_eq!(recover_events, 1, "one reboot, one recover flight event");
    let recovery_us = traced
        .snapshot
        .gauges
        .iter()
        .find(|(n, _)| n == "bft_recovery_duration_us")
        .map(|(_, v)| *v)
        .unwrap_or(0.0);
    assert!(recovery_us > 0.0, "the recovery gauge is set from the journal replay");
}

#[test]
fn controller_demotion_counter_matches_reconfig_decision_events() {
    // The ablation control loop in miniature: probe a mute run before the
    // watchdog heals it, ingest the evidence, and plan. Exactly one
    // demotion must land in `controller_leader_demotions_total`, and every
    // counted demotion must also appear as a `reconfig_decision` trace
    // event carrying the justifying scores.
    let obs = Obs::unclocked();
    let mut controller = Controller::new(
        ControllerConfig::new(study_oses()),
        DataManager::new(KnowledgeBase::new()),
    );
    controller.attach_obs(&obs);
    controller.set_health_policy(HealthPolicy {
        demote_score: 850,
        demote_p99_us: 40_000,
        promote_score: 900,
        hysteresis_rounds: 2,
    });
    controller.assume_leader(0);
    for snapshot in probe_health("mute", 5, &[330_000, 390_000]) {
        controller.ingest_health(&snapshot);
    }
    let decision = controller.plan_leader();
    assert_eq!(decision.reason, "demoted", "two degraded snapshots clear the hysteresis");
    assert_eq!(decision.demoted, Some(0));
    assert_ne!(decision.leader, 0, "the replacement is a different replica");

    let demotions = counter(&obs.registry.snapshot(), "controller_leader_demotions_total");
    assert_eq!(demotions, 1, "exactly one demotion counted");
    let demotion_events = obs
        .tracer
        .recent()
        .iter()
        .filter(|e| e.name == "reconfig_decision" && e.render().contains("decision=\"demoted\""))
        .count() as u64;
    assert_eq!(demotion_events, demotions, "counter and trace events agree");
}
