//! End-to-end checks of the causal tracing pipeline: a traced nemesis run
//! through the offline analyzer, determinism of the dump, DAG
//! completeness for committed slots, and the anomaly-vs-metrics
//! cross-check.

use lazarus_bench::flight::{dump_traced, load_dir, merge, Analysis};
use lazarus_obs::causal::EventKind;
use lazarus_testbed::nemesis::run_scenario_traced;

fn counter(snapshot: &lazarus_obs::Snapshot, name: &str) -> u64 {
    snapshot.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
}

#[test]
fn traced_partition_run_yields_a_complete_causal_dag() {
    let traced = run_scenario_traced("partition", 1);
    assert!(traced.verdict.passed(), "baseline scenario passes: {:?}", traced.verdict);

    let analysis =
        Analysis::build(merge(traced.streams.iter().map(|(_, evs)| evs.clone()).collect()));
    // Every committed slot has a full phase timeline and a critical path
    // that terminates at a causal root.
    let committed: Vec<u64> = analysis.committed_slots().map(|(seq, _)| *seq).collect();
    assert!(committed.len() > 10, "a 3 s run commits plenty of slots ({})", committed.len());
    for seq in &committed {
        let slot = &analysis.slots[seq];
        assert!(slot.propose_at.is_some(), "slot {seq} has a propose");
        assert!(slot.commit_at.is_some(), "slot {seq} has a commit");
        let path = analysis.critical_path(*seq);
        assert!(path.len() >= 2, "slot {seq} path spans hops");
        // The path stays inside the slot's trace, except for a true causal
        // root at the head (e.g. the client request that seeded the batch).
        let trace = lazarus_obs::causal::slot_trace_id(*seq);
        assert!(
            path[0].parent_id == 0 || path[0].trace_id == trace,
            "slot {seq} path head is a root or in-trace"
        );
        assert!(path[1..].iter().all(|e| e.trace_id == trace), "slot {seq} path is in-trace");
        assert_eq!(path.last().unwrap().event, EventKind::Commit);
    }
    // No orphan events anywhere: the DAG is complete.
    assert!(
        analysis.orphans.is_empty(),
        "no dangling parents, got e.g. {}",
        analysis.orphans[0].to_jsonl()
    );
    // The partition fault plan leaves transport-visible scars.
    assert!(analysis.anomalies.drops > 0, "a 2|2 partition drops messages");
}

#[test]
fn traced_dump_and_analyzer_outputs_are_deterministic() {
    let a = run_scenario_traced("partition", 7);
    let b = run_scenario_traced("partition", 7);
    let dir_a = std::env::temp_dir().join(format!("lazarus_trace_a_{}", std::process::id()));
    let dir_b = std::env::temp_dir().join(format!("lazarus_trace_b_{}", std::process::id()));
    dump_traced(&dir_a, &a.streams).expect("dump a");
    dump_traced(&dir_b, &b.streams).expect("dump b");
    for file in ["replica_0.jsonl", "replica_3.jsonl", "trace_summary.json", "trace_chrome.json"] {
        let body_a = std::fs::read(dir_a.join(file)).expect("read a");
        let body_b = std::fs::read(dir_b.join(file)).expect("read b");
        assert_eq!(body_a, body_b, "{file} is byte-identical across reruns");
        assert!(!body_a.is_empty(), "{file} has content");
    }
    // The dumped streams survive the validating loader and rebuild the
    // same analysis.
    let streams = load_dir(&dir_a).expect("every dumped line passes the schema validator");
    let reloaded = Analysis::build(merge(streams.into_iter().map(|(_, evs)| evs).collect()));
    let direct = Analysis::build(merge(a.streams.iter().map(|(_, evs)| evs.clone()).collect()));
    assert_eq!(reloaded.summary_json().to_json(), direct.summary_json().to_json());
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn analyzer_anomaly_counts_match_replica_metrics() {
    // A crashed-and-restarted leader forces view changes and help
    // re-votes; both surface once as flight events and once as counters.
    let traced = run_scenario_traced("leader-crash", 3);
    let analysis =
        Analysis::build(merge(traced.streams.iter().map(|(_, evs)| evs.clone()).collect()));
    let view_changes = counter(&traced.snapshot, "bft_view_changes_total");
    let help_revotes = counter(&traced.snapshot, "bft_help_revotes_total");
    assert!(view_changes > 0, "a leader crash forces a view change");
    assert_eq!(analysis.anomalies.view_changes, view_changes, "view-change counts agree");
    assert_eq!(analysis.anomalies.help_revotes, help_revotes, "help-revote counts agree");
    // Every completed transfer the metrics saw started as a CstStart
    // flight event; fetches may outnumber completions.
    assert!(
        analysis.anomalies.cst_fetches >= counter(&traced.snapshot, "bft_state_transfers_total"),
        "cst fetches are at least the completed transfers"
    );
}
