//! Criterion microbenchmarks for the performance-critical components:
//! crypto, scoring, risk evaluation, clustering, the consensus critical
//! path, the application services, and the discrete-event simulator itself.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use bytes::Bytes;
use lazarus_apps::kvs::{KvsOp, KvsService};
use lazarus_bft::client::Client;
use lazarus_bft::crypto::{hmac_sha256, sha256, Digest};
use lazarus_bft::service::Service;
use lazarus_bft::testkit::{TestCluster, TEST_SECRET};
use lazarus_bft::types::ClientId;
use lazarus_nlp::VulnClusters;
use lazarus_osint::catalog::study_oses;
use lazarus_osint::date::Date;
use lazarus_osint::feed::NvdFeed;
use lazarus_osint::kb::KnowledgeBase;
use lazarus_osint::synth::{SyntheticWorld, WorldConfig};
use lazarus_risk::oracle::RiskOracle;
use lazarus_risk::score::ScoreParams;
use lazarus_risk::strategies::{for_each_combination, min_config_risk};

fn world() -> SyntheticWorld {
    let mut cfg = WorldConfig::paper_study(77);
    cfg.start = Date::from_ymd(2016, 1, 1);
    cfg.end = Date::from_ymd(2018, 1, 1);
    SyntheticWorld::generate(cfg)
}

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let data = vec![0xABu8; 1024];
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("sha256_1k", |b| b.iter(|| sha256(std::hint::black_box(&data))));
    g.bench_function("hmac_sha256_1k", |b| {
        b.iter(|| hmac_sha256(b"key", std::hint::black_box(&data)))
    });
    g.bench_function("digest_of_parts", |b| {
        b.iter(|| Digest::of_parts(&[std::hint::black_box(&data), b"tail"]))
    });
    g.finish();
}

fn bench_feed_parsing(c: &mut Criterion) {
    let world = world();
    let feeds = world.nvd_feeds();
    let biggest = feeds.iter().max_by_key(|f| f.len()).unwrap().clone();
    let mut g = c.benchmark_group("osint");
    g.throughput(Throughput::Bytes(biggest.len() as u64));
    g.bench_function("nvd_feed_parse", |b| {
        b.iter(|| {
            NvdFeed::parse(std::hint::black_box(&biggest)).unwrap().to_vulnerabilities().unwrap()
        })
    });
    g.finish();
}

fn bench_risk(c: &mut Criterion) {
    let world = world();
    let kb: KnowledgeBase = world.vulnerabilities.iter().cloned().collect();
    let clusters = VulnClusters::build(&world.vulnerabilities, 9);
    let universe = study_oses();
    let oracle = RiskOracle::build(&kb, &clusters, &universe, ScoreParams::paper());
    let day = Date::from_ymd(2018, 1, 1);
    let mut g = c.benchmark_group("risk");
    g.bench_function("oracle_build", |b| {
        b.iter(|| RiskOracle::build(&kb, &clusters, &universe, ScoreParams::paper()))
    });
    g.bench_function("daily_matrix", |b| b.iter(|| oracle.matrix(std::hint::black_box(day))));
    let matrix = oracle.matrix(day);
    g.bench_function("config_risk", |b| {
        b.iter(|| matrix.risk(std::hint::black_box(&[0usize, 5, 10, 15])))
    });
    g.bench_function("min_config_risk_exhaustive", |b| b.iter(|| min_config_risk(&matrix, 4)));
    g.bench_function("combinations_21_choose_4", |b| {
        b.iter(|| {
            let mut count = 0u32;
            for_each_combination(21, 4, |_| count += 1);
            count
        })
    });
    g.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let world = world();
    let corpus: Vec<_> = world.vulnerabilities.iter().take(300).cloned().collect();
    let mut g = c.benchmark_group("clustering");
    g.sample_size(10);
    g.bench_function("kmeans_300_docs_k40", |b| {
        b.iter(|| VulnClusters::build_with_k(&corpus, 40, 7))
    });
    g.finish();
}

fn bench_consensus(c: &mut Criterion) {
    let mut g = c.benchmark_group("consensus");
    g.bench_function("ordered_op_4_replicas", |b| {
        b.iter_batched(
            || {
                let cluster = TestCluster::new(4, 100_000);
                let client = Client::new(ClientId(1), cluster.membership(), TEST_SECRET);
                (cluster, client)
            },
            |(mut cluster, mut client)| cluster.run_client_op(&mut client, b"bench"),
            BatchSize::SmallInput,
        )
    });
    // steady-state: one pre-warmed cluster, many ops
    g.bench_function("ordered_op_steady_state", |b| {
        let mut cluster = TestCluster::new(4, 100_000);
        let mut client = Client::new(ClientId(1), cluster.membership(), TEST_SECRET);
        cluster.run_client_op(&mut client, b"warm");
        b.iter(|| cluster.run_client_op(&mut client, b"bench"));
    });
    g.finish();
}

fn bench_threaded_runtime(c: &mut Criterion) {
    use lazarus_bft::runtime::ThreadCluster;
    use lazarus_bft::service::CounterService;
    use std::time::Duration;
    let mut g = c.benchmark_group("threaded_runtime");
    g.sample_size(20);
    let cluster = ThreadCluster::start(4, 100_000, CounterService::new);
    let mut client = cluster.client(1);
    client.invoke(Bytes::from_static(b"warm"), Duration::from_secs(5)).expect("warm-up");
    g.bench_function("wallclock_ordered_op", |b| {
        b.iter(|| {
            client.invoke(Bytes::from_static(b"bench"), Duration::from_secs(5)).expect("completes")
        })
    });
    g.finish();
    cluster.shutdown();
}

fn bench_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("apps");
    let mut kvs = KvsService::new();
    let put = KvsOp::Put { key: b"key".to_vec(), value: vec![0; 1024] }.encode();
    let get = KvsOp::Get { key: b"key".to_vec() }.encode();
    g.bench_function("kvs_put_1k", |b| {
        b.iter(|| kvs.execute(ClientId(1), std::hint::black_box(&put)))
    });
    g.bench_function("kvs_get_1k", |b| {
        b.iter(|| kvs.execute(ClientId(1), std::hint::black_box(&get)))
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    use lazarus_bft::service::CounterService;
    use lazarus_bft::types::{Epoch, Membership, ReplicaId};
    use lazarus_testbed::cluster::{SimCluster, SimConfig};
    use lazarus_testbed::oscatalog::PerfProfile;
    use lazarus_testbed::sim::MS;
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("sim_100ms_40_clients", |b| {
        b.iter(|| {
            let membership = Membership::new(Epoch(0), (0..4).map(ReplicaId).collect());
            let mut sim = SimCluster::new(SimConfig::default());
            for r in 0..4 {
                sim.add_node(
                    ReplicaId(r),
                    PerfProfile::bare_metal(),
                    membership.clone(),
                    Box::new(CounterService::new()),
                );
            }
            sim.add_clients(1, 40, membership, |_| Bytes::new());
            sim.run_until(100 * MS);
            sim.metrics.completed()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_feed_parsing,
    bench_risk,
    bench_clustering,
    bench_consensus,
    bench_threaded_runtime,
    bench_apps,
    bench_simulator
);
criterion_main!(benches);
