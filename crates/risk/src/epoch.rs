//! The learning/execution evaluation engine of paper §6.
//!
//! The experiments "emulate live executions of the system by dividing the
//! collected data into two periods": a *learning phase* (all vulnerabilities
//! up to the execution window — they seed the knowledge base and the
//! description clusters) and an *execution phase* replayed day by day. On
//! each day the strategy under test runs its monitoring round, then the
//! engine checks — against the *ground-truth* campaigns of the synthetic
//! world, not the possibly-understated CVE listings — whether "a single
//! vulnerability comes out affecting at least f+1 OSes executing at that
//! time", counting an OS only while it is unpatched. A run stops at its
//! first compromise.

use rand::rngs::StdRng;
use rand::SeedableRng;

use lazarus_nlp::VulnClusters;
use lazarus_osint::catalog::OsVersion;
use lazarus_osint::date::Date;
use lazarus_osint::kb::KnowledgeBase;
use lazarus_osint::synth::SyntheticWorld;

use crate::oracle::{RiskMatrix, RiskOracle};
use crate::score::ScoreParams;
use crate::strategies::{min_config_risk, CommonBest, CvssBest, DayView, StrategyKind};

/// Parameters of an evaluation (paper §6 defaults via [`EpochConfig::paper`]).
#[derive(Debug, Clone)]
pub struct EpochConfig {
    /// Replica-set size (paper: 4).
    pub n: usize,
    /// Fault threshold (paper: 1) — compromise means `f + 1` hit replicas.
    pub f: usize,
    /// Threshold slack for the Algorithm-1 strategies: each day's risk
    /// threshold is the minimum achievable risk plus this slack.
    pub threshold: f64,
    /// Seed for the description clustering.
    pub cluster_seed: u64,
    /// Cap on stored optimal configurations for the Common baseline.
    pub common_cap: usize,
}

impl EpochConfig {
    /// The paper's setting: `n = 4`, `f = 1`.
    pub fn paper() -> EpochConfig {
        EpochConfig { n: 4, f: 1, threshold: 4.0, cluster_seed: 4242, common_cap: 128 }
    }
}

/// Ground-truth view of one campaign for compromise checking.
#[derive(Debug, Clone)]
struct ThreatView {
    campaign_id: usize,
    published: Date,
    /// Bit `i` ⇔ universe OS `i` is truly affected.
    mask: u64,
    /// Per-OS protection date (earliest patch covering that OS), when any.
    protect: Vec<Option<Date>>,
}

impl ThreatView {
    /// Number of `config` replicas hit and unpatched on `day`.
    fn exposed(&self, config: &[usize], day: Date) -> usize {
        config
            .iter()
            .filter(|&&r| self.mask & (1 << r) != 0 && self.protect[r].is_none_or(|d| d > day))
            .count()
    }
}

/// Aggregate over the runs of one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Total runs executed.
    pub runs: usize,
    /// Runs that ended compromised.
    pub compromised: usize,
    /// Total reconfigurations across all runs (diagnostic).
    pub reconfigurations: usize,
}

impl RunStats {
    /// Percentage of compromised runs, `0.0..=100.0`.
    pub fn compromised_pct(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            100.0 * self.compromised as f64 / self.runs as f64
        }
    }
}

/// Precomputed per-day state shared by every run of a window.
#[derive(Debug)]
struct DayData {
    date: Date,
    lazarus: RiskMatrix,
    cvss: RiskMatrix,
    common: CommonBest,
    cvss_best: CvssBest,
    min_lazarus_risk: f64,
}

/// The evaluation engine over one synthetic world.
#[derive(Debug)]
pub struct Evaluator {
    universe: Vec<OsVersion>,
    oracle: RiskOracle,
    threats: Vec<ThreatView>,
    cfg: EpochConfig,
}

impl Evaluator {
    /// Builds the engine: ingests the world's public record into a knowledge
    /// base, clusters the descriptions, and freezes the ground-truth threat
    /// views.
    ///
    /// The live system re-clusters on every monitoring round as new CVEs
    /// arrive. Since K-means over the corpus is deterministic, the engine
    /// precomputes one clustering over the whole corpus as an optimization;
    /// the publication-date gate in the oracle still ensures a vulnerability
    /// contributes no risk before its disclosure day.
    ///
    /// # Panics
    ///
    /// Panics if the world's OS catalog exceeds 64 versions.
    pub fn new(world: &SyntheticWorld, cfg: EpochConfig) -> Evaluator {
        let universe = world.config.oses.clone();
        let kb: KnowledgeBase = world.vulnerabilities.iter().cloned().collect();
        let clusters = VulnClusters::build(&world.vulnerabilities, cfg.cluster_seed);
        let oracle = RiskOracle::build(&kb, &clusters, &universe, ScoreParams::paper());

        let threats = world
            .campaigns
            .iter()
            .map(|c| {
                let mut mask = 0u64;
                let mut protect: Vec<Option<Date>> = vec![None; universe.len()];
                for (i, os) in universe.iter().enumerate() {
                    if c.hits(*os) {
                        mask |= 1 << i;
                        let cpe = os.to_cpe();
                        protect[i] = c
                            .cves
                            .iter()
                            .filter_map(|cve| kb.get(*cve))
                            .filter(|v| v.affects(&cpe))
                            .filter_map(|v| v.patch_date_for(&cpe))
                            .min();
                    }
                }
                ThreatView { campaign_id: c.id, published: c.published, mask, protect }
            })
            .collect();

        Evaluator { universe, oracle, threats, cfg }
    }

    /// The OS universe indices map (shared with the oracle).
    pub fn universe(&self) -> &[OsVersion] {
        &self.universe
    }

    /// Read access to the built oracle (for harnesses and diagnostics).
    pub fn oracle(&self) -> &RiskOracle {
        &self.oracle
    }

    fn day_data(&self, window: (Date, Date)) -> Vec<DayData> {
        let (start, end) = window;
        let raw = ScoreParams::raw_cvss();
        // Each day's matrices are independent; fan out and collect in date
        // order so the result matches the sequential computation exactly.
        crate::par::par_map_indexed((end - start).max(0) as usize, |offset| {
            let date = start + offset as i32;
            let lazarus = self.oracle.matrix(date);
            let cvss = self.oracle.matrix_with(&raw, date);
            let common = CommonBest::compute(&lazarus, self.cfg.n, self.cfg.common_cap);
            let cvss_best = CvssBest::compute(&cvss, self.cfg.n, self.cfg.common_cap);
            let min_lazarus_risk = min_config_risk(&lazarus, self.cfg.n);
            DayData { date, lazarus, cvss, common, cvss_best, min_lazarus_risk }
        })
    }

    /// Runs `runs` independent executions of `kind` over `[start, end)`.
    ///
    /// `threat_scope` selects which campaigns can compromise a run:
    /// * [`ThreatScope::PublishedInWindow`] — the Figure 5 rule
    ///   ("vulnerabilities that were published in that month");
    /// * [`ThreatScope::Campaigns`] — specific campaign ids (Figure 6's
    ///   notable attacks).
    pub fn run_window(
        &self,
        kind: StrategyKind,
        window: (Date, Date),
        threat_scope: &ThreatScope,
        runs: usize,
        base_seed: u64,
    ) -> RunStats {
        self.run_window_observed(kind, window, threat_scope, runs, base_seed, None)
    }

    /// [`run_window`](Self::run_window), additionally recording per-strategy
    /// counters (`risk_runs_total`, `risk_compromised_total`,
    /// `risk_reconfigurations_total`) and a days-to-first-compromise
    /// histogram (`risk_days_to_compromise`) into `obs` when given.
    ///
    /// All recording happens on the aggregation side, in seed order, after
    /// the parallel fan-out — so the registry contents are a pure function
    /// of `base_seed` regardless of `LAZARUS_THREADS`.
    pub fn run_window_observed(
        &self,
        kind: StrategyKind,
        window: (Date, Date),
        threat_scope: &ThreatScope,
        runs: usize,
        base_seed: u64,
        obs: Option<&lazarus_obs::Obs>,
    ) -> RunStats {
        let days = self.day_data(window);
        let active: Vec<&ThreatView> = self
            .threats
            .iter()
            .filter(|t| match threat_scope {
                ThreatScope::PublishedInWindow => t.published >= window.0 && t.published < window.1,
                ThreatScope::Campaigns(ids) => ids.contains(&t.campaign_id),
            })
            .collect();

        // Each run is an independent trial with its own seed-derived RNG, so
        // the outer loop fans out across the worker pool; aggregating the
        // per-run results in seed order keeps the stats a pure function of
        // `base_seed` regardless of scheduling.
        fn view(d: &DayData) -> DayView<'_> {
            DayView {
                date: d.date,
                lazarus: &d.lazarus,
                cvss: &d.cvss,
                common_best: &d.common,
                cvss_best: &d.cvss_best,
                min_lazarus_risk: d.min_lazarus_risk,
            }
        }
        let per_run = |run: usize| -> (Option<usize>, usize) {
            let mut rng =
                StdRng::seed_from_u64(base_seed ^ (run as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut strategy = kind.make(self.cfg.threshold);
            let Some(first) = days.first() else { return (None, 0) };
            let mut sets = strategy.init(&view(first), self.universe.len(), self.cfg.n, &mut rng);
            let mut compromised_on = None;
            let mut reconfigurations = 0;
            for (i, day) in days.iter().enumerate() {
                if i > 0 {
                    let before = sets.config.clone();
                    strategy.daily(&mut sets, &view(day), &mut rng);
                    if sets.config != before {
                        reconfigurations += 1;
                    }
                }
                if active.iter().any(|t| {
                    t.published <= day.date && t.exposed(&sets.config, day.date) > self.cfg.f
                }) {
                    compromised_on = Some(i);
                    break;
                }
            }
            (compromised_on, reconfigurations)
        };

        let mut stats = RunStats { runs, compromised: 0, reconfigurations: 0 };
        let labels = [("strategy", kind.name())];
        for (compromised_on, reconfigurations) in crate::par::par_map_indexed(runs, per_run) {
            if let Some(day) = compromised_on {
                stats.compromised += 1;
                if let Some(obs) = obs {
                    obs.registry
                        .histogram_with("risk_days_to_compromise", &labels)
                        .observe(day as u64 + 1);
                }
            }
            stats.reconfigurations += reconfigurations;
        }
        if let Some(obs) = obs {
            let reg = &obs.registry;
            reg.counter_with("risk_runs_total", &labels).add(stats.runs as u64);
            reg.counter_with("risk_compromised_total", &labels).add(stats.compromised as u64);
            reg.counter_with("risk_reconfigurations_total", &labels)
                .add(stats.reconfigurations as u64);
        }
        stats
    }

    /// The month windows `[first, last]` (inclusive month indices) of the
    /// Figure 5 protocol: one `(start, end)` pair per calendar month.
    pub fn month_windows(year: i32, first: u32, last: u32) -> Vec<(Date, Date)> {
        (first..=last)
            .map(|m| {
                let start = Date::from_ymd(year, m, 1);
                (start, start.first_of_next_month())
            })
            .collect()
    }
}

/// Which campaigns can compromise a run (see [`Evaluator::run_window`]).
#[derive(Debug, Clone)]
pub enum ThreatScope {
    /// Campaigns first published inside the evaluation window (Figure 5).
    PublishedInWindow,
    /// An explicit campaign-id list (Figure 6 attacks).
    Campaigns(Vec<usize>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazarus_osint::synth::{attacks, SyntheticWorld, WorldConfig};

    fn world() -> SyntheticWorld {
        // Seed choice matters: the synthetic world is a pure function of the
        // RNG stream, and a handful of seeds produce degenerate worlds where
        // one campaign covers every lineage and *every* strategy is
        // compromised. Seed 9 yields a representative world (Lazarus ≈ 0
        // compromised, Random/Equal well above it), matching the paper shape.
        let mut config = WorldConfig::paper_study(9);
        config.start = Date::from_ymd(2017, 1, 1);
        config.end = Date::from_ymd(2018, 3, 1);
        SyntheticWorld::generate(config)
    }

    fn small_cfg() -> EpochConfig {
        EpochConfig { common_cap: 32, ..EpochConfig::paper() }
    }

    #[test]
    fn month_windows_cover_the_execution_phase() {
        let w = Evaluator::month_windows(2018, 1, 8);
        assert_eq!(w.len(), 8);
        assert_eq!(w[0], (Date::from_ymd(2018, 1, 1), Date::from_ymd(2018, 2, 1)));
        assert_eq!(w[7], (Date::from_ymd(2018, 8, 1), Date::from_ymd(2018, 9, 1)));
    }

    #[test]
    fn equal_is_compromised_more_than_lazarus() {
        let world = world();
        let eval = Evaluator::new(&world, small_cfg());
        let window = (Date::from_ymd(2018, 1, 1), Date::from_ymd(2018, 2, 1));
        let runs = 40;
        let equal =
            eval.run_window(StrategyKind::Equal, window, &ThreatScope::PublishedInWindow, runs, 1);
        let lazarus = eval.run_window(
            StrategyKind::Lazarus,
            window,
            &ThreatScope::PublishedInWindow,
            runs,
            1,
        );
        assert_eq!(equal.runs, runs);
        assert!(
            lazarus.compromised <= equal.compromised,
            "lazarus {} vs equal {}",
            lazarus.compromised,
            equal.compromised
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let world = world();
        let eval = Evaluator::new(&world, small_cfg());
        let window = (Date::from_ymd(2018, 1, 1), Date::from_ymd(2018, 1, 15));
        let a =
            eval.run_window(StrategyKind::Random, window, &ThreatScope::PublishedInWindow, 20, 9);
        let b =
            eval.run_window(StrategyKind::Random, window, &ThreatScope::PublishedInWindow, 20, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn attack_scope_limits_threats() {
        let mut world = world();
        let next_id = world.campaigns.len();
        let (campaign, vulns) =
            attacks::wannacry(next_id, &world.config.oses.clone(), Date::from_ymd(2018, 2, 10));
        let cid = campaign.id;
        world.inject(campaign, vulns);
        let eval = Evaluator::new(&world, small_cfg());
        let window = (Date::from_ymd(2018, 1, 1), Date::from_ymd(2018, 3, 1));
        // Equal on Windows gets wiped by WannaCry; Lazarus mostly survives.
        let equal =
            eval.run_window(StrategyKind::Equal, window, &ThreatScope::Campaigns(vec![cid]), 60, 3);
        let lazarus = eval.run_window(
            StrategyKind::Lazarus,
            window,
            &ThreatScope::Campaigns(vec![cid]),
            60,
            3,
        );
        // 4 of 21 OSes are Windows → ≈ 19% of Equal runs die.
        assert!(equal.compromised > 0, "some Equal runs picked Windows");
        assert!(lazarus.compromised <= equal.compromised);
    }

    #[test]
    fn patch_protection_is_honoured() {
        // A world with a single campaign, patched everywhere immediately:
        // nobody gets compromised after the patch date.
        let mut config = WorldConfig::paper_study(3);
        config.start = Date::from_ymd(2018, 1, 1);
        config.end = Date::from_ymd(2018, 1, 2);
        config.kernel_rate = 0.0;
        config.family_rate = 0.0;
        config.package_rate = 0.0;
        config.app_rate = 0.0;
        let mut world = SyntheticWorld::generate(config);
        assert!(world.campaigns.is_empty());
        let oses = world.config.oses.clone();
        let (mut campaign, mut vulns) = attacks::wannacry(0, &oses, Date::from_ymd(2018, 1, 5));
        // Patch every CVE on day one.
        for v in &mut vulns {
            for p in &mut v.patches {
                p.released = Date::from_ymd(2018, 1, 5);
            }
        }
        campaign.published = Date::from_ymd(2018, 1, 5);
        world.inject(campaign, vulns);
        let eval = Evaluator::new(&world, small_cfg());
        let stats = eval.run_window(
            StrategyKind::Equal,
            (Date::from_ymd(2018, 1, 1), Date::from_ymd(2018, 2, 1)),
            &ThreatScope::PublishedInWindow,
            50,
            11,
        );
        assert_eq!(stats.compromised, 0, "instant patches mean no compromise");
    }

    #[test]
    fn observed_window_mirrors_stats_into_registry() {
        let world = world();
        let eval = Evaluator::new(&world, small_cfg());
        let window = (Date::from_ymd(2018, 1, 1), Date::from_ymd(2018, 2, 1));
        let obs = lazarus_obs::Obs::unclocked();
        let stats = eval.run_window_observed(
            StrategyKind::Equal,
            window,
            &ThreatScope::PublishedInWindow,
            30,
            1,
            Some(&obs),
        );
        let labels = [("strategy", "Equal")];
        let reg = &obs.registry;
        assert_eq!(reg.counter_with("risk_runs_total", &labels).get(), 30);
        assert_eq!(
            reg.counter_with("risk_compromised_total", &labels).get(),
            stats.compromised as u64
        );
        let hist = reg.histogram_with("risk_days_to_compromise", &labels).snapshot();
        assert_eq!(hist.count, stats.compromised as u64);
        // Every compromise day is inside the 31-day window.
        assert!(hist.max <= 31);
        // The unobserved path returns identical stats.
        let plain =
            eval.run_window(StrategyKind::Equal, window, &ThreatScope::PublishedInWindow, 30, 1);
        assert_eq!(plain, stats);
    }

    #[test]
    fn empty_window_yields_no_compromise() {
        let world = world();
        let eval = Evaluator::new(&world, small_cfg());
        let window = (Date::from_ymd(2018, 1, 1), Date::from_ymd(2018, 1, 1));
        let stats =
            eval.run_window(StrategyKind::Random, window, &ThreatScope::PublishedInWindow, 5, 0);
        assert_eq!(stats.compromised, 0);
    }
}
