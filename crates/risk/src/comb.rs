//! Combination enumeration shared by Algorithm 1 and the strategies.

/// Visits every `k`-combination of `0..n` (lexicographic order).
pub fn for_each_combination(n: usize, k: usize, mut f: impl FnMut(&[usize])) {
    if k > n {
        return;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        f(&idx);
        // advance
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in (i + 1)..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Number of `k`-combinations of `n` (saturating).
pub fn combination_count(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let mut result: usize = 1;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(combination_count(21, 4), 5985);
        assert_eq!(combination_count(4, 4), 1);
        assert_eq!(combination_count(3, 5), 0);
        assert_eq!(combination_count(64, 4), 635_376);
    }
}
