//! Algorithm 1: diversity-aware replica-set reconfiguration.
//!
//! A faithful implementation of the paper's Algorithm 1 over the
//! CONFIG / POOL / QUARANTINE partition:
//!
//! * when `risk(CONFIG) ≥ threshold`, every pool replica is tried as the
//!   `n`-th element of every `(n-1)`-subset of CONFIG; all candidates whose
//!   risk falls below the threshold are collected and one is picked *at
//!   random* (so inspecting POOL does not predict the next CONFIG);
//! * otherwise, the replica with the highest average vulnerability score is
//!   replaced if that average reaches HIGH (CVSS ≥ 7.0);
//! * the replaced replica goes to QUARANTINE, where it waits until patched
//!   before re-joining POOL.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use lazarus_osint::cvss::Severity;

use crate::comb::{combination_count, for_each_combination};
use crate::oracle::RiskMatrix;

/// The CONFIG / POOL / QUARANTINE partition of the replica universe.
/// Elements are universe indices (see [`crate::oracle::RiskOracle`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaSets {
    /// Replicas currently executing (the CONFIG).
    pub config: Vec<usize>,
    /// Replicas available for selection (the POOL).
    pub pool: Vec<usize>,
    /// Replicas waiting for patches (the QUARANTINE).
    pub quarantine: Vec<usize>,
}

impl ReplicaSets {
    /// Builds the initial partition: `config` runs, everything else in the
    /// universe is pooled.
    ///
    /// # Panics
    ///
    /// Panics if `config` contains an index `≥ universe_size`.
    pub fn new(config: Vec<usize>, universe_size: usize) -> ReplicaSets {
        assert!(config.iter().all(|&r| r < universe_size), "config index out of range");
        let pool = (0..universe_size).filter(|r| !config.contains(r)).collect();
        ReplicaSets { config, pool, quarantine: Vec::new() }
    }

    /// Number of running replicas (`n`).
    pub fn n(&self) -> usize {
        self.config.len()
    }

    /// Checks the partition invariant: the three sets are pairwise disjoint
    /// (ignoring intentional CONFIG duplicates, which only the Equal
    /// baseline produces).
    pub fn is_partition(&self) -> bool {
        let in_pool = |r: &usize| self.pool.contains(r);
        let in_quarantine = |r: &usize| self.quarantine.contains(r);
        !self.config.iter().any(|r| in_pool(r) || in_quarantine(r))
            && !self.pool.iter().any(in_quarantine)
    }
}

/// What a monitoring round did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorOutcome {
    /// Risk was acceptable and no replica exceeded the average-score bar.
    NoChange,
    /// A replica was swapped out.
    Reconfigured {
        /// Universe index removed (now quarantined).
        removed: usize,
        /// Universe index added from the pool.
        added: usize,
        /// Why the swap happened.
        reason: ReconfigReason,
    },
    /// A reconfiguration was needed but no candidate stayed below the
    /// threshold (or the pool is empty) — the §4.4 corner case where an
    /// administrator should raise the threshold or release quarantined
    /// replicas.
    Exhausted,
}

/// The trigger that caused a reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigReason {
    /// `risk(CONFIG) ≥ threshold` (Algorithm 1, line 6).
    RiskAboveThreshold,
    /// A replica's average vulnerability score reached HIGH (line 22).
    HighAverageScore,
}

/// Algorithm 1 with its two tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reconfigurator {
    /// The risk threshold of lines 6/13/30.
    pub threshold: f64,
    /// The average-score bar of line 19 (paper: the HIGH CVSS rating, 7.0).
    pub high_score: f64,
}

impl Default for Reconfigurator {
    fn default() -> Self {
        Reconfigurator { threshold: 20.0, high_score: Severity::High.floor() }
    }
}

impl Reconfigurator {
    /// Creates a reconfigurator with the given risk threshold and the
    /// paper's HIGH bar.
    pub fn with_threshold(threshold: f64) -> Reconfigurator {
        Reconfigurator { threshold, ..Default::default() }
    }

    /// One `Monitor()` round (Algorithm 1, lines 5–37).
    pub fn monitor(
        &self,
        sets: &mut ReplicaSets,
        matrix: &RiskMatrix,
        rng: &mut StdRng,
    ) -> MonitorOutcome {
        let outcome = if matrix.risk(&sets.config) >= self.threshold {
            self.replace_for_risk(sets, matrix, rng)
        } else {
            self.replace_for_average(sets, matrix, rng)
        };
        self.release_quarantine(sets, matrix);
        outcome
    }

    /// Lines 6–16: risk at/above threshold — try every pool replica in every
    /// (n−1)-combination, gather sub-threshold candidates, pick one randomly.
    fn replace_for_risk(
        &self,
        sets: &mut ReplicaSets,
        matrix: &RiskMatrix,
        rng: &mut StdRng,
    ) -> MonitorOutcome {
        let n = sets.n();
        let mut candidates: Vec<(Vec<usize>, usize, usize)> = Vec::new(); // (config', removed, added)
        for &r in &sets.pool {
            for omit in 0..n {
                let mut config = Vec::with_capacity(n);
                for (i, &member) in sets.config.iter().enumerate() {
                    if i != omit {
                        config.push(member);
                    }
                }
                config.push(r);
                if matrix.risk(&config) <= self.threshold {
                    candidates.push((config, sets.config[omit], r));
                }
            }
        }
        match candidates.choose(rng) {
            None => {
                // §4.4 corner case, automated: no single swap reaches the
                // threshold, but keep the system reconfiguring — take the
                // best-effort swap if it strictly improves the risk
                // ("greedy descent"; a few rounds reach a compliant set).
                let current = matrix.risk(&sets.config);
                let mut best: Option<(f64, Vec<usize>, usize, usize)> = None;
                for &r in &sets.pool {
                    for omit in 0..n {
                        let mut config = Vec::with_capacity(n);
                        for (i, &member) in sets.config.iter().enumerate() {
                            if i != omit {
                                config.push(member);
                            }
                        }
                        config.push(r);
                        let risk = matrix.risk(&config);
                        if risk < current && best.as_ref().is_none_or(|(b, ..)| risk < *b) {
                            best = Some((risk, config, sets.config[omit], r));
                        }
                    }
                }
                match best {
                    Some((_, config, removed, added)) => {
                        self.update_sets(sets, config, removed, added);
                        MonitorOutcome::Reconfigured {
                            removed,
                            added,
                            reason: ReconfigReason::RiskAboveThreshold,
                        }
                    }
                    None => MonitorOutcome::Exhausted,
                }
            }
            Some((config, removed, added)) => {
                let (removed, added) = (*removed, *added);
                self.update_sets(sets, config.clone(), removed, added);
                MonitorOutcome::Reconfigured {
                    removed,
                    added,
                    reason: ReconfigReason::RiskAboveThreshold,
                }
            }
        }
    }

    /// Lines 17–33: risk acceptable — replace the replica with the highest
    /// average vulnerability score if it reaches HIGH.
    fn replace_for_average(
        &self,
        sets: &mut ReplicaSets,
        matrix: &RiskMatrix,
        rng: &mut StdRng,
    ) -> MonitorOutcome {
        let mut to_remove: Option<usize> = None;
        let mut max_score = self.high_score;
        for (slot, &r) in sets.config.iter().enumerate() {
            let avg = matrix.avg[r];
            if avg >= max_score {
                to_remove = Some(slot);
                max_score = avg;
            }
        }
        let Some(slot) = to_remove else {
            return MonitorOutcome::NoChange;
        };
        let removed = sets.config[slot];
        let mut candidates: Vec<(Vec<usize>, usize)> = Vec::new();
        for &r in &sets.pool {
            let mut config = sets.config.clone();
            config[slot] = r;
            if matrix.risk(&config) <= self.threshold {
                candidates.push((config, r));
            }
        }
        match candidates.choose(rng) {
            None => MonitorOutcome::Exhausted,
            Some((config, added)) => {
                let added = *added;
                self.update_sets(sets, config.clone(), removed, added);
                MonitorOutcome::Reconfigured {
                    removed,
                    added,
                    reason: ReconfigReason::HighAverageScore,
                }
            }
        }
    }

    /// Lines 38–42 (`updateSets`).
    fn update_sets(
        &self,
        sets: &mut ReplicaSets,
        config: Vec<usize>,
        removed: usize,
        added: usize,
    ) {
        sets.pool.retain(|&r| r != added);
        sets.quarantine.push(removed);
        sets.config = config;
    }

    /// Lines 34–37: patched quarantined replicas re-join the pool.
    fn release_quarantine(&self, sets: &mut ReplicaSets, matrix: &RiskMatrix) {
        let mut kept = Vec::with_capacity(sets.quarantine.len());
        for &r in &sets.quarantine {
            if matrix.patched[r] {
                sets.pool.push(r);
            } else {
                kept.push(r);
            }
        }
        sets.quarantine = kept;
    }

    /// Picks an initial configuration of `n` replicas: a random candidate
    /// among the configurations whose risk is at or below the threshold, or
    /// the minimum-risk configuration when none qualifies. The enumeration
    /// is exhaustive for tractable universes (≤ ~50k combinations) and
    /// falls back to random sampling beyond that.
    ///
    /// # Panics
    ///
    /// Panics if the universe is smaller than `n`.
    pub fn initial_config(&self, matrix: &RiskMatrix, n: usize, rng: &mut StdRng) -> Vec<usize> {
        let universe = matrix.len();
        assert!(universe >= n, "universe smaller than n");
        let mut best: Option<(f64, Vec<usize>)> = None;
        let mut good: Vec<Vec<usize>> = Vec::new();
        let consider =
            |config: &[usize], best: &mut Option<(f64, Vec<usize>)>, good: &mut Vec<Vec<usize>>| {
                let risk = matrix.risk(config);
                if risk <= self.threshold {
                    good.push(config.to_vec());
                }
                if best.as_ref().is_none_or(|(b, _)| risk < *b) {
                    *best = Some((risk, config.to_vec()));
                }
            };
        if combination_count(universe, n) <= 50_000 {
            for_each_combination(universe, n, |config| {
                consider(config, &mut best, &mut good);
            });
        } else {
            // Random sampling keeps this bounded for huge universes.
            let samples = 2048.max(universe * 8);
            let mut all: Vec<usize> = (0..universe).collect();
            for _ in 0..samples {
                all.shuffle(rng);
                let config: Vec<usize> = all[..n].to_vec();
                consider(&config, &mut best, &mut good);
            }
        }
        if good.is_empty() {
            best.expect("nonempty enumeration").1
        } else {
            good[rng.gen_range(0..good.len())].clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::RiskOracle;
    use crate::score::ScoreParams;
    use lazarus_nlp::VulnClusters;
    use lazarus_osint::catalog::{OsFamily, OsVersion};
    use lazarus_osint::cvss::CvssV3;
    use lazarus_osint::date::Date;
    use lazarus_osint::kb::KnowledgeBase;
    use lazarus_osint::model::{AffectedPlatform, CveId, PatchRecord, Vulnerability};
    use rand::SeedableRng;

    fn universe() -> Vec<OsVersion> {
        vec![
            OsVersion::new(OsFamily::Ubuntu, "16.04"),
            OsVersion::new(OsFamily::Debian, "8"),
            OsVersion::new(OsFamily::FreeBsd, "11"),
            OsVersion::new(OsFamily::Windows, "10"),
            OsVersion::new(OsFamily::Solaris, "11"),
            OsVersion::new(OsFamily::OpenBsd, "6.1"),
        ]
    }

    fn vuln(id: u32, oses: &[OsVersion], patched: Option<Date>) -> Vulnerability {
        let mut v = Vulnerability::new(
            CveId::new(2018, id),
            Date::from_ymd(2018, 1, 1),
            CvssV3::CRITICAL_RCE,
            format!("flaw {id}"),
        );
        for o in oses {
            v.affected.push(AffectedPlatform::exact(o.to_cpe()));
        }
        if let Some(d) = patched {
            for o in oses {
                v.patches.push(PatchRecord {
                    product: o.to_cpe(),
                    released: d,
                    advisory: "A".into(),
                });
            }
        }
        v
    }

    fn matrix_with(vulns: Vec<Vulnerability>, now: Date) -> crate::oracle::RiskMatrix {
        let u = universe();
        let kb: KnowledgeBase = vulns.into_iter().collect();
        RiskOracle::build(&kb, &VulnClusters::new(), &u, ScoreParams::paper()).matrix(now)
    }

    #[test]
    fn high_risk_pair_gets_broken_up() {
        let u = universe();
        // Ubuntu+Debian share three fresh criticals; FreeBSD/Windows clean.
        let m = matrix_with(
            vec![
                vuln(1, &[u[0], u[1]], None),
                vuln(2, &[u[0], u[1]], None),
                vuln(3, &[u[0], u[1]], None),
            ],
            Date::from_ymd(2018, 1, 2),
        );
        let mut sets = ReplicaSets::new(vec![0, 1, 2, 3], 6);
        let recon = Reconfigurator::with_threshold(10.0);
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = recon.monitor(&mut sets, &m, &mut rng);
        match outcome {
            MonitorOutcome::Reconfigured { removed, reason, .. } => {
                assert!(removed == 0 || removed == 1, "one of the risky pair leaves");
                assert_eq!(reason, ReconfigReason::RiskAboveThreshold);
            }
            other => panic!("expected reconfiguration, got {other:?}"),
        }
        assert!(m.risk(&sets.config) <= 10.0);
        assert!(sets.is_partition());
        assert_eq!(sets.quarantine.len(), 1);
    }

    #[test]
    fn low_risk_no_change() {
        let m = matrix_with(vec![], Date::from_ymd(2018, 1, 2));
        let mut sets = ReplicaSets::new(vec![0, 1, 2, 3], 6);
        let recon = Reconfigurator::with_threshold(10.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(recon.monitor(&mut sets, &m, &mut rng), MonitorOutcome::NoChange);
        assert_eq!(sets.config, vec![0, 1, 2, 3]);
    }

    #[test]
    fn high_average_score_triggers_swap() {
        let u = universe();
        // Windows (index 3) has two fresh criticals of its own — avg 9.8 —
        // but shares nothing, so risk stays at 0.
        let m = matrix_with(
            vec![vuln(1, &[u[3]], None), vuln(2, &[u[3]], None)],
            Date::from_ymd(2018, 1, 2),
        );
        let mut sets = ReplicaSets::new(vec![0, 1, 2, 3], 6);
        let recon = Reconfigurator::with_threshold(10.0);
        let mut rng = StdRng::seed_from_u64(3);
        match recon.monitor(&mut sets, &m, &mut rng) {
            MonitorOutcome::Reconfigured { removed, added, reason } => {
                assert_eq!(removed, 3);
                assert!(added == 4 || added == 5);
                assert_eq!(reason, ReconfigReason::HighAverageScore);
            }
            other => panic!("expected swap, got {other:?}"),
        }
        assert!(sets.quarantine.contains(&3));
    }

    #[test]
    fn average_below_high_is_tolerated() {
        let u = universe();
        // A medium-severity solo vulnerability (5.3) on Windows.
        let mut v = vuln(1, &[u[3]], None);
        v.cvss = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:L/I:N/A:N".parse().unwrap();
        let m = matrix_with(vec![v], Date::from_ymd(2018, 1, 2));
        let mut sets = ReplicaSets::new(vec![0, 1, 2, 3], 6);
        let recon = Reconfigurator::with_threshold(10.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(recon.monitor(&mut sets, &m, &mut rng), MonitorOutcome::NoChange);
    }

    #[test]
    fn exhausted_when_pool_cannot_help() {
        let u = universe();
        // Everything shares one weakness with everything: no candidate can
        // drop below a tiny threshold.
        let m = matrix_with(vec![vuln(1, &u, None), vuln(2, &u, None)], Date::from_ymd(2018, 1, 2));
        let mut sets = ReplicaSets::new(vec![0, 1, 2, 3], 6);
        let recon = Reconfigurator::with_threshold(1.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(recon.monitor(&mut sets, &m, &mut rng), MonitorOutcome::Exhausted);
        // Config unchanged on exhaustion.
        assert_eq!(sets.config, vec![0, 1, 2, 3]);
    }

    #[test]
    fn quarantine_released_once_patched() {
        let u = universe();
        let patch_day = Date::from_ymd(2018, 2, 1);
        let vulns =
            vec![vuln(1, &[u[0], u[1]], Some(patch_day)), vuln(2, &[u[0], u[1]], Some(patch_day))];
        // Day 1: unpatched → reconfigure, victim quarantined.
        let m1 = matrix_with(vulns.clone(), Date::from_ymd(2018, 1, 2));
        let mut sets = ReplicaSets::new(vec![0, 1, 2, 3], 6);
        let recon = Reconfigurator::with_threshold(10.0);
        let mut rng = StdRng::seed_from_u64(6);
        recon.monitor(&mut sets, &m1, &mut rng);
        assert_eq!(sets.quarantine.len(), 1);
        let quarantined = sets.quarantine[0];
        // Later: patches out → released back to the pool.
        let m2 = matrix_with(vulns, patch_day);
        recon.monitor(&mut sets, &m2, &mut rng);
        assert!(sets.quarantine.is_empty());
        assert!(sets.pool.contains(&quarantined));
        assert!(sets.is_partition());
    }

    #[test]
    fn randomized_choice_varies_with_seed() {
        let u = universe();
        let m = matrix_with(
            vec![vuln(1, &[u[0], u[1]], None), vuln(2, &[u[0], u[1]], None)],
            Date::from_ymd(2018, 1, 2),
        );
        let recon = Reconfigurator::with_threshold(10.0);
        let mut outcomes = std::collections::HashSet::new();
        for seed in 0..20 {
            let mut sets = ReplicaSets::new(vec![0, 1, 2, 3], 6);
            let mut rng = StdRng::seed_from_u64(seed);
            if let MonitorOutcome::Reconfigured { removed, added, .. } =
                recon.monitor(&mut sets, &m, &mut rng)
            {
                outcomes.insert((removed, added));
            }
        }
        assert!(outcomes.len() > 1, "selection should be randomized: {outcomes:?}");
    }

    #[test]
    fn initial_config_respects_threshold_when_possible() {
        let u = universe();
        let m = matrix_with(vec![vuln(1, &[u[0], u[1]], None)], Date::from_ymd(2018, 1, 2));
        let recon = Reconfigurator::with_threshold(5.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let config = recon.initial_config(&m, 4, &mut rng);
            assert_eq!(config.len(), 4);
            // distinct members
            let mut sorted = config.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4);
            assert!(m.risk(&config) <= 5.0, "config {config:?} risk {}", m.risk(&config));
        }
    }

    #[test]
    fn partition_invariant_maintained_over_many_rounds() {
        let u = universe();
        let vulns: Vec<Vulnerability> = (0..12)
            .map(|i| vuln(i, &[u[(i as usize) % 6], u[((i as usize) + 1) % 6]], None))
            .collect();
        let m = matrix_with(vulns, Date::from_ymd(2018, 1, 2));
        let recon = Reconfigurator::with_threshold(15.0);
        let mut rng = StdRng::seed_from_u64(10);
        let mut sets = ReplicaSets::new(recon.initial_config(&m, 4, &mut rng), 6);
        for _ in 0..50 {
            recon.monitor(&mut sets, &m, &mut rng);
            assert!(sets.is_partition());
            assert_eq!(sets.n(), 4);
            assert_eq!(sets.config.len() + sets.pool.len() + sets.quarantine.len(), 6);
        }
    }
}
