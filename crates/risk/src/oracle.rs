//! The risk oracle: precomputed pairwise shared-vulnerability knowledge.
//!
//! Eq. 5 sums, over every replica pair of a CONFIG, the scores of the
//! vulnerabilities in `V(ri, rj)` — the union of (i) vulnerabilities NVD
//! lists against both replicas and (ii) cluster-inferred shared weaknesses
//! (a vulnerability of `ri` whose description cluster also covers `rj`).
//!
//! [`RiskOracle`] flattens a [`KnowledgeBase`] + [`VulnClusters`] over a
//! fixed OS universe into bitmask form, so the simulation engine can
//! evaluate `risk(CONFIG)` for thousands of candidate configurations per
//! day. [`RiskMatrix`] further freezes the oracle at one date into an
//! `n × n` pair-score table, the unit the strategies actually consume.

use lazarus_nlp::VulnClusters;
use lazarus_osint::catalog::OsVersion;
use lazarus_osint::cpe::Cpe;
use lazarus_osint::date::Date;
use lazarus_osint::kb::KnowledgeBase;
use lazarus_osint::model::CveId;

use crate::score::ScoreParams;

/// A compact per-vulnerability view used for fast scoring.
#[derive(Debug, Clone)]
pub struct VulnView {
    /// CVE id.
    pub id: CveId,
    /// NVD publication date.
    pub published: Date,
    /// CVSS v3 base score.
    pub cvss: f64,
    /// Earliest patch availability (any product) — the Eq. 3 flag.
    pub patch_date: Option<Date>,
    /// Earliest public exploit — the Eq. 4 flag.
    pub exploit_date: Option<Date>,
    /// Bit `i` set ⇔ the vulnerability is listed against universe OS `i`.
    pub mask: u64,
    /// Union of `mask` over all same-cluster vulnerabilities.
    pub cluster_mask: u64,
    /// Per-OS earliest patch date (index-aligned with the universe).
    pub patch_by_os: Vec<Option<Date>>,
}

impl VulnView {
    /// Eq. 1 evaluated from the flattened dates.
    pub fn score(&self, params: &ScoreParams, now: Date) -> f64 {
        let patched = self.patch_date.is_some_and(|d| d <= now);
        let exploited = self.exploit_date.is_some_and(|d| d <= now);
        self.cvss
            * params.oldness(self.published, now)
            * params.patched(patched)
            * params.exploited(exploited)
    }

    /// Is this vulnerability in `V(a, b)`? Direct listing against both, or a
    /// listing against one whose cluster covers the other.
    pub fn links(&self, a: usize, b: usize) -> bool {
        let bit_a = 1u64 << a;
        let bit_b = 1u64 << b;
        let direct = self.mask & bit_a != 0 && self.mask & bit_b != 0;
        let via_cluster = (self.mask & bit_a != 0 && self.cluster_mask & bit_b != 0)
            || (self.mask & bit_b != 0 && self.cluster_mask & bit_a != 0);
        direct || via_cluster
    }
}

/// Precomputed risk knowledge over a fixed OS universe (≤ 64 versions).
#[derive(Debug, Clone)]
pub struct RiskOracle {
    oses: Vec<OsVersion>,
    cpes: Vec<Cpe>,
    vulns: Vec<VulnView>,
    /// For each unordered pair `(i, j)` with `i < j`: indices into `vulns`
    /// of the members of `V(ri, rj)`.
    pair_vulns: Vec<Vec<u32>>,
    params: ScoreParams,
}

fn pair_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// Default similarity gate for cluster-inferred sharing.
///
/// K-means clusters are topics; "potentially activated by (variations of)
/// the same exploit" (§4.1) additionally requires the descriptions to be
/// near-duplicates. Two vulnerabilities are linked only when they share a
/// cluster *and* their TF-IDF cosine reaches this bound.
pub const DEFAULT_MIN_SIMILARITY: f64 = 0.5;

impl RiskOracle {
    /// Builds the oracle with the default similarity gate
    /// ([`DEFAULT_MIN_SIMILARITY`]).
    ///
    /// # Panics
    ///
    /// Panics if the universe holds more than 64 OS versions.
    pub fn build(
        kb: &KnowledgeBase,
        clusters: &VulnClusters,
        oses: &[OsVersion],
        params: ScoreParams,
    ) -> RiskOracle {
        Self::build_with_similarity(kb, clusters, oses, params, DEFAULT_MIN_SIMILARITY)
    }

    /// Builds the oracle with an explicit similarity gate. `0.0` reduces to
    /// pure cluster-union linking (the ablation baseline); `1.0` effectively
    /// disables cluster inference.
    ///
    /// # Panics
    ///
    /// Panics if the universe holds more than 64 OS versions.
    pub fn build_with_similarity(
        kb: &KnowledgeBase,
        clusters: &VulnClusters,
        oses: &[OsVersion],
        params: ScoreParams,
        min_similarity: f64,
    ) -> RiskOracle {
        assert!(oses.len() <= 64, "bitmask universe limited to 64 OS versions");
        let cpes: Vec<Cpe> = oses.iter().map(|o| o.to_cpe()).collect();

        let mut vulns: Vec<VulnView> = Vec::with_capacity(kb.len());
        let mut index_of: std::collections::HashMap<CveId, usize> = Default::default();
        for v in kb.iter() {
            let mut mask = 0u64;
            let mut patch_by_os = vec![None; oses.len()];
            for (i, cpe) in cpes.iter().enumerate() {
                if v.affects(cpe) {
                    mask |= 1 << i;
                    patch_by_os[i] = v.patch_date_for(cpe);
                }
            }
            index_of.insert(v.id, vulns.len());
            vulns.push(VulnView {
                id: v.id,
                published: v.published,
                cvss: v.cvss.base_score(),
                patch_date: v.patches.iter().map(|p| p.released).min(),
                exploit_date: v.first_exploit_date(),
                mask,
                cluster_mask: 0,
                patch_by_os,
            });
        }
        // Cluster-inferred masks, gated by description similarity: each
        // vulnerability unions the platforms of the cluster members whose
        // text is close enough to plausibly be the same weakness.
        for (_, members) in clusters.iter() {
            let indexed: Vec<(CveId, usize)> =
                members.iter().filter_map(|cve| index_of.get(cve).map(|&i| (*cve, i))).collect();
            for &(a, ia) in &indexed {
                let mut union = vulns[ia].mask;
                for &(b, ib) in &indexed {
                    if ia != ib && clusters.similarity(a, b).is_some_and(|s| s >= min_similarity) {
                        union |= vulns[ib].mask;
                    }
                }
                vulns[ia].cluster_mask = union;
            }
        }
        // Pairwise link lists.
        let n = oses.len();
        let mut pair_vulns = vec![Vec::new(); n * (n - 1) / 2];
        for (vi, v) in vulns.iter().enumerate() {
            // Quick reject: a vulnerability can only link pairs within
            // mask | cluster_mask.
            let reach = v.mask | v.cluster_mask;
            if reach.count_ones() < 2 {
                continue;
            }
            for i in 0..n {
                if reach & (1 << i) == 0 {
                    continue;
                }
                for j in (i + 1)..n {
                    if reach & (1 << j) == 0 {
                        continue;
                    }
                    if v.links(i, j) {
                        pair_vulns[pair_index(n, i, j)].push(vi as u32);
                    }
                }
            }
        }
        RiskOracle { oses: oses.to_vec(), cpes, vulns, pair_vulns, params }
    }

    /// The OS universe.
    pub fn universe(&self) -> &[OsVersion] {
        &self.oses
    }

    /// The scoring parameters in use.
    pub fn params(&self) -> &ScoreParams {
        &self.params
    }

    /// Index of an OS within the universe.
    pub fn os_index(&self, os: OsVersion) -> Option<usize> {
        self.oses.iter().position(|&o| o == os)
    }

    /// The flattened vulnerability views.
    pub fn vulns(&self) -> &[VulnView] {
        &self.vulns
    }

    /// `V(a, b)` as vulnerability views, unfiltered by date.
    pub fn shared(&self, a: usize, b: usize) -> impl Iterator<Item = &VulnView> {
        let (i, j) = if a < b { (a, b) } else { (b, a) };
        let list: &[u32] =
            if a == b { &[] } else { &self.pair_vulns[pair_index(self.oses.len(), i, j)] };
        list.iter().map(move |&vi| &self.vulns[vi as usize])
    }

    /// The pairwise risk term of Eq. 5 at `now`: sum of scores over
    /// `V(a, b)` restricted to vulnerabilities already published.
    pub fn pair_risk(&self, a: usize, b: usize, now: Date) -> f64 {
        self.pair_risk_with(&self.params, a, b, now)
    }

    /// [`pair_risk`](Self::pair_risk) under alternative scoring parameters
    /// (e.g. [`ScoreParams::raw_cvss`] for the CVSS v3 baseline).
    pub fn pair_risk_with(&self, params: &ScoreParams, a: usize, b: usize, now: Date) -> f64 {
        if a == b {
            // A duplicated OS shares its entire vulnerability surface with
            // itself: count every published vulnerability affecting it.
            return self
                .vulns
                .iter()
                .filter(|v| v.mask & (1 << a) != 0 && v.published <= now)
                .map(|v| v.score(params, now))
                .sum();
        }
        self.shared(a, b).filter(|v| v.published <= now).map(|v| v.score(params, now)).sum()
    }

    /// Eq. 5: total risk of a configuration (universe indices) at `now`.
    pub fn risk(&self, config: &[usize], now: Date) -> f64 {
        let mut total = 0.0;
        for i in 0..config.len() {
            for j in (i + 1)..config.len() {
                total += self.pair_risk(config[i], config[j], now);
            }
        }
        total
    }

    /// Average score of the published vulnerabilities affecting OS `a` at
    /// `now` (Algorithm 1, line 21), `0.0` when none are known.
    pub fn avg_score(&self, a: usize, now: Date) -> f64 {
        self.avg_score_with(&self.params, a, now)
    }

    /// [`avg_score`](Self::avg_score) under alternative scoring parameters.
    pub fn avg_score_with(&self, params: &ScoreParams, a: usize, now: Date) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for v in &self.vulns {
            if v.mask & (1 << a) != 0 && v.published <= now {
                sum += v.score(params, now);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Is OS `a` fully patched at `now`? True when every published
    /// vulnerability listing it that is younger than the oldness threshold
    /// has a patch available for it — the quarantine exit condition
    /// (Algorithm 1, lines 34–37).
    pub fn is_patched(&self, a: usize, now: Date) -> bool {
        let horizon = self.params.oldness_threshold as i32;
        self.vulns.iter().all(|v| {
            let listed = v.mask & (1 << a) != 0;
            let recent = v.published <= now && (now - v.published) <= horizon;
            if !(listed && recent) {
                return true;
            }
            v.patch_by_os[a].or(v.patch_date).is_some_and(|d| d <= now)
        })
    }

    /// Number of *directly listed* shared vulnerabilities between `a` and
    /// `b` published by `now` — the metric of the "Common" baseline.
    pub fn common_count(&self, a: usize, b: usize, now: Date) -> usize {
        if a == b {
            return self
                .vulns
                .iter()
                .filter(|v| v.mask & (1 << a) != 0 && v.published <= now)
                .count();
        }
        let (bit_a, bit_b) = (1u64 << a, 1u64 << b);
        self.shared(a, b)
            .filter(|v| v.published <= now)
            .filter(|v| v.mask & bit_a != 0 && v.mask & bit_b != 0)
            .count()
    }

    /// The CPE of universe OS `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn cpe(&self, a: usize) -> &Cpe {
        &self.cpes[a]
    }

    /// Freezes pairwise risks, per-OS averages and patch state at one date.
    pub fn matrix(&self, now: Date) -> RiskMatrix {
        self.matrix_with(&self.params.clone(), now)
    }

    /// [`matrix`](Self::matrix) under alternative scoring parameters.
    pub fn matrix_with(&self, params: &ScoreParams, now: Date) -> RiskMatrix {
        let n = self.oses.len();
        let mut pair = vec![0.0; n * (n - 1) / 2];
        for i in 0..n {
            for j in (i + 1)..n {
                pair[pair_index(n, i, j)] = self.pair_risk_with(params, i, j, now);
            }
        }
        let self_risk: Vec<f64> = (0..n).map(|i| self.pair_risk_with(params, i, i, now)).collect();
        let avg: Vec<f64> = (0..n).map(|i| self.avg_score_with(params, i, now)).collect();
        let patched: Vec<bool> = (0..n).map(|i| self.is_patched(i, now)).collect();
        let common: Vec<usize> = {
            let mut c = vec![0usize; n * (n - 1) / 2];
            for i in 0..n {
                for j in (i + 1)..n {
                    c[pair_index(n, i, j)] = self.common_count(i, j, now);
                }
            }
            c
        };
        RiskMatrix { n, now, pair, self_risk, avg, patched, common }
    }
}

/// Pairwise risk state frozen at one day (see [`RiskOracle::matrix`]).
#[derive(Debug, Clone)]
pub struct RiskMatrix {
    n: usize,
    /// The day the matrix was computed for.
    pub now: Date,
    pair: Vec<f64>,
    self_risk: Vec<f64>,
    /// Per-OS average vulnerability score (Algorithm 1, line 21).
    pub avg: Vec<f64>,
    /// Per-OS quarantine-exit flag.
    pub patched: Vec<bool>,
    common: Vec<usize>,
}

impl RiskMatrix {
    /// Universe size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for an empty universe.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The Eq. 5 pair term for `(a, b)`.
    pub fn pair_risk(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return self.self_risk[a];
        }
        let (i, j) = if a < b { (a, b) } else { (b, a) };
        self.pair[pair_index(self.n, i, j)]
    }

    /// Eq. 5 for a whole configuration.
    pub fn risk(&self, config: &[usize]) -> f64 {
        let mut total = 0.0;
        for i in 0..config.len() {
            for j in (i + 1)..config.len() {
                total += self.pair_risk(config[i], config[j]);
            }
        }
        total
    }

    /// Directly-listed shared-vulnerability count for `(a, b)` (the
    /// "Common" baseline metric).
    pub fn common_count(&self, a: usize, b: usize) -> usize {
        if a == b {
            return usize::MAX / 4; // a duplicated OS is maximally common
        }
        let (i, j) = if a < b { (a, b) } else { (b, a) };
        self.common[pair_index(self.n, i, j)]
    }

    /// Total directly-listed shared count over a configuration.
    pub fn common_total(&self, config: &[usize]) -> usize {
        let mut total = 0usize;
        for i in 0..config.len() {
            for j in (i + 1)..config.len() {
                total = total.saturating_add(self.common_count(config[i], config[j]));
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazarus_osint::catalog::OsFamily;
    use lazarus_osint::cvss::CvssV3;
    use lazarus_osint::model::{AffectedPlatform, PatchRecord, Vulnerability};

    fn os(f: OsFamily, v: &'static str) -> OsVersion {
        OsVersion::new(f, v)
    }

    fn universe() -> Vec<OsVersion> {
        vec![
            os(OsFamily::Ubuntu, "16.04"),
            os(OsFamily::Debian, "8"),
            os(OsFamily::FreeBsd, "11"),
            os(OsFamily::Windows, "10"),
        ]
    }

    fn vuln(id: u32, published: Date, oses: &[OsVersion], desc: &str) -> Vulnerability {
        let mut v = Vulnerability::new(CveId::new(2018, id), published, CvssV3::CRITICAL_RCE, desc);
        for o in oses {
            v.affected.push(AffectedPlatform::exact(o.to_cpe()));
        }
        v
    }

    fn d(m: u32, day: u32) -> Date {
        Date::from_ymd(2018, m, day)
    }

    #[test]
    fn direct_sharing_drives_pair_risk() {
        let u = universe();
        let mut kb = KnowledgeBase::new();
        kb.upsert(vuln(1, d(1, 1), &[u[0], u[1]], "kernel flaw alpha"));
        kb.upsert(vuln(2, d(1, 1), &[u[2]], "bsd flaw beta"));
        let oracle = RiskOracle::build(&kb, &VulnClusters::new(), &u, ScoreParams::paper());

        let now = d(2, 1);
        assert!(oracle.pair_risk(0, 1, now) > 0.0);
        assert_eq!(oracle.pair_risk(0, 2, now), 0.0);
        assert_eq!(oracle.pair_risk(2, 3, now), 0.0);
        // risk of [ub, de, fb, w10] equals the single shared pair's term
        let config = [0usize, 1, 2, 3];
        assert!((oracle.risk(&config, now) - oracle.pair_risk(0, 1, now)).abs() < 1e-12);
    }

    #[test]
    fn cluster_inferred_sharing_counts() {
        let u = universe();
        let mut kb = KnowledgeBase::new();
        // Two CVEs, disjoint platforms, near-identical descriptions.
        kb.upsert(vuln(
            10,
            d(1, 1),
            &[u[0]],
            "Cross-site scripting in the dashboard allows script injection via a template",
        ));
        kb.upsert(vuln(
            11,
            d(1, 5),
            &[u[2]],
            "Cross-site scripting in the dashboard allows script injection via a form",
        ));
        // An unrelated one.
        kb.upsert(vuln(
            12,
            d(1, 1),
            &[u[3]],
            "kernel memory corruption leads to privilege escalation",
        ));
        let all: Vec<Vulnerability> = kb.iter().cloned().collect();
        let clusters = VulnClusters::build_with_k(&all, 2, 3);
        assert!(clusters.same_cluster(CveId::new(2018, 10), CveId::new(2018, 11)));

        let oracle = RiskOracle::build(&kb, &clusters, &u, ScoreParams::paper());
        let now = d(2, 1);
        // Without clusters the pair (ubuntu, freebsd) shares nothing...
        let blind = RiskOracle::build(&kb, &VulnClusters::new(), &u, ScoreParams::paper());
        assert_eq!(blind.pair_risk(0, 2, now), 0.0);
        // ...with clusters it does.
        assert!(oracle.pair_risk(0, 2, now) > 0.0);
        // But the Common count (direct listings only) still sees nothing.
        assert_eq!(oracle.common_count(0, 2, now), 0);
    }

    #[test]
    fn publication_date_gates_risk() {
        let u = universe();
        let mut kb = KnowledgeBase::new();
        kb.upsert(vuln(1, d(6, 15), &[u[0], u[1]], "future flaw"));
        let oracle = RiskOracle::build(&kb, &VulnClusters::new(), &u, ScoreParams::paper());
        assert_eq!(oracle.pair_risk(0, 1, d(6, 14)), 0.0);
        assert!(oracle.pair_risk(0, 1, d(6, 15)) > 0.0);
    }

    #[test]
    fn self_pair_counts_everything() {
        let u = universe();
        let mut kb = KnowledgeBase::new();
        kb.upsert(vuln(1, d(1, 1), &[u[0]], "solo flaw"));
        let oracle = RiskOracle::build(&kb, &VulnClusters::new(), &u, ScoreParams::paper());
        // Equal-strategy configuration [ub, ub]: the lone vulnerability is
        // "shared" between the duplicates.
        assert!(oracle.pair_risk(0, 0, d(2, 1)) > 0.0);
        assert!(oracle.risk(&[0, 0, 0, 0], d(2, 1)) > 0.0);
    }

    #[test]
    fn avg_score_matches_hand_computation() {
        let u = universe();
        let mut kb = KnowledgeBase::new();
        kb.upsert(vuln(1, d(1, 1), &[u[0]], "a"));
        kb.upsert(vuln(2, d(1, 1), &[u[0]], "b"));
        let oracle = RiskOracle::build(&kb, &VulnClusters::new(), &u, ScoreParams::paper());
        let now = d(1, 1);
        // both fresh, unpatched, unexploited: score = 9.8 each
        assert!((oracle.avg_score(0, now) - 9.8).abs() < 1e-9);
        assert_eq!(oracle.avg_score(2, now), 0.0);
    }

    #[test]
    fn patched_state_for_quarantine() {
        let u = universe();
        let mut kb = KnowledgeBase::new();
        let mut v = vuln(1, d(1, 1), &[u[0]], "needs patching");
        v.patches.push(PatchRecord {
            product: u[0].to_cpe(),
            released: d(3, 1),
            advisory: "USN-1".into(),
        });
        kb.upsert(v);
        let oracle = RiskOracle::build(&kb, &VulnClusters::new(), &u, ScoreParams::paper());
        assert!(!oracle.is_patched(0, d(2, 1)));
        assert!(oracle.is_patched(0, d(3, 1)));
        // Unaffected OS is trivially patched.
        assert!(oracle.is_patched(2, d(2, 1)));
        // Very old unpatched vulnerabilities stop blocking quarantine exit.
        assert!(oracle.is_patched(0, d(1, 1) + 366 + 60));
    }

    #[test]
    fn matrix_agrees_with_oracle() {
        let u = universe();
        let mut kb = KnowledgeBase::new();
        kb.upsert(vuln(1, d(1, 1), &[u[0], u[1]], "one"));
        kb.upsert(vuln(2, d(1, 10), &[u[1], u[2]], "two"));
        let oracle = RiskOracle::build(&kb, &VulnClusters::new(), &u, ScoreParams::paper());
        let now = d(4, 1);
        let m = oracle.matrix(now);
        assert_eq!(m.len(), 4);
        for i in 0..4 {
            for j in 0..4 {
                assert!((m.pair_risk(i, j) - oracle.pair_risk(i, j, now)).abs() < 1e-12);
            }
            assert!((m.avg[i] - oracle.avg_score(i, now)).abs() < 1e-12);
        }
        let config = [0usize, 1, 2, 3];
        assert!((m.risk(&config) - oracle.risk(&config, now)).abs() < 1e-12);
        assert_eq!(m.common_total(&[0, 1, 2]), 2);
    }

    #[test]
    fn os_index_lookup() {
        let u = universe();
        let oracle = RiskOracle::build(
            &KnowledgeBase::new(),
            &VulnClusters::new(),
            &u,
            ScoreParams::paper(),
        );
        assert_eq!(oracle.os_index(u[2]), Some(2));
        assert_eq!(oracle.os_index(os(OsFamily::Solaris, "11")), None);
        assert_eq!(oracle.universe().len(), 4);
    }

    #[test]
    fn pair_index_is_a_bijection() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in (i + 1)..n {
                assert!(seen.insert(pair_index(n, i, j)));
            }
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
        assert_eq!(seen.iter().max(), Some(&(n * (n - 1) / 2 - 1)));
    }
}
