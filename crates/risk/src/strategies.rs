//! The five replica-selection strategies compared in paper §6.
//!
//! * **Lazarus** — Algorithm 1 driven by the extended score (Eqs. 1–5);
//! * **CVSS v3** — the same machinery but scoring shared vulnerabilities by
//!   their raw CVSS v3 base score (no age/patch/exploit awareness);
//! * **Common** — minimizes the *count* of directly-listed common
//!   vulnerabilities (the strategy of the earlier OS-diversity studies);
//! * **Random** — proactive recovery with daily random replacement, no
//!   criteria;
//! * **Equal** — all `n` replicas run one randomly-chosen OS for the whole
//!   execution (how most BFT systems are actually deployed).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use lazarus_osint::date::Date;

use crate::algorithm::{Reconfigurator, ReplicaSets};
use crate::oracle::RiskMatrix;

/// Everything a strategy may consult on one monitoring day. Shared across
/// runs — strategies must keep per-run state in themselves, not here.
#[derive(Debug)]
pub struct DayView<'a> {
    /// The calendar day.
    pub date: Date,
    /// Pairwise risks under the Lazarus score (Eq. 1).
    pub lazarus: &'a RiskMatrix,
    /// Pairwise risks under the raw CVSS v3 score.
    pub cvss: &'a RiskMatrix,
    /// Precomputed optimum for the Common baseline.
    pub common_best: &'a CommonBest,
    /// Precomputed near-optimal set for the CVSS v3 baseline.
    pub cvss_best: &'a CvssBest,
    /// Minimum achievable Eq. 5 risk over all `n`-subsets today (Lazarus
    /// scoring) — the anchor for the adaptive threshold.
    pub min_lazarus_risk: f64,
}

/// Minimum Eq. 5 risk over every `n`-subset of the universe.
///
/// Historical risk accumulates without bound (old vulnerabilities keep a
/// 0.37×CVSS floor), so the Algorithm-1 strategies anchor their threshold at
/// `min_config_risk + slack` — automating the paper's §4.4 remedy of raising
/// the threshold when no candidate stays below it.
pub fn min_config_risk(matrix: &RiskMatrix, n: usize) -> f64 {
    let mut best = f64::INFINITY;
    for_each_combination(matrix.len(), n, |c| {
        let r = matrix.risk(c);
        if r < best {
            best = r;
        }
    });
    if best.is_finite() {
        best
    } else {
        0.0
    }
}

/// The day's minimum total raw-CVSS risk and (a sample of) configurations
/// within a small tolerance of it — the search target of the CVSS v3
/// baseline ("tries different combinations to find the best one that
/// minimizes the sum of CVSS v3 score", §6).
#[derive(Debug, Clone)]
pub struct CvssBest {
    /// The minimum Eq. 5 sum under raw CVSS scoring.
    pub best: f64,
    /// Configurations within the tolerance (capped reservoir sample).
    pub configs: Vec<Vec<usize>>,
}

impl CvssBest {
    /// Evaluates every `n`-subset under `matrix.risk`, keeping up to `cap`
    /// configurations whose risk is within `best × 1.05 + 1.0`.
    pub fn compute(matrix: &RiskMatrix, n: usize, cap: usize) -> CvssBest {
        let mut rng = StdRng::seed_from_u64(matrix.now.days() as u64 ^ 0xC55B);
        let mut best = f64::INFINITY;
        let mut tolerance = f64::INFINITY;
        let mut configs: Vec<Vec<usize>> = Vec::new();
        let mut seen = 0usize;
        for_each_combination(matrix.len(), n, |config| {
            let risk = matrix.risk(config);
            if risk < best {
                best = risk;
                tolerance = best * 1.05 + 1.0;
                configs.retain(|_| false);
                seen = 0;
            }
            if risk <= tolerance {
                seen += 1;
                if configs.len() < cap {
                    configs.push(config.to_vec());
                } else {
                    let slot = rng.gen_range(0..seen);
                    if slot < cap {
                        configs[slot] = config.to_vec();
                    }
                }
            }
        });
        // A second pruning pass: entries admitted before `best` settled may
        // exceed the final tolerance.
        configs.retain(|c| matrix.risk(c) <= tolerance);
        CvssBest { best, configs }
    }

    /// Whether `config` is within the day's tolerance of the optimum.
    pub fn is_near_optimal(&self, matrix: &RiskMatrix, config: &[usize]) -> bool {
        matrix.risk(config) <= self.best * 1.05 + 1.0
    }
}

/// The day's minimum directly-shared-vulnerability count and (a sample of)
/// the configurations achieving it.
#[derive(Debug, Clone)]
pub struct CommonBest {
    /// The minimum `common_total` over all `n`-subsets of the universe.
    pub best_count: usize,
    /// Configurations achieving the minimum (capped sample).
    pub configs: Vec<Vec<usize>>,
}

impl CommonBest {
    /// Exhaustively evaluates every `n`-subset of the universe under
    /// `matrix.common_total`, keeping up to `cap` optimal configurations.
    ///
    /// With sparse real-world listings, thousands of configurations tie at
    /// the minimum; the kept sample is drawn by reservoir sampling
    /// (deterministic in the matrix date) so the baseline's choice is not
    /// biased toward low-index OSes.
    pub fn compute(matrix: &RiskMatrix, n: usize, cap: usize) -> CommonBest {
        let mut rng = StdRng::seed_from_u64(matrix.now.days() as u64 ^ 0xC0FF_EE00);
        let mut best_count = usize::MAX;
        let mut configs: Vec<Vec<usize>> = Vec::new();
        let mut seen = 0usize;
        for_each_combination(matrix.len(), n, |config| {
            let count = matrix.common_total(config);
            if count < best_count {
                best_count = count;
                configs.clear();
                seen = 0;
            }
            if count == best_count {
                seen += 1;
                if configs.len() < cap {
                    configs.push(config.to_vec());
                } else {
                    let slot = rng.gen_range(0..seen);
                    if slot < cap {
                        configs[slot] = config.to_vec();
                    }
                }
            }
        });
        CommonBest { best_count, configs }
    }
}

pub use crate::comb::for_each_combination;

/// A replica-selection strategy driven one day at a time.
pub trait Strategy {
    /// Display name (matches the paper's legends).
    fn name(&self) -> &'static str;

    /// Chooses the initial CONFIG and partition.
    fn init(
        &mut self,
        day: &DayView<'_>,
        universe: usize,
        n: usize,
        rng: &mut StdRng,
    ) -> ReplicaSets;

    /// One daily monitoring round.
    fn daily(&mut self, sets: &mut ReplicaSets, day: &DayView<'_>, rng: &mut StdRng);
}

/// Which strategy to instantiate (the Figure 5/6 legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Algorithm 1 + extended score.
    Lazarus,
    /// Algorithm 1 + raw CVSS scoring.
    CvssV3,
    /// Minimize directly-listed common vulnerabilities.
    Common,
    /// Daily random replacement.
    Random,
    /// One OS everywhere, never changed.
    Equal,
}

impl StrategyKind {
    /// All strategies in the paper's presentation order.
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::Lazarus,
        StrategyKind::CvssV3,
        StrategyKind::Common,
        StrategyKind::Random,
        StrategyKind::Equal,
    ];

    /// Instantiates the strategy. `slack` parameterizes the two Algorithm-1
    /// variants (ignored by the rest): their risk threshold on each day is
    /// the day's minimum achievable risk plus this slack.
    pub fn make(self, slack: f64) -> Box<dyn Strategy> {
        match self {
            StrategyKind::Lazarus => Box::new(LazarusStrategy::new(slack)),
            StrategyKind::CvssV3 => Box::new(CvssStrategy::new(slack)),
            StrategyKind::Common => Box::new(CommonStrategy),
            StrategyKind::Random => Box::new(RandomStrategy),
            StrategyKind::Equal => Box::new(EqualStrategy),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Lazarus => "Lazarus",
            StrategyKind::CvssV3 => "CVSSv3",
            StrategyKind::Common => "Common",
            StrategyKind::Random => "Random",
            StrategyKind::Equal => "Equal",
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// Equal
// ---------------------------------------------------------------------------

/// All replicas run one randomly-selected OS; never reconfigured.
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualStrategy;

impl Strategy for EqualStrategy {
    fn name(&self) -> &'static str {
        "Equal"
    }

    fn init(
        &mut self,
        _day: &DayView<'_>,
        universe: usize,
        n: usize,
        rng: &mut StdRng,
    ) -> ReplicaSets {
        let chosen = rng.gen_range(0..universe);
        ReplicaSets::new(vec![chosen; n], universe)
    }

    fn daily(&mut self, _sets: &mut ReplicaSets, _day: &DayView<'_>, _rng: &mut StdRng) {}
}

// ---------------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------------

/// Random distinct initial set; every day one randomly-chosen replica is
/// replaced by a randomly-chosen pool OS.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomStrategy;

impl Strategy for RandomStrategy {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn init(
        &mut self,
        _day: &DayView<'_>,
        universe: usize,
        n: usize,
        rng: &mut StdRng,
    ) -> ReplicaSets {
        let mut all: Vec<usize> = (0..universe).collect();
        all.shuffle(rng);
        ReplicaSets::new(all[..n].to_vec(), universe)
    }

    fn daily(&mut self, sets: &mut ReplicaSets, _day: &DayView<'_>, rng: &mut StdRng) {
        if sets.pool.is_empty() {
            return;
        }
        let slot = rng.gen_range(0..sets.config.len());
        let pick = rng.gen_range(0..sets.pool.len());
        let incoming = sets.pool.swap_remove(pick);
        let outgoing = std::mem::replace(&mut sets.config[slot], incoming);
        sets.pool.push(outgoing);
    }
}

// ---------------------------------------------------------------------------
// Common
// ---------------------------------------------------------------------------

/// Minimizes the number of directly-listed common vulnerabilities — the
/// straw-man from the OS-diversity studies. Those studies select a set once
/// from historical data, so this baseline is *static*: it picks an optimal
/// configuration at initialization and never reconfigures.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommonStrategy;

impl Strategy for CommonStrategy {
    fn name(&self) -> &'static str {
        "Common"
    }

    fn init(
        &mut self,
        day: &DayView<'_>,
        universe: usize,
        n: usize,
        rng: &mut StdRng,
    ) -> ReplicaSets {
        let config =
            day.common_best.configs.choose(rng).cloned().unwrap_or_else(|| (0..n).collect());
        ReplicaSets::new(config, universe)
    }

    fn daily(&mut self, _sets: &mut ReplicaSets, _day: &DayView<'_>, _rng: &mut StdRng) {}
}

// ---------------------------------------------------------------------------
// CVSS v3 / Lazarus (Algorithm 1 variants)
// ---------------------------------------------------------------------------

/// The CVSS v3 baseline: "tries different combinations to find the best one
/// that minimizes the sum of CVSS v3 score" (§6). Re-evaluated daily — when
/// the running configuration drifts away from the day's optimum (because
/// new vulnerabilities were published), it jumps to a random near-optimal
/// configuration. No age/patch/exploit awareness, no quarantine.
#[derive(Debug, Clone, Copy, Default)]
pub struct CvssStrategy;

impl CvssStrategy {
    /// Creates the strategy (the slack parameter is unused; kept for
    /// constructor symmetry with [`LazarusStrategy`]).
    pub fn new(_slack: f64) -> CvssStrategy {
        CvssStrategy
    }

    fn adopt(sets: &mut ReplicaSets, config: Vec<usize>, universe: usize) {
        sets.pool = (0..universe).filter(|r| !config.contains(r)).collect();
        sets.config = config;
        sets.quarantine.clear();
    }
}

impl Strategy for CvssStrategy {
    fn name(&self) -> &'static str {
        "CVSSv3"
    }

    fn init(
        &mut self,
        day: &DayView<'_>,
        universe: usize,
        n: usize,
        rng: &mut StdRng,
    ) -> ReplicaSets {
        let config = day.cvss_best.configs.choose(rng).cloned().unwrap_or_else(|| (0..n).collect());
        ReplicaSets::new(config, universe)
    }

    fn daily(&mut self, sets: &mut ReplicaSets, day: &DayView<'_>, rng: &mut StdRng) {
        if !day.cvss_best.is_near_optimal(day.cvss, &sets.config) {
            if let Some(config) = day.cvss_best.configs.choose(rng) {
                let universe = day.cvss.len();
                Self::adopt(sets, config.clone(), universe);
            }
        }
    }
}

/// Algorithm 1 scored by the Lazarus extended metric — the paper's system.
#[derive(Debug, Clone, Copy)]
pub struct LazarusStrategy {
    recon: Reconfigurator,
    slack: f64,
}

impl LazarusStrategy {
    /// Creates the strategy with the given threshold slack.
    pub fn new(slack: f64) -> LazarusStrategy {
        LazarusStrategy { recon: Reconfigurator::with_threshold(slack), slack }
    }
}

impl LazarusStrategy {
    /// The day's effective threshold: a relative band over the minimum
    /// achievable risk (so the qualifying set keeps several configurations
    /// as history accumulates) plus the absolute slack.
    fn threshold(&self, day: &DayView<'_>) -> f64 {
        day.min_lazarus_risk * 1.12 + self.slack
    }
}

impl Strategy for LazarusStrategy {
    fn name(&self) -> &'static str {
        "Lazarus"
    }

    fn init(
        &mut self,
        day: &DayView<'_>,
        universe: usize,
        n: usize,
        rng: &mut StdRng,
    ) -> ReplicaSets {
        self.recon.threshold = self.threshold(day);
        ReplicaSets::new(self.recon.initial_config(day.lazarus, n, rng), universe)
    }

    fn daily(&mut self, sets: &mut ReplicaSets, day: &DayView<'_>, rng: &mut StdRng) {
        self.recon.threshold = self.threshold(day);
        self.recon.monitor(sets, day.lazarus, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::RiskOracle;
    use crate::score::ScoreParams;
    use lazarus_nlp::VulnClusters;
    use lazarus_osint::catalog::{OsFamily, OsVersion};
    use lazarus_osint::cvss::CvssV3;
    use lazarus_osint::kb::KnowledgeBase;
    use lazarus_osint::model::{AffectedPlatform, CveId, Vulnerability};
    use rand::SeedableRng;

    fn universe() -> Vec<OsVersion> {
        vec![
            OsVersion::new(OsFamily::Ubuntu, "16.04"),
            OsVersion::new(OsFamily::Ubuntu, "17.04"),
            OsVersion::new(OsFamily::Debian, "8"),
            OsVersion::new(OsFamily::FreeBsd, "11"),
            OsVersion::new(OsFamily::Windows, "10"),
            OsVersion::new(OsFamily::Solaris, "11"),
            OsVersion::new(OsFamily::OpenBsd, "6.1"),
        ]
    }

    struct Fixture {
        lazarus: RiskMatrix,
        cvss: RiskMatrix,
        common: CommonBest,
        cvss_best: CvssBest,
    }

    impl Fixture {
        fn new() -> Fixture {
            let u = universe();
            let mut kb = KnowledgeBase::new();
            // The two Ubuntus and Debian share kernel flaws.
            for i in 0..3u32 {
                let mut v = Vulnerability::new(
                    CveId::new(2018, i),
                    Date::from_ymd(2018, 1, 1),
                    CvssV3::CRITICAL_RCE,
                    format!("kernel flaw {i}"),
                );
                for os in &u[..3] {
                    v.affected.push(AffectedPlatform::exact(os.to_cpe()));
                }
                kb.upsert(v);
            }
            let oracle = RiskOracle::build(&kb, &VulnClusters::new(), &u, ScoreParams::paper());
            let oracle_cvss =
                RiskOracle::build(&kb, &VulnClusters::new(), &u, ScoreParams::raw_cvss());
            let now = Date::from_ymd(2018, 1, 2);
            let lazarus = oracle.matrix(now);
            let cvss = oracle_cvss.matrix(now);
            let common = CommonBest::compute(&lazarus, 4, 64);
            let cvss_best = CvssBest::compute(&cvss, 4, 64);
            Fixture { lazarus, cvss, common, cvss_best }
        }

        fn day(&self) -> DayView<'_> {
            DayView {
                date: Date::from_ymd(2018, 1, 2),
                lazarus: &self.lazarus,
                cvss: &self.cvss,
                common_best: &self.common,
                cvss_best: &self.cvss_best,
                min_lazarus_risk: min_config_risk(&self.lazarus, 4),
            }
        }
    }

    #[test]
    fn combination_enumeration() {
        let mut count = 0;
        for_each_combination(21, 4, |c| {
            assert_eq!(c.len(), 4);
            assert!(c.windows(2).all(|w| w[0] < w[1]));
            count += 1;
        });
        assert_eq!(count, 5985); // C(21,4)
        let mut none = 0;
        for_each_combination(3, 5, |_| none += 1);
        assert_eq!(none, 0);
        let mut all = 0;
        for_each_combination(4, 4, |_| all += 1);
        assert_eq!(all, 1);
    }

    #[test]
    fn common_best_avoids_shared_families() {
        let f = Fixture::new();
        assert_eq!(f.common.best_count, 0);
        for config in &f.common.configs {
            // No optimal config contains two of {UB16, UB17, DE8}.
            let risky = config.iter().filter(|&&r| r < 3).count();
            assert!(risky <= 1, "config {config:?}");
        }
    }

    #[test]
    fn equal_runs_one_os_everywhere() {
        let f = Fixture::new();
        let mut s = EqualStrategy;
        let mut rng = StdRng::seed_from_u64(1);
        let sets = s.init(&f.day(), 7, 4, &mut rng);
        assert_eq!(sets.config.len(), 4);
        assert!(sets.config.windows(2).all(|w| w[0] == w[1]));
        let before = sets.clone();
        let mut sets = sets;
        s.daily(&mut sets, &f.day(), &mut rng);
        assert_eq!(sets, before);
    }

    #[test]
    fn random_swaps_one_replica_per_day() {
        let f = Fixture::new();
        let mut s = RandomStrategy;
        let mut rng = StdRng::seed_from_u64(2);
        let mut sets = s.init(&f.day(), 7, 4, &mut rng);
        let before = sets.config.clone();
        s.daily(&mut sets, &f.day(), &mut rng);
        let changed = sets.config.iter().zip(&before).filter(|(a, b)| a != b).count();
        assert_eq!(changed, 1);
        assert!(sets.is_partition());
        assert_eq!(sets.pool.len(), 3);
    }

    #[test]
    fn common_strategy_starts_optimal_and_is_static() {
        let f = Fixture::new();
        let mut s = CommonStrategy;
        let mut rng = StdRng::seed_from_u64(3);
        let mut sets = s.init(&f.day(), 7, 4, &mut rng);
        assert_eq!(f.lazarus.common_total(&sets.config), 0);
        let before = sets.clone();
        s.daily(&mut sets, &f.day(), &mut rng);
        assert_eq!(sets, before, "Common never reconfigures");
    }

    #[test]
    fn lazarus_and_cvss_init_near_optimal() {
        let f = Fixture::new();
        // Four clean OSes exist, so the minimum achievable risk is zero and
        // the effective threshold equals the slack.
        assert_eq!(f.day().min_lazarus_risk, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut lz = LazarusStrategy::new(10.0);
        let sets = lz.init(&f.day(), 7, 4, &mut rng);
        assert!(f.lazarus.risk(&sets.config) <= 10.0);
        let mut cv = CvssStrategy::new(15.0);
        let sets = cv.init(&f.day(), 7, 4, &mut rng);
        assert!(f.day().cvss_best.is_near_optimal(&f.cvss, &sets.config));
        // and once near-optimal, the baseline stays put
        let before = sets.clone();
        let mut sets = sets;
        cv.daily(&mut sets, &f.day(), &mut rng);
        assert_eq!(sets, before);
    }

    #[test]
    fn cvss_baseline_jumps_when_optimum_moves() {
        let f = Fixture::new();
        let mut rng = StdRng::seed_from_u64(6);
        let mut cv = CvssStrategy::new(0.0);
        // Force the worst configuration (the shared trio inside).
        let mut sets = ReplicaSets::new(vec![0, 1, 2, 3], 7);
        assert!(!f.day().cvss_best.is_near_optimal(&f.cvss, &sets.config));
        cv.daily(&mut sets, &f.day(), &mut rng);
        assert!(f.day().cvss_best.is_near_optimal(&f.cvss, &sets.config));
        assert!(sets.is_partition());
    }

    #[test]
    fn lazarus_daily_reduces_forced_risk() {
        let f = Fixture::new();
        let mut rng = StdRng::seed_from_u64(5);
        // One swap can at best remove one member of the risky trio, leaving
        // a shared pair (risk ≈ 29.4): the threshold must sit above a single
        // pair's risk or Algorithm 1 legitimately reports exhaustion (§4.4).
        let mut lz = LazarusStrategy::new(60.0);
        let mut sets = ReplicaSets::new(vec![0, 1, 2, 3], 7); // risky trio inside
        let start_risk = f.lazarus.risk(&sets.config);
        assert!(start_risk > 60.0);
        // Successive rounds evict the trio: first by the risk trigger, then
        // by the HIGH-average-score trigger.
        for _ in 0..6 {
            lz.daily(&mut sets, &f.day(), &mut rng);
        }
        assert!(
            f.lazarus.risk(&sets.config) < start_risk / 2.0,
            "risk {}",
            f.lazarus.risk(&sets.config)
        );
        // Evicted replicas sit in quarantine (their flaws are unpatched).
        assert!(!sets.quarantine.is_empty());
        assert!(sets.is_partition());
    }

    #[test]
    fn kinds_construct_all_strategies() {
        for kind in StrategyKind::ALL {
            let s = kind.make(20.0);
            assert_eq!(s.name(), kind.name());
            assert_eq!(kind.to_string(), kind.name());
        }
    }
}
