//! The Lazarus risk engine: scoring, configuration risk, Algorithm 1, and
//! the strategy evaluation of paper §6.
//!
//! * [`score`] — the CVSS extension of Eqs. 1–4 (age, patch and exploit
//!   aware), with the Figure 2 scenario ladder;
//! * [`oracle`] — `V(ri, rj)` shared-vulnerability sets (direct listings
//!   plus cluster-inferred sharing) and the Eq. 5 configuration risk;
//! * [`algorithm`] — Algorithm 1 over the CONFIG/POOL/QUARANTINE partition;
//! * [`strategies`] — Lazarus, CVSSv3, Common, Random and Equal;
//! * [`epoch`] — the learning/execution evaluation engine behind
//!   Figures 5 and 6.
//!
//! # Example
//!
//! ```
//! use lazarus_osint::prelude::*;
//! use lazarus_risk::epoch::{EpochConfig, Evaluator, ThreatScope};
//! use lazarus_risk::strategies::StrategyKind;
//!
//! let mut config = WorldConfig::paper_study(1);
//! config.start = Date::from_ymd(2017, 6, 1);
//! config.end = Date::from_ymd(2017, 9, 1);
//! let world = SyntheticWorld::generate(config);
//! let eval = Evaluator::new(&world, EpochConfig::paper());
//! let window = (Date::from_ymd(2017, 8, 1), Date::from_ymd(2017, 9, 1));
//! let stats = eval.run_window(
//!     StrategyKind::Lazarus, window, &ThreatScope::PublishedInWindow, 10, 7);
//! assert!(stats.compromised <= stats.runs);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algorithm;
pub mod comb;
pub mod epoch;
pub mod oracle;
pub mod par;
pub mod score;
pub mod strategies;

pub use algorithm::{MonitorOutcome, Reconfigurator, ReplicaSets};
pub use oracle::{RiskMatrix, RiskOracle};
pub use score::{Scenario, ScoreParams};
pub use strategies::{Strategy, StrategyKind};
