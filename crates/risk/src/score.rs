//! The Lazarus vulnerability score: the CVSS extension of paper §4.2.
//!
//! `score(v) = CVSS(v) × oldness(v) × patched(v) × exploited(v)` (Eq. 1):
//!
//! * **oldness** (Eq. 2) decays linearly with age, floored at 0.75 —
//!   `max(1 − 0.25 × age/oldness_threshold, 0.75)`;
//! * **patched** (Eq. 3) halves severity once a patch exists — `0.5^patched`;
//! * **exploited** (Eq. 4) raises it by a quarter once an exploit circulates
//!   — `1.25^exploited`.
//!
//! The eight scenario combinations produce the modifier ladder of Figure 2:
//! `NE 1.25 > N 1 > OE 0.94 > O 0.75 > NPE 0.625 > NP 0.5 > OPE 0.47 >
//! OP 0.37`.

use lazarus_osint::date::Date;
use lazarus_osint::model::Vulnerability;

/// Tunable constants of Eqs. 2–4, defaulting to the paper's values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreParams {
    /// Days over which the oldness decay runs (paper: 365).
    pub oldness_threshold: f64,
    /// Slope of the decay (paper: 0.25 — score loses a quarter over the
    /// threshold).
    pub oldness_slope: f64,
    /// Floor of the oldness factor (paper: 0.75 — old vulnerabilities are
    /// "less likely to be exploited" but never vanish).
    pub oldness_floor: f64,
    /// Multiplier once a patch is available (paper: 0.5).
    pub patched_factor: f64,
    /// Multiplier once an exploit is available (paper: 1.25).
    pub exploited_factor: f64,
}

impl Default for ScoreParams {
    fn default() -> Self {
        ScoreParams {
            oldness_threshold: 365.0,
            oldness_slope: 0.25,
            oldness_floor: 0.75,
            patched_factor: 0.5,
            exploited_factor: 1.25,
        }
    }
}

impl ScoreParams {
    /// The paper's parameters (same as `Default`).
    pub fn paper() -> ScoreParams {
        ScoreParams::default()
    }

    /// Parameters that reduce the metric to the raw CVSS v3 base score —
    /// the "CVSS v3" baseline strategy of §6.
    pub fn raw_cvss() -> ScoreParams {
        ScoreParams {
            oldness_threshold: 365.0,
            oldness_slope: 0.0,
            oldness_floor: 1.0,
            patched_factor: 1.0,
            exploited_factor: 1.0,
        }
    }

    /// Eq. 2: the oldness factor at `now` for a vulnerability published on
    /// `published`.
    pub fn oldness(&self, published: Date, now: Date) -> f64 {
        let age = now.age_since(published) as f64;
        (1.0 - self.oldness_slope * age / self.oldness_threshold).max(self.oldness_floor)
    }

    /// Eq. 3: the patched factor.
    pub fn patched(&self, is_patched: bool) -> f64 {
        if is_patched {
            self.patched_factor
        } else {
            1.0
        }
    }

    /// Eq. 4: the exploited factor.
    pub fn exploited(&self, is_exploited: bool) -> f64 {
        if is_exploited {
            self.exploited_factor
        } else {
            1.0
        }
    }

    /// Eq. 1: the full score of `v` as observed on day `now`.
    ///
    /// Patch/exploit flags are evaluated against their availability dates,
    /// so the score is a function of time exactly as in Figure 3.
    pub fn score(&self, v: &Vulnerability, now: Date) -> f64 {
        v.cvss.base_score()
            * self.oldness(v.published, now)
            * self.patched(v.is_patched(now))
            * self.exploited(v.is_exploited(now))
    }

    /// The combined modifier (score divided by the CVSS base), handy for
    /// reproducing the Figure 2 ladder.
    pub fn modifier(&self, v: &Vulnerability, now: Date) -> f64 {
        self.oldness(v.published, now)
            * self.patched(v.is_patched(now))
            * self.exploited(v.is_exploited(now))
    }
}

/// The qualitative scenario of a vulnerability at a point in time
/// (Figure 2's N/O × P × E lattice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// New, exploited, unpatched — the worst case (modifier 1.25).
    NE,
    /// New, no patch, no exploit (1.0).
    N,
    /// Old, exploited, unpatched (0.94).
    OE,
    /// Old, no patch, no exploit (0.75).
    O,
    /// New, patched, exploited (0.625).
    NPE,
    /// New, patched (0.5).
    NP,
    /// Old, patched, exploited (0.47).
    OPE,
    /// Old, patched, no exploit — the best case (0.37).
    OP,
}

impl Scenario {
    /// Classifies `v` at `now`. "Old" means the oldness factor has reached
    /// its floor.
    pub fn classify(params: &ScoreParams, v: &Vulnerability, now: Date) -> Scenario {
        let old = params.oldness(v.published, now) <= params.oldness_floor;
        let patched = v.is_patched(now);
        let exploited = v.is_exploited(now);
        match (old, patched, exploited) {
            (false, false, true) => Scenario::NE,
            (false, false, false) => Scenario::N,
            (true, false, true) => Scenario::OE,
            (true, false, false) => Scenario::O,
            (false, true, true) => Scenario::NPE,
            (false, true, false) => Scenario::NP,
            (true, true, true) => Scenario::OPE,
            (true, true, false) => Scenario::OP,
        }
    }

    /// The asymptotic modifier of this scenario with the paper's constants
    /// (the Figure 2 ladder; "old" evaluated at the floor).
    pub fn ladder_modifier(self) -> f64 {
        match self {
            Scenario::NE => 1.25,
            Scenario::N => 1.0,
            Scenario::OE => 0.9375,
            Scenario::O => 0.75,
            Scenario::NPE => 0.625,
            Scenario::NP => 0.5,
            Scenario::OPE => 0.46875,
            Scenario::OP => 0.375,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazarus_osint::cpe::Cpe;
    use lazarus_osint::fixtures;
    use lazarus_osint::model::{CveId, ExploitRecord, PatchRecord};

    fn base_vuln(published: Date) -> Vulnerability {
        Vulnerability::new(
            CveId::new(2018, 1),
            published,
            lazarus_osint::cvss::CvssV3::CRITICAL_RCE, // 9.8
            "test",
        )
    }

    #[test]
    fn fresh_unpatched_scores_at_cvss() {
        let p = ScoreParams::paper();
        let d = Date::from_ymd(2018, 5, 1);
        let v = base_vuln(d);
        assert!((p.score(&v, d) - 9.8).abs() < 1e-9);
        assert_eq!(Scenario::classify(&p, &v, d), Scenario::N);
    }

    #[test]
    fn oldness_decays_linearly_then_floors() {
        let p = ScoreParams::paper();
        let pub_d = Date::from_ymd(2017, 1, 1);
        assert!((p.oldness(pub_d, pub_d) - 1.0).abs() < 1e-12);
        // Half threshold: 1 - 0.25*0.5 = 0.875
        assert!((p.oldness(pub_d, pub_d + 182) - (1.0 - 0.25 * 182.0 / 365.0)).abs() < 1e-12);
        // At exactly the threshold: 0.75
        assert!((p.oldness(pub_d, pub_d + 365) - 0.75).abs() < 1e-12);
        // Far beyond: still 0.75 (floor)
        assert!((p.oldness(pub_d, pub_d + 3650) - 0.75).abs() < 1e-12);
        // Before publication: clamp to 1.0
        assert!((p.oldness(pub_d, pub_d - 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn figure2_ladder_values() {
        // NE 1.25, N 1, OE 0.94, O 0.75, NPE 0.625, NP 0.5, OPE 0.47, OP 0.37
        assert_eq!(Scenario::NE.ladder_modifier(), 1.25);
        assert_eq!(Scenario::N.ladder_modifier(), 1.0);
        assert!((Scenario::OE.ladder_modifier() - 0.94).abs() < 0.005);
        assert_eq!(Scenario::O.ladder_modifier(), 0.75);
        assert_eq!(Scenario::NPE.ladder_modifier(), 0.625);
        assert_eq!(Scenario::NP.ladder_modifier(), 0.5);
        assert!((Scenario::OPE.ladder_modifier() - 0.47).abs() < 0.005);
        assert!((Scenario::OP.ladder_modifier() - 0.37).abs() < 0.01);
        // Strictly decreasing ladder.
        let ladder = [
            Scenario::NE,
            Scenario::N,
            Scenario::OE,
            Scenario::O,
            Scenario::NPE,
            Scenario::NP,
            Scenario::OPE,
            Scenario::OP,
        ];
        for w in ladder.windows(2) {
            assert!(w[0].ladder_modifier() > w[1].ladder_modifier());
        }
    }

    #[test]
    fn ladder_matches_computed_modifiers() {
        let p = ScoreParams::paper();
        let pub_d = Date::from_ymd(2016, 1, 1);
        let old_day = pub_d + 3650;
        let new_day = pub_d;

        let mut v = base_vuln(pub_d);
        assert!((p.modifier(&v, new_day) - 1.0).abs() < 1e-12); // N
        assert!((p.modifier(&v, old_day) - 0.75).abs() < 1e-12); // O

        v.exploits.push(ExploitRecord { published: pub_d, source: "x".into(), verified: true });
        assert!((p.modifier(&v, new_day) - 1.25).abs() < 1e-12); // NE
        assert!((p.modifier(&v, old_day) - 0.9375).abs() < 1e-12); // OE

        v.patches.push(PatchRecord {
            product: Cpe::os("canonical", "ubuntu_linux", "16.04"),
            released: pub_d,
            advisory: "USN".into(),
        });
        assert!((p.modifier(&v, new_day) - 0.625).abs() < 1e-12); // NPE
        assert!((p.modifier(&v, old_day) - 0.46875).abs() < 1e-12); // OPE

        v.exploits.clear();
        assert!((p.modifier(&v, new_day) - 0.5).abs() < 1e-12); // NP
        assert!((p.modifier(&v, old_day) - 0.375).abs() < 1e-12); // OP
    }

    /// Figure 3(a): CVE-2018-8303 — slow decay, then a jump when the exploit
    /// is published.
    #[test]
    fn figure3a_ne_evolution() {
        let p = ScoreParams::paper();
        let v = fixtures::cve_2018_8303();
        assert_eq!(v.cvss.base_score(), 8.1);
        let at_publication = p.score(&v, Date::from_ymd(2018, 9, 7));
        let day_before_exploit = p.score(&v, Date::from_ymd(2018, 9, 23));
        let at_exploit = p.score(&v, Date::from_ymd(2018, 9, 24));
        assert!((at_publication - 8.1).abs() < 1e-9);
        assert!(day_before_exploit < at_publication); // slow decay
        assert!(at_exploit > 10.0 * 0.98, "exploit jump: {at_exploit}"); // ≈ 8.1 × 1.25 × oldness
        assert!(at_exploit > day_before_exploit);
    }

    /// Figure 3(b): CVE-2018-8012 — 9.37 peak with the exploit, dropping to
    /// ≈ 4.6 once patched (the paper's annotated values).
    #[test]
    fn figure3b_npe_evolution() {
        let p = ScoreParams::paper();
        let v = fixtures::cve_2018_8012();
        let base = v.cvss.base_score();
        assert_eq!(base, 7.5);
        // At publication: full CVSS.
        assert!((p.score(&v, Date::from_ymd(2018, 5, 20)) - base).abs() < 1e-9);
        // Exploit out (5-24), not yet patched: the 9.37 peak.
        let peak = p.score(&v, Date::from_ymd(2018, 5, 24));
        assert!((peak - 9.37).abs() < 0.05, "peak {peak}");
        // Patch (5-27) halves it to ≈ 4.6.
        let after_patch = p.score(&v, Date::from_ymd(2018, 5, 27));
        assert!((after_patch - 4.6).abs() < 0.08, "after patch {after_patch}");
        // Long after: decayed patched score.
        assert!(p.score(&v, Date::from_ymd(2019, 6, 1)) < after_patch);
    }

    /// Figure 3(c): CVE-2016-7180 — patched early, decaying to irrelevance.
    #[test]
    fn figure3c_op_evolution() {
        let p = ScoreParams::paper();
        let v = fixtures::cve_2016_7180();
        let before_patch = p.score(&v, Date::from_ymd(2016, 9, 18));
        let after_patch = p.score(&v, Date::from_ymd(2016, 9, 19));
        let year_later = p.score(&v, Date::from_ymd(2017, 9, 19));
        assert!(after_patch < before_patch);
        assert!((after_patch / before_patch - 0.5).abs() < 0.01);
        assert!(year_later < after_patch);
        assert!((year_later - v.cvss.base_score() * 0.375).abs() < 0.01);
    }

    #[test]
    fn raw_cvss_params_ignore_everything() {
        let p = ScoreParams::raw_cvss();
        let v = fixtures::cve_2018_8012();
        for day in
            [Date::from_ymd(2018, 5, 20), Date::from_ymd(2018, 6, 30), Date::from_ymd(2020, 1, 1)]
        {
            assert!((p.score(&v, day) - v.cvss.base_score()).abs() < 1e-12);
        }
    }

    #[test]
    fn score_bounds_property() {
        // 0 <= score <= 1.25 × CVSS for the paper parameters.
        let p = ScoreParams::paper();
        let mut v = base_vuln(Date::from_ymd(2017, 6, 1));
        v.exploits.push(ExploitRecord {
            published: Date::from_ymd(2017, 6, 10),
            source: "x".into(),
            verified: true,
        });
        for offset in [0, 5, 30, 100, 365, 1000] {
            let s = p.score(&v, v.published + offset);
            assert!(s >= 0.0 && s <= 1.25 * v.cvss.base_score() + 1e-9);
        }
    }
}
