//! A deterministic scoped worker pool for the evaluation harness.
//!
//! The figure benchmarks and the [`epoch`](crate::epoch) engine run many
//! independent seeded trials. This module fans those trials out over
//! `std::thread::scope` workers while keeping the output a pure function of
//! the inputs: results are collected *in index order*, so a parallel sweep
//! produces byte-identical figures to a sequential one regardless of
//! scheduling.
//!
//! No extra dependencies: a shared atomic cursor hands out work items, and
//! each worker's `(index, value)` pairs are re-sorted at the end.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use.
///
/// `LAZARUS_THREADS` (if set to a positive integer) overrides the detected
/// [`std::thread::available_parallelism`].
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("LAZARUS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `0..n` on a scoped worker pool and returns
/// `vec![f(0), f(1), …, f(n - 1)]`.
///
/// Each index is evaluated exactly once and the output order is the index
/// order, so the result is identical to `(0..n).map(f).collect()` — only
/// wall-clock time depends on the number of workers. With one worker (or
/// `n <= 1`) the map runs inline with no thread overhead.
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = worker_count().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                collected.lock().expect("worker panicked").extend(local);
            });
        }
    });

    let mut pairs = collected.into_inner().expect("worker panicked");
    pairs.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), n);
    pairs.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let f = |i: usize| i * i + 1;
        assert_eq!(par_map_indexed(257, f), (0..257).map(f).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn deterministic_across_worker_counts() {
        // Simulate different pool sizes via the inline path vs. the pool
        // path: both must produce the identical vector.
        let n = 100;
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let seq: Vec<u64> = (0..n).map(f).collect();
        assert_eq!(par_map_indexed(n, f), seq);
    }
}
