//! K-means clustering with k-means++ seeding, over sparse vectors.
//!
//! The prototype clusters vulnerability vectors with Weka's K-means
//! (paper §5.1); this is a native replacement: k-means++ initialization
//! (Arthur & Vassilvitskii), Lloyd iterations to convergence, deterministic
//! under a caller-provided seed, with empty clusters reseeded to the point
//! farthest from its centroid.
//!
//! TF-IDF document vectors are extremely sparse (a CVE description touches
//! 10–20 of the 200 vocabulary terms), so points are [`SparseVec`]s and all
//! point–centroid distances use the `‖x‖² + ‖c‖² − 2·x·c` identity with the
//! dot product running over the point's non-zeros only. This makes
//! corpus-scale K (hundreds of clusters) affordable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sparse vector with cached squared norm.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec {
    dim: usize,
    idx: Vec<u32>,
    val: Vec<f64>,
    norm2: f64,
}

impl SparseVec {
    /// Builds from a dense vector, dropping zeros.
    pub fn from_dense(dense: &[f64]) -> SparseVec {
        let mut idx = Vec::new();
        let mut val = Vec::new();
        let mut norm2 = 0.0;
        for (i, &x) in dense.iter().enumerate() {
            if x != 0.0 {
                idx.push(i as u32);
                val.push(x);
                norm2 += x * x;
            }
        }
        SparseVec { dim: dense.len(), idx, val, norm2 }
    }

    /// Builds from parallel `(index, value)` lists.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or an index is out of `dim` bounds.
    pub fn new(dim: usize, idx: Vec<u32>, val: Vec<f64>) -> SparseVec {
        assert_eq!(idx.len(), val.len(), "index/value length mismatch");
        assert!(idx.iter().all(|&i| (i as usize) < dim), "index out of bounds");
        let norm2 = val.iter().map(|v| v * v).sum();
        SparseVec { dim, idx, val, norm2 }
    }

    /// The nominal dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Cached squared L2 norm.
    pub fn norm2(&self) -> f64 {
        self.norm2
    }

    /// Dot product against a dense vector.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if dimensions mismatch.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        debug_assert_eq!(self.dim, dense.len());
        self.idx.iter().zip(&self.val).map(|(&i, &v)| v * dense[i as usize]).sum()
    }

    /// Squared Euclidean distance to a dense centroid with known norm.
    fn distance_sq_to(&self, centroid: &[f64], centroid_norm2: f64) -> f64 {
        (self.norm2 + centroid_norm2 - 2.0 * self.dot_dense(centroid)).max(0.0)
    }

    /// Materializes the dense form.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        for (&i, &v) in self.idx.iter().zip(&self.val) {
            out[i as usize] = v;
        }
        out
    }

    fn add_into(&self, acc: &mut [f64]) {
        for (&i, &v) in self.idx.iter().zip(&self.val) {
            acc[i as usize] += v;
        }
    }
}

/// The result of one K-means run.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster index (`0..k`) per input point.
    pub assignments: Vec<usize>,
    /// Final centroids, `k` dense rows.
    pub centroids: Vec<Vec<f64>>,
    /// Within-cluster sum of squares (inertia) — the elbow-method input.
    pub wcss: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Indices of points in cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments.iter().enumerate().filter(|&(_, &a)| a == c).map(|(i, _)| i).collect()
    }

    /// Sizes of all clusters.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

/// Maximum Lloyd iterations; text corpora converge in well under this.
const MAX_ITERS: usize = 60;

/// Runs K-means over sparse `points`.
///
/// `k` is clamped to `points.len()`.
///
/// # Panics
///
/// Panics if `k == 0` while `points` is non-empty, or if points have
/// inconsistent dimensionality.
pub fn kmeans(points: &[SparseVec], k: usize, seed: u64) -> Clustering {
    if points.is_empty() {
        return Clustering { assignments: vec![], centroids: vec![], wcss: 0.0, iterations: 0 };
    }
    assert!(k > 0, "k must be positive for a non-empty input");
    let k = k.min(points.len());
    let dim = points[0].dim();
    assert!(points.iter().all(|p| p.dim() == dim), "inconsistent dimensions");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids = plus_plus_init(points, k, &mut rng);
    let mut centroid_norms: Vec<f64> =
        centroids.iter().map(|c| c.iter().map(|x| x * x).sum()).collect();
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;

    loop {
        iterations += 1;
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, cent) in centroids.iter().enumerate() {
                let d = p.distance_sq_to(cent, centroid_norms[c]);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            p.add_into(&mut sums[a]);
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Reseed an empty cluster at the point farthest from its
                // assigned centroid.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(i, p), (j, q)| {
                        let di = p.distance_sq_to(
                            &centroids[assignments[*i]],
                            centroid_norms[assignments[*i]],
                        );
                        let dj = q.distance_sq_to(
                            &centroids[assignments[*j]],
                            centroid_norms[assignments[*j]],
                        );
                        di.partial_cmp(&dj).expect("finite distances")
                    })
                    .map(|(i, _)| i)
                    .expect("nonempty points");
                centroids[c] = points[far].to_dense();
                changed = true;
            } else {
                let inv = 1.0 / counts[c] as f64;
                for (cent, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *cent = s * inv;
                }
            }
            centroid_norms[c] = centroids[c].iter().map(|x| x * x).sum();
        }
        if !changed || iterations >= MAX_ITERS {
            break;
        }
    }

    let wcss = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| p.distance_sq_to(&centroids[a], centroid_norms[a]))
        .sum();
    Clustering { assignments, centroids, wcss, iterations }
}

/// k-means++ seeding: first centroid uniform, then each next centroid drawn
/// with probability proportional to D²(x).
fn plus_plus_init(points: &[SparseVec], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = points[rng.gen_range(0..points.len())].to_dense();
    let first_norm: f64 = first.iter().map(|x| x * x).sum();
    let mut d2: Vec<f64> = points.iter().map(|p| p.distance_sq_to(&first, first_norm)).collect();
    centroids.push(first);
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= f64::EPSILON {
            // All remaining points coincide with a centroid; pick uniformly.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        let cent = points[next].to_dense();
        let cent_norm: f64 = cent.iter().map(|x| x * x).sum();
        for (i, p) in points.iter().enumerate() {
            let d = p.distance_sq_to(&cent, cent_norm);
            if d < d2[i] {
                d2[i] = d;
            }
        }
        centroids.push(cent);
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse(points: Vec<Vec<f64>>) -> Vec<SparseVec> {
        points.iter().map(|p| SparseVec::from_dense(p)).collect()
    }

    /// Two well-separated blobs in 2-D.
    fn blobs() -> Vec<SparseVec> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![1.0 + (i as f64) * 0.01, 0.0]);
            pts.push(vec![10.0 + (i as f64) * 0.01, 10.0]);
        }
        sparse(pts)
    }

    #[test]
    fn sparse_vec_roundtrip() {
        let dense = vec![0.0, 2.0, 0.0, -1.5, 0.0];
        let s = SparseVec::from_dense(&dense);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.dim(), 5);
        assert_eq!(s.to_dense(), dense);
        assert!((s.norm2() - (4.0 + 2.25)).abs() < 1e-12);
        assert!((s.dot_dense(&[1.0, 1.0, 1.0, 1.0, 1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sparse_distance_matches_dense() {
        let a = SparseVec::from_dense(&[0.0, 3.0, 0.0]);
        let c = [1.0, 1.0, 1.0];
        let norm2 = 3.0;
        // dense: (0-1)² + (3-1)² + (0-1)² = 6
        assert!((a.distance_sq_to(&c, norm2) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn separates_two_blobs() {
        let pts = blobs();
        let c = kmeans(&pts, 2, 7);
        assert_eq!(c.k(), 2);
        let a = c.assignments[0];
        for (i, &assign) in c.assignments.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(assign, a);
            } else {
                assert_ne!(assign, a);
            }
        }
        assert!(c.wcss < 1.0, "tight blobs should have tiny inertia: {}", c.wcss);
    }

    #[test]
    fn deterministic_under_seed() {
        let pts = blobs();
        let a = kmeans(&pts, 2, 123);
        let b = kmeans(&pts, 2, 123);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.wcss, b.wcss);
    }

    #[test]
    fn every_point_assigned_to_nearest_centroid() {
        let pts = blobs();
        let c = kmeans(&pts, 3, 99);
        for (p, &a) in pts.iter().zip(&c.assignments) {
            let d = |cent: &[f64]| {
                let n: f64 = cent.iter().map(|x| x * x).sum();
                p.distance_sq_to(cent, n)
            };
            let d_assigned = d(&c.centroids[a]);
            for cent in &c.centroids {
                assert!(d_assigned <= d(cent) + 1e-9);
            }
        }
    }

    #[test]
    fn wcss_is_monotone_in_k() {
        let pts = blobs();
        let best = |k: usize| (0..3).map(|s| kmeans(&pts, k, s).wcss).fold(f64::INFINITY, f64::min);
        let w1 = best(1);
        let w2 = best(2);
        let w4 = best(4);
        assert!(w1 >= w2 && w2 >= w4 - 1e-9, "{w1} {w2} {w4}");
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = sparse(vec![vec![1.0], vec![2.0]]);
        let c = kmeans(&pts, 10, 1);
        assert_eq!(c.k(), 2);
        assert!(c.wcss < 1e-12);
    }

    #[test]
    fn k_equals_n_is_perfect() {
        let pts = blobs();
        let c = kmeans(&pts, pts.len(), 5);
        assert!(c.wcss < 1e-9);
        let sizes = c.sizes();
        assert!(sizes.iter().all(|&s| s >= 1), "no empty clusters: {sizes:?}");
    }

    #[test]
    fn identical_points_are_fine() {
        let pts = sparse(vec![vec![1.0, 1.0]; 8]);
        let c = kmeans(&pts, 3, 11);
        assert_eq!(c.assignments.len(), 8);
        assert!(c.wcss < 1e-12);
    }

    #[test]
    fn empty_input() {
        let c = kmeans(&[], 0, 0);
        assert!(c.assignments.is_empty());
        assert_eq!(c.wcss, 0.0);
    }

    #[test]
    fn members_and_sizes_agree() {
        let pts = blobs();
        let c = kmeans(&pts, 2, 3);
        let sizes = c.sizes();
        for (k, &size) in sizes.iter().enumerate() {
            assert_eq!(c.members(k).len(), size);
        }
        assert_eq!(sizes.iter().sum::<usize>(), pts.len());
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn sparse_vec_validates_indices() {
        SparseVec::new(3, vec![5], vec![1.0]);
    }
}
