//! Elbow-method selection of the cluster count.
//!
//! The prototype determines K "by the elbow method" (paper §5.1, citing
//! Thorndike 1953): run K-means for a range of candidate K, plot the
//! within-cluster sum of squares (WCSS), and pick the K at the bend of the
//! curve. The bend is found as the point with maximum perpendicular distance
//! from the chord joining the curve's endpoints — the standard geometric
//! formalization of "where the curve stops dropping fast".

use crate::kmeans::{kmeans, Clustering, SparseVec};

/// The evaluated WCSS curve and the chosen K.
#[derive(Debug, Clone)]
pub struct ElbowResult {
    /// `(k, wcss)` pairs, in increasing `k`.
    pub curve: Vec<(usize, f64)>,
    /// The K at the elbow.
    pub chosen_k: usize,
    /// The clustering computed at the chosen K.
    pub clustering: Clustering,
}

/// Default candidate Ks for a corpus of `n` points: a multiplicative sweep
/// from 2 up to roughly `n / 4` (bounded to 320). CVE corpora cluster at the
/// granularity of shared components and weakness families — a few documents
/// per cluster — so the sweep must reach corpus-scale K or the elbow sits on
/// an artificial boundary and clusters degenerate into giant topic blobs.
pub fn default_candidates(n: usize) -> Vec<usize> {
    if n < 2 {
        return vec![1.min(n)];
    }
    let max_k = (n / 4).clamp(2, 320);
    let mut ks = vec![2usize];
    let mut k = 2;
    while k < max_k {
        k = (k * 8 / 5).max(k + 1);
        ks.push(k.min(max_k));
    }
    ks.dedup();
    ks
}

/// Runs the elbow method over `candidates` (must be non-empty, increasing).
///
/// # Panics
///
/// Panics if `candidates` is empty while `points` is non-empty.
pub fn elbow(points: &[SparseVec], candidates: &[usize], seed: u64) -> ElbowResult {
    if points.is_empty() {
        return ElbowResult { curve: vec![], chosen_k: 0, clustering: kmeans(points, 0, seed) };
    }
    assert!(!candidates.is_empty(), "need at least one candidate k");
    let mut runs: Vec<(usize, Clustering)> = candidates
        .iter()
        .map(|&k| (k.min(points.len()), kmeans(points, k.max(1), seed ^ (k as u64))))
        .collect();
    runs.dedup_by_key(|(k, _)| *k);
    let curve: Vec<(usize, f64)> = runs.iter().map(|(k, c)| (*k, c.wcss)).collect();

    let chosen_idx = if curve.len() <= 2 { curve.len() - 1 } else { max_chord_distance(&curve) };
    let (chosen_k, clustering) = runs.swap_remove(chosen_idx);
    ElbowResult { curve, chosen_k, clustering }
}

/// Index of the curve point farthest (perpendicular) from the chord between
/// the first and last points.
fn max_chord_distance(curve: &[(usize, f64)]) -> usize {
    let (x1, y1) = (curve[0].0 as f64, curve[0].1);
    let (x2, y2) = (curve[curve.len() - 1].0 as f64, curve[curve.len() - 1].1);
    let dx = x2 - x1;
    let dy = y2 - y1;
    let len = (dx * dx + dy * dy).sqrt().max(f64::EPSILON);
    let mut best = 0;
    let mut best_d = f64::MIN;
    for (i, &(k, w)) in curve.iter().enumerate() {
        let d = ((k as f64 - x1) * dy - (w - y1) * dx).abs() / len;
        if d > best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// `g` well-separated Gaussian-ish blobs of `per` points each.
    fn blobs(g: usize, per: usize, seed: u64) -> Vec<SparseVec> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for b in 0..g {
            let cx = 5.0 + (b as f64) * 50.0;
            let cy = 5.0 + (b as f64 % 3.0) * 50.0;
            for _ in 0..per {
                pts.push(SparseVec::from_dense(&[
                    cx + rng.gen_range(-1.0..1.0),
                    cy + rng.gen_range(-1.0..1.0),
                ]));
            }
        }
        pts
    }

    #[test]
    fn finds_the_true_blob_count() {
        let pts = blobs(4, 15, 3);
        let result = elbow(&pts, &[2, 3, 4, 5, 6, 8, 10], 7);
        assert_eq!(result.chosen_k, 4, "curve: {:?}", result.curve);
        // The chosen clustering has nearly zero inertia.
        assert!(result.clustering.wcss < pts.len() as f64);
    }

    #[test]
    fn curve_is_decreasing_overall() {
        let pts = blobs(3, 10, 9);
        let result = elbow(&pts, &[2, 3, 4, 6, 8], 1);
        let first = result.curve.first().unwrap().1;
        let last = result.curve.last().unwrap().1;
        assert!(last <= first);
    }

    #[test]
    fn default_candidates_shape() {
        assert_eq!(default_candidates(0), vec![0]);
        assert_eq!(default_candidates(1), vec![1]);
        let ks = default_candidates(400);
        assert_eq!(*ks.first().unwrap(), 2);
        assert_eq!(*ks.last().unwrap(), 100); // n/4
        assert!(ks.windows(2).all(|w| w[0] < w[1]), "{ks:?}");
        let big = default_candidates(100_000);
        assert_eq!(*big.last().unwrap(), 320);
    }

    #[test]
    fn empty_points() {
        let r = elbow(&[], &[2, 3], 0);
        assert_eq!(r.chosen_k, 0);
        assert!(r.curve.is_empty());
    }

    #[test]
    fn single_candidate() {
        let pts = blobs(2, 5, 1);
        let r = elbow(&pts, &[3], 0);
        assert_eq!(r.chosen_k, 3);
        assert_eq!(r.curve.len(), 1);
    }

    #[test]
    fn deterministic() {
        let pts = blobs(3, 8, 5);
        let a = elbow(&pts, &[2, 3, 4, 5], 42);
        let b = elbow(&pts, &[2, 3, 4, 5], 42);
        assert_eq!(a.chosen_k, b.chosen_k);
        assert_eq!(a.clustering.assignments, b.clustering.assignments);
    }
}
