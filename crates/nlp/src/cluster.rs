//! Vulnerability clusters: from CVE descriptions to shared-weakness groups.
//!
//! This is the end-to-end pipeline of paper §4.1/§5.1: tokenize every
//! description, fit a bounded TF-IDF vocabulary, cluster with K-means (K by
//! the elbow method), and index the result by CVE so the risk manager can
//! ask "are these two vulnerabilities likely the same weakness?" even when
//! NVD lists them against different products.

use std::collections::HashMap;

use lazarus_osint::model::{CveId, Vulnerability};

use crate::elbow::{default_candidates, elbow};
use crate::kmeans::SparseVec;
use crate::text::tokenize;
use crate::vectorize::{Vocabulary, DEFAULT_MAX_TERMS};

/// A cluster index over a vulnerability corpus.
///
/// Besides the K-means partition, the index retains each description's
/// TF-IDF vector so callers can refine "same cluster" into "same cluster
/// *and* textually similar" — K-means topics are broad (a cluster may hold a
/// whole weakness class), while the paper's premise is that near-identical
/// descriptions indicate "(variations of) the same exploit" (§4.1).
#[derive(Debug, Clone, Default)]
pub struct VulnClusters {
    by_cve: HashMap<CveId, usize>,
    members: Vec<Vec<CveId>>,
    vectors: HashMap<CveId, SparseVec>,
}

impl VulnClusters {
    /// An empty index (no corpus yet) — every `same_cluster` query is false.
    pub fn new() -> VulnClusters {
        VulnClusters::default()
    }

    /// Builds clusters over the corpus with elbow-selected K.
    pub fn build<'a>(
        corpus: impl IntoIterator<Item = &'a Vulnerability>,
        seed: u64,
    ) -> VulnClusters {
        Self::build_inner(corpus, None, seed)
    }

    /// Builds clusters with a fixed K (for experiments and ablations).
    pub fn build_with_k<'a>(
        corpus: impl IntoIterator<Item = &'a Vulnerability>,
        k: usize,
        seed: u64,
    ) -> VulnClusters {
        Self::build_inner(corpus, Some(k), seed)
    }

    fn build_inner<'a>(
        corpus: impl IntoIterator<Item = &'a Vulnerability>,
        fixed_k: Option<usize>,
        seed: u64,
    ) -> VulnClusters {
        let items: Vec<(&CveId, &str)> =
            corpus.into_iter().map(|v| (&v.id, v.description.as_str())).collect();
        if items.is_empty() {
            return VulnClusters::default();
        }
        let docs: Vec<Vec<String>> = items.iter().map(|(_, d)| tokenize(d)).collect();
        let vocab = Vocabulary::fit(&docs, DEFAULT_MAX_TERMS);
        let vectors = vocab.transform_all_sparse(&docs);
        let candidates = match fixed_k {
            Some(k) => vec![k],
            None => default_candidates(items.len()),
        };
        let result = elbow(&vectors, &candidates, seed);
        let k = result.clustering.k();
        let mut members = vec![Vec::new(); k];
        let mut by_cve = HashMap::with_capacity(items.len());
        let mut stored = HashMap::with_capacity(items.len());
        for (((cve, _), &cluster), vector) in
            items.iter().zip(&result.clustering.assignments).zip(vectors)
        {
            by_cve.insert(**cve, cluster);
            members[cluster].push(**cve);
            stored.insert(**cve, vector);
        }
        VulnClusters { by_cve, members, vectors: stored }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.members.len()
    }

    /// Number of indexed CVEs.
    pub fn len(&self) -> usize {
        self.by_cve.len()
    }

    /// True when the index holds no CVEs.
    pub fn is_empty(&self) -> bool {
        self.by_cve.is_empty()
    }

    /// The cluster id of a CVE, if it was part of the corpus.
    pub fn cluster_of(&self, cve: CveId) -> Option<usize> {
        self.by_cve.get(&cve).copied()
    }

    /// True when both CVEs were clustered together — the "similar weakness,
    /// potentially the same exploit" relation of §4.1.
    pub fn same_cluster(&self, a: CveId, b: CveId) -> bool {
        match (self.cluster_of(a), self.cluster_of(b)) {
            (Some(ca), Some(cb)) => ca == cb,
            _ => false,
        }
    }

    /// CVEs in cluster `c` (empty slice when out of range).
    pub fn cluster_members(&self, c: usize) -> &[CveId] {
        self.members.get(c).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates `(cluster_id, members)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[CveId])> {
        self.members.iter().enumerate().map(|(i, m)| (i, m.as_slice()))
    }

    /// Cosine similarity of two indexed descriptions (vectors are
    /// L2-normalized, so this is their dot product). `None` when either CVE
    /// was not in the corpus.
    pub fn similarity(&self, a: CveId, b: CveId) -> Option<f64> {
        let va = self.vectors.get(&a)?;
        let vb = self.vectors.get(&b)?;
        Some(va.dot_dense(&vb.to_dense()))
    }

    /// True when the CVEs share a cluster *and* their descriptions are at
    /// least `min_similarity`-cosine-similar — the relation the risk oracle
    /// uses to infer hidden vulnerability sharing.
    pub fn similar(&self, a: CveId, b: CveId, min_similarity: f64) -> bool {
        self.same_cluster(a, b) && self.similarity(a, b).is_some_and(|s| s >= min_similarity)
    }

    /// Publishes the clustering's shape into `registry`:
    /// `nlp_cluster_count` / `nlp_clustered_cves` gauges plus an
    /// `nlp_cluster_size` histogram with one observation per cluster, so a
    /// snapshot shows whether Table 1's size distribution is skewed.
    pub fn record_stats(&self, registry: &lazarus_obs::Registry) {
        registry.gauge("nlp_cluster_count").set(self.k() as f64);
        registry.gauge("nlp_clustered_cves").set(self.len() as f64);
        let sizes = registry.histogram("nlp_cluster_size");
        for members in &self.members {
            sizes.observe(members.len() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazarus_osint::cvss::CvssV3;
    use lazarus_osint::date::Date;
    use lazarus_osint::fixtures;

    fn mk(id: u32, desc: &str) -> Vulnerability {
        Vulnerability::new(
            CveId::new(2018, id),
            Date::from_ymd(2018, 1, 1),
            CvssV3::CRITICAL_RCE,
            desc,
        )
    }

    /// A corpus with three clear topic groups.
    fn corpus() -> Vec<Vulnerability> {
        vec![
            mk(1, "Cross-site scripting (XSS) in the dashboard allows remote attackers to inject arbitrary web script via a template field"),
            mk(2, "Cross-site scripting (XSS) in the dashboard allows remote users to inject arbitrary web script via a form metadata"),
            mk(3, "Cross-site scripting (XSS) in the dashboard allows injection of arbitrary HTML via an AngularJS template"),
            mk(4, "Buffer overflow in the kernel memory subsystem allows local users to gain privileges via a crafted syscall"),
            mk(5, "Buffer overflow in the kernel network stack allows local users to gain privileges via a crafted packet"),
            mk(6, "Buffer overflow in the kernel filesystem allows local users to gain privileges via a crafted image"),
            mk(7, "Information disclosure in the DNS resolver allows remote attackers to read memory via malformed responses"),
            mk(8, "Information disclosure in the DNS cache allows remote attackers to read memory via malformed queries"),
        ]
    }

    #[test]
    fn groups_by_topic_with_fixed_k() {
        let corpus = corpus();
        let c = VulnClusters::build_with_k(&corpus, 3, 11);
        assert_eq!(c.k(), 3);
        assert_eq!(c.len(), 8);
        // XSS trio together
        assert!(c.same_cluster(CveId::new(2018, 1), CveId::new(2018, 2)));
        assert!(c.same_cluster(CveId::new(2018, 1), CveId::new(2018, 3)));
        // kernel trio together
        assert!(c.same_cluster(CveId::new(2018, 4), CveId::new(2018, 5)));
        // across topics: separate
        assert!(!c.same_cluster(CveId::new(2018, 1), CveId::new(2018, 4)));
        assert!(!c.same_cluster(CveId::new(2018, 4), CveId::new(2018, 7)));
    }

    #[test]
    fn record_stats_publishes_shape() {
        let corpus = corpus();
        let c = VulnClusters::build_with_k(&corpus, 3, 11);
        let registry = lazarus_obs::Registry::new();
        c.record_stats(&registry);
        assert_eq!(registry.gauge("nlp_cluster_count").get(), 3.0);
        assert_eq!(registry.gauge("nlp_clustered_cves").get(), 8.0);
        let sizes = registry.histogram("nlp_cluster_size").snapshot();
        assert_eq!(sizes.count, 3);
        assert_eq!(sizes.sum, 8);
    }

    #[test]
    fn table1_triplet_lands_in_one_cluster() {
        // The paper's motivating example: three XSS CVEs in OpenStack
        // Horizon reported against OpenSuse / Solaris / Debian must cluster
        // together despite disjoint product lists.
        let mut corpus = fixtures::table1_triplet();
        corpus.extend(fixtures::may_2018_cluster());
        let c = VulnClusters::build_with_k(&corpus, 3, 5);
        assert!(c.same_cluster(CveId::new(2014, 157), CveId::new(2015, 3988)));
        assert!(c.same_cluster(CveId::new(2014, 157), CveId::new(2016, 4428)));
        // And the Windows kernel CVEs do not join the XSS cluster.
        assert!(!c.same_cluster(CveId::new(2014, 157), CveId::new(2018, 8134)));
    }

    #[test]
    fn elbow_build_is_reasonable() {
        let corpus = corpus();
        let c = VulnClusters::build(&corpus, 3);
        assert!(c.k() >= 2, "k={}", c.k());
        assert_eq!(c.len(), 8);
        // members partition the corpus
        let total: usize = (0..c.k()).map(|i| c.cluster_members(i).len()).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn unknown_cves_are_never_similar() {
        let c = VulnClusters::build_with_k(&corpus(), 3, 1);
        assert_eq!(c.cluster_of(CveId::new(1999, 1)), None);
        assert!(!c.same_cluster(CveId::new(1999, 1), CveId::new(2018, 1)));
        assert!(!c.same_cluster(CveId::new(1999, 1), CveId::new(1999, 2)));
    }

    #[test]
    fn empty_corpus() {
        let c = VulnClusters::build(std::iter::empty(), 0);
        assert!(c.is_empty());
        assert_eq!(c.k(), 0);
        assert_eq!(c.cluster_members(0), &[] as &[CveId]);
    }

    #[test]
    fn deterministic_under_seed() {
        let corpus = corpus();
        let a = VulnClusters::build(&corpus, 77);
        let b = VulnClusters::build(&corpus, 77);
        for v in &corpus {
            assert_eq!(a.cluster_of(v.id), b.cluster_of(v.id));
        }
    }

    #[test]
    fn similarity_orders_by_text_overlap() {
        let corpus = corpus();
        let c = VulnClusters::build_with_k(&corpus, 3, 11);
        let xss_pair = c.similarity(CveId::new(2018, 1), CveId::new(2018, 2)).unwrap();
        let cross = c.similarity(CveId::new(2018, 1), CveId::new(2018, 4)).unwrap();
        assert!(xss_pair > cross, "{xss_pair} !> {cross}");
        assert!(xss_pair > 0.5);
        assert_eq!(c.similarity(CveId::new(1999, 1), CveId::new(2018, 1)), None);
        // similar() composes cluster + similarity
        assert!(c.similar(CveId::new(2018, 1), CveId::new(2018, 2), 0.4));
        assert!(!c.similar(CveId::new(2018, 1), CveId::new(2018, 4), 0.0)); // different cluster
    }

    #[test]
    fn table1_triplet_is_mutually_similar() {
        let mut corpus = fixtures::table1_triplet();
        corpus.extend(fixtures::may_2018_cluster());
        let c = VulnClusters::build_with_k(&corpus, 3, 5);
        let s12 = c.similarity(CveId::new(2014, 157), CveId::new(2015, 3988)).unwrap();
        let s13 = c.similarity(CveId::new(2014, 157), CveId::new(2016, 4428)).unwrap();
        assert!(s12 > 0.35 && s13 > 0.35, "triplet similarity {s12} {s13}");
    }

    #[test]
    fn iter_covers_all_clusters() {
        let c = VulnClusters::build_with_k(&corpus(), 3, 2);
        let seen: usize = c.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(seen, c.len());
        assert_eq!(c.iter().count(), c.k());
    }
}
