//! Text preprocessing for vulnerability descriptions.
//!
//! Mirrors the Weka `StringToWordVector` preprocessing the prototype used
//! (paper §5.1, Risk manager): descriptions are lowercased, tokenized,
//! stripped of stop words, and reduced to a canonical form with a light
//! suffix stemmer, before TF-IDF vectorization.

/// English stop words plus boilerplate that appears in virtually every CVE
/// description and therefore carries no clustering signal.
const STOP_WORDS: &[&str] = &[
    "a",
    "an",
    "and",
    "are",
    "as",
    "at",
    "be",
    "before",
    "by",
    "can",
    "could",
    "do",
    "does",
    "earlier",
    "for",
    "from",
    "has",
    "have",
    "how",
    "in",
    "is",
    "it",
    "its",
    "of",
    "on",
    "or",
    "than",
    "that",
    "the",
    "their",
    "there",
    "these",
    "this",
    "through",
    "to",
    "via",
    "was",
    "when",
    "where",
    "which",
    "while",
    "who",
    "will",
    "with",
    "within",
    // CVE boilerplate
    "vulnerability",
    "vulnerabilities",
    "allow",
    "allows",
    "allowing",
    "attacker",
    "attackers",
    "issue",
    "affected",
    "affects",
    "version",
    "versions",
    "aka",
    "other",
    "certain",
    "unspecified",
    "multiple",
];

/// True when `word` is a stop word (after lowercasing).
pub fn is_stop_word(word: &str) -> bool {
    STOP_WORDS.contains(&word)
}

/// A light suffix stemmer (Porter step-1 flavoured): collapses plurals and
/// common verbal/nominal suffixes so `injected`, `injection` and `injects`
/// share a stem. Precision matters less than stability here — identical
/// descriptions must map to identical token streams.
pub fn stem(word: &str) -> String {
    let w = word;
    let try_strip = |w: &str, suffix: &str, min_stem: usize| -> Option<String> {
        w.strip_suffix(suffix).filter(|stem| stem.len() >= min_stem).map(|s| s.to_string())
    };
    if let Some(s) = try_strip(w, "ization", 3) {
        return s + "ize";
    }
    if let Some(s) = try_strip(w, "ations", 3) {
        return s + "ate";
    }
    if let Some(s) = try_strip(w, "ation", 3) {
        return s + "ate";
    }
    if let Some(s) = try_strip(w, "ments", 3) {
        return s + "ment";
    }
    if let Some(s) = try_strip(w, "nesses", 3) {
        return s + "ness";
    }
    if let Some(s) = try_strip(w, "ingly", 3) {
        return s;
    }
    if let Some(s) = try_strip(w, "tions", 3) {
        return s + "tion";
    }
    if let Some(s) = try_strip(w, "sses", 2) {
        return s + "ss";
    }
    if let Some(s) = try_strip(w, "ies", 2) {
        return s + "i";
    }
    if let Some(s) = try_strip(w, "ing", 3) {
        return s;
    }
    if let Some(s) = try_strip(w, "edly", 3) {
        return s;
    }
    if let Some(s) = try_strip(w, "ed", 3) {
        return s;
    }
    if let Some(s) = try_strip(w, "ly", 3) {
        return s;
    }
    if w.ends_with('s') && !w.ends_with("ss") && w.len() > 3 {
        return w[..w.len() - 1].to_string();
    }
    w.to_string()
}

/// Tokenizes a description into canonical terms: lowercase, alphanumeric
/// runs, stop words removed, short/purely-numeric tokens dropped, stemmed.
///
/// # Examples
///
/// ```
/// use lazarus_nlp::text::tokenize;
///
/// let tokens = tokenize("Cross-site scripting (XSS) allows remote attackers to inject scripts");
/// assert!(tokens.contains(&"cross".to_string()));
/// assert!(tokens.contains(&"xss".to_string()));
/// assert!(tokens.contains(&"inject".to_string()));   // "inject" stemmed
/// assert!(!tokens.contains(&"to".to_string()));      // stop word
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let lower = text.to_ascii_lowercase();
    lower
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| t.len() >= 3)
        .filter(|t| !t.chars().all(|c| c.is_ascii_digit()))
        .filter(|t| !is_stop_word(t))
        .map(stem)
        .filter(|t| t.len() >= 3)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stemming_collapses_variants() {
        assert_eq!(stem("injection"), stem("injections"));
        assert_eq!(stem("scripting"), "script");
        assert_eq!(stem("crafted"), "craft");
        assert_eq!(stem("packets"), "packet");
        assert_eq!(stem("overflows"), "overflow");
        assert_eq!(stem("randomization"), "randomize");
        // words that must survive unchanged
        assert_eq!(stem("kernel"), "kernel");
        assert_eq!(stem("xss"), "xss");
        // no over-stripping of short words
        assert_eq!(stem("les"), "les");
    }

    #[test]
    fn tokenize_drops_noise() {
        let t = tokenize("The 2013.2 release of the dashboard allows attackers via a crafted URL!");
        assert!(!t.iter().any(|w| w == "the"));
        assert!(!t.iter().any(|w| w == "2013"));
        assert!(!t.iter().any(|w| w == "allows" || w == "allow"));
        assert!(t.contains(&"dashboard".to_string()));
        assert!(t.contains(&"craft".to_string()));
        assert!(t.contains(&"url".to_string()));
    }

    #[test]
    fn identical_text_identical_tokens() {
        let a = "Buffer overflow in the kernel allows local privilege escalation.";
        assert_eq!(tokenize(a), tokenize(a));
    }

    #[test]
    fn table1_style_descriptions_overlap() {
        let a = tokenize(
            "Cross-site scripting (XSS) vulnerability in the Horizon Orchestration dashboard \
             in OpenStack Dashboard (aka Horizon) allows remote attackers to inject arbitrary \
             web script or HTML via the description field of a Heat template.",
        );
        let b = tokenize(
            "Cross-site scripting (XSS) vulnerability in OpenStack Dashboard (Horizon) allows \
             remote authenticated users to inject arbitrary web script or HTML by injecting an \
             AngularJS template in a dashboard form.",
        );
        let set_a: std::collections::HashSet<_> = a.iter().collect();
        let set_b: std::collections::HashSet<_> = b.iter().collect();
        let shared = set_a.intersection(&set_b).count();
        assert!(shared >= 8, "expected strong overlap, got {shared}");
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ??? 123 42").is_empty());
    }
}
