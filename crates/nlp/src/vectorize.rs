//! TF-IDF vectorization of token streams.
//!
//! Following the prototype (paper §5.1): "the vulnerability description
//! needs to be transformed into a vector, where a numerical value is
//! associated with the most relevant words (up to 200 words) … converting
//! all words to a canonical form and calculating their frequency (less
//! frequent words are given higher weights)". That is a TF-IDF scheme over a
//! bounded vocabulary; vectors are L2-normalized so K-means distances
//! compare direction, not document length.

use std::collections::HashMap;

use crate::kmeans::SparseVec;

/// Default vocabulary bound, per the paper ("up to 200 words").
pub const DEFAULT_MAX_TERMS: usize = 200;

/// A fitted vocabulary: term → dimension index, with per-term IDF weights.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    terms: Vec<String>,
    index: HashMap<String, usize>,
    idf: Vec<f64>,
    documents: usize,
}

impl Vocabulary {
    /// Fits a vocabulary over tokenized documents, keeping the `max_terms`
    /// terms with the highest document frequency (ties broken
    /// alphabetically, so fitting is deterministic). Terms must appear in at
    /// least two documents — hapaxes cannot indicate sharing.
    pub fn fit(documents: &[Vec<String>], max_terms: usize) -> Vocabulary {
        let mut df: HashMap<&str, usize> = HashMap::new();
        for doc in documents {
            let mut seen: Vec<&str> = doc.iter().map(String::as_str).collect();
            seen.sort_unstable();
            seen.dedup();
            for term in seen {
                *df.entry(term).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(&str, usize)> =
            df.into_iter().filter(|&(_, count)| count >= 2).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        ranked.truncate(max_terms);

        let n = documents.len().max(1) as f64;
        let mut terms = Vec::with_capacity(ranked.len());
        let mut idf = Vec::with_capacity(ranked.len());
        let mut index = HashMap::with_capacity(ranked.len());
        for (term, count) in ranked {
            index.insert(term.to_string(), terms.len());
            terms.push(term.to_string());
            // Smoothed IDF; rarer terms weigh more.
            idf.push((n / (count as f64)).ln() + 1.0);
        }
        Vocabulary { terms, index, idf, documents: documents.len() }
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when the vocabulary is empty (e.g. fitted on an empty corpus).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of documents the vocabulary was fitted on.
    pub fn documents(&self) -> usize {
        self.documents
    }

    /// The term at dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= self.len()`.
    pub fn term(&self, dim: usize) -> &str {
        &self.terms[dim]
    }

    /// Dimension of `term`, if in vocabulary.
    pub fn dim_of(&self, term: &str) -> Option<usize> {
        self.index.get(term).copied()
    }

    /// Transforms one tokenized document into an L2-normalized TF-IDF
    /// vector. Out-of-vocabulary tokens are ignored; a document with no
    /// in-vocabulary token yields the zero vector.
    pub fn transform(&self, tokens: &[String]) -> Vec<f64> {
        let mut v = vec![0.0; self.terms.len()];
        for t in tokens {
            if let Some(&i) = self.index.get(t) {
                v[i] += 1.0;
            }
        }
        for (i, x) in v.iter_mut().enumerate() {
            if *x > 0.0 {
                *x = (1.0 + f64::ln(*x)) * self.idf[i]; // sublinear TF
            }
        }
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }

    /// Transforms a whole corpus.
    pub fn transform_all(&self, documents: &[Vec<String>]) -> Vec<Vec<f64>> {
        documents.iter().map(|d| self.transform(d)).collect()
    }

    /// Transforms one document directly into sparse form (what the
    /// clustering pipeline consumes).
    pub fn transform_sparse(&self, tokens: &[String]) -> SparseVec {
        SparseVec::from_dense(&self.transform(tokens))
    }

    /// Transforms a whole corpus into sparse vectors.
    pub fn transform_all_sparse(&self, documents: &[Vec<String>]) -> Vec<SparseVec> {
        documents.iter().map(|d| self.transform_sparse(d)).collect()
    }
}

/// Squared Euclidean distance between equal-length vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Cosine similarity between equal-length vectors (0 for zero vectors).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::tokenize;

    fn corpus() -> Vec<Vec<String>> {
        [
            "Cross-site scripting in the dashboard allows script injection via a template",
            "Cross-site scripting in the dashboard allows HTML injection via a form",
            "Buffer overflow in the kernel allows privilege escalation via a crafted packet",
            "Buffer overflow in the kernel allows code execution via a crafted message",
            "Information disclosure in the resolver allows reading memory",
        ]
        .iter()
        .map(|s| tokenize(s))
        .collect()
    }

    #[test]
    fn vocabulary_is_bounded_and_deterministic() {
        let docs = corpus();
        let a = Vocabulary::fit(&docs, 10);
        let b = Vocabulary::fit(&docs, 10);
        assert!(a.len() <= 10);
        assert!(!a.is_empty());
        assert_eq!(a.documents(), 5);
        for d in 0..a.len() {
            assert_eq!(a.term(d), b.term(d));
        }
    }

    #[test]
    fn hapaxes_are_excluded() {
        let docs = corpus();
        let v = Vocabulary::fit(&docs, DEFAULT_MAX_TERMS);
        // "resolver" appears in exactly one document
        assert_eq!(v.dim_of("resolver"), None);
        // "kernel" appears in two
        assert!(v.dim_of("kernel").is_some());
    }

    #[test]
    fn vectors_are_unit_norm() {
        let docs = corpus();
        let v = Vocabulary::fit(&docs, DEFAULT_MAX_TERMS);
        for vec in v.transform_all(&docs) {
            let norm: f64 = vec.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-9, "norm {norm}");
        }
    }

    #[test]
    fn similar_documents_are_closer() {
        let docs = corpus();
        let v = Vocabulary::fit(&docs, DEFAULT_MAX_TERMS);
        let vecs = v.transform_all(&docs);
        let xss_pair = distance_sq(&vecs[0], &vecs[1]);
        let cross_pair = distance_sq(&vecs[0], &vecs[2]);
        assert!(xss_pair < cross_pair, "{xss_pair} !< {cross_pair}");
        assert!(cosine_similarity(&vecs[0], &vecs[1]) > cosine_similarity(&vecs[0], &vecs[2]));
    }

    #[test]
    fn oov_document_is_zero_vector() {
        let docs = corpus();
        let v = Vocabulary::fit(&docs, DEFAULT_MAX_TERMS);
        let z = v.transform(&tokenize("entirely unrelated astronomy telescope nebula"));
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn empty_corpus() {
        let v = Vocabulary::fit(&[], DEFAULT_MAX_TERMS);
        assert!(v.is_empty());
        assert_eq!(v.transform(&tokenize("anything")), Vec::<f64>::new());
    }

    #[test]
    fn distance_and_similarity_basics() {
        assert_eq!(distance_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn distance_dimension_mismatch_panics() {
        distance_sq(&[1.0], &[1.0, 2.0]);
    }
}
