//! Text clustering of vulnerability descriptions for Lazarus.
//!
//! Implements the "vulnerability clusters" half of the risk manager
//! (paper §4.1 and §5.1): NVD descriptions are tokenized and canonicalized
//! ([`text`]), vectorized with a bounded TF-IDF scheme ([`vectorize`],
//! "up to 200 words … less frequent words are given higher weights"),
//! clustered with K-means ([`kmeans`]) where K is picked by the elbow method
//! ([`elbow`]), and indexed by CVE id ([`cluster`]) so that the risk metric
//! can treat same-cluster vulnerabilities on different products as a shared
//! weakness.
//!
//! # Example
//!
//! ```
//! use lazarus_nlp::cluster::VulnClusters;
//! use lazarus_osint::fixtures;
//! use lazarus_osint::model::CveId;
//!
//! // The paper's Table 1: three XSS CVEs in OpenStack Horizon, listed
//! // against three different OSes, cluster together by description.
//! let mut corpus = fixtures::table1_triplet();
//! corpus.extend(fixtures::may_2018_cluster());
//! let clusters = VulnClusters::build_with_k(&corpus, 3, 42);
//! assert!(clusters.same_cluster(CveId::new(2014, 157), CveId::new(2016, 4428)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod elbow;
pub mod kmeans;
pub mod text;
pub mod vectorize;

pub use cluster::VulnClusters;
