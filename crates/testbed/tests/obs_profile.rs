//! Profiler determinism and folded-stack encoder properties.
//!
//! The performance observatory promises that every *deterministic* profile
//! output — `profile.json` (sim-time frames), `profile.folded` (collapsed
//! stacks), `queues.jsonl` (backpressure samples) — is a pure function of
//! the simulated run: rerunning the same configuration yields
//! byte-identical files (`ci.sh` additionally compares `LAZARUS_THREADS=1`
//! vs `4` across the `bench_suite` binary). The property test pins the
//! folded encoder itself: arbitrary frame names survive escaping as
//! parseable one-line-per-stack output, and self-time is conserved under
//! arbitrary scope nesting.

use bytes::Bytes;
use lazarus_bft::service::CounterService;
use lazarus_bft::types::{Epoch, Membership, ReplicaId};
use lazarus_obs::{escape_frame, ManualClock, Profiler};
use lazarus_testbed::cluster::{SimCluster, SimConfig};
use lazarus_testbed::sim::SEC;
use std::sync::Arc;

/// One profiled echo run: 4 replicas, 8 closed-loop clients, 1 s of sim
/// time. Returns the three deterministic artifacts as strings.
fn profiled_run() -> (String, String, String) {
    let profiler = Profiler::unclocked();
    let membership = Membership::new(Epoch(0), (0..4).map(ReplicaId).collect());
    let mut sim = SimCluster::new_observed(SimConfig::default());
    sim.attach_profiler(profiler.clone(), "echo");
    for r in 0..4 {
        sim.add_node(
            ReplicaId(r),
            lazarus_testbed::oscatalog::PerfProfile::bare_metal(),
            membership.clone(),
            Box::new(CounterService::new()),
        );
    }
    sim.add_clients(1, 8, membership, |_| Bytes::new());
    sim.run_until(SEC);
    let profile = profiler.snapshot();
    let queues: String = sim.queue_samples().iter().map(|s| s.to_jsonl() + "\n").collect();
    (profile.deterministic_json(), profile.folded(), queues)
}

#[test]
fn profiled_sim_run_is_byte_reproducible() {
    let (json_a, folded_a, queues_a) = profiled_run();
    let (json_b, folded_b, queues_b) = profiled_run();
    assert!(!folded_a.is_empty(), "a 1 s echo run charges hot-path frames");
    assert!(!queues_a.is_empty(), "health ticks sample the queues");
    assert_eq!(json_a, json_b, "profile.json must be byte-identical across reruns");
    assert_eq!(folded_a, folded_b, "profile.folded must be byte-identical across reruns");
    assert_eq!(queues_a, queues_b, "queues.jsonl must be byte-identical across reruns");
    assert!(json_a.contains("lazarus-profile-v1"), "schema-versioned profile");
}

proptest::proptest! {
    /// Arbitrary (printable, possibly `;`/space-laden, possibly empty)
    /// frame names survive the folded encoding as exactly one
    /// `path count` line per charged frame, and nested scope self-times
    /// sum back to the total elapsed clock — count conservation.
    #[test]
    fn folded_encoder_escapes_and_conserves(
        names in proptest::collection::vec("\\PC{0,12}", 1..6),
        advances in proptest::collection::vec(1u64..500, 6..7),
    ) {
        let clock = Arc::new(ManualClock::new());
        let profiler = Profiler::new(clock.clone());

        // Build one nested scope chain, advancing the clock inside every
        // level so each frame accrues self-time.
        let mut elapsed = 0u64;
        let mut scopes = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let scope = match scopes.last() {
                None => profiler.scope(&[name.as_str()]),
                Some(parent) => lazarus_obs::Scope::child(parent, name),
            };
            scopes.push(scope);
            elapsed += advances[i];
            clock.advance(advances[i]);
        }
        // Innermost extra advance, then unwind innermost-first so every
        // child hands its inclusive time to its parent before the parent
        // computes its own self-time.
        elapsed += advances[names.len() % advances.len()];
        clock.advance(advances[names.len() % advances.len()]);
        while let Some(scope) = scopes.pop() {
            drop(scope);
        }

        let profile = profiler.snapshot();
        proptest::prop_assert_eq!(profile.total_sim_us(), elapsed);

        let folded = profile.folded();
        let mut folded_total = 0u64;
        for line in folded.lines() {
            let (path, count) = line.rsplit_once(' ').expect("one space before the count");
            proptest::prop_assert!(!path.is_empty());
            // Escaped frames never smuggle separators: splitting the path
            // on ';' recovers one non-empty, whitespace-free frame per
            // nesting level.
            for frame in path.split(';') {
                proptest::prop_assert!(!frame.is_empty(), "frame empty in {:?}", line);
                proptest::prop_assert!(
                    !frame.contains(char::is_whitespace),
                    "unescaped whitespace in {:?}",
                    line
                );
            }
            folded_total += count.parse::<u64>().expect("numeric count");
        }
        // Conservation: the folded lines partition the elapsed time
        // (zero-cost frames are omitted and contribute nothing).
        proptest::prop_assert_eq!(folded_total, elapsed);
    }

    /// `escape_frame` output is always a safe folded-stack frame.
    #[test]
    fn escape_frame_output_is_always_safe(name in "\\PC{0,24}") {
        let escaped = escape_frame(&name);
        proptest::prop_assert!(!escaped.is_empty());
        proptest::prop_assert!(!escaped.contains(';'));
        proptest::prop_assert!(!escaped.contains(char::is_whitespace));
        proptest::prop_assert!(!escaped.contains(char::is_control));
    }
}
