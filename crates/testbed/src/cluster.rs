//! The simulated BFT cluster: replicas on profiled nodes, closed-loop
//! clients, and a virtual-time network.
//!
//! [`SimCluster`] drives the *same* replica state machines as a real
//! deployment, but in virtual time: every message delivery costs CPU on the
//! receiving node's [`ProcessingStation`] according to its
//! [`PerfProfile`], network hops add latency plus size/bandwidth time, and
//! checkpoints/state transfers add serialization work sized by the service
//! state. Quorum dynamics therefore emerge naturally — a 4-replica set makes
//! progress at the speed of its 3rd-fastest member, exactly the effect the
//! paper observes in §7.2.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;

use lazarus_bft::batcher::BatchPolicy;
use lazarus_bft::client::Client;
use lazarus_bft::crypto::{Keyring, Principal};
use lazarus_bft::messages::{Batch, CheckpointMsg, ConsensusMsg, Message, ReconfigCommand, Reply};
use lazarus_bft::obs::{Instruments, ReplicaObs, WireObs};
use lazarus_bft::replica::{Action, Replica, ReplicaConfig, Status, TimerId};
use lazarus_bft::service::Service;
use lazarus_bft::storage::{tear_tail, Journal, JournalConfig};
use lazarus_bft::types::{ClientId, Epoch, Membership, ReplicaId, SeqNo, View};
use lazarus_obs::causal::{
    slot_trace_id, EventKind, FlightEvent, FlightRecorder, TraceCtx, NO_SPAN,
};
use lazarus_obs::profile::{Profiler, QueueSample};
use lazarus_obs::{
    Clock, HealthConfig, HealthSnapshot, HealthTracker, Histogram, ManualClock, Obs,
};

use crate::faults::{ByzMode, FaultPlan, FaultStats, InvariantChecker};
use crate::metrics::Metrics;
use crate::oscatalog::PerfProfile;
use crate::sim::{EventQueue, Micros, ProcessingStation, MS, SEC};

/// The shared deployment secret used by the testbed.
pub const SIM_SECRET: &[u8] = b"lazarus-deployment";

/// Network parameters (a switched gigabit LAN by default, like the paper's
/// testbed).
#[derive(Debug, Clone, Copy)]
pub struct NetworkModel {
    /// One-way propagation + switching latency.
    pub latency: Micros,
    /// Link bandwidth in MB/s (gigabit ≈ 117 MB/s effective).
    pub bandwidth_mb_s: u64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel { latency: 120, bandwidth_mb_s: 117 }
    }
}

impl NetworkModel {
    /// One-way delivery delay for a message of `bytes`.
    pub fn delay(&self, bytes: usize) -> Micros {
        self.latency + bytes as u64 / self.bandwidth_mb_s.max(1)
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Network model.
    pub network: NetworkModel,
    /// Replica checkpoint period (slots).
    pub checkpoint_period: u64,
    /// Maximum batch size.
    pub max_batch: usize,
    /// Client retransmission interval.
    pub client_retry: Micros,
    /// View every replica boots in (leader of view `v` is
    /// `replicas[v % n]` — the control plane's leader-placement knob).
    pub initial_view: u64,
    /// CST chunk size every replica agrees on (manifest granularity).
    pub cst_chunk_bytes: usize,
    /// Consensus pipeline window: slots allowed in flight at once
    /// (1 = the classic one-slot-at-a-time pipeline).
    pub window: u64,
    /// Leader batch-sizing policy.
    pub batch_policy: BatchPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            network: NetworkModel::default(),
            checkpoint_period: 1000,
            max_batch: 400,
            client_retry: 30 * SEC,
            initial_view: 0,
            cst_chunk_bytes: 256 * 1024, // ReplicaConfig's default
            window: 1,
            batch_policy: BatchPolicy::Fixed,
        }
    }
}

/// Cadence of the online health reduction in an observed cluster.
const HEALTH_TICK: Micros = 250 * MS;

/// The context a replica handles an input under when the input carried no
/// trace (client traffic, controller injections, startup actions).
const UNTRACED: TraceCtx = TraceCtx { trace_id: 0, parent_id: NO_SPAN, span_id: NO_SPAN };

enum Ev {
    DeliverReplica(ReplicaId, Arc<Message>, Option<TraceCtx>),
    DeliverClient(ClientId, Reply),
    Timer(ReplicaId, TimerId, u64),
    ClientStart(ClientId),
    ClientRetry(ClientId, u64),
    NodeUp(ReplicaId),
    NodeDown(ReplicaId),
    /// Power restored after a scheduled crash (state retained).
    NodeRestart(ReplicaId),
    /// Power restored after a crash that lost volatile state: a durable
    /// node rebuilds its replica from the journal.
    NodeReboot(ReplicaId),
    /// Periodic online health reduction (observed clusters only).
    HealthTick,
}

/// Rebuild recipe for a journal-backed node: reopen the journal in `dir`,
/// recover, and wrap a fresh service instance from `factory`.
struct DurableSpec {
    dir: PathBuf,
    rcfg: ReplicaConfig,
    factory: Box<dyn FnMut() -> Box<dyn Service>>,
}

struct Node {
    replica: Replica<Box<dyn Service>>,
    station: ProcessingStation,
    profile: PerfProfile,
    ready: bool,
    timer_gen: HashMap<TimerId, u64>,
    powered: bool,
    durable: Option<DurableSpec>,
}

struct ClientState {
    client: Client,
    factory: Box<dyn FnMut(u64) -> Bytes>,
    /// Start time of each in-flight operation (keyed by op number), for
    /// per-operation latency accounting under pipelining.
    starts: HashMap<u64, Micros>,
    current_op: u64,
    stopped: bool,
}

/// The simulated cluster.
pub struct SimCluster {
    cfg: SimConfig,
    queue: EventQueue<Ev>,
    nodes: HashMap<u32, Node>,
    clients: HashMap<u64, ClientState>,
    keyring: Keyring,
    /// Completed-operation metrics.
    pub metrics: Metrics,
    /// Epoch transitions observed (time, new membership) — for Fig 9
    /// annotations.
    pub epoch_changes: Vec<(Micros, Membership)>,
    /// State-transfer completions (time, replica).
    pub transfers: Vec<(Micros, ReplicaId)>,
    /// Sim-time clock behind the optional obs bundle; kept at the current
    /// event's timestamp while the queue drains.
    sim_clock: Arc<ManualClock>,
    /// Instrumentation (None = uninstrumented; the simulation itself is
    /// unaffected either way).
    obs: Option<SimObs>,
    /// Installed fault schedule (None = a perfect network). Applies to
    /// replica→replica links only: client↔replica and controller injection
    /// paths stay clean, so liveness after heal is attributable to the
    /// protocol rather than to client retransmissions.
    faults: Option<FaultPlan>,
    /// Online safety checker (None = unchecked).
    checker: Option<InvariantChecker>,
    /// Per-replica causal flight recorders (empty = tracing off). The
    /// transport records wire events here; replicas share the same rings
    /// for protocol events.
    flights: HashMap<u32, FlightRecorder>,
    /// Ring capacity for recorders attached to future nodes; `None` =
    /// tracing off.
    flight_capacity: Option<usize>,
    /// Scratch directories (e.g. journals of durable nodes) owned by this
    /// run and removed when the cluster is dropped.
    scratch: Vec<PathBuf>,
    /// Optional phase profiler plus a root-frame prefix: the testbed
    /// charges its modeled station costs here (deterministic virtual
    /// self-times, since the sim clock is frozen while handlers run).
    profiler: Option<(Profiler, String)>,
    /// Periodic queue/backpressure samples, taken on the health tick of an
    /// observed cluster.
    queue_log: Vec<QueueSample>,
    /// In-flight `DeliverReplica` events per node — the sim's inbox depth.
    inbox_depth: HashMap<u32, u64>,
}

impl Drop for SimCluster {
    fn drop(&mut self) {
        // Drop replicas first so journal file handles are closed before
        // their directories disappear.
        self.nodes.clear();
        for dir in &self.scratch {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// Instrumentation handles owned by an observed [`SimCluster`].
struct SimObs {
    bundle: Obs,
    wire: WireObs,
    client_latency_us: Histogram,
    /// Streaming health aggregation over sim-time, reduced online every
    /// [`HEALTH_TICK`].
    health: HealthTracker,
}

impl std::fmt::Debug for SimCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCluster")
            .field("now", &self.queue.now())
            .field("nodes", &self.nodes.len())
            .field("clients", &self.clients.len())
            .field("completed", &self.metrics.completed())
            .finish()
    }
}

impl SimCluster {
    /// An empty cluster.
    pub fn new(cfg: SimConfig) -> SimCluster {
        SimCluster {
            cfg,
            queue: EventQueue::new(),
            nodes: HashMap::new(),
            clients: HashMap::new(),
            keyring: Keyring::new(SIM_SECRET),
            metrics: Metrics::new(),
            epoch_changes: Vec::new(),
            transfers: Vec::new(),
            sim_clock: Arc::new(ManualClock::new()),
            obs: None,
            faults: None,
            checker: None,
            flights: HashMap::new(),
            flight_capacity: None,
            scratch: Vec::new(),
            profiler: None,
            queue_log: Vec::new(),
            inbox_depth: HashMap::new(),
        }
    }

    /// Registers a scratch directory (a durable node's journal) to be
    /// deleted when this cluster is dropped.
    pub fn register_scratch(&mut self, dir: PathBuf) {
        self.scratch.push(dir);
    }

    /// An empty cluster instrumented against a fresh [`Obs`] bundle whose
    /// clock is *sim-time*: snapshots and traces from a fixed-seed run are
    /// byte-identical regardless of wall-clock scheduling. Replicas added
    /// after this call are instrumented automatically.
    pub fn new_observed(cfg: SimConfig) -> SimCluster {
        let mut sim = SimCluster::new(cfg);
        let bundle = Obs::new(Arc::clone(&sim.sim_clock) as Arc<dyn Clock>);
        ReplicaObs::describe(&bundle);
        sim.obs = Some(SimObs {
            wire: WireObs::new(&bundle),
            client_latency_us: bundle.registry.histogram("sim_client_latency_us"),
            health: HealthTracker::new(HealthConfig::default(), &bundle),
            bundle,
        });
        // The reduction runs *online*, in virtual time: anomaly onsets and
        // health gauges appear mid-run, not only at the end.
        sim.queue.schedule_at(HEALTH_TICK, Ev::HealthTick);
        sim
    }

    /// Turns on causal flight recording: every node (existing and future)
    /// gets a [`FlightRecorder`] ring of `capacity` events on the sim
    /// clock, shared between the transport (send/recv/drop/delay/dup/timer
    /// events) and the replica (protocol milestones). Streams from a
    /// fixed-seed run are byte-identical at any `LAZARUS_THREADS`.
    pub fn enable_flight(&mut self, capacity: usize) {
        self.flight_capacity = Some(capacity);
        let ids: Vec<u32> = self.nodes.keys().copied().collect();
        for id in ids {
            self.attach_flight(ReplicaId(id));
        }
    }

    fn attach_flight(&mut self, id: ReplicaId) {
        let Some(capacity) = self.flight_capacity else { return };
        let rec = self.flights.entry(id.0).or_insert_with(|| {
            FlightRecorder::new(id.0, capacity, Arc::clone(&self.sim_clock) as Arc<dyn Clock>)
        });
        if let Some(node) = self.nodes.get_mut(&id.0) {
            node.replica.attach(Instruments::new().with_flight(rec.clone()));
        }
    }

    /// Replica `id`'s flight recorder, when tracing is enabled.
    pub fn flight(&self, id: ReplicaId) -> Option<&FlightRecorder> {
        self.flights.get(&id.0)
    }

    /// Every recorder's stream, sorted by node id (deterministic order).
    pub fn flight_streams(&self) -> Vec<(u32, Vec<FlightEvent>)> {
        let mut out: Vec<(u32, Vec<FlightEvent>)> =
            self.flights.iter().map(|(id, rec)| (*id, rec.events())).collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Dumps one `replica_<id>.jsonl` per recorder into `dir` (created if
    /// missing).
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_flight_jsonl(&self, dir: &std::path::Path) -> std::io::Result<()> {
        let mut ids: Vec<u32> = self.flights.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            self.flights[&id].write_jsonl(&dir.join(format!("replica_{id}.jsonl")))?;
        }
        Ok(())
    }

    /// The instrumentation bundle, when built via
    /// [`SimCluster::new_observed`].
    pub fn obs(&self) -> Option<&Obs> {
        self.obs.as_ref().map(|o| &o.bundle)
    }

    /// The streaming health tracker, when built via
    /// [`SimCluster::new_observed`].
    pub fn health(&self) -> Option<&HealthTracker> {
        self.obs.as_ref().map(|o| &o.health)
    }

    /// A fresh health reduction at the current sim time (observed clusters
    /// only).
    pub fn health_snapshot(&self) -> Option<HealthSnapshot> {
        self.obs.as_ref().map(|o| o.health.snapshot())
    }

    /// Attaches a phase profiler: the testbed charges every modeled
    /// processing-station cost (message receive, send, broadcast, client
    /// reply) to `root;replica_<id>;<kind>;<label>` frames (`root` empty
    /// drops the prefix). The charges are the simulation's *virtual* cost
    /// model, so the resulting profile is byte-identical across reruns and
    /// thread counts. A `bench_suite` run attaches one shared profiler to
    /// several clusters with distinct roots to keep workloads apart.
    pub fn attach_profiler(&mut self, profiler: Profiler, root: &str) {
        self.profiler = Some((profiler, root.to_string()));
    }

    /// Charges one modeled cost to the attached profiler, if any.
    fn profile_charge(&self, node: u32, kind: &str, label: &str, cost: Micros) {
        if let Some((prof, root)) = &self.profiler {
            let replica = format!("replica_{node}");
            if root.is_empty() {
                prof.add(&[&replica, kind, label], cost);
            } else {
                prof.add(&[root, &replica, kind, label], cost);
            }
        }
    }

    /// Queue/backpressure samples collected so far (observed clusters
    /// sample every health tick; empty otherwise).
    pub fn queue_samples(&self) -> &[QueueSample] {
        &self.queue_log
    }

    /// Writes the queue samples as `queues.jsonl` into `dir` (created if
    /// missing) — the counter-track input of `trace_analyze`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_queue_jsonl(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut out = String::new();
        for sample in &self.queue_log {
            out.push_str(&sample.to_jsonl());
            out.push('\n');
        }
        std::fs::write(dir.join("queues.jsonl"), out)
    }

    /// Samples every node's queue state into `lazarus_queue_*` gauges and
    /// the in-memory queue log. Runs on the *existing* health tick — no new
    /// events are scheduled, so sampling cannot perturb the event
    /// interleaving (a new periodic event would shift the queue's
    /// insertion-order tie-breaking and with it every stochastic output).
    fn sample_queues(&mut self, at: Micros) {
        let Some(obs) = &self.obs else { return };
        let mut ids: Vec<u32> = self.nodes.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let node = &self.nodes[&id];
            let sample = QueueSample {
                at_us: at,
                node: id,
                inbox: self.inbox_depth.get(&id).copied().unwrap_or(0),
                pending: node.replica.pending_requests() as u64,
                decided_gap: node.replica.open_instances() as u64,
                batch_fill: node.replica.last_batch_fill() as u64,
            };
            let rid = id.to_string();
            let labels = [("replica", rid.as_str())];
            let registry = &obs.bundle.registry;
            registry.gauge_with("lazarus_queue_inbox_depth", &labels).set(sample.inbox as f64);
            registry
                .gauge_with("lazarus_queue_pending_requests", &labels)
                .set(sample.pending as f64);
            registry
                .gauge_with("lazarus_queue_decided_gap", &labels)
                .set(sample.decided_gap as f64);
            registry.gauge_with("lazarus_queue_batch_fill", &labels).set(sample.batch_fill as f64);
            self.queue_log.push(sample);
        }
    }

    /// Schedules a replica delivery, counting it toward the target's
    /// inbox depth until [`Self::deliver_replica`] consumes it.
    fn enqueue_deliver(
        &mut self,
        at: Micros,
        to: ReplicaId,
        message: Arc<Message>,
        ctx: Option<TraceCtx>,
    ) {
        *self.inbox_depth.entry(to.0).or_insert(0) += 1;
        self.queue.schedule_at(at, Ev::DeliverReplica(to, message, ctx));
    }

    /// Current virtual time.
    pub fn now(&self) -> Micros {
        self.queue.now()
    }

    /// Installs a fault schedule: link faults and partitions gate every
    /// replica→replica delivery from now on, crash/restart events are
    /// queued, and Byzantine replicas are marked on the installed checker
    /// (if any). Install faults and checker before running the simulation.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        for crash in plan.crash_schedule() {
            self.queue.schedule_at(crash.at, Ev::NodeDown(crash.replica));
            if let Some(restart) = crash.restart_at {
                let ev = if crash.reboot {
                    Ev::NodeReboot(crash.replica)
                } else {
                    Ev::NodeRestart(crash.replica)
                };
                self.queue.schedule_at(restart, ev);
            }
        }
        if let Some(checker) = self.checker.as_mut() {
            for id in plan.byzantine_ids() {
                checker.mark_byzantine(id);
            }
        }
        self.faults = Some(plan);
    }

    /// Installs an invariant checker observing every commit and checkpoint.
    pub fn install_checker(&mut self, mut checker: InvariantChecker) {
        if let Some(plan) = &self.faults {
            for id in plan.byzantine_ids() {
                checker.mark_byzantine(id);
            }
        }
        self.checker = Some(checker);
    }

    /// The installed checker, if any.
    pub fn checker(&self) -> Option<&InvariantChecker> {
        self.checker.as_ref()
    }

    /// Mutable access to the installed checker (for the end-of-run liveness
    /// assertion).
    pub fn checker_mut(&mut self) -> Option<&mut InvariantChecker> {
        self.checker.as_mut()
    }

    /// Injection counters of the installed fault plan.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|p| p.stats)
    }

    /// Restores power to a crashed node at `at` (state retained; the node
    /// rejoins and catches up through the normal protocol paths).
    pub fn restart_at(&mut self, at: Micros, id: ReplicaId) {
        self.queue.schedule_at(at, Ev::NodeRestart(id));
    }

    /// Rebuilds a durable node's replica from its journal after a crash
    /// that lost volatile state: the journal is reopened (replaying through
    /// any torn tail), the stable checkpoint is re-installed into a fresh
    /// service instance, and the decided suffix is replayed. The node comes
    /// ready only after the recovery's virtual time has elapsed. Nodes
    /// without a journal fall back to pause/resume semantics.
    fn reboot_node(&mut self, at: Micros, id: ReplicaId) {
        if self.nodes.get(&id.0).is_none_or(|n| n.durable.is_none()) {
            self.handle(at, Ev::NodeRestart(id));
            return;
        }
        let (dir, rcfg, service) = {
            let node = self.nodes.get_mut(&id.0).expect("checked above");
            let spec = node.durable.as_mut().expect("checked above");
            (spec.dir.clone(), spec.rcfg.clone(), (spec.factory)())
        };
        let jcfg = JournalConfig { fsync: false, ..JournalConfig::new(&dir) };
        let Ok((journal, recovered)) = Journal::open(jcfg) else { return };
        let (mut replica, actions, info) =
            Replica::recover(rcfg, service, Box::new(journal), recovered);
        if let Some(obs) = &self.obs {
            replica.attach(
                Instruments::new().with_obs(obs.bundle.clone()).with_health(obs.health.clone()),
            );
        }
        if let Some(checker) = self.checker.as_mut() {
            checker.record_recovery(id, info.stable_seq, info.stable_digest);
        }
        let ready_at = at + info.virtual_us;
        {
            let node = self.nodes.get_mut(&id.0).expect("checked above");
            node.replica = replica;
            node.powered = true;
            node.ready = false;
            // A rebooted machine has an empty run queue; timer generations
            // stay monotone so pre-crash timer events remain dead.
            node.station = ProcessingStation::new(node.profile.cores);
        }
        self.attach_flight(id);
        // Emits the recovery metrics + the `recover` flight event, so it
        // runs after the recorder is re-attached.
        if let Some(node) = self.nodes.get_mut(&id.0) {
            node.replica.note_recovered(&info);
        }
        self.queue.schedule_at(ready_at, Ev::NodeUp(id));
        for action in actions {
            self.schedule_action(id, ready_at, action, UNTRACED);
        }
    }

    /// Adds a ready replica node at time zero.
    pub fn add_node(
        &mut self,
        id: ReplicaId,
        profile: PerfProfile,
        membership: Membership,
        service: Box<dyn Service>,
    ) {
        let mut rcfg = ReplicaConfig::new(id, membership);
        rcfg.checkpoint_period = self.cfg.checkpoint_period;
        rcfg.max_batch = self.cfg.max_batch;
        rcfg.master_secret = SIM_SECRET.to_vec();
        rcfg.initial_view = View(self.cfg.initial_view);
        rcfg.cst_chunk_bytes = self.cfg.cst_chunk_bytes;
        rcfg.window = self.cfg.window;
        rcfg.batch_policy = self.cfg.batch_policy;
        let (mut replica, actions) = Replica::new(rcfg, service);
        if let Some(obs) = &self.obs {
            replica.attach(
                Instruments::new().with_obs(obs.bundle.clone()).with_health(obs.health.clone()),
            );
        }
        let node = Node {
            replica,
            station: ProcessingStation::new(profile.cores),
            profile,
            ready: true,
            timer_gen: HashMap::new(),
            powered: true,
            durable: None,
        };
        self.nodes.insert(id.0, node);
        self.attach_flight(id);
        let at = self.queue.now();
        self.absorb(id, at, actions, UNTRACED);
    }

    /// Adds a ready *durable* replica node at time zero: its decided log is
    /// backed by an append-only journal in `dir`, and a scheduled
    /// [`FaultPlan::crash_reboot`] makes it lose volatile state and rebuild
    /// itself from that journal. `factory` produces a fresh (empty) service
    /// instance per boot; recovery re-derives its state from the journal.
    ///
    /// # Errors
    ///
    /// Propagates journal I/O errors.
    pub fn add_durable_node(
        &mut self,
        id: ReplicaId,
        profile: PerfProfile,
        membership: Membership,
        dir: &Path,
        mut factory: Box<dyn FnMut() -> Box<dyn Service>>,
    ) -> std::io::Result<()> {
        let mut rcfg = ReplicaConfig::new(id, membership);
        rcfg.checkpoint_period = self.cfg.checkpoint_period;
        rcfg.max_batch = self.cfg.max_batch;
        rcfg.master_secret = SIM_SECRET.to_vec();
        rcfg.initial_view = View(self.cfg.initial_view);
        rcfg.cst_chunk_bytes = self.cfg.cst_chunk_bytes;
        rcfg.window = self.cfg.window;
        rcfg.batch_policy = self.cfg.batch_policy;
        // Sync-on-checkpoint still happens; per-record fsync off keeps mass
        // simulation fast (virtual fsync time is charged either way).
        let jcfg = JournalConfig { fsync: false, ..JournalConfig::new(dir) };
        let (journal, recovered) = Journal::open(jcfg)?;
        let service = factory();
        let (mut replica, actions) = if recovered.is_empty() {
            Replica::with_storage(rcfg.clone(), service, Box::new(journal))
        } else {
            let (replica, actions, info) =
                Replica::recover(rcfg.clone(), service, Box::new(journal), recovered);
            if let Some(checker) = self.checker.as_mut() {
                checker.record_recovery(id, info.stable_seq, info.stable_digest);
            }
            (replica, actions)
        };
        if let Some(obs) = &self.obs {
            replica.attach(
                Instruments::new().with_obs(obs.bundle.clone()).with_health(obs.health.clone()),
            );
        }
        let node = Node {
            replica,
            station: ProcessingStation::new(profile.cores),
            profile,
            ready: true,
            timer_gen: HashMap::new(),
            powered: true,
            durable: Some(DurableSpec { dir: dir.to_path_buf(), rcfg, factory }),
        };
        self.nodes.insert(id.0, node);
        self.attach_flight(id);
        let at = self.queue.now();
        self.absorb(id, at, actions, UNTRACED);
        Ok(())
    }

    /// Powers on a *joining* replica: it boots for `profile.boot`, then
    /// starts in state-transfer mode with the given membership.
    pub fn boot_joiner_at(
        &mut self,
        at: Micros,
        id: ReplicaId,
        profile: PerfProfile,
        membership: Membership,
        service: Box<dyn Service>,
    ) {
        let mut rcfg = ReplicaConfig::new(id, membership);
        rcfg.checkpoint_period = self.cfg.checkpoint_period;
        rcfg.max_batch = self.cfg.max_batch;
        rcfg.master_secret = SIM_SECRET.to_vec();
        rcfg.join = true;
        rcfg.initial_view = View(self.cfg.initial_view);
        rcfg.cst_chunk_bytes = self.cfg.cst_chunk_bytes;
        rcfg.window = self.cfg.window;
        rcfg.batch_policy = self.cfg.batch_policy;
        let (mut replica, actions) = Replica::new(rcfg, service);
        if let Some(obs) = &self.obs {
            replica.attach(
                Instruments::new().with_obs(obs.bundle.clone()).with_health(obs.health.clone()),
            );
        }
        let node = Node {
            replica,
            station: ProcessingStation::new(profile.cores),
            profile,
            ready: false,
            timer_gen: HashMap::new(),
            powered: true,
            durable: None,
        };
        self.nodes.insert(id.0, node);
        self.attach_flight(id);
        self.queue.schedule_at(at + profile.boot, Ev::NodeUp(id));
        // The joiner's initial actions (its CST requests) fire once it is up.
        let up_at = at + profile.boot;
        for action in actions {
            self.schedule_action(id, up_at, action, UNTRACED);
        }
    }

    /// Powers a node off at `at` (the Lazarus LTU's power-off command).
    pub fn power_off_at(&mut self, at: Micros, id: ReplicaId) {
        // Modeled as an event so in-flight work before `at` still happens.
        self.queue.schedule_at(at, Ev::NodeDown(id));
    }

    /// Sends a controller reconfiguration command to every ready replica at
    /// time `at`.
    pub fn inject_reconfig_at(
        &mut self,
        at: Micros,
        epoch: Epoch,
        add: Option<ReplicaId>,
        remove: Option<ReplicaId>,
    ) {
        let tag = self
            .keyring
            .sign(Principal::Controller, &ReconfigCommand::auth_bytes(epoch, add, remove));
        let cmd = ReconfigCommand { epoch, add, remove, tag };
        let ids: Vec<u32> = self.nodes.keys().copied().collect();
        for id in ids {
            self.enqueue_deliver(at, ReplicaId(id), Arc::new(Message::Reconfig(cmd.clone())), None);
        }
    }

    /// Adds `count` closed-loop clients issuing payloads from `factory`
    /// (`factory(op) → payload`); they start at staggered offsets within the
    /// first 10 ms.
    pub fn add_clients(
        &mut self,
        first_id: u64,
        count: usize,
        membership: Membership,
        factory: impl Fn(u64) -> Bytes + Clone + 'static,
    ) {
        self.add_pipelined_clients(first_id, count, 1, membership, factory);
    }

    /// Adds `count` clients each keeping up to `depth` operations in flight
    /// over one logical connection (`depth == 1` is the classic closed
    /// loop). Multiplexing lets a testbed drive very large simulated client
    /// populations without one [`ClientState`] per request stream.
    pub fn add_pipelined_clients(
        &mut self,
        first_id: u64,
        count: usize,
        depth: usize,
        membership: Membership,
        factory: impl Fn(u64) -> Bytes + Clone + 'static,
    ) {
        for i in 0..count {
            let id = first_id + i as u64;
            let client = Client::pipelined(ClientId(id), membership.clone(), SIM_SECRET, depth);
            let f = factory.clone();
            self.clients.insert(
                id,
                ClientState {
                    client,
                    factory: Box::new(f),
                    starts: HashMap::new(),
                    current_op: 0,
                    stopped: false,
                },
            );
            let offset = (i as u64 * 10 * MS) / count.max(1) as u64;
            self.queue.schedule_at(offset, Ev::ClientStart(ClientId(id)));
        }
    }

    /// Stops issuing new client operations (in-flight ones finish).
    pub fn stop_clients(&mut self) {
        for c in self.clients.values_mut() {
            c.stopped = true;
        }
    }

    /// Runs until virtual time `until` (or quiescence).
    pub fn run_until(&mut self, until: Micros) {
        while let Some(next) = self.queue.next_time() {
            if next > until {
                break;
            }
            let (at, ev) = self.queue.pop().expect("peeked");
            self.handle(at, ev);
        }
    }

    fn handle(&mut self, at: Micros, ev: Ev) {
        // Every timestamp the obs layer records while this event is handled
        // is the event's sim-time, not wall time.
        self.sim_clock.set(at);
        match ev {
            Ev::DeliverReplica(to, message, ctx) => self.deliver_replica(at, to, message, ctx),
            Ev::DeliverClient(client, reply) => self.deliver_client(at, client, reply),
            Ev::Timer(id, timer, gen) => {
                let fire = self
                    .nodes
                    .get(&id.0)
                    .is_some_and(|n| n.powered && n.timer_gen.get(&timer) == Some(&gen));
                if fire {
                    // A timer is a causal root of everything it triggers
                    // (watchdog view changes, client-request proposals).
                    let ctx = self
                        .flights
                        .get(&id.0)
                        .map(|f| f.protocol(EventKind::Timer, None, None, &UNTRACED, 0));
                    let actions = self
                        .nodes
                        .get_mut(&id.0)
                        .expect("exists")
                        .replica
                        .on_timer(timer, ctx.into());
                    self.absorb(id, at, actions, ctx.unwrap_or(UNTRACED));
                }
            }
            Ev::ClientStart(client) => self.client_start(at, client),
            Ev::ClientRetry(client, op) => {
                let Some(state) = self.clients.get_mut(&client.0) else { return };
                if state.client.has_pending(op) {
                    let sends = state.client.retransmit_op(op);
                    for (to, message) in sends {
                        let delay = self.cfg.network.delay(message.wire_size());
                        self.enqueue_deliver(at + delay, to, Arc::new(message), None);
                    }
                    self.queue.schedule_at(at + self.cfg.client_retry, Ev::ClientRetry(client, op));
                }
            }
            Ev::NodeUp(id) => {
                if let Some(node) = self.nodes.get_mut(&id.0) {
                    if node.powered {
                        node.ready = true;
                    }
                }
            }
            Ev::NodeDown(id) => {
                let journal_dir = {
                    let Some(node) = self.nodes.get_mut(&id.0) else { return };
                    node.powered = false;
                    node.ready = false;
                    node.durable.as_ref().map(|d| d.dir.clone())
                };
                // A crashing durable node may lose the tail of its last
                // journal write — recovery must detect the torn frame.
                if let (Some(dir), Some(plan)) = (journal_dir, self.faults.as_mut()) {
                    if plan.disk().torn_write_max_bytes > 0 {
                        let torn = plan.torn_write_len();
                        let _ = tear_tail(&dir, torn);
                    }
                }
            }
            Ev::NodeRestart(id) => {
                let (timeout, in_cst) = {
                    let Some(node) = self.nodes.get_mut(&id.0) else { return };
                    node.powered = true;
                    node.ready = true;
                    (
                        node.replica.cfg().request_timeout,
                        node.replica.status() == Status::StateTransfer,
                    )
                };
                // Timers armed before the crash were swallowed while the
                // node was down; re-arm the request watchdog so the revived
                // replica can still notice a stalled leader.
                self.schedule_action(id, at, Action::SetTimer(TimerId::Request, timeout), UNTRACED);
                if in_cst {
                    // A replica that crashed mid-transfer keeps its verified
                    // chunks; re-arming the CST watchdog rotates the designee
                    // and re-requests only what is still missing.
                    self.schedule_action(
                        id,
                        at,
                        Action::SetTimer(TimerId::Cst, timeout * 8),
                        UNTRACED,
                    );
                }
            }
            Ev::NodeReboot(id) => self.reboot_node(at, id),
            Ev::HealthTick => {
                if self.obs.is_none() {
                    return;
                }
                if let Some(obs) = &self.obs {
                    // Reduce-only: the snapshot reads the windows, publishes
                    // gauges, and counts anomaly onsets — it never perturbs
                    // the simulation itself.
                    let _ = obs.health.snapshot();
                }
                // Piggy-backed on the same tick for the same reason: reads
                // queue state, schedules nothing.
                self.sample_queues(at);
                self.queue.schedule_at(at + HEALTH_TICK, Ev::HealthTick);
            }
        }
    }

    fn deliver_replica(
        &mut self,
        at: Micros,
        to: ReplicaId,
        message: Arc<Message>,
        wire_ctx: Option<TraceCtx>,
    ) {
        // The scheduled delivery is consumed here no matter what happens to
        // it, so the inbox count drops even for unpowered targets.
        if let Some(depth) = self.inbox_depth.get_mut(&to.0) {
            *depth = depth.saturating_sub(1);
        }
        let Some(node) = self.nodes.get_mut(&to.0) else { return };
        if !node.powered || !node.ready {
            return;
        }
        // Extra install work for arriving state chunks.
        let mut cost = node.profile.msg_cost(message.wire_size());
        if let Message::CstChunkReply { data, .. } = &*message {
            cost += snapshot_cost(node.profile.snapshot_mb_s, data.len());
        }
        let done = node.station.submit(at, cost);
        // The replica's handling "happens" when its station finishes the
        // message, so obs timestamps taken inside on_message use that time.
        self.sim_clock.set(done);
        self.profile_charge(to.0, "recv", message.label(), cost);
        // The handling context: a fresh receive span adopting the wire
        // span as parent (or a root for untraced client traffic).
        let ctx = self.flights.get(&to.0).map(|flight| {
            let slot = message.consensus_slot();
            let trace_id = wire_ctx
                .map(|c| c.trace_id)
                .or_else(|| slot.map(|(_, seq)| slot_trace_id(seq.0)))
                .unwrap_or(0);
            let ctx = TraceCtx {
                trace_id,
                parent_id: wire_ctx.map_or(NO_SPAN, |c| c.span_id),
                span_id: flight.next_span(),
            };
            flight.push(FlightEvent {
                at_us: done,
                node: to.0,
                event: EventKind::Recv,
                kind: message.label(),
                seq: slot.map(|(_, s)| s.0),
                view: slot.map(|(v, _)| v.0),
                peer: message.sender().map(|r| r.0),
                trace_id: ctx.trace_id,
                parent_id: ctx.parent_id,
                span_id: ctx.span_id,
                extra: 0,
            });
            ctx
        });
        // Shallow clone unless we are the last recipient of a broadcast.
        let message = Arc::try_unwrap(message).unwrap_or_else(|shared| (*shared).clone());
        let node = self.nodes.get_mut(&to.0).expect("checked above");
        let actions = node.replica.on_message(message, ctx.into());
        self.absorb(to, done, actions, ctx.unwrap_or(UNTRACED));
    }

    fn deliver_client(&mut self, at: Micros, client: ClientId, reply: Reply) {
        let (completion, started_at, stopped) = {
            let Some(state) = self.clients.get_mut(&client.0) else { return };
            let Some(completion) = state.client.on_reply(reply) else { return };
            let started_at = state.starts.remove(&completion.op).unwrap_or(at);
            (completion, started_at, state.stopped)
        };
        self.metrics.record(at, at - started_at);
        if let Some(obs) = &self.obs {
            obs.client_latency_us.observe(at - started_at);
        }
        // Replies carry the membership epoch the quorum executed under.
        // When it moves past the epoch the client targets, adopt the
        // reconfigured replica set (the real deployment re-queries the
        // controller here): a leader seated at a newly added replica is
        // unreachable under the stale set, and every operation would limp
        // through the request watchdog instead of the fast path.
        let stale = {
            let state = self.clients.get(&client.0).expect("present above");
            completion.epoch.0 > state.client.membership().epoch.0
        };
        if stale {
            if let Some(membership) = self
                .epoch_changes
                .iter()
                .rev()
                .find(|(_, m)| m.epoch == completion.epoch)
                .map(|(_, m)| m.clone())
            {
                let state = self.clients.get_mut(&client.0).expect("present above");
                state.client.set_membership(membership);
            }
        }
        if !stopped {
            self.queue.schedule_at(at, Ev::ClientStart(client));
        }
    }

    fn client_start(&mut self, at: Micros, client: ClientId) {
        // Fill the client's pipeline: a depth-1 client issues exactly one
        // operation here (the classic closed loop), a pipelined one issues
        // operations until it reaches its in-flight capacity.
        loop {
            let Some(state) = self.clients.get_mut(&client.0) else { return };
            if state.client.busy() || state.stopped {
                return;
            }
            state.current_op += 1;
            state.starts.insert(state.current_op, at);
            let payload = (state.factory)(state.current_op);
            let sends = state.client.invoke(payload);
            let op = state.current_op;
            for (to, message) in sends {
                let delay = self.cfg.network.delay(message.wire_size());
                self.enqueue_deliver(at + delay, to, Arc::new(message), None);
            }
            self.queue.schedule_at(at + self.cfg.client_retry, Ev::ClientRetry(client, op));
        }
    }

    /// Applies a replica's actions starting at `from` (the time its
    /// processing completed), under the context of the input that produced
    /// them (outbound wire spans parent to it).
    fn absorb(&mut self, id: ReplicaId, from: Micros, actions: Vec<Action>, ctx: TraceCtx) {
        for action in actions {
            if let Action::Executed(seq, _) = &action {
                self.check_commit(id, *seq);
            }
            self.schedule_action(id, from, action, ctx);
        }
    }

    /// Feeds a freshly-executed slot to the invariant checker. Reading the
    /// batch right after `Action::Executed` is safe: checkpoint trimming
    /// needs later quorum votes, so the entry is still in the decided log.
    fn check_commit(&mut self, id: ReplicaId, seq: SeqNo) {
        let Some(checker) = self.checker.as_mut() else { return };
        let Some(node) = self.nodes.get(&id.0) else { return };
        if let Some(batch) = node.replica.decided_log().get(seq) {
            checker.record_commit(id, seq, batch);
        }
        let stable = node.replica.decided_log().stable_checkpoint();
        checker.record_checkpoint(id, stable.seq, stable.digest);
    }

    /// Records a sender-attributed fault event (drop/delay/dup) for the
    /// wire span `ctx`, when tracing is on. `extra` carries the added µs
    /// (delay) or the echo offset (dup).
    #[allow(clippy::too_many_arguments)]
    fn wire_fault(
        &self,
        at: Micros,
        from: ReplicaId,
        to: ReplicaId,
        event: EventKind,
        message: &Message,
        ctx: Option<TraceCtx>,
        extra: u64,
    ) {
        let Some(flight) = self.flights.get(&from.0) else { return };
        let slot = message.consensus_slot();
        let (trace_id, parent_id) = ctx.map_or((0, NO_SPAN), |c| (c.trace_id, c.span_id));
        flight.push(FlightEvent {
            at_us: at,
            node: from.0,
            event,
            kind: message.label(),
            seq: slot.map(|(_, s)| s.0),
            view: slot.map(|(v, _)| v.0),
            peer: Some(to.0),
            trace_id,
            parent_id,
            span_id: flight.next_span(),
            extra,
        });
    }

    /// Schedules delivery of one replica→replica message through the fault
    /// plan (if installed): the plan may drop it, delay it, or echo a
    /// duplicate. Fault-free clusters skip straight to the queue. The wire
    /// context rides along to the receiver; fault decisions are recorded
    /// into the *sender's* flight stream (the receiver never saw anything).
    fn route_deliver(
        &mut self,
        departed: Micros,
        from: ReplicaId,
        to: ReplicaId,
        delay: Micros,
        message: Arc<Message>,
        ctx: Option<TraceCtx>,
    ) {
        if self.faults.is_none() {
            self.enqueue_deliver(departed + delay, to, message, ctx);
            return;
        }
        let verdict = self.faults.as_mut().expect("checked").route(departed, from, to);
        match verdict {
            [None, None] => {
                self.wire_fault(departed, from, to, EventKind::Drop, &message, ctx, 0);
            }
            [Some(extra), None] | [None, Some(extra)] => {
                if extra > 0 {
                    self.wire_fault(departed, from, to, EventKind::Delay, &message, ctx, extra);
                }
                self.enqueue_deliver(departed + delay + extra, to, message, ctx);
            }
            [Some(extra), Some(echo)] => {
                if extra > 0 {
                    self.wire_fault(departed, from, to, EventKind::Delay, &message, ctx, extra);
                }
                self.wire_fault(departed, from, to, EventKind::Dup, &message, ctx, echo);
                self.enqueue_deliver(departed + delay + extra, to, Arc::clone(&message), ctx);
                self.enqueue_deliver(departed + delay + echo, to, message, ctx);
            }
        }
    }

    /// Applies the fault plan's in-flight chunk corruption to an outbound
    /// CST chunk reply (the disk-fault analog of a bad sector on the
    /// donor). Other messages pass through untouched, and the plan draws
    /// no randomness unless the knob is enabled.
    fn maybe_corrupt_chunk(&mut self, mut message: Message) -> Message {
        if let (Message::CstChunkReply { data, .. }, Some(plan)) =
            (&mut message, self.faults.as_mut())
        {
            if let Some(bad) = plan.corrupt_chunk(data) {
                *data = Bytes::from(bad);
            }
        }
        message
    }

    /// Applies the sender's Byzantine mode (if any) to an outbound protocol
    /// message. Returns `None` when the message is swallowed (mute).
    /// Equivocation is handled at the broadcast site — for unicast sends an
    /// equivocating replica behaves normally.
    fn byz_transform(&mut self, id: ReplicaId, message: Message) -> Option<Message> {
        let Some(plan) = self.faults.as_mut() else { return Some(message) };
        match plan.byz_mode(id) {
            None | Some(ByzMode::Equivocate) => Some(message),
            Some(ByzMode::Mute) => {
                plan.stats.muted += 1;
                None
            }
            Some(ByzMode::CorruptPayload) => Some(corrupt_message(plan, message)),
        }
    }

    /// Allocates a wire span for `message` leaving `id` toward `to` at
    /// `departed`, records the `send` event, and returns the context to
    /// ride the wire. `None` when tracing is off. Every copy of a
    /// broadcast gets its own span — distinct DAG edges per recipient.
    fn wire_send(
        &self,
        id: ReplicaId,
        to: ReplicaId,
        departed: Micros,
        message: &Message,
        handling: &TraceCtx,
    ) -> Option<TraceCtx> {
        let flight = self.flights.get(&id.0)?;
        let slot = message.consensus_slot();
        let trace_id = slot.map_or(handling.trace_id, |(_, seq)| slot_trace_id(seq.0));
        let ctx = TraceCtx { trace_id, parent_id: handling.span_id, span_id: flight.next_span() };
        flight.push(FlightEvent {
            at_us: departed,
            node: id.0,
            event: EventKind::Send,
            kind: message.label(),
            seq: slot.map(|(_, s)| s.0),
            view: slot.map(|(v, _)| v.0),
            peer: Some(to.0),
            trace_id: ctx.trace_id,
            parent_id: ctx.parent_id,
            span_id: ctx.span_id,
            extra: 0,
        });
        Some(ctx)
    }

    /// The cost/latency model of one broadcast (shared by the honest path
    /// and the two halves of an equivocating leader's split broadcast).
    fn broadcast_now(
        &mut self,
        id: ReplicaId,
        from: Micros,
        peers: Vec<ReplicaId>,
        message: Arc<Message>,
        handling: TraceCtx,
    ) {
        let (departed, delay, cost) = {
            let node = self.nodes.get_mut(&id.0).expect("sender exists");
            // The zero-copy path signs and serializes once per broadcast, so
            // the sender pays one message-handling unit (and, for
            // checkpoints, one full snapshot serialization) regardless of
            // fan-out.
            let mut cost = node.profile.per_msg_us / 2;
            if matches!(&*message, Message::Checkpoint { .. }) {
                cost +=
                    snapshot_cost(node.profile.snapshot_mb_s, node.replica.service().state_size())
                        * node.profile.cores as u64;
            }
            (node.station.submit(from, cost), self.cfg.network.delay(message.wire_size()), cost)
        };
        self.profile_charge(id.0, "send", message.label(), cost);
        if let Some(obs) = &self.obs {
            obs.wire.sent(message.label(), message.wire_size(), peers.len());
            obs.health.seen(id.0);
        }
        for to in peers {
            let ctx = self.wire_send(id, to, departed, &message, &handling);
            self.route_deliver(departed, id, to, delay, Arc::clone(&message), ctx);
        }
    }

    fn schedule_action(&mut self, id: ReplicaId, from: Micros, action: Action, handling: TraceCtx) {
        match action {
            Action::Send(to, message) => {
                let Some(message) = self.byz_transform(id, message) else { return };
                let message = self.maybe_corrupt_chunk(message);
                let (departed, delay, cost) = {
                    let node = self.nodes.get_mut(&id.0).expect("sender exists");
                    // Sending costs half a message-handling unit; checkpoints
                    // additionally serialize the service snapshot.
                    let mut cost = node.profile.per_msg_us / 2;
                    if matches!(message, Message::Checkpoint { .. }) {
                        // The snapshot serialization stalls the service (the
                        // §7.3 checkpoint dips): spread `cores ×` the snapshot
                        // cost over the broadcast so every core is busy for the
                        // serialization period.
                        let stall = snapshot_cost(
                            node.profile.snapshot_mb_s,
                            node.replica.service().state_size(),
                        ) * node.profile.cores as u64;
                        cost += stall / (node.replica.membership().n() as u64 - 1).max(1);
                    }
                    if let Message::CstChunkReply { data, .. } = &message {
                        // Serializing one chunk for a joiner costs the donor
                        // proportional snapshot bandwidth; chunking spreads
                        // the old full-snapshot stall across the transfer.
                        cost += snapshot_cost(node.profile.snapshot_mb_s, data.len());
                    }
                    (
                        node.station.submit(from, cost),
                        self.cfg.network.delay(message.wire_size()),
                        cost,
                    )
                };
                self.profile_charge(id.0, "send", message.label(), cost);
                if let Some(obs) = &self.obs {
                    obs.wire.sent(message.label(), message.wire_size(), 1);
                    obs.health.seen(id.0);
                }
                let ctx = self.wire_send(id, to, departed, &message, &handling);
                self.route_deliver(departed, id, to, delay, Arc::new(message), ctx);
            }
            Action::Broadcast(peers, message) => {
                // An equivocating leader forks its proposals: conflicting
                // batch to one half of the peers, the original to the rest —
                // WRITE votes split and neither digest reaches quorum.
                let equivocates = self
                    .faults
                    .as_ref()
                    .is_some_and(|p| p.byz_mode(id) == Some(ByzMode::Equivocate));
                if equivocates {
                    if let Message::Consensus {
                        from: sender,
                        msg: ConsensusMsg::Propose { view, seq, batch },
                    } = &*message
                    {
                        let plan = self.faults.as_mut().expect("checked");
                        let forked = Arc::new(Message::Consensus {
                            from: *sender,
                            msg: ConsensusMsg::Propose {
                                view: *view,
                                seq: *seq,
                                batch: plan.equivocate_batch(batch),
                            },
                        });
                        let split = peers.len().div_ceil(2);
                        let (fork_side, true_side) = peers.split_at(split);
                        let (fork_side, true_side) = (fork_side.to_vec(), true_side.to_vec());
                        self.broadcast_now(id, from, fork_side, forked, handling);
                        self.broadcast_now(id, from, true_side, message, handling);
                        return;
                    }
                }
                // Only Byzantine senders pay the deep clone; the honest
                // path keeps the zero-copy shared Arc.
                let is_byz = self.faults.as_ref().is_some_and(|p| p.byz_mode(id).is_some());
                let message = if is_byz {
                    match self.byz_transform(id, (*message).clone()) {
                        Some(m) => Arc::new(m),
                        None => return,
                    }
                } else {
                    message
                };
                self.broadcast_now(id, from, peers, message, handling);
            }
            Action::SendClient(client, reply) => {
                let node = self.nodes.get_mut(&id.0).expect("sender exists");
                // Large replies cost proportionally to serialize/transmit.
                let cost = node.profile.per_msg_us / 2
                    + (reply.result.len() as u64 * node.profile.per_kb_us) / 2048;
                let departed = node.station.submit(from, cost);
                let delay = self.cfg.network.delay(48 + reply.result.len());
                self.profile_charge(id.0, "send", "REPLY", cost);
                self.queue.schedule_at(departed + delay, Ev::DeliverClient(client, reply));
            }
            Action::SetTimer(timer, hint_ms) => {
                let node = self.nodes.get_mut(&id.0).expect("node exists");
                let gen = node.timer_gen.entry(timer).or_insert(0);
                *gen += 1;
                let gen = *gen;
                self.queue.schedule_at(from + hint_ms * MS, Ev::Timer(id, timer, gen));
            }
            Action::CancelTimer(timer) => {
                let node = self.nodes.get_mut(&id.0).expect("node exists");
                *node.timer_gen.entry(timer).or_insert(0) += 1;
            }
            Action::Executed(..) => {}
            Action::EpochChanged(membership) => {
                if let Some(obs) = &self.obs {
                    obs.bundle.tracer.event(
                        "sim.epoch_change",
                        vec![
                            ("at_us", from.into()),
                            ("replica", id.0.into()),
                            ("epoch", membership.epoch.0.into()),
                            ("n", membership.n().into()),
                        ],
                    );
                }
                self.epoch_changes.push((from, membership));
            }
            Action::Retired => {}
            Action::StateTransferred(seq) => {
                if let Some(obs) = &self.obs {
                    obs.bundle.tracer.event(
                        "sim.state_transfer",
                        vec![
                            ("at_us", from.into()),
                            ("replica", id.0.into()),
                            ("seq", seq.0.into()),
                        ],
                    );
                }
                self.transfers.push((from, id));
            }
        }
    }

    /// Access to a node's replica (panics if absent).
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn replica(&self, id: ReplicaId) -> &Replica<Box<dyn Service>> {
        &self.nodes[&id.0].replica
    }

    /// Whether the node exists and is powered + ready.
    pub fn node_ready(&self, id: ReplicaId) -> bool {
        self.nodes.get(&id.0).is_some_and(|n| n.powered && n.ready)
    }
}

/// CPU time to serialize/install `bytes` of state at `mb_s` MB/s.
fn snapshot_cost(mb_s: u64, bytes: usize) -> Micros {
    (bytes as u64).saturating_mul(1) / mb_s.max(1) // bytes / (MB/s) = µs
}

/// What a payload-corrupting Byzantine sender does to each message class.
/// Tags are deliberately left stale — the point is that every receiver-side
/// MAC/digest check must catch the tampering and count a rejection:
///
/// * requests / proposed batches → flipped payload, tag now invalid;
/// * WRITE / ACCEPT / checkpoint digests → votes for a value nobody
///   proposed (they pile up below quorum, harmlessly);
/// * CST chunk replies → bytes that no longer match the manifest's
///   per-chunk digest.
///
/// View-change and CST-request messages pass through: they carry no
/// payload whose corruption the receiver could distinguish from a
/// legitimate (if useless) message.
fn corrupt_message(plan: &mut FaultPlan, message: Message) -> Message {
    match message {
        Message::Request(mut request) => {
            request.payload = Bytes::from(plan.corrupt_bytes(&request.payload));
            Message::Request(request)
        }
        Message::Consensus { from, msg: ConsensusMsg::Propose { view, seq, batch } } => {
            let mut requests = batch.requests().to_vec();
            if let Some(first) = requests.first_mut() {
                first.payload = Bytes::from(plan.corrupt_bytes(&first.payload));
            }
            Message::Consensus {
                from,
                msg: ConsensusMsg::Propose { view, seq, batch: Batch::new(requests) },
            }
        }
        Message::Consensus { from, msg: ConsensusMsg::Write { view, seq, digest } } => {
            Message::Consensus {
                from,
                msg: ConsensusMsg::Write { view, seq, digest: plan.corrupt_digest(digest) },
            }
        }
        Message::Consensus { from, msg: ConsensusMsg::Accept { view, seq, digest } } => {
            Message::Consensus {
                from,
                msg: ConsensusMsg::Accept { view, seq, digest: plan.corrupt_digest(digest) },
            }
        }
        Message::Checkpoint { from, msg } => Message::Checkpoint {
            from,
            msg: CheckpointMsg { seq: msg.seq, digest: plan.corrupt_digest(msg.digest) },
        },
        Message::CstChunkReply { from, seq, index, data } => Message::CstChunkReply {
            from,
            seq,
            index,
            data: Bytes::from(plan.corrupt_bytes(&data)),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oscatalog::PerfProfile;
    use lazarus_bft::service::CounterService;

    fn observed_run() -> (String, String) {
        let membership = Membership::new(Epoch(0), (0..4).map(ReplicaId).collect());
        let mut sim = SimCluster::new_observed(SimConfig::default());
        for r in 0..4 {
            sim.add_node(
                ReplicaId(r),
                PerfProfile::bare_metal(),
                membership.clone(),
                Box::new(CounterService::new()),
            );
        }
        sim.add_clients(1, 10, membership, |_| Bytes::new());
        sim.run_until(200 * MS);
        let obs = sim.obs().expect("observed");
        let traces: Vec<String> = obs.tracer.recent().iter().map(|e| e.render()).collect();
        (obs.registry.snapshot().to_prometheus(), traces.join("\n"))
    }

    fn traced_run() -> SimCluster {
        let membership = Membership::new(Epoch(0), (0..4).map(ReplicaId).collect());
        let mut sim = SimCluster::new_observed(SimConfig::default());
        sim.enable_flight(FlightRecorder::DEFAULT_CAPACITY);
        for r in 0..4 {
            sim.add_node(
                ReplicaId(r),
                PerfProfile::bare_metal(),
                membership.clone(),
                Box::new(CounterService::new()),
            );
        }
        sim.add_clients(1, 4, membership, |_| Bytes::new());
        sim.run_until(100 * MS);
        sim
    }

    #[test]
    fn clients_adopt_reconfigured_membership() {
        // initial_view 3 seats the leader at members[3]: r3 before the
        // rotation, but the *joiner* r4 once r1 is removed (members
        // [0,2,3,4]). Clients bootstrapped at epoch 0 never target r4 —
        // unless reply epochs steer them onto the reconfigured set, every
        // operation after the removal limps through the request watchdog.
        let membership = Membership::new(Epoch(0), (0..4).map(ReplicaId).collect());
        let cfg = SimConfig { initial_view: 3, ..SimConfig::default() };
        let mut sim = SimCluster::new(cfg);
        for r in 0..4 {
            sim.add_node(
                ReplicaId(r),
                PerfProfile::bare_metal(),
                membership.clone(),
                Box::new(CounterService::new()),
            );
        }
        sim.add_clients(1, 8, membership.clone(), |_| Bytes::new());
        let joined = membership.reconfigured(Some(ReplicaId(4)), None);
        let profile = PerfProfile { boot: 20 * MS, ..PerfProfile::bare_metal() };
        sim.boot_joiner_at(50 * MS, ReplicaId(4), profile, joined, Box::new(CounterService::new()));
        sim.inject_reconfig_at(300 * MS, Epoch(0), Some(ReplicaId(4)), None);
        sim.inject_reconfig_at(600 * MS, Epoch(1), None, Some(ReplicaId(1)));
        sim.run_until(1500 * MS);

        assert_eq!(sim.replica(ReplicaId(0)).membership().epoch, Epoch(2));
        assert_eq!(sim.replica(ReplicaId(0)).membership().leader(View(3)), ReplicaId(4));
        for state in sim.clients.values() {
            assert_eq!(
                state.client.membership().epoch,
                Epoch(2),
                "reply epochs moved the client onto the reconfigured set"
            );
        }
        let before = sim.metrics.throughput(100 * MS, 300 * MS);
        let after = sim.metrics.throughput(700 * MS, 1500 * MS);
        assert!(
            after > before * 0.3,
            "the fast path survives a leader seated at the new replica \
             (before {before:.0} ops/s, after {after:.0} ops/s)"
        );
    }

    #[test]
    fn flight_streams_are_deterministic_and_causally_complete() {
        let a = traced_run();
        let b = traced_run();
        let render = |sim: &SimCluster| {
            sim.flight_streams()
                .iter()
                .flat_map(|(_, evs)| evs.iter().map(|e| e.to_jsonl()))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(&a), render(&b), "same config → byte-identical streams");

        // Every recorded parent reference resolves to a recorded span: the
        // global DAG has no dangling edges.
        let streams = a.flight_streams();
        let spans: std::collections::HashSet<u64> =
            streams.iter().flat_map(|(_, evs)| evs.iter().map(|e| e.span_id)).collect();
        let mut checked = 0usize;
        for (_, evs) in &streams {
            for ev in evs {
                if ev.parent_id != 0 {
                    assert!(spans.contains(&ev.parent_id), "dangling parent: {}", ev.to_jsonl());
                    checked += 1;
                }
            }
        }
        assert!(checked > 100, "a healthy run links plenty of events ({checked})");
        // Sim-time stamps: station backlog may run slightly past the
        // horizon, but a wall-clock leak would stamp unix-epoch µs.
        assert!(streams.iter().all(|(_, evs)| evs.iter().all(|e| e.at_us < SEC)));
        // Replica protocol milestones and transport wire events share rings.
        let all: Vec<&FlightEvent> = streams.iter().flat_map(|(_, e)| e).collect();
        assert!(all.iter().any(|e| e.event == EventKind::Commit));
        assert!(all.iter().any(|e| e.event == EventKind::Recv && e.kind == "PROPOSE"));
    }

    #[test]
    fn observed_sim_is_deterministic_and_uses_sim_time() {
        let (snap_a, _) = observed_run();
        let (snap_b, _) = observed_run();
        assert_eq!(snap_a, snap_b, "same config → byte-identical snapshot");
        assert!(snap_a.contains("bft_wire_messages_total{kind=\"PROPOSE\"}"), "{snap_a}");
        assert!(snap_a.contains("sim_client_latency_us_count"), "{snap_a}");
        // Sim-time latencies are bounded by the virtual horizon — a
        // wall-clock leak would record microseconds-scale noise instead.
        let sim = {
            let membership = Membership::new(Epoch(0), (0..4).map(ReplicaId).collect());
            let mut sim = SimCluster::new_observed(SimConfig::default());
            for r in 0..4 {
                sim.add_node(
                    ReplicaId(r),
                    PerfProfile::bare_metal(),
                    membership.clone(),
                    Box::new(CounterService::new()),
                );
            }
            sim.add_clients(1, 10, membership, |_| Bytes::new());
            sim.run_until(200 * MS);
            sim
        };
        let snap = sim.obs().expect("observed").registry.snapshot();
        let (_, hist) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "bft_commit_latency_us")
            .expect("commit latency recorded");
        assert!(hist.count > 0);
        assert!(hist.max <= 200 * MS, "latency {} exceeds the virtual horizon", hist.max);
    }
}
