//! Experiment metrics: throughput time series and latency summaries.

use crate::sim::{Micros, SEC};

/// Percentile summary of completed-operation latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Completed operations.
    pub count: usize,
    /// Mean latency in µs.
    pub mean_us: f64,
    /// Median (nearest-rank).
    pub p50_us: Micros,
    /// 95th percentile (nearest-rank).
    pub p95_us: Micros,
    /// 99th percentile (nearest-rank).
    pub p99_us: Micros,
    /// 99.9th percentile (nearest-rank) — on small samples this collapses
    /// onto the max, which is what nearest-rank prescribes.
    pub p999_us: Micros,
    /// Worst observed latency.
    pub max_us: Micros,
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms, p99.9 {:.1} ms, max {:.1} ms (mean {:.1} ms, n={})",
            self.p50_us as f64 / 1e3,
            self.p95_us as f64 / 1e3,
            self.p99_us as f64 / 1e3,
            self.p999_us as f64 / 1e3,
            self.max_us as f64 / 1e3,
            self.mean_us / 1e3,
            self.count
        )
    }
}

/// A recorder of completed operations.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// `(completion_time, latency)` per completed operation.
    completions: Vec<(Micros, Micros)>,
}

impl Metrics {
    /// An empty recorder.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one completed operation.
    pub fn record(&mut self, completed_at: Micros, latency: Micros) {
        self.completions.push((completed_at, latency));
    }

    /// Total completed operations.
    pub fn completed(&self) -> usize {
        self.completions.len()
    }

    /// Completion time of the earliest finished operation — the cluster's
    /// time-to-first-service, and under a from-boot fault the time-to-heal.
    pub fn first_completion(&self) -> Option<Micros> {
        self.completions.iter().map(|&(t, _)| t).min()
    }

    /// Mean throughput over `[from, to)` in operations per second.
    pub fn throughput(&self, from: Micros, to: Micros) -> f64 {
        if to <= from {
            return 0.0;
        }
        let n = self.completions.iter().filter(|&&(t, _)| t >= from && t < to).count();
        n as f64 * SEC as f64 / (to - from) as f64
    }

    /// Throughput per bucket of `bucket` µs over `[0, horizon)` — the
    /// Figure 9 time series.
    pub fn throughput_series(&self, bucket: Micros, horizon: Micros) -> Vec<(Micros, f64)> {
        assert!(bucket > 0, "bucket must be positive");
        let buckets = horizon.div_ceil(bucket);
        let mut counts = vec![0usize; buckets as usize];
        for &(t, _) in &self.completions {
            if t < horizon {
                counts[(t / bucket) as usize] += 1;
            }
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, n)| (i as Micros * bucket, n as f64 * SEC as f64 / bucket as f64))
            .collect()
    }

    /// Latency percentile (0.0–1.0) over all completions, by the standard
    /// nearest-rank method: the `⌈p·N⌉`-th smallest sample (1-indexed).
    pub fn latency_percentile(&self, p: f64) -> Option<Micros> {
        if self.completions.is_empty() {
            return None;
        }
        let mut lats: Vec<Micros> = self.completions.iter().map(|&(_, l)| l).collect();
        lats.sort_unstable();
        let rank = ((p.clamp(0.0, 1.0) * lats.len() as f64).ceil() as usize).max(1);
        Some(lats[rank.min(lats.len()) - 1])
    }

    /// p50/p95/p99/p99.9/mean/max latency over all completions (`None`
    /// when no operation completed).
    pub fn summary(&self) -> Option<LatencySummary> {
        Some(LatencySummary {
            count: self.completed(),
            mean_us: self.mean_latency()?,
            p50_us: self.latency_percentile(0.50)?,
            p95_us: self.latency_percentile(0.95)?,
            p99_us: self.latency_percentile(0.99)?,
            p999_us: self.latency_percentile(0.999)?,
            max_us: self.completions.iter().map(|&(_, l)| l).max()?,
        })
    }

    /// Feeds every recorded latency into `histogram` (bridges the raw
    /// samples into a shared obs registry snapshot).
    pub fn fill_histogram(&self, histogram: &lazarus_obs::Histogram) {
        for &(_, latency) in &self.completions {
            histogram.observe(latency);
        }
    }

    /// Mean latency in µs.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.completions.is_empty() {
            return None;
        }
        let sum: u64 = self.completions.iter().map(|&(_, l)| l).sum();
        Some(sum as f64 / self.completions.len() as f64)
    }

    /// Peak sustained throughput: the maximum over a sliding window of
    /// `window` µs, sampled at `window / 4` steps (the "peak sustained
    /// throughput" the paper reports in §7.4).
    pub fn peak_throughput(&self, window: Micros, horizon: Micros) -> f64 {
        assert!(window > 0, "window must be positive");
        let step = (window / 4).max(1);
        let mut best: f64 = 0.0;
        let mut start = 0;
        while start + window <= horizon {
            best = best.max(self.throughput(start, start + window));
            start += step;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::MS;

    fn sample() -> Metrics {
        let mut m = Metrics::new();
        // 10 ops/s in the first second, 20 in the second.
        for i in 0..10 {
            m.record(i * 100 * MS, 5 * MS);
        }
        for i in 0..20 {
            m.record(SEC + i * 50 * MS, 10 * MS);
        }
        m
    }

    #[test]
    fn throughput_windows() {
        let m = sample();
        assert_eq!(m.completed(), 30);
        assert!((m.throughput(0, SEC) - 10.0).abs() < 1e-9);
        assert!((m.throughput(SEC, 2 * SEC) - 20.0).abs() < 1e-9);
        assert!((m.throughput(0, 2 * SEC) - 15.0).abs() < 1e-9);
        assert_eq!(m.throughput(SEC, SEC), 0.0);
    }

    #[test]
    fn series_buckets() {
        let m = sample();
        let series = m.throughput_series(SEC, 2 * SEC);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, 0);
        assert!((series[0].1 - 10.0).abs() < 1e-9);
        assert!((series[1].1 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn latency_stats() {
        let m = sample();
        assert_eq!(m.latency_percentile(0.0), Some(5 * MS));
        assert_eq!(m.latency_percentile(1.0), Some(10 * MS));
        let mean = m.mean_latency().unwrap();
        assert!((mean - (10.0 * 5000.0 + 20.0 * 10000.0) / 30.0).abs() < 1e-6);
        assert_eq!(Metrics::new().latency_percentile(0.5), None);
        assert_eq!(Metrics::new().mean_latency(), None);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut m = Metrics::new();
        for latency in [10, 20, 30, 40] {
            m.record(0, latency);
        }
        // N=4: rank ⌈0.5·4⌉ = 2 → 20 (the old round() interpolation gave
        // the mislabeled 30 here); ⌈0.25·4⌉ = 1 → 10; ⌈0.95·4⌉ = 4 → 40.
        assert_eq!(m.latency_percentile(0.50), Some(20));
        assert_eq!(m.latency_percentile(0.25), Some(10));
        assert_eq!(m.latency_percentile(0.95), Some(40));
    }

    #[test]
    fn tail_percentiles_collapse_onto_max_for_tiny_samples() {
        // N=1: every percentile is the single sample.
        let mut one = Metrics::new();
        one.record(0, 7);
        let s = one.summary().expect("non-empty");
        assert_eq!((s.p50_us, s.p99_us, s.p999_us, s.max_us), (7, 7, 7, 7));

        // N=4: ⌈0.99·4⌉ = ⌈0.999·4⌉ = 4 → both tails are the max.
        let mut m = Metrics::new();
        for latency in [10, 20, 30, 40] {
            m.record(0, latency);
        }
        let s = m.summary().expect("non-empty");
        assert_eq!(s.p99_us, 40);
        assert_eq!(s.p999_us, 40);
        assert_eq!(s.max_us, 40);
    }

    #[test]
    fn p999_separates_from_max_past_a_thousand_samples() {
        // 1999 samples of 1 µs plus one outlier: ⌈0.999·2000⌉ = 1998 → the
        // p99.9 stays on the bulk while max reports the outlier.
        let mut m = Metrics::new();
        for _ in 0..1999 {
            m.record(0, 1);
        }
        m.record(0, 1000);
        let s = m.summary().expect("non-empty");
        assert_eq!(s.p999_us, 1);
        assert_eq!(s.max_us, 1000);
        // 1000 samples 1..=1000: ⌈0.999·1000⌉ = 999.
        let mut m = Metrics::new();
        for latency in 1..=1000 {
            m.record(0, latency);
        }
        assert_eq!(m.latency_percentile(0.999), Some(999));
    }

    #[test]
    fn summary_reports_all_percentiles() {
        let m = sample();
        let s = m.summary().expect("non-empty");
        assert_eq!(s.count, 30);
        assert_eq!(s.p50_us, 10 * MS);
        assert_eq!(s.p95_us, 10 * MS);
        assert_eq!(s.max_us, 10 * MS);
        assert!(Metrics::new().summary().is_none());
        let text = s.to_string();
        assert!(text.contains("p50 10.0 ms"), "{text}");
    }

    #[test]
    fn fill_histogram_bridges_samples() {
        let m = sample();
        let registry = lazarus_obs::Registry::new();
        let h = registry.histogram("client_latency_us");
        m.fill_histogram(&h);
        assert_eq!(h.snapshot().count, 30);
        assert_eq!(h.snapshot().sum, 10 * 5 * MS + 20 * 10 * MS);
    }

    #[test]
    fn peak_finds_the_best_window() {
        let m = sample();
        let peak = m.peak_throughput(SEC, 2 * SEC);
        assert!((peak - 20.0).abs() < 1e-9, "peak {peak}");
    }
}
