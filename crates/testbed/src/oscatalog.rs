//! The testbed OS catalog: paper Table 2 plus calibrated performance
//! profiles.
//!
//! Each of the 17 guest OSes runs in a VM whose resources are capped by the
//! virtualization platform (VirtualBox in the paper): the fast group gets
//! 4 vCPUs / 15 GB, Windows and FreeBSD get 4 vCPUs / 1 GB, and Solaris /
//! OpenBSD are limited to a single vCPU — which is exactly what shapes
//! Figures 7, 8 and 10. The profile numbers below are calibrated so a
//! 4-replica homogeneous cluster reproduces the paper's throughput *shape*:
//! bare metal ≈ 60k/17k ops/s (0/0 and 1024/1024), Ubuntu-class VMs at
//! ~66%/75% of that, Debian/Windows/FreeBSD much slower on small messages
//! but close on large ones, and the single-core group around 3k ops/s.

use lazarus_osint::catalog::{OsFamily, OsVersion};

use crate::sim::Micros;

/// The hardware/VM performance profile of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfProfile {
    /// Usable cores (VirtualBox caps, Table 2).
    pub cores: usize,
    /// Memory in whole GB (Table 2).
    pub memory_gb: u32,
    /// Fixed CPU cost to handle one protocol message (receive + handle +
    /// send amortized), in µs of core time.
    pub per_msg_us: u64,
    /// Additional CPU cost per KiB of message payload, in µs.
    pub per_kb_us: u64,
    /// Boot time from power-on to replica-ready.
    pub boot: Micros,
    /// Snapshot serialization rate, MB/s (drives checkpoint dips, Fig 9).
    pub snapshot_mb_s: u64,
}

impl PerfProfile {
    /// The homogeneous bare-metal baseline of §7 (4 cores of the Xeon
    /// E5520 host, no virtualization).
    pub fn bare_metal() -> PerfProfile {
        PerfProfile {
            cores: 4,
            memory_gb: 32,
            per_msg_us: 40,
            per_kb_us: 30,
            boot: 125 * crate::sim::SEC, // "more than 2 mins" (§7.3)
            snapshot_mb_s: 400,
        }
    }

    /// CPU time to process a message of `bytes` payload bytes.
    pub fn msg_cost(&self, bytes: usize) -> Micros {
        self.per_msg_us + (bytes as u64 * self.per_kb_us) / 1024
    }
}

/// One catalog entry: an OS version plus its VM profile.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// The OS version.
    pub os: OsVersion,
    /// Its VM performance profile.
    pub profile: PerfProfile,
}

/// Performance tier of a guest OS under the virtualization platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Ubuntu / OpenSuse / Fedora: well supported, 4 vCPUs, 15 GB.
    Fast,
    /// Debian / Windows / FreeBSD: 4 vCPUs but expensive small-message
    /// virtualization exits.
    Medium,
    /// Solaris / OpenBSD: single vCPU.
    SingleCore,
}

/// The tier of an OS version in the §7 testbed.
pub fn tier(os: OsVersion) -> Tier {
    match os.family {
        OsFamily::Ubuntu | OsFamily::OpenSuse | OsFamily::Fedora => Tier::Fast,
        OsFamily::Debian | OsFamily::Windows | OsFamily::FreeBsd | OsFamily::RedHat => Tier::Medium,
        OsFamily::Solaris | OsFamily::OpenBsd => Tier::SingleCore,
    }
}

/// The VM profile of an OS version (Table 2 resources + calibrated costs).
pub fn vm_profile(os: OsVersion) -> PerfProfile {
    use crate::sim::SEC;
    let bm = PerfProfile::bare_metal();
    match tier(os) {
        Tier::Fast => PerfProfile {
            cores: 4,
            memory_gb: 15,
            per_msg_us: (bm.per_msg_us as f64 * 1.5) as u64, // ≈ 66% of BM on 0/0
            per_kb_us: (bm.per_kb_us as f64 * 1.25) as u64,  // ≈ 75% on 1024/1024
            boot: 40 * SEC,                                  // "boots in 40 secs" (§7.3)
            snapshot_mb_s: 300,
        },
        Tier::Medium => PerfProfile {
            cores: 4,
            memory_gb: if os.family == OsFamily::Debian { 15 } else { 1 },
            per_msg_us: (bm.per_msg_us as f64 * 4.2) as u64, // far worse on 0/0
            per_kb_us: (bm.per_kb_us as f64 * 1.4) as u64,   // but close on 1024/1024
            boot: 70 * SEC,
            snapshot_mb_s: 220,
        },
        Tier::SingleCore => PerfProfile {
            cores: 1,
            memory_gb: 1,
            per_msg_us: (bm.per_msg_us as f64 * 3.2) as u64, // 1 core → ≈ 3k ops/s
            per_kb_us: (bm.per_kb_us as f64 * 1.0) as u64,
            boot: 90 * SEC,
            snapshot_mb_s: 120,
        },
    }
}

/// The full Table 2 catalog: the 17 testbed OS versions with their VM
/// profiles.
pub fn table2() -> Vec<CatalogEntry> {
    lazarus_osint::catalog::testbed_oses()
        .into_iter()
        .map(|os| CatalogEntry { os, profile: vm_profile(os) })
        .collect()
}

/// Looks up a catalog entry by the paper's short id (`UB16`, `SO11`, …).
pub fn by_short_id(id: &str) -> Option<CatalogEntry> {
    table2().into_iter().find(|e| e.os.short_id() == id)
}

/// The "fastest" diverse configuration of §7.2: UB17, UB16, FE24, OS42.
pub fn fastest_set() -> Vec<OsVersion> {
    ["UB17", "UB16", "FE24", "OS42"]
        .iter()
        .map(|id| by_short_id(id).expect("catalog id").os)
        .collect()
}

/// The cross-family configuration of §7.2: UB16, W10, SO10, OB61.
pub fn cross_family_set() -> Vec<OsVersion> {
    ["UB16", "W10", "SO10", "OB61"]
        .iter()
        .map(|id| by_short_id(id).expect("catalog id").os)
        .collect()
}

/// The "slowest" diverse configuration of §7.2: OB60, OB61, SO10, SO11.
pub fn slowest_set() -> Vec<OsVersion> {
    ["OB60", "OB61", "SO10", "SO11"]
        .iter()
        .map(|id| by_short_id(id).expect("catalog id").os)
        .collect()
}

/// The initial Lazarus configuration of the §7.3 reconfiguration
/// experiment: DE8, OS42, FE26, SO11.
pub fn reconfig_set() -> Vec<OsVersion> {
    ["DE8", "OS42", "FE26", "SO11"]
        .iter()
        .map(|id| by_short_id(id).expect("catalog id").os)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_17_entries_with_table_resources() {
        let entries = table2();
        assert_eq!(entries.len(), 17);
        // Table 2 resource caps.
        let get = |id: &str| by_short_id(id).unwrap().profile;
        assert_eq!(get("UB16").cores, 4);
        assert_eq!(get("UB16").memory_gb, 15);
        assert_eq!(get("W10").cores, 4);
        assert_eq!(get("W10").memory_gb, 1);
        assert_eq!(get("FB11").memory_gb, 1);
        assert_eq!(get("SO10").cores, 1);
        assert_eq!(get("OB61").cores, 1);
        assert_eq!(get("OB61").memory_gb, 1);
    }

    #[test]
    fn tiers_partition_the_catalog() {
        let mut fast = 0;
        let mut medium = 0;
        let mut single = 0;
        for e in table2() {
            match tier(e.os) {
                Tier::Fast => fast += 1,
                Tier::Medium => medium += 1,
                Tier::SingleCore => single += 1,
            }
        }
        assert_eq!(fast, 7); // 3×UB + OS42 + 3×FE
        assert_eq!(medium, 6); // 2×DE + 2×W + 2×FB
        assert_eq!(single, 4); // 2×SO + 2×OB
    }

    #[test]
    fn cost_ordering_matches_paper_tiers() {
        let bm = PerfProfile::bare_metal();
        let fast = by_short_id("UB16").unwrap().profile;
        let medium = by_short_id("DE8").unwrap().profile;
        let single = by_short_id("SO11").unwrap().profile;
        assert!(bm.per_msg_us < fast.per_msg_us);
        assert!(fast.per_msg_us < medium.per_msg_us);
        // The single-core tier's bottleneck is its one vCPU, not its
        // per-message cost.
        assert!(single.per_msg_us > fast.per_msg_us);
        assert_eq!(single.cores, 1);
        // Large payload costs are much closer between fast and medium.
        let ratio_small = medium.per_msg_us as f64 / fast.per_msg_us as f64;
        let ratio_large = medium.msg_cost(1024) as f64 / fast.msg_cost(1024) as f64;
        assert!(ratio_large < ratio_small * 0.85, "{ratio_large} vs {ratio_small}");
    }

    #[test]
    fn msg_cost_scales_with_bytes() {
        let p = PerfProfile::bare_metal();
        assert_eq!(p.msg_cost(0), p.per_msg_us);
        assert_eq!(p.msg_cost(1024), p.per_msg_us + p.per_kb_us);
        assert!(p.msg_cost(4096) > p.msg_cost(1024));
    }

    #[test]
    fn named_sets_match_the_paper() {
        assert_eq!(
            fastest_set().iter().map(|o| o.short_id()).collect::<Vec<_>>(),
            vec!["UB17", "UB16", "FE24", "OS42"]
        );
        assert_eq!(
            cross_family_set().iter().map(|o| o.short_id()).collect::<Vec<_>>(),
            vec!["UB16", "W10", "SO10", "OB61"]
        );
        assert_eq!(
            slowest_set().iter().map(|o| o.short_id()).collect::<Vec<_>>(),
            vec!["OB60", "OB61", "SO10", "SO11"]
        );
        assert_eq!(
            reconfig_set().iter().map(|o| o.short_id()).collect::<Vec<_>>(),
            vec!["DE8", "OS42", "FE26", "SO11"]
        );
    }

    #[test]
    fn vm_boot_is_faster_than_bare_metal() {
        // §7.3: BM boot > 2 min, Ubuntu VM ≈ 40 s.
        let bm = PerfProfile::bare_metal();
        let ub = by_short_id("UB16").unwrap().profile;
        assert!(ub.boot < bm.boot / 2);
    }

    #[test]
    fn unknown_short_id_is_none() {
        assert!(by_short_id("ZZ99").is_none());
    }
}
