//! The Lazarus execution-plane testbed: a deterministic discrete-event
//! simulator for diverse BFT clusters.
//!
//! * [`sim`] — the event engine (virtual clock, processing stations);
//! * [`oscatalog`] — paper Table 2: the 17 testbed OSes and their
//!   calibrated VM performance profiles;
//! * [`cluster`] — [`cluster::SimCluster`]: BFT replicas on profiled nodes
//!   with closed-loop clients, reconfiguration injection and node power
//!   control (the LTU surface);
//! * [`vmm`] — the virtualization substrate: hosts, VM images, the
//!   Vagrant-like replica builder and the Local Trusted Units;
//! * [`metrics`] — throughput/latency recording;
//! * [`faults`] — deterministic fault injection ([`faults::FaultPlan`]) and
//!   online safety checking ([`faults::InvariantChecker`]);
//! * [`nemesis`] — the scenario harness sweeping fault plans × seeds.
//!
//! # Example: a 4-replica microbenchmark
//!
//! ```
//! use bytes::Bytes;
//! use lazarus_bft::service::CounterService;
//! use lazarus_bft::types::{Epoch, Membership, ReplicaId};
//! use lazarus_testbed::cluster::{SimCluster, SimConfig};
//! use lazarus_testbed::oscatalog::PerfProfile;
//! use lazarus_testbed::sim::MS;
//!
//! let membership = Membership::new(Epoch(0), (0..4).map(ReplicaId).collect());
//! let mut sim = SimCluster::new(SimConfig::default());
//! for r in 0..4 {
//!     sim.add_node(ReplicaId(r), PerfProfile::bare_metal(), membership.clone(),
//!                  Box::new(CounterService::new()));
//! }
//! sim.add_clients(1, 20, membership, |_| Bytes::new());
//! sim.run_until(100 * MS);
//! assert!(sim.metrics.completed() > 0);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod faults;
pub mod metrics;
pub mod nemesis;
pub mod oscatalog;
pub mod sim;
pub mod vmm;

pub use cluster::{SimCluster, SimConfig};
pub use faults::{ByzMode, FaultPlan, InvariantChecker, LinkFaults, Violation};
pub use metrics::{LatencySummary, Metrics};
pub use nemesis::{NemesisReport, RunVerdict};
pub use oscatalog::PerfProfile;
