//! The nemesis harness: named fault scenarios swept across seeds, with a
//! machine-readable verdict matrix.
//!
//! Each scenario builds a [`FaultPlan`] parameterized by a seed, runs a
//! 4-replica cluster under it with an [`InvariantChecker`] attached, and
//! reduces the outcome to a [`RunVerdict`]: were the safety invariants
//! (agreement, validity, monotone checkpoints) preserved, and did the
//! cluster resume committing client operations after the fault window
//! closed? [`run_matrix`] aggregates verdicts and folds counters into a
//! [`Registry`] so the sweep is visible through the same metrics pipeline
//! as every other binary. The whole harness is a pure function of its
//! seeds: rerunning a sweep yields byte-identical JSON and Prometheus
//! snapshots, so a failing `(scenario, seed)` pair is a complete bug
//! report.

use std::path::PathBuf;

use bytes::Bytes;

use lazarus_bft::service::{BlobService, CounterService, Service};
use lazarus_bft::types::{Epoch, Membership, ReplicaId};
use lazarus_obs::causal::FlightEvent;
use lazarus_obs::profile::QueueSample;
use lazarus_obs::{HealthSnapshot, Registry, Snapshot};
use lazarus_osint::json::Value;

use crate::cluster::{SimCluster, SimConfig};
use crate::faults::{ByzMode, DiskFaults, FaultPlan, FaultStats, InvariantChecker, LinkFaults};
use crate::metrics::LatencySummary;
use crate::oscatalog::PerfProfile;
use crate::sim::{Micros, MS, SEC};

/// Every named fault scenario, in sweep order.
pub const SCENARIOS: &[&str] = &[
    "lossy",
    "partition",
    "leader-crash",
    "equivocate",
    "corrupt",
    "mute",
    "crash-torn-write",
    "rejoin-partition",
    "corrupt-chunk",
];

/// Virtual horizon of one nemesis run.
pub const HORIZON: Micros = 3 * SEC;
/// Link faults / partitions / crashes begin here…
pub const FAULT_FROM: Micros = 300 * MS;
/// …and heal here (Byzantine modes persist — f = 1 must be tolerated
/// without any heal).
pub const FAULT_UNTIL: Micros = 1500 * MS;
/// Liveness is judged on completions inside `[LIVENESS_FROM, HORIZON)`.
pub const LIVENESS_FROM: Micros = 2 * SEC;

/// The fault plan of a named scenario. Panics on an unknown name (the
/// harness owns the vocabulary; see [`SCENARIOS`]).
pub fn fault_plan(scenario: &str, seed: u64) -> FaultPlan {
    let plan = FaultPlan::new(seed);
    match scenario {
        // A lossy, jittery, duplicating network between all replicas.
        "lossy" => plan.lossy_links(LinkFaults::lossy()).fault_window(FAULT_FROM, FAULT_UNTIL),
        // Split 2|2: no side holds a quorum, so the cluster stalls
        // entirely until the heal.
        "partition" => plan.partition(vec![ReplicaId(0), ReplicaId(1)], FAULT_FROM, FAULT_UNTIL),
        // The initial leader loses power mid-run and returns after the
        // window; the survivors must elect leader 1 and keep committing.
        "leader-crash" => plan.crash_restart(ReplicaId(0), FAULT_FROM, FAULT_UNTIL),
        // The initial leader proposes conflicting batches to the two
        // halves of the cluster for the whole run.
        "equivocate" => plan.byzantine(ReplicaId(0), ByzMode::Equivocate),
        // The initial leader corrupts every payload it sends.
        "corrupt" => plan.byzantine(ReplicaId(0), ByzMode::CorruptPayload),
        // The initial leader sends nothing at all.
        "mute" => plan.byzantine(ReplicaId(0), ByzMode::Mute),
        // A journal-backed replica loses power mid-run with a torn final
        // journal write, loses all volatile state, and must reboot from
        // its journal to a quorum-certified stable checkpoint.
        "crash-torn-write" => plan
            .crash_reboot(ReplicaId(2), 600 * MS, 1200 * MS)
            .disk_faults(DiskFaults { torn_write_max_bytes: 24, ..DiskFaults::default() }),
        // A joiner fetches a multi-MB snapshot in chunks while the cluster
        // is partitioned (its donors are on the minority side) and the
        // joiner itself crashes mid-transfer; verified chunks survive the
        // outage and the transfer resumes without re-fetching them.
        "rejoin-partition" => plan
            .partition(vec![ReplicaId(0), ReplicaId(1)], FAULT_FROM, FAULT_UNTIL)
            .crash_restart(ReplicaId(4), JOINER_UP + 10 * MS, 700 * MS),
        // Every fourth CST chunk reply is flipped in flight; the joiner
        // must reject each bad chunk by manifest digest and re-request it
        // from another source until the transfer completes.
        "corrupt-chunk" => {
            plan.disk_faults(DiskFaults { corrupt_chunk_p: 0.25, ..DiskFaults::default() })
        }
        other => panic!("unknown nemesis scenario {other:?}"),
    }
}

/// When the storage scenarios' joiner powers on…
const JOINER_BOOT: Micros = 350 * MS;
/// …and when it is up (fast-boot profile, below).
const JOINER_UP: Micros = 400 * MS;

/// The bare-metal profile with boot time cut to 50 ms: nemesis scenarios
/// run on a 3 s horizon, so the §7.3 125 s machine boot is compressed to
/// keep the *transfer* (not the BIOS) under test.
fn fast_boot() -> PerfProfile {
    PerfProfile { boot: 50 * MS, ..PerfProfile::bare_metal() }
}

/// Scratch journal directory for one durable replica of one run.
fn journal_dir(scenario: &str, seed: u64, replica: u32) -> PathBuf {
    std::env::temp_dir()
        .join(format!("lazarus_nemesis_{}_{scenario}_{seed}_r{replica}", std::process::id()))
}

/// The outcome of one `(scenario, seed)` run.
#[derive(Debug, Clone)]
pub struct RunVerdict {
    /// Scenario name.
    pub scenario: String,
    /// Fault-plan seed.
    pub seed: u64,
    /// No agreement / validity / checkpoint violation.
    pub safety_ok: bool,
    /// Client operations completed after the fault window closed.
    pub liveness_ok: bool,
    /// Rendered violations (empty when the run passed).
    pub violations: Vec<String>,
    /// Client operations completed over the whole run.
    pub completed_total: usize,
    /// Client operations completed in the post-heal window.
    pub completed_after_heal: usize,
    /// Commits that went through agreement/validity checking.
    pub commits_checked: u64,
    /// Injection counters of the run's fault plan.
    pub stats: FaultStats,
}

impl RunVerdict {
    /// Safety and liveness both held.
    pub fn passed(&self) -> bool {
        self.safety_ok && self.liveness_ok
    }
}

/// Runs one scenario under one seed and returns its verdict.
pub fn run_scenario(scenario: &str, seed: u64) -> RunVerdict {
    run_sim(scenario, seed, Instrument::None, 0).0
}

/// A traced nemesis run: the verdict plus everything the offline trace
/// analyzer consumes.
#[derive(Debug)]
pub struct TracedRun {
    /// The run's verdict (identical to the untraced run's — recording
    /// observes the simulation without perturbing it).
    pub verdict: RunVerdict,
    /// Per-replica flight streams, sorted by node id.
    pub streams: Vec<(u32, Vec<FlightEvent>)>,
    /// Metrics snapshot of the run (sim-time clock), for cross-checking
    /// analyzer anomaly counts against `bft_*` counters.
    pub snapshot: Snapshot,
    /// Final health reduction of the run (the online ticks already counted
    /// anomaly onsets into the snapshot above).
    pub health: HealthSnapshot,
    /// Queue/backpressure samples taken on each health tick, in sample
    /// order (time-major, node-minor).
    pub queues: Vec<QueueSample>,
}

/// Ring capacity for traced nemesis runs. A 3 s scenario at full tilt
/// records a few hundred thousand events per replica; the ring must hold
/// the whole run or evicted parents surface as analyzer orphans. The
/// ring allocates lazily, so oversizing costs nothing on short runs.
pub const TRACE_CAPACITY: usize = 1 << 20;

/// As [`run_scenario`], but with the obs bundle and causal flight
/// recorders enabled: returns the verdict plus the per-replica event
/// streams and the metrics snapshot. Fixed `(scenario, seed)` input yields
/// byte-identical streams at any `LAZARUS_THREADS` setting.
pub fn run_scenario_traced(scenario: &str, seed: u64) -> TracedRun {
    let (verdict, sim) = run_sim(scenario, seed, Instrument::Traced, 0);
    let streams = sim.flight_streams();
    let snapshot = sim.obs().expect("traced runs are observed").registry.snapshot();
    let health = sim.health_snapshot().expect("traced runs are observed");
    let queues = sim.queue_samples().to_vec();
    TracedRun { verdict, streams, snapshot, health, queues }
}

/// An observed run at a chosen leader placement: the verdict plus the
/// metrics and health evidence the control plane consumes.
#[derive(Debug)]
pub struct PlacedRun {
    /// The run's verdict.
    pub verdict: RunVerdict,
    /// Metrics snapshot of the run (sim-time clock).
    pub snapshot: Snapshot,
    /// Final health reduction of the run.
    pub health: HealthSnapshot,
    /// Completion time of the first client operation — under a from-boot
    /// fault, the placement's time-to-heal.
    pub first_commit_us: Option<Micros>,
    /// Exact (unbucketed) client-latency percentiles of the whole run.
    pub latency: Option<LatencySummary>,
}

/// As [`run_scenario`], but observed (metrics + health, no flight rings)
/// and booting every replica at `initial_view` — the control plane's
/// leader-placement knob: leader of view `v` is `replicas[v % n]`, while
/// the fault plan keeps targeting replica 0 regardless.
pub fn run_scenario_placed(scenario: &str, seed: u64, initial_view: u64) -> PlacedRun {
    let (verdict, sim) = run_sim(scenario, seed, Instrument::Observed, initial_view);
    let snapshot = sim.obs().expect("placed runs are observed").registry.snapshot();
    let health = sim.health_snapshot().expect("placed runs are observed");
    let first_commit_us = sim.metrics.first_completion();
    let latency = sim.metrics.summary();
    PlacedRun { verdict, snapshot, health, first_commit_us, latency }
}

/// Runs the opening `at.last()` microseconds of an *observed* scenario at
/// the default placement (view 0, so the fault plan's target leads) and
/// returns one health snapshot per instant in `at` (ascending). This is
/// the probe evidence a control plane ingests before planning a leader
/// placement: short, cheap, and a pure function of `(scenario, seed, at)`.
pub fn probe_health(scenario: &str, seed: u64, at: &[Micros]) -> Vec<HealthSnapshot> {
    let mut sim = build_sim(scenario, seed, Instrument::Observed, 0);
    at.iter()
        .map(|&t| {
            sim.run_until(t);
            sim.health_snapshot().expect("probe runs are observed")
        })
        .collect()
}

/// Instrumentation level of a nemesis run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Instrument {
    /// Bare simulation — fastest, verdict only.
    None,
    /// Obs bundle (metrics + health) on the sim clock.
    Observed,
    /// Obs bundle plus per-replica causal flight rings.
    Traced,
}

fn build_sim(scenario: &str, seed: u64, instrument: Instrument, initial_view: u64) -> SimCluster {
    let membership = Membership::new(Epoch(0), (0..4).map(ReplicaId).collect());
    let mut cfg = SimConfig { initial_view, ..SimConfig::default() };
    // `LAZARUS_WINDOW=w` runs the whole nemesis matrix with a consensus
    // pipeline of `w` slots in flight — the fault scenarios then exercise
    // out-of-order decisions, window abandonment on view change, and CST
    // with a partially decided window. Unset (or 1) is the classic pipeline.
    if let Ok(w) = std::env::var("LAZARUS_WINDOW") {
        if let Ok(w) = w.parse::<u64>() {
            cfg.window = w.max(1);
        }
    }
    if scenario == "crash-torn-write" {
        // The journal scenario needs checkpoints stabilizing (and hence
        // compaction running) well before the 600 ms crash.
        cfg.checkpoint_period = 25;
    }
    if matches!(scenario, "rejoin-partition" | "corrupt-chunk") {
        // Fine-grained chunks: a multi-MB blob becomes dozens of chunk
        // replies, so corruption/resume paths get real traffic.
        cfg.cst_chunk_bytes = 64 * 1024;
    }
    let mut sim = match instrument {
        Instrument::None => SimCluster::new(cfg),
        Instrument::Observed => SimCluster::new_observed(cfg),
        Instrument::Traced => {
            let mut sim = SimCluster::new_observed(cfg);
            sim.enable_flight(TRACE_CAPACITY);
            sim
        }
    };
    sim.install_checker(InvariantChecker::new());
    match scenario {
        "crash-torn-write" => {
            for r in 0..4 {
                let dir = journal_dir(scenario, seed, r);
                let _ = std::fs::remove_dir_all(&dir);
                sim.register_scratch(dir.clone());
                sim.add_durable_node(
                    ReplicaId(r),
                    fast_boot(),
                    membership.clone(),
                    &dir,
                    Box::new(|| Box::new(CounterService::new()) as Box<dyn Service>),
                )
                .expect("journal opens under the temp dir");
            }
        }
        "rejoin-partition" | "corrupt-chunk" => {
            let blob = if scenario == "rejoin-partition" { 4 << 20 } else { 1 << 20 };
            for r in 0..4 {
                sim.add_node(
                    ReplicaId(r),
                    fast_boot(),
                    membership.clone(),
                    Box::new(BlobService::new(blob)),
                );
            }
            // The joiner starts empty and must chunk-fetch the multi-MB
            // snapshot from the live donors.
            sim.boot_joiner_at(
                JOINER_BOOT,
                ReplicaId(4),
                fast_boot(),
                membership.reconfigured(Some(ReplicaId(4)), None),
                Box::new(BlobService::new(0)),
            );
        }
        _ => {
            for r in 0..4 {
                sim.add_node(
                    ReplicaId(r),
                    PerfProfile::bare_metal(),
                    membership.clone(),
                    Box::new(CounterService::new()),
                );
            }
        }
    }
    sim.install_faults(fault_plan(scenario, seed));
    sim.add_clients(1, 8, membership, |_| Bytes::new());
    sim
}

fn run_sim(
    scenario: &str,
    seed: u64,
    instrument: Instrument,
    initial_view: u64,
) -> (RunVerdict, SimCluster) {
    let mut sim = build_sim(scenario, seed, instrument, initial_view);
    sim.run_until(HORIZON);

    let completed_total = sim.metrics.completed();
    let window_s = (HORIZON - LIVENESS_FROM) as f64 / SEC as f64;
    let completed_after_heal =
        (sim.metrics.throughput(LIVENESS_FROM, HORIZON) * window_s).round() as usize;
    let checker = sim.checker_mut().expect("installed above");
    let safety_ok = checker.ok();
    checker.assert_liveness(completed_after_heal);
    let violations: Vec<String> = checker.violations().iter().map(|v| v.to_string()).collect();
    let liveness_ok = completed_after_heal > 0;
    let commits_checked = checker.commits_checked();
    let verdict = RunVerdict {
        scenario: scenario.to_string(),
        seed,
        safety_ok,
        liveness_ok,
        violations,
        completed_total,
        completed_after_heal,
        commits_checked,
        stats: sim.fault_stats().expect("installed above"),
    };
    (verdict, sim)
}

/// A full sweep: every verdict plus the aggregated metrics registry.
#[derive(Debug)]
pub struct NemesisReport {
    /// One verdict per `(scenario, seed)`, scenario-major order.
    pub verdicts: Vec<RunVerdict>,
    /// Aggregated sweep metrics (runs, passes, fault injections,
    /// violations) for `<bin>_metrics.json` / Prometheus export.
    pub registry: Registry,
}

impl NemesisReport {
    /// True when every run passed.
    pub fn passed(&self) -> bool {
        self.verdicts.iter().all(RunVerdict::passed)
    }

    /// Verdicts that failed safety or liveness.
    pub fn failures(&self) -> Vec<&RunVerdict> {
        self.verdicts.iter().filter(|v| !v.passed()).collect()
    }

    /// The deterministic `nemesis_results.json` document.
    pub fn to_json(&self) -> Value {
        let runs: Vec<Value> = self
            .verdicts
            .iter()
            .map(|v| {
                Value::Object(vec![
                    ("scenario".into(), Value::String(v.scenario.clone())),
                    ("seed".into(), Value::Number(v.seed as f64)),
                    ("passed".into(), Value::Bool(v.passed())),
                    ("safety_ok".into(), Value::Bool(v.safety_ok)),
                    ("liveness_ok".into(), Value::Bool(v.liveness_ok)),
                    (
                        "violations".into(),
                        Value::Array(v.violations.iter().cloned().map(Value::String).collect()),
                    ),
                    ("completed_total".into(), Value::Number(v.completed_total as f64)),
                    ("completed_after_heal".into(), Value::Number(v.completed_after_heal as f64)),
                    ("commits_checked".into(), Value::Number(v.commits_checked as f64)),
                    (
                        "faults".into(),
                        Value::Object(vec![
                            ("dropped".into(), Value::Number(v.stats.dropped as f64)),
                            ("duplicated".into(), Value::Number(v.stats.duplicated as f64)),
                            ("delayed".into(), Value::Number(v.stats.delayed as f64)),
                            ("reordered".into(), Value::Number(v.stats.reordered as f64)),
                            (
                                "partition_blocked".into(),
                                Value::Number(v.stats.partition_blocked as f64),
                            ),
                            ("muted".into(), Value::Number(v.stats.muted as f64)),
                            ("corrupted".into(), Value::Number(v.stats.corrupted as f64)),
                            ("equivocations".into(), Value::Number(v.stats.equivocations as f64)),
                            ("torn_writes".into(), Value::Number(v.stats.torn_writes as f64)),
                            (
                                "chunks_corrupted".into(),
                                Value::Number(v.stats.chunks_corrupted as f64),
                            ),
                        ]),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("horizon_us".into(), Value::Number(HORIZON as f64)),
            ("fault_window_us".into(), {
                Value::Array(vec![
                    Value::Number(FAULT_FROM as f64),
                    Value::Number(FAULT_UNTIL as f64),
                ])
            }),
            ("runs".into(), Value::Array(runs)),
            ("all_passed".into(), Value::Bool(self.passed())),
        ])
    }

    /// The aggregated Prometheus snapshot.
    pub fn prometheus(&self) -> String {
        self.registry.snapshot().to_prometheus()
    }
}

/// Sweeps `scenarios × seeds` (scenario-major) and aggregates the verdict
/// matrix.
pub fn run_matrix(scenarios: &[&str], seeds: &[u64]) -> NemesisReport {
    let registry = Registry::new();
    let mut verdicts = Vec::with_capacity(scenarios.len() * seeds.len());
    for scenario in scenarios {
        for &seed in seeds {
            let verdict = run_scenario(scenario, seed);
            registry.counter("nemesis_runs_total").inc();
            registry.counter_with("nemesis_runs", &[("scenario", scenario)]).inc();
            if verdict.passed() {
                registry.counter("nemesis_passed_total").inc();
                registry.counter_with("nemesis_passed", &[("scenario", scenario)]).inc();
            }
            for violation in &verdict.violations {
                let kind = violation.split(':').next().unwrap_or("unknown").to_string();
                registry
                    .counter_with("nemesis_invariant_violations_total", &[("kind", &kind)])
                    .inc();
            }
            registry.counter("nemesis_commits_checked_total").add(verdict.commits_checked);
            registry.counter("nemesis_completed_ops_total").add(verdict.completed_total as u64);
            let s = verdict.stats;
            registry.counter("nemesis_faults_dropped_total").add(s.dropped);
            registry.counter("nemesis_faults_duplicated_total").add(s.duplicated);
            registry.counter("nemesis_faults_delayed_total").add(s.delayed);
            registry.counter("nemesis_faults_reordered_total").add(s.reordered);
            registry.counter("nemesis_faults_partition_blocked_total").add(s.partition_blocked);
            registry.counter("nemesis_faults_muted_total").add(s.muted);
            registry.counter("nemesis_faults_corrupted_total").add(s.corrupted);
            registry.counter("nemesis_faults_equivocations_total").add(s.equivocations);
            registry.counter("nemesis_faults_torn_writes_total").add(s.torn_writes);
            registry.counter("nemesis_faults_chunks_corrupted_total").add(s.chunks_corrupted);
            verdicts.push(verdict);
        }
    }
    NemesisReport { verdicts, registry }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_network_heals_and_commits() {
        let verdict = run_scenario("lossy", 7);
        assert!(verdict.safety_ok, "violations: {:?}", verdict.violations);
        assert!(verdict.liveness_ok, "no post-heal commits: {verdict:?}");
        assert!(verdict.stats.dropped > 0, "the lossy plan never fired: {verdict:?}");
    }

    #[test]
    fn partition_stalls_then_recovers() {
        let verdict = run_scenario("partition", 3);
        assert!(verdict.passed(), "{verdict:?}");
        assert!(verdict.stats.partition_blocked > 0, "{verdict:?}");
    }

    #[test]
    fn leader_crash_elects_and_recovers() {
        let verdict = run_scenario("leader-crash", 5);
        assert!(verdict.passed(), "{verdict:?}");
    }

    #[test]
    fn byzantine_leader_is_survived() {
        for scenario in ["equivocate", "corrupt", "mute"] {
            let verdict = run_scenario(scenario, 11);
            assert!(verdict.passed(), "{scenario}: {verdict:?}");
        }
    }

    #[test]
    fn crash_with_torn_write_recovers_certified_checkpoint() {
        let verdict = run_scenario("crash-torn-write", 13);
        assert!(verdict.passed(), "{verdict:?}");
        assert_eq!(verdict.stats.torn_writes, 1, "the crash must tear the journal tail");
    }

    #[test]
    fn rejoin_under_partition_transfers_multi_mb_state() {
        let (verdict, sim) = run_sim("rejoin-partition", 17, Instrument::None, 0);
        assert!(verdict.passed(), "{verdict:?}");
        assert!(
            sim.transfers.iter().any(|(_, id)| *id == ReplicaId(4)),
            "the joiner must complete its chunked transfer: {:?}",
            sim.transfers
        );
    }

    #[test]
    fn corrupt_chunks_are_rejected_and_refetched() {
        let (verdict, sim) = run_sim("corrupt-chunk", 19, Instrument::None, 0);
        assert!(verdict.passed(), "{verdict:?}");
        assert!(verdict.stats.chunks_corrupted > 0, "the corruption knob never fired: {verdict:?}");
        assert!(
            sim.transfers.iter().any(|(_, id)| *id == ReplicaId(4)),
            "the transfer must still complete despite corrupt chunks: {:?}",
            sim.transfers
        );
    }

    #[test]
    fn matrix_is_deterministic() {
        let a = run_matrix(&["lossy", "partition"], &[1, 2]);
        let b = run_matrix(&["lossy", "partition"], &[1, 2]);
        assert_eq!(a.to_json().to_json(), b.to_json().to_json());
        assert_eq!(a.prometheus(), b.prometheus());
    }
}
