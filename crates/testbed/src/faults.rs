//! Deterministic fault injection ("nemesis") and invariant checking.
//!
//! A [`FaultPlan`] is installed into a [`SimCluster`](crate::SimCluster) and
//! consulted on every replica→replica send: per-link drop / duplicate /
//! delay / reorder probabilities, timed partitions with heal, crash/restart
//! schedules, and Byzantine sender modes (mute, equivocating leader,
//! payload corruption). Every decision is drawn from the plan's own seeded
//! RNG, and the simulator processes events in a deterministic order, so a
//! fault schedule replays byte-identically from its seed — a failing
//! nemesis run is always reproducible.
//!
//! The [`InvariantChecker`] runs alongside the cluster and asserts the
//! properties the paper's BFT layer exists to protect:
//!
//! * **agreement** — no two correct replicas commit different batches at
//!   the same sequence number;
//! * **validity** — every committed request carries a valid client (or
//!   controller) authentication tag, i.e. corrupted payloads never reach
//!   the service;
//! * **monotone checkpoints** — a replica's stable checkpoint never moves
//!   backwards;
//! * **liveness after heal** — asserted by the nemesis harness from the
//!   cluster's completion metrics once the fault window closes.
//!
//! Crash faults are modeled as power loss with retained state
//! (pause/resume): a restarted replica keeps its log and rejoins, catching
//! up through the ordinary future-buffer / state-transfer paths.

use std::collections::{BTreeMap, HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lazarus_bft::crypto::{Digest, Keyring, Principal};
use lazarus_bft::messages::{Batch, Request};
use lazarus_bft::replica::CONTROLLER_CLIENT;
use lazarus_bft::types::{ReplicaId, SeqNo};

use crate::cluster::SIM_SECRET;
use crate::sim::Micros;

/// Byzantine behaviour assigned to a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzMode {
    /// Drops every outbound protocol message (fail-silent).
    Mute,
    /// As leader, sends conflicting proposals to different halves of the
    /// cluster (both halves receive authentic-but-different batches, so the
    /// WRITE votes split and the slot stalls until a view change).
    Equivocate,
    /// Flips bytes in outbound payloads: request payloads, consensus
    /// digests, proposed batches and snapshots arrive corrupted and must be
    /// rejected (counted, never executed) by correct receivers.
    CorruptPayload,
}

/// Per-link fault probabilities, applied to replica→replica messages while
/// the plan's fault window is open.
#[derive(Debug, Clone, Copy)]
pub struct LinkFaults {
    /// Probability a message is silently dropped.
    pub drop_p: f64,
    /// Probability a message is delivered twice.
    pub dup_p: f64,
    /// Probability a message is delayed by up to `delay_jitter_us`.
    pub delay_p: f64,
    /// Maximum extra delay when a delay fires.
    pub delay_jitter_us: Micros,
    /// Probability a message is held back long enough to land behind later
    /// traffic (modeled as an extra `reorder_delay_us` delay — in a
    /// discrete-event network, reordering *is* a relative delay).
    pub reorder_p: f64,
    /// The hold-back applied when a reorder fires.
    pub reorder_delay_us: Micros,
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults {
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            delay_jitter_us: 0,
            reorder_p: 0.0,
            reorder_delay_us: 0,
        }
    }
}

impl LinkFaults {
    /// A moderately lossy link: 5% drops, 5% duplicates, 20% jittered
    /// delays and 10% reorders.
    pub fn lossy() -> LinkFaults {
        LinkFaults {
            drop_p: 0.05,
            dup_p: 0.05,
            delay_p: 0.2,
            delay_jitter_us: 2_000,
            reorder_p: 0.1,
            reorder_delay_us: 1_000,
        }
    }

    fn is_noop(&self) -> bool {
        self.drop_p == 0.0 && self.dup_p == 0.0 && self.delay_p == 0.0 && self.reorder_p == 0.0
    }
}

/// A timed network partition separating `side` from its complement.
#[derive(Debug, Clone)]
struct Partition {
    side: Vec<ReplicaId>,
    from: Micros,
    until: Micros,
}

/// One entry of the crash/restart schedule.
#[derive(Debug, Clone, Copy)]
pub struct CrashEvent {
    /// The replica that loses power.
    pub replica: ReplicaId,
    /// When it goes down.
    pub at: Micros,
    /// When it comes back (state retained), if ever.
    pub restart_at: Option<Micros>,
    /// `true` = the restart is a *reboot*: in-memory state is lost and the
    /// replica must rebuild itself from its journal (durable nodes only).
    /// `false` = pause/resume with state retained.
    pub reboot: bool,
}

/// Storage-level faults applied to journal-backed ("durable") replicas.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskFaults {
    /// On crash, tear up to this many bytes off the journal's tail (0 =
    /// clean power loss). Models a frame cut mid-write; recovery must
    /// detect the torn record by CRC and discard it, never replay garbage.
    pub torn_write_max_bytes: u64,
    /// Probability an outbound CST chunk reply has its payload flipped in
    /// flight; receivers must reject the chunk by manifest digest and
    /// re-request it from another source.
    pub corrupt_chunk_p: f64,
}

/// Counters of injected faults, for reporting (these count *injections*,
/// not protocol reactions — the protocol's side lives in `bft_*` metrics).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultStats {
    /// Messages dropped by link faults.
    pub dropped: u64,
    /// Messages duplicated by link faults.
    pub duplicated: u64,
    /// Messages delayed by link faults.
    pub delayed: u64,
    /// Messages held back past later traffic.
    pub reordered: u64,
    /// Messages severed by an active partition.
    pub partition_blocked: u64,
    /// Protocol sends swallowed by a mute replica.
    pub muted: u64,
    /// Messages corrupted by a Byzantine sender.
    pub corrupted: u64,
    /// Conflicting proposals fabricated by an equivocating leader.
    pub equivocations: u64,
    /// Journal tails torn by a crash (disk faults).
    pub torn_writes: u64,
    /// CST chunk replies corrupted in flight (disk faults).
    pub chunks_corrupted: u64,
}

/// A seeded, deterministic fault schedule for one simulation run.
#[derive(Debug)]
pub struct FaultPlan {
    rng: StdRng,
    default_link: LinkFaults,
    links: HashMap<(u32, u32), LinkFaults>,
    /// Link faults apply only while `window.0 <= now < window.1`.
    window: (Micros, Micros),
    partitions: Vec<Partition>,
    crashes: Vec<CrashEvent>,
    byz: HashMap<u32, ByzMode>,
    disk: DiskFaults,
    /// Injection counters (read them after the run).
    pub stats: FaultStats,
}

impl FaultPlan {
    /// An empty plan (no faults) drawing decisions from `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            rng: StdRng::seed_from_u64(seed),
            default_link: LinkFaults::default(),
            links: HashMap::new(),
            window: (0, Micros::MAX),
            partitions: Vec::new(),
            crashes: Vec::new(),
            byz: HashMap::new(),
            disk: DiskFaults::default(),
            stats: FaultStats::default(),
        }
    }

    /// Applies `faults` to every replica→replica link.
    #[must_use]
    pub fn lossy_links(mut self, faults: LinkFaults) -> FaultPlan {
        self.default_link = faults;
        self
    }

    /// Overrides the faults on the directed link `from → to`.
    #[must_use]
    pub fn link(mut self, from: ReplicaId, to: ReplicaId, faults: LinkFaults) -> FaultPlan {
        self.links.insert((from.0, to.0), faults);
        self
    }

    /// Restricts link faults to `[from, until)` — the "heal" comes for free
    /// when the window closes.
    #[must_use]
    pub fn fault_window(mut self, from: Micros, until: Micros) -> FaultPlan {
        self.window = (from, until);
        self
    }

    /// Severs `side` from the rest of the cluster over `[from, until)`.
    #[must_use]
    pub fn partition(mut self, side: Vec<ReplicaId>, from: Micros, until: Micros) -> FaultPlan {
        self.partitions.push(Partition { side, from, until });
        self
    }

    /// Powers `replica` off at `at`, never to return.
    #[must_use]
    pub fn crash(mut self, replica: ReplicaId, at: Micros) -> FaultPlan {
        self.crashes.push(CrashEvent { replica, at, restart_at: None, reboot: false });
        self
    }

    /// Powers `replica` off at `at` and back on (state retained) at
    /// `restart_at`.
    #[must_use]
    pub fn crash_restart(
        mut self,
        replica: ReplicaId,
        at: Micros,
        restart_at: Micros,
    ) -> FaultPlan {
        self.crashes.push(CrashEvent { replica, at, restart_at: Some(restart_at), reboot: false });
        self
    }

    /// Crashes `replica` at `at` with total loss of volatile state and
    /// reboots it from its journal at `restart_at`. Only meaningful for
    /// durable (journal-backed) nodes; combine with
    /// [`DiskFaults::torn_write_max_bytes`] to tear the tail on the way
    /// down.
    #[must_use]
    pub fn crash_reboot(mut self, replica: ReplicaId, at: Micros, restart_at: Micros) -> FaultPlan {
        self.crashes.push(CrashEvent { replica, at, restart_at: Some(restart_at), reboot: true });
        self
    }

    /// Installs storage-level faults (torn tails on crash, corrupt CST
    /// chunks in flight).
    #[must_use]
    pub fn disk_faults(mut self, disk: DiskFaults) -> FaultPlan {
        self.disk = disk;
        self
    }

    /// The installed storage-level faults.
    pub fn disk(&self) -> DiskFaults {
        self.disk
    }

    /// Bytes to tear off a crashing replica's journal tail (drawn from the
    /// plan's RNG; counts a torn write). Call only when
    /// `disk().torn_write_max_bytes > 0`.
    pub fn torn_write_len(&mut self) -> u64 {
        self.stats.torn_writes += 1;
        self.rng.gen_range(1..=self.disk.torn_write_max_bytes.max(1))
    }

    /// Decides whether one outbound CST chunk reply is corrupted, and if
    /// so returns the flipped payload. Draws from the RNG only when the
    /// knob is enabled, so plans without disk faults keep their exact
    /// decision stream.
    pub fn corrupt_chunk(&mut self, data: &[u8]) -> Option<Vec<u8>> {
        if self.disk.corrupt_chunk_p <= 0.0 || !self.rng.gen_bool(self.disk.corrupt_chunk_p) {
            return None;
        }
        self.stats.chunks_corrupted += 1;
        let mut out = data.to_vec();
        if out.is_empty() {
            out.push(0xFF);
        } else {
            let i = self.rng.gen_range(0..out.len());
            out[i] ^= 0xA5;
        }
        Some(out)
    }

    /// Assigns a Byzantine mode to `replica` for the whole run.
    #[must_use]
    pub fn byzantine(mut self, replica: ReplicaId, mode: ByzMode) -> FaultPlan {
        self.byz.insert(replica.0, mode);
        self
    }

    /// The crash/restart schedule (consumed by the cluster at install time).
    pub fn crash_schedule(&self) -> &[CrashEvent] {
        &self.crashes
    }

    /// The Byzantine mode of `replica`, if any.
    pub fn byz_mode(&self, replica: ReplicaId) -> Option<ByzMode> {
        self.byz.get(&replica.0).copied()
    }

    /// Replicas with an assigned Byzantine mode.
    pub fn byzantine_ids(&self) -> Vec<ReplicaId> {
        let mut ids: Vec<u32> = self.byz.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().map(ReplicaId).collect()
    }

    /// Routes one replica→replica message at `now`: returns the extra delay
    /// of each delivered copy (`[None, None]` = dropped; a second entry is a
    /// duplicate). At most one RNG-consuming branch per configured knob, so
    /// the decision stream is a pure function of the seed and the (already
    /// deterministic) event order.
    pub fn route(&mut self, now: Micros, from: ReplicaId, to: ReplicaId) -> [Option<Micros>; 2] {
        for p in &self.partitions {
            if now >= p.from && now < p.until && (p.side.contains(&from) != p.side.contains(&to)) {
                self.stats.partition_blocked += 1;
                return [None, None];
            }
        }
        let link = *self.links.get(&(from.0, to.0)).unwrap_or(&self.default_link);
        if link.is_noop() || now < self.window.0 || now >= self.window.1 {
            return [Some(0), None];
        }
        if link.drop_p > 0.0 && self.rng.gen_bool(link.drop_p) {
            self.stats.dropped += 1;
            return [None, None];
        }
        let mut delay = 0;
        if link.delay_p > 0.0 && self.rng.gen_bool(link.delay_p) {
            delay += self.rng.gen_range(0..=link.delay_jitter_us.max(1));
            self.stats.delayed += 1;
        }
        if link.reorder_p > 0.0 && self.rng.gen_bool(link.reorder_p) {
            delay += link.reorder_delay_us;
            self.stats.reordered += 1;
        }
        if link.dup_p > 0.0 && self.rng.gen_bool(link.dup_p) {
            self.stats.duplicated += 1;
            let echo = delay + self.rng.gen_range(1..=link.delay_jitter_us.max(1));
            return [Some(delay), Some(echo)];
        }
        [Some(delay), None]
    }

    /// A conflicting batch for an equivocating leader: same authentic
    /// requests, different composition, hence a different digest. (Both
    /// variants would individually pass validity — the attack is the split,
    /// not the content.)
    pub fn equivocate_batch(&mut self, original: &Batch) -> Batch {
        self.stats.equivocations += 1;
        let mut requests: Vec<Request> = original.requests().to_vec();
        if requests.len() >= 2 {
            requests.pop();
        } else if let Some(first) = requests.first().cloned() {
            requests.push(first);
        }
        Batch::new(requests)
    }

    /// Flips one byte of `payload` (corruption that any MAC check catches).
    pub fn corrupt_bytes(&mut self, payload: &[u8]) -> Vec<u8> {
        self.stats.corrupted += 1;
        let mut out = payload.to_vec();
        if out.is_empty() {
            out.push(0xFF);
        } else {
            let i = self.rng.gen_range(0..out.len());
            out[i] ^= 0xA5;
        }
        out
    }

    /// Flips one byte of a digest (makes consensus votes point at a value
    /// nobody proposed — correct receivers simply never reach quorum on it).
    pub fn corrupt_digest(&mut self, digest: Digest) -> Digest {
        self.stats.corrupted += 1;
        let mut bytes = digest.0;
        bytes[self.rng.gen_range(0..bytes.len())] ^= 0xA5;
        Digest(bytes)
    }
}

/// A detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two correct replicas committed different batches at one slot.
    Agreement {
        /// The conflicting slot.
        seq: SeqNo,
        /// First committer and its batch digest.
        first: (ReplicaId, Digest),
        /// Second committer and its conflicting digest.
        second: (ReplicaId, Digest),
    },
    /// A committed request failed authentication (corruption executed).
    Validity {
        /// The committing replica.
        replica: ReplicaId,
        /// The slot whose batch carried the bad request.
        seq: SeqNo,
    },
    /// A replica's stable checkpoint moved backwards.
    CheckpointRegression {
        /// The regressing replica.
        replica: ReplicaId,
        /// Previously observed stable slot.
        from: SeqNo,
        /// Newly observed (earlier) stable slot.
        to: SeqNo,
    },
    /// No client operation completed after the fault window closed.
    Liveness,
    /// A rebooted replica recovered a stable checkpoint that was never
    /// quorum-certified before the crash (wrong slot or wrong digest).
    Durability {
        /// The recovering replica.
        replica: ReplicaId,
        /// The stable slot it claims to have recovered.
        seq: SeqNo,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Agreement { seq, first, second } => write!(
                f,
                "agreement: seq {} committed as {} by replica {} but {} by replica {}",
                seq.0, first.1, first.0 .0, second.1, second.0 .0
            ),
            Violation::Validity { replica, seq } => {
                write!(
                    f,
                    "validity: replica {} committed an unauthenticated request at seq {}",
                    replica.0, seq.0
                )
            }
            Violation::CheckpointRegression { replica, from, to } => write!(
                f,
                "checkpoint regression: replica {} stable seq {} -> {}",
                replica.0, from.0, to.0
            ),
            Violation::Liveness => write!(f, "liveness: no operation completed after heal"),
            Violation::Durability { replica, seq } => write!(
                f,
                "durability: replica {} recovered uncertified stable checkpoint at seq {}",
                replica.0, seq.0
            ),
        }
    }
}

/// Online safety checker for a simulated cluster.
///
/// Byzantine replicas are excluded from agreement/validity accounting (a
/// compromised node may locally "commit" anything; the invariants only
/// constrain correct replicas).
#[derive(Debug)]
pub struct InvariantChecker {
    keyring: Keyring,
    byzantine: HashSet<u32>,
    /// First committed digest per slot (and who committed it).
    commits: BTreeMap<u64, (Digest, ReplicaId)>,
    /// Highest stable-checkpoint slot seen per replica.
    checkpoints: HashMap<u32, u64>,
    /// Snapshot digest of every stable checkpoint observed on a correct
    /// replica (stability requires a quorum of matching votes, so these
    /// are the quorum-certified checkpoints a reboot may recover to).
    certified: BTreeMap<u64, Digest>,
    violations: Vec<Violation>,
    commits_checked: u64,
}

impl Default for InvariantChecker {
    fn default() -> Self {
        InvariantChecker::new()
    }
}

impl InvariantChecker {
    /// A checker verifying request tags under the testbed's deployment
    /// secret.
    pub fn new() -> InvariantChecker {
        InvariantChecker {
            keyring: Keyring::new(SIM_SECRET),
            byzantine: HashSet::new(),
            commits: BTreeMap::new(),
            checkpoints: HashMap::new(),
            certified: BTreeMap::new(),
            violations: Vec::new(),
            commits_checked: 0,
        }
    }

    /// Excludes `replica` from agreement/validity accounting.
    pub fn mark_byzantine(&mut self, replica: ReplicaId) {
        self.byzantine.insert(replica.0);
    }

    /// Records that `replica` committed `batch` at `seq`, checking
    /// agreement and validity.
    pub fn record_commit(&mut self, replica: ReplicaId, seq: SeqNo, batch: &Batch) {
        if self.byzantine.contains(&replica.0) {
            return;
        }
        self.commits_checked += 1;
        let digest = batch.digest();
        match self.commits.get(&seq.0) {
            Some(&(first_digest, first_replica)) => {
                if first_digest != digest {
                    self.violations.push(Violation::Agreement {
                        seq,
                        first: (first_replica, first_digest),
                        second: (replica, digest),
                    });
                }
            }
            None => {
                self.commits.insert(seq.0, (digest, replica));
            }
        }
        for request in batch.requests() {
            let principal = if request.client == CONTROLLER_CLIENT {
                Principal::Controller
            } else {
                Principal::Client(request.client.0)
            };
            let bytes = Request::auth_bytes(request.client, request.op, &request.payload);
            if !self.keyring.verify(principal, &bytes, &request.tag) {
                self.violations.push(Violation::Validity { replica, seq });
                break;
            }
        }
    }

    /// Records `replica`'s current stable-checkpoint slot and snapshot
    /// digest, checking monotonicity and remembering the certified
    /// `(seq, digest)` pair for later durability checks.
    pub fn record_checkpoint(&mut self, replica: ReplicaId, stable: SeqNo, digest: Digest) {
        if !self.byzantine.contains(&replica.0) {
            self.certified.entry(stable.0).or_insert(digest);
        }
        let entry = self.checkpoints.entry(replica.0).or_insert(0);
        if stable.0 < *entry {
            self.violations.push(Violation::CheckpointRegression {
                replica,
                from: SeqNo(*entry),
                to: stable,
            });
        } else {
            *entry = stable.0;
        }
    }

    /// Records that `replica` rebooted from its journal claiming the given
    /// stable checkpoint. The claim must match a checkpoint some correct
    /// replica certified before the crash — recovering to an *older*
    /// certified checkpoint is legitimate (a torn tail may lose the last
    /// one), so the monotone tracker is rewound to the recovered slot
    /// rather than flagging a regression.
    pub fn record_recovery(&mut self, replica: ReplicaId, seq: SeqNo, digest: Digest) {
        if seq.0 > 0 && self.certified.get(&seq.0) != Some(&digest) {
            self.violations.push(Violation::Durability { replica, seq });
        }
        self.checkpoints.insert(replica.0, seq.0);
    }

    /// Asserts liveness after the fault window: zero completions become a
    /// [`Violation::Liveness`].
    pub fn assert_liveness(&mut self, completed_after_heal: usize) {
        if completed_after_heal == 0 {
            self.violations.push(Violation::Liveness);
        }
    }

    /// True when no invariant has been violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations detected so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Commits that went through agreement/validity checking.
    pub fn commits_checked(&self) -> u64 {
        self.commits_checked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lazarus_bft::types::ClientId;

    fn signed_request(op: u64, payload: &[u8]) -> Request {
        let keyring = Keyring::new(SIM_SECRET);
        let client = ClientId(7);
        let payload = Bytes::copy_from_slice(payload);
        let tag =
            keyring.sign(Principal::Client(client.0), &Request::auth_bytes(client, op, &payload));
        Request { client, op, payload, tag }
    }

    #[test]
    fn route_is_deterministic_per_seed() {
        let decide = |seed: u64| {
            let mut plan =
                FaultPlan::new(seed).lossy_links(LinkFaults::lossy()).fault_window(0, 1_000_000);
            (0..200).map(|i| plan.route(i * 100, ReplicaId(0), ReplicaId(1))).collect::<Vec<_>>()
        };
        assert_eq!(decide(42), decide(42), "same seed, same schedule");
        assert_ne!(decide(42), decide(43), "different seeds diverge");
    }

    #[test]
    fn window_gates_link_faults() {
        let mut plan = FaultPlan::new(1)
            .lossy_links(LinkFaults { drop_p: 1.0, ..LinkFaults::default() })
            .fault_window(100, 200);
        assert_eq!(plan.route(50, ReplicaId(0), ReplicaId(1)), [Some(0), None]);
        assert_eq!(plan.route(150, ReplicaId(0), ReplicaId(1)), [None, None]);
        assert_eq!(plan.route(250, ReplicaId(0), ReplicaId(1)), [Some(0), None]);
        assert_eq!(plan.stats.dropped, 1);
    }

    #[test]
    fn partition_severs_only_across_the_cut() {
        let mut plan = FaultPlan::new(1).partition(vec![ReplicaId(0), ReplicaId(1)], 100, 200);
        // across the cut, inside the window: blocked
        assert_eq!(plan.route(150, ReplicaId(0), ReplicaId(2)), [None, None]);
        assert_eq!(plan.route(150, ReplicaId(3), ReplicaId(1)), [None, None]);
        // same side: fine
        assert_eq!(plan.route(150, ReplicaId(0), ReplicaId(1)), [Some(0), None]);
        assert_eq!(plan.route(150, ReplicaId(2), ReplicaId(3)), [Some(0), None]);
        // healed
        assert_eq!(plan.route(250, ReplicaId(0), ReplicaId(2)), [Some(0), None]);
        assert_eq!(plan.stats.partition_blocked, 2);
    }

    #[test]
    fn duplicates_carry_a_later_echo() {
        let mut plan = FaultPlan::new(9).lossy_links(LinkFaults {
            dup_p: 1.0,
            delay_jitter_us: 50,
            ..LinkFaults::default()
        });
        let [first, echo] = plan.route(0, ReplicaId(0), ReplicaId(1));
        let (first, echo) = (first.expect("delivered"), echo.expect("duplicated"));
        assert!(echo > first, "echo {echo} must land after the original {first}");
        assert_eq!(plan.stats.duplicated, 1);
    }

    #[test]
    fn equivocated_batch_differs_but_stays_authentic() {
        let mut plan = FaultPlan::new(3);
        let original = Batch::new(vec![signed_request(1, b"a"), signed_request(2, b"b")]);
        let forked = plan.equivocate_batch(&original);
        assert_ne!(original.digest(), forked.digest());
        let single = Batch::new(vec![signed_request(1, b"a")]);
        assert_ne!(single.digest(), plan.equivocate_batch(&single).digest());
        assert_eq!(plan.stats.equivocations, 2);
    }

    #[test]
    fn corruption_changes_bytes_and_digests() {
        let mut plan = FaultPlan::new(5);
        assert_ne!(plan.corrupt_bytes(b"payload"), b"payload".to_vec());
        let d = Digest::of(b"x");
        assert_ne!(plan.corrupt_digest(d), d);
        assert_eq!(plan.stats.corrupted, 2);
    }

    #[test]
    fn checker_flags_agreement_and_validity() {
        let mut checker = InvariantChecker::new();
        let a = Batch::new(vec![signed_request(1, b"a")]);
        let b = Batch::new(vec![signed_request(2, b"b")]);
        checker.record_commit(ReplicaId(0), SeqNo(1), &a);
        checker.record_commit(ReplicaId(1), SeqNo(1), &a);
        assert!(checker.ok());
        checker.record_commit(ReplicaId(2), SeqNo(1), &b);
        assert!(matches!(checker.violations()[0], Violation::Agreement { seq: SeqNo(1), .. }));

        let mut checker = InvariantChecker::new();
        let mut forged = signed_request(3, b"c");
        forged.payload = Bytes::from_static(b"tampered");
        checker.record_commit(ReplicaId(0), SeqNo(1), &Batch::new(vec![forged]));
        assert!(matches!(checker.violations()[0], Violation::Validity { .. }));
        assert_eq!(checker.commits_checked(), 1);
    }

    #[test]
    fn checker_ignores_byzantine_replicas() {
        let mut checker = InvariantChecker::new();
        checker.mark_byzantine(ReplicaId(0));
        let a = Batch::new(vec![signed_request(1, b"a")]);
        let b = Batch::new(vec![signed_request(2, b"b")]);
        checker.record_commit(ReplicaId(1), SeqNo(1), &a);
        checker.record_commit(ReplicaId(0), SeqNo(1), &b); // byz divergence: ignored
        assert!(checker.ok());
        assert_eq!(checker.commits_checked(), 1);
    }

    #[test]
    fn checkpoints_must_be_monotone() {
        let d = Digest::of(b"snap");
        let mut checker = InvariantChecker::new();
        checker.record_checkpoint(ReplicaId(0), SeqNo(10), d);
        checker.record_checkpoint(ReplicaId(0), SeqNo(10), d);
        checker.record_checkpoint(ReplicaId(0), SeqNo(20), d);
        assert!(checker.ok());
        checker.record_checkpoint(ReplicaId(0), SeqNo(5), d);
        assert!(matches!(
            checker.violations()[0],
            Violation::CheckpointRegression { from: SeqNo(20), to: SeqNo(5), .. }
        ));
    }

    #[test]
    fn recovery_must_match_a_certified_checkpoint() {
        let good = Digest::of(b"certified");
        let mut checker = InvariantChecker::new();
        checker.record_checkpoint(ReplicaId(1), SeqNo(10), good);
        checker.record_checkpoint(ReplicaId(1), SeqNo(20), Digest::of(b"later"));

        // Recovering the latest or an older certified checkpoint is fine —
        // and legitimately rewinds the monotone tracker.
        checker.record_recovery(ReplicaId(1), SeqNo(10), good);
        assert!(checker.ok(), "{:?}", checker.violations());
        checker.record_checkpoint(ReplicaId(1), SeqNo(20), Digest::of(b"later"));
        assert!(checker.ok(), "catch-up after recovery is not a regression");

        // Genesis (seq 0) recovery is always fine.
        checker.record_recovery(ReplicaId(2), SeqNo(0), Digest::of(b"genesis"));
        assert!(checker.ok());

        // Wrong digest at a certified slot → durability violation.
        checker.record_recovery(ReplicaId(1), SeqNo(10), Digest::of(b"forged"));
        assert!(matches!(
            checker.violations()[0],
            Violation::Durability { replica: ReplicaId(1), seq: SeqNo(10) }
        ));
        // A slot nobody certified → durability violation too.
        checker.record_recovery(ReplicaId(1), SeqNo(15), good);
        assert_eq!(checker.violations().len(), 2);
    }

    #[test]
    fn chunk_corruption_draws_only_when_enabled() {
        let mut plan = FaultPlan::new(4);
        assert_eq!(plan.corrupt_chunk(b"data"), None, "disabled knob must not draw");
        assert_eq!(plan.stats.chunks_corrupted, 0);

        let mut plan = FaultPlan::new(4)
            .disk_faults(DiskFaults { corrupt_chunk_p: 1.0, ..DiskFaults::default() });
        let bad = plan.corrupt_chunk(b"data").expect("p=1 always corrupts");
        assert_ne!(bad, b"data".to_vec());
        assert_eq!(plan.stats.chunks_corrupted, 1);
    }

    #[test]
    fn torn_write_len_is_bounded_and_counted() {
        let mut plan = FaultPlan::new(8)
            .disk_faults(DiskFaults { torn_write_max_bytes: 24, ..DiskFaults::default() });
        for _ in 0..16 {
            let n = plan.torn_write_len();
            assert!((1..=24).contains(&n));
        }
        assert_eq!(plan.stats.torn_writes, 16);
    }

    #[test]
    fn liveness_assertion() {
        let mut checker = InvariantChecker::new();
        checker.assert_liveness(12);
        assert!(checker.ok());
        checker.assert_liveness(0);
        assert_eq!(checker.violations(), &[Violation::Liveness]);
    }
}
