//! The discrete-event simulation engine.
//!
//! A classic virtual-time core: a priority queue of timestamped events with
//! deterministic tie-breaking (time, then insertion order), a virtual clock
//! in microseconds, and a seeded RNG. All testbed timing — message latency,
//! per-OS processing costs, boot and state-transfer durations — is expressed
//! as events on this engine, so experiments are exactly reproducible from
//! their seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in microseconds.
pub type Micros = u64;

/// One microsecond in [`Micros`] units (for readability).
pub const US: Micros = 1;
/// One millisecond.
pub const MS: Micros = 1_000;
/// One second.
pub const SEC: Micros = 1_000_000;

/// A scheduled occurrence, ordered by time then schedule order.
#[derive(Debug)]
struct Scheduled<E> {
    at: Micros,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The event queue and clock.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    now: Micros,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue { heap: BinaryHeap::new(), now: 0, seq: 0 }
    }

    /// The current virtual time.
    pub fn now(&self) -> Micros {
        self.now
    }

    /// Schedules `event` at absolute time `at` (clamped to now — the past
    /// cannot be scheduled).
    pub fn schedule_at(&mut self, at: Micros, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Schedules `event` after a delay.
    pub fn schedule_in(&mut self, delay: Micros, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(Micros, E)> {
        let Reverse(next) = self.heap.pop()?;
        debug_assert!(next.at >= self.now, "time cannot go backwards");
        self.now = next.at;
        Some((next.at, next.event))
    }

    /// Peeks at the next event time without advancing.
    pub fn next_time(&self) -> Option<Micros> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A multi-server processing station (one per simulated node): `cores`
/// parallel servers with FIFO overflow, used to model CPU contention. Work
/// submitted at time `t` with duration `d` completes at
/// `max(t, earliest-free-core) + d`.
#[derive(Debug, Clone)]
pub struct ProcessingStation {
    core_free: Vec<Micros>,
}

impl ProcessingStation {
    /// A station with `cores` parallel servers.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> ProcessingStation {
        assert!(cores > 0, "a node needs at least one core");
        ProcessingStation { core_free: vec![0; cores] }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.core_free.len()
    }

    /// Submits work arriving at `arrival` lasting `duration`; returns the
    /// completion time.
    pub fn submit(&mut self, arrival: Micros, duration: Micros) -> Micros {
        let idx = self
            .core_free
            .iter()
            .enumerate()
            .min_by_key(|(_, &free)| free)
            .map(|(i, _)| i)
            .expect("at least one core");
        let start = self.core_free[idx].max(arrival);
        let done = start + duration;
        self.core_free[idx] = done;
        done
    }

    /// The earliest time any core becomes free.
    pub fn earliest_free(&self) -> Micros {
        self.core_free.iter().copied().min().unwrap_or(0)
    }

    /// Utilization: busy time of all cores up to `horizon`, divided by
    /// `cores × horizon`. (Approximation: assumes cores were busy from 0 up
    /// to their free time, so it is only meaningful under sustained load.)
    pub fn utilization(&self, horizon: Micros) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        let busy: u64 = self.core_free.iter().map(|&f| f.min(horizon)).sum();
        busy as f64 / (self.core_free.len() as u64 * horizon) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.now(), 10);
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule_at(5, "first");
        q.schedule_at(5, "second");
        q.schedule_at(5, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "x");
        q.pop();
        q.schedule_at(50, "late");
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, 100);
    }

    #[test]
    fn relative_scheduling() {
        let mut q = EventQueue::new();
        q.schedule_in(10, "a");
        q.pop();
        q.schedule_in(5, "b");
        assert_eq!(q.next_time(), Some(15));
    }

    #[test]
    fn single_core_station_serializes() {
        let mut s = ProcessingStation::new(1);
        assert_eq!(s.submit(0, 10), 10);
        assert_eq!(s.submit(0, 10), 20); // queued behind the first
        assert_eq!(s.submit(100, 10), 110); // idle gap
        assert_eq!(s.cores(), 1);
    }

    #[test]
    fn multi_core_station_parallelizes() {
        let mut s = ProcessingStation::new(2);
        assert_eq!(s.submit(0, 10), 10);
        assert_eq!(s.submit(0, 10), 10); // second core
        assert_eq!(s.submit(0, 10), 20); // back to core 1
        assert_eq!(s.earliest_free(), 10); // core 2 frees first
    }

    #[test]
    fn utilization_under_full_load() {
        let mut s = ProcessingStation::new(2);
        for _ in 0..10 {
            s.submit(0, 100);
        }
        let u = s.utilization(500);
        assert!((u - 1.0).abs() < 1e-9, "fully busy: {u}");
        assert_eq!(s.utilization(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        ProcessingStation::new(0);
    }
}
