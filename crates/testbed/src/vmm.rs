//! The virtualization substrate: hosts, VM images, the replica builder and
//! the Local Trusted Units.
//!
//! Models the deployment side of the paper's testbed: each physical host
//! (a Dell R410 in §7) runs a hypervisor plus an LTU — the small trusted
//! component that accepts power on/off commands from the Lazarus controller
//! over an isolated channel. The replica builder plays the role of Vagrant:
//! it provisions ready-to-use VM images for each catalog OS (import + guest
//! setup + software stack), and quarantined images are patched in place
//! before re-entering the pool.

use std::collections::HashMap;

use lazarus_osint::catalog::OsVersion;

use crate::oscatalog::{vm_profile, PerfProfile, Tier};
use crate::sim::{Micros, SEC};

/// Lifecycle state of a VM on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmState {
    /// Image being provisioned by the builder.
    Provisioning,
    /// Powered on, guest booting.
    Booting,
    /// Replica process running.
    Running,
    /// Powered off.
    Off,
}

/// A provisioned VM image for one OS version.
#[derive(Debug, Clone, PartialEq)]
pub struct VmImage {
    /// The guest OS.
    pub os: OsVersion,
    /// The VM resource/performance profile.
    pub profile: PerfProfile,
    /// Number of patch rounds applied while quarantined.
    pub patch_level: u32,
}

/// A physical host with its LTU and (at most) one replica VM — the paper
/// runs one replica per physical machine.
#[derive(Debug)]
pub struct Host {
    /// Host name (e.g. `node3`).
    pub name: String,
    /// Physical cores available to guests.
    pub cores: usize,
    /// Physical memory in GB.
    pub memory_gb: u32,
    vm: Option<(VmImage, VmState)>,
}

impl Host {
    /// A paper-testbed host (16 hardware threads, 32 GB).
    pub fn r410(name: impl Into<String>) -> Host {
        Host { name: name.into(), cores: 16, memory_gb: 32, vm: None }
    }

    /// The VM currently assigned, if any.
    pub fn vm(&self) -> Option<(&VmImage, VmState)> {
        self.vm.as_ref().map(|(img, st)| (img, *st))
    }

    /// True when no VM is assigned.
    pub fn is_free(&self) -> bool {
        self.vm.is_none()
    }

    /// Executes an LTU command on this host.
    ///
    /// # Errors
    ///
    /// Rejects power-on when a VM is already active, and power-off when no
    /// VM is assigned.
    pub fn ltu_execute(&mut self, command: LtuCommand) -> Result<LtuResponse, LtuError> {
        match command {
            LtuCommand::PowerOn(image) => {
                if self.vm.as_ref().is_some_and(|(_, st)| *st != VmState::Off) {
                    return Err(LtuError {
                        detail: format!("{}: a VM is already active", self.name),
                    });
                }
                if image.profile.memory_gb > self.memory_gb {
                    return Err(LtuError {
                        detail: format!("{}: image needs more memory than the host has", self.name),
                    });
                }
                let boot = image.profile.boot;
                self.vm = Some((image, VmState::Booting));
                Ok(LtuResponse { state: VmState::Booting, duration: boot })
            }
            LtuCommand::PowerOff => match self.vm.take() {
                Some((image, _)) => {
                    self.vm = Some((image, VmState::Off));
                    Ok(LtuResponse { state: VmState::Off, duration: 5 * SEC })
                }
                None => Err(LtuError { detail: format!("{}: no VM assigned", self.name) }),
            },
        }
    }

    /// Marks the booting VM as running (called when the boot delay elapses).
    ///
    /// # Panics
    ///
    /// Panics if no VM is booting.
    pub fn boot_complete(&mut self) {
        match &mut self.vm {
            Some((_, state @ VmState::Booting)) => *state = VmState::Running,
            other => panic!("no VM booting on {}: {other:?}", self.name),
        }
    }
}

/// Provisioning/boot/patch timing for one OS (all deterministic, so
/// experiment timelines are reproducible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeployTiming {
    /// Image import + guest preparation (Vagrant `up` minus boot).
    pub provision: Micros,
    /// Guest boot to replica-ready.
    pub boot: Micros,
    /// Applying one security update round in quarantine.
    pub patch_round: Micros,
}

/// Deterministic deployment timing for an OS version.
pub fn deploy_timing(os: OsVersion) -> DeployTiming {
    let profile = vm_profile(os);
    let provision = match crate::oscatalog::tier(os) {
        Tier::Fast => 25 * SEC,
        Tier::Medium => 45 * SEC,
        Tier::SingleCore => 60 * SEC,
    };
    DeployTiming { provision, boot: profile.boot, patch_round: 90 * SEC }
}

/// The Vagrant-like replica builder: turns catalog OSes into ready images.
#[derive(Debug, Default)]
pub struct ReplicaBuilder {
    /// Cached base boxes (first build of an OS pays the provision cost;
    /// later builds reuse the box and pay a fraction).
    boxes: HashMap<OsVersion, u32>,
}

impl ReplicaBuilder {
    /// A builder with an empty box cache.
    pub fn new() -> ReplicaBuilder {
        ReplicaBuilder::default()
    }

    /// Builds an image for `os`; returns the image and the provisioning
    /// time spent.
    pub fn build(&mut self, os: OsVersion) -> (VmImage, Micros) {
        let count = self.boxes.entry(os).or_insert(0);
        *count += 1;
        let timing = deploy_timing(os);
        let cost = if *count == 1 { timing.provision } else { timing.provision / 4 };
        (VmImage { os, profile: vm_profile(os), patch_level: 0 }, cost)
    }

    /// Applies pending patches to a quarantined image; returns the patched
    /// image and the time spent.
    pub fn patch(&self, mut image: VmImage, rounds: u32) -> (VmImage, Micros) {
        image.patch_level += rounds;
        let cost = deploy_timing(image.os).patch_round * rounds as u64;
        (image, cost)
    }
}

/// Commands an LTU accepts from the controller (paper Fig. 1: "power
/// on/off commands … through TLS channels").
#[derive(Debug, Clone, PartialEq)]
pub enum LtuCommand {
    /// Install an image and power the VM on.
    PowerOn(VmImage),
    /// Power the VM off (the replica is being quarantined).
    PowerOff,
}

/// The result of an LTU command: the new VM state and how long the
/// transition takes.
#[derive(Debug, Clone, PartialEq)]
pub struct LtuResponse {
    /// State after the transition completes.
    pub state: VmState,
    /// Transition duration.
    pub duration: Micros,
}

/// Error from an invalid LTU command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LtuError {
    /// What was wrong.
    pub detail: String,
}

impl std::fmt::Display for LtuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LTU command rejected: {}", self.detail)
    }
}

impl std::error::Error for LtuError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oscatalog::by_short_id;

    fn os(id: &str) -> OsVersion {
        by_short_id(id).unwrap().os
    }

    #[test]
    fn builder_caches_boxes() {
        let mut b = ReplicaBuilder::new();
        let (img1, t1) = b.build(os("UB16"));
        let (_, t2) = b.build(os("UB16"));
        assert_eq!(img1.os.short_id(), "UB16");
        assert!(t2 < t1, "cached box builds faster: {t2} vs {t1}");
        // a different OS pays full price again
        let (_, t3) = b.build(os("SO11"));
        assert!(t3 > t2);
    }

    #[test]
    fn patching_increases_level_and_costs_time() {
        let b = ReplicaBuilder::new();
        let img = VmImage { os: os("DE8"), profile: vm_profile(os("DE8")), patch_level: 0 };
        let (patched, t) = b.patch(img, 3);
        assert_eq!(patched.patch_level, 3);
        assert_eq!(t, deploy_timing(os("DE8")).patch_round * 3);
    }

    #[test]
    fn ltu_power_cycle() {
        let mut host = Host::r410("node1");
        assert!(host.is_free());
        let img = VmImage { os: os("UB16"), profile: vm_profile(os("UB16")), patch_level: 0 };
        let on = host.ltu_execute(LtuCommand::PowerOn(img.clone())).unwrap();
        assert_eq!(on.state, VmState::Booting);
        assert_eq!(on.duration, img.profile.boot);
        // double power-on rejected
        assert!(host.ltu_execute(LtuCommand::PowerOn(img.clone())).is_err());
        host.boot_complete();
        assert_eq!(host.vm().unwrap().1, VmState::Running);
        let off = host.ltu_execute(LtuCommand::PowerOff).unwrap();
        assert_eq!(off.state, VmState::Off);
        // a powered-off host can start a new image
        assert!(host.ltu_execute(LtuCommand::PowerOn(img)).is_ok());
    }

    #[test]
    fn ltu_rejects_oversized_images() {
        let mut host = Host::r410("node1");
        let mut img = VmImage { os: os("UB16"), profile: vm_profile(os("UB16")), patch_level: 0 };
        img.profile.memory_gb = 64;
        assert!(host.ltu_execute(LtuCommand::PowerOn(img)).is_err());
    }

    #[test]
    fn power_off_without_vm_fails() {
        let mut host = Host::r410("node1");
        assert!(host.ltu_execute(LtuCommand::PowerOff).is_err());
    }

    #[test]
    fn timing_tiers_are_ordered() {
        let fast = deploy_timing(os("UB16"));
        let slow = deploy_timing(os("OB61"));
        assert!(fast.provision < slow.provision);
        assert!(fast.boot < slow.boot);
    }

    #[test]
    #[should_panic(expected = "no VM booting")]
    fn boot_complete_requires_booting_vm() {
        Host::r410("node1").boot_complete();
    }
}
