//! The Deploy manager (paper §5.1, module 3).
//!
//! Turns the risk manager's decisions into an executable deployment plan:
//! build the new replica's image (Vagrant-like), power it on through the
//! host's LTU, reconfigure the BFT group (add first, then remove — §7.3),
//! power the old replica off, and patch it in quarantine. The plan is a
//! list of [`DeploymentStep`]s with durations, so the embedder (testbed
//! simulation, or a real provisioner) can execute it against its execution
//! plane.

use lazarus_bft::types::{Epoch, ReplicaId};
use lazarus_osint::catalog::OsVersion;
use lazarus_testbed::sim::Micros;
use lazarus_testbed::vmm::{deploy_timing, Host, LtuCommand, ReplicaBuilder, VmImage};

/// One step of a deployment plan, with its expected duration.
#[derive(Debug, Clone, PartialEq)]
pub enum DeploymentStep {
    /// Provision the VM image for the incoming OS.
    BuildImage {
        /// OS to provision.
        os: OsVersion,
        /// Provisioning time.
        duration: Micros,
    },
    /// Power the incoming replica on (LTU command); it is ready after
    /// `boot`.
    PowerOn {
        /// Host running the VM.
        host: String,
        /// New BFT replica id.
        replica: ReplicaId,
        /// OS version powered on.
        os: OsVersion,
        /// Boot duration.
        boot: Micros,
    },
    /// Issue the controller-signed ADD reconfiguration.
    AddReplica {
        /// Epoch the command applies to.
        epoch: Epoch,
        /// The joining replica.
        replica: ReplicaId,
    },
    /// Issue the controller-signed REMOVE reconfiguration.
    RemoveReplica {
        /// Epoch the command applies to.
        epoch: Epoch,
        /// The leaving replica.
        replica: ReplicaId,
    },
    /// Power the outgoing replica off.
    PowerOff {
        /// Host of the outgoing VM.
        host: String,
        /// The removed replica.
        replica: ReplicaId,
    },
    /// Apply pending patches to the quarantined image.
    QuarantinePatch {
        /// OS being patched.
        os: OsVersion,
        /// Patch duration.
        duration: Micros,
    },
}

/// A running replica as tracked by the deploy manager.
#[derive(Debug, Clone, PartialEq)]
pub struct Deployment {
    /// BFT replica id.
    pub replica: ReplicaId,
    /// Guest OS.
    pub os: OsVersion,
    /// Host name.
    pub host: String,
}

/// The deploy manager: host inventory, image builder, and the replica-id
/// allocator.
#[derive(Debug)]
pub struct DeployManager {
    hosts: Vec<Host>,
    builder: ReplicaBuilder,
    active: Vec<Deployment>,
    next_replica: u32,
    epoch: Epoch,
}

impl DeployManager {
    /// A manager over `host_count` testbed hosts.
    pub fn new(host_count: usize) -> DeployManager {
        DeployManager {
            hosts: (0..host_count).map(|i| Host::r410(format!("node{i}"))).collect(),
            builder: ReplicaBuilder::new(),
            active: Vec::new(),
            next_replica: 0,
            epoch: Epoch(0),
        }
    }

    /// The current membership epoch as tracked by the controller.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Currently deployed replicas.
    pub fn active(&self) -> &[Deployment] {
        &self.active
    }

    /// The deployment running `os`, if any.
    pub fn deployment_of(&self, os: OsVersion) -> Option<&Deployment> {
        self.active.iter().find(|d| d.os == os)
    }

    /// Deploys the initial CONFIG; returns the plan and records the
    /// deployments.
    ///
    /// # Panics
    ///
    /// Panics if there are not enough free hosts.
    pub fn initial_deployment(&mut self, oses: &[OsVersion]) -> Vec<DeploymentStep> {
        let mut plan = Vec::new();
        for &os in oses {
            plan.extend(self.power_on_steps(os));
        }
        plan
    }

    fn free_host(&mut self) -> usize {
        self.hosts.iter().position(Host::is_free).expect("a free host is available")
    }

    fn power_on_steps(&mut self, os: OsVersion) -> Vec<DeploymentStep> {
        let (image, build_time) = self.builder.build(os);
        let host_idx = self.free_host();
        let host_name = self.hosts[host_idx].name.clone();
        let replica = ReplicaId(self.next_replica);
        self.next_replica += 1;
        let response = self.hosts[host_idx]
            .ltu_execute(LtuCommand::PowerOn(image))
            .expect("free host accepts power-on");
        self.hosts[host_idx].boot_complete();
        self.active.push(Deployment { replica, os, host: host_name.clone() });
        vec![
            DeploymentStep::BuildImage { os, duration: build_time },
            DeploymentStep::PowerOn { host: host_name, replica, os, boot: response.duration },
        ]
    }

    /// Plans a replica swap: `incoming` OS replaces the replica running
    /// `outgoing` (paper §7.3: add the new replica *before* removing the
    /// old one, so the group never shrinks).
    ///
    /// # Panics
    ///
    /// Panics if `outgoing` is not deployed or no host is free.
    pub fn swap(&mut self, incoming: OsVersion, outgoing: OsVersion) -> Vec<DeploymentStep> {
        let out = self.deployment_of(outgoing).cloned().expect("outgoing OS is deployed");
        let mut plan = self.power_on_steps(incoming);
        let joined = self.active.last().expect("just added").replica;
        plan.push(DeploymentStep::AddReplica { epoch: self.epoch, replica: joined });
        self.epoch = self.epoch.next();
        plan.push(DeploymentStep::RemoveReplica { epoch: self.epoch, replica: out.replica });
        self.epoch = self.epoch.next();
        plan.push(DeploymentStep::PowerOff { host: out.host.clone(), replica: out.replica });
        // Release the host and schedule quarantine patching.
        if let Some(host) = self.hosts.iter_mut().find(|h| h.name == out.host) {
            let _ = host.ltu_execute(LtuCommand::PowerOff);
            // Free the slot for future deployments (image archived for
            // patching in quarantine).
            *host = Host::r410(host.name.clone());
        }
        self.active.retain(|d| d.replica != out.replica);
        plan.push(DeploymentStep::QuarantinePatch {
            os: outgoing,
            duration: deploy_timing(outgoing).patch_round,
        });
        plan
    }

    /// Total expected duration of a plan (steps overlap in reality; this is
    /// the conservative serial bound).
    pub fn plan_duration(plan: &[DeploymentStep]) -> Micros {
        plan.iter()
            .map(|s| match s {
                DeploymentStep::BuildImage { duration, .. } => *duration,
                DeploymentStep::PowerOn { boot, .. } => *boot,
                DeploymentStep::QuarantinePatch { duration, .. } => *duration,
                _ => 0,
            })
            .sum()
    }

    /// A reusable image for tests and harnesses.
    pub fn image_of(os: OsVersion) -> VmImage {
        VmImage { os, profile: lazarus_testbed::oscatalog::vm_profile(os), patch_level: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazarus_testbed::oscatalog::by_short_id;

    fn os(id: &str) -> OsVersion {
        by_short_id(id).unwrap().os
    }

    #[test]
    fn initial_deployment_uses_distinct_hosts() {
        let mut dm = DeployManager::new(5);
        let plan = dm.initial_deployment(&[os("UB16"), os("W10"), os("SO11"), os("OB61")]);
        assert_eq!(plan.len(), 8); // build + power-on per replica
        assert_eq!(dm.active().len(), 4);
        let hosts: std::collections::HashSet<_> =
            dm.active().iter().map(|d| d.host.clone()).collect();
        assert_eq!(hosts.len(), 4);
        let ids: Vec<u32> = dm.active().iter().map(|d| d.replica.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn swap_follows_add_then_remove_order() {
        let mut dm = DeployManager::new(5);
        dm.initial_deployment(&[os("UB16"), os("W10"), os("SO11"), os("OB61")]);
        let plan = dm.swap(os("FE24"), os("W10"));
        let labels: Vec<&str> = plan
            .iter()
            .map(|s| match s {
                DeploymentStep::BuildImage { .. } => "build",
                DeploymentStep::PowerOn { .. } => "on",
                DeploymentStep::AddReplica { .. } => "add",
                DeploymentStep::RemoveReplica { .. } => "remove",
                DeploymentStep::PowerOff { .. } => "off",
                DeploymentStep::QuarantinePatch { .. } => "patch",
            })
            .collect();
        assert_eq!(labels, vec!["build", "on", "add", "remove", "off", "patch"]);
        // epochs advance: add at 0, remove at 1
        match (&plan[2], &plan[3]) {
            (
                DeploymentStep::AddReplica { epoch: e1, replica: r_in },
                DeploymentStep::RemoveReplica { epoch: e2, replica: r_out },
            ) => {
                assert_eq!(*e1, Epoch(0));
                assert_eq!(*e2, Epoch(1));
                assert_eq!(r_in.0, 4); // fresh id
                assert_eq!(r_out.0, 1); // W10 was the second deployment
            }
            other => panic!("unexpected plan {other:?}"),
        }
        assert_eq!(dm.epoch(), Epoch(2));
        // W10 is gone, FE24 active
        assert!(dm.deployment_of(os("W10")).is_none());
        assert!(dm.deployment_of(os("FE24")).is_some());
        assert_eq!(dm.active().len(), 4);
    }

    #[test]
    fn swapped_host_is_reusable() {
        let mut dm = DeployManager::new(4); // exactly n hosts… plus the swap target
        dm.initial_deployment(&[os("UB16"), os("W10"), os("SO11")]);
        // one host left; swap uses it, then frees W10's host
        dm.swap(os("FE24"), os("W10"));
        // the freed host can take another swap immediately
        let plan = dm.swap(os("DE8"), os("SO11"));
        assert!(!plan.is_empty());
        assert_eq!(dm.active().len(), 3);
    }

    #[test]
    fn plan_duration_sums_the_slow_steps() {
        let mut dm = DeployManager::new(5);
        dm.initial_deployment(&[os("UB16"), os("W10"), os("SO11"), os("OB61")]);
        let plan = dm.swap(os("FE24"), os("OB61"));
        let d = DeployManager::plan_duration(&plan);
        let timing = deploy_timing(os("FE24"));
        assert!(d >= timing.boot, "at least the boot time");
    }

    #[test]
    #[should_panic(expected = "deployed")]
    fn swap_of_unknown_os_panics() {
        let mut dm = DeployManager::new(5);
        dm.initial_deployment(&[os("UB16"), os("W10"), os("SO11"), os("OB61")]);
        dm.swap(os("FE24"), os("DE8"));
    }
}
