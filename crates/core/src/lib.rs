//! The Lazarus control plane.
//!
//! Ties the data plane (`lazarus-osint`), the risk engine (`lazarus-risk`),
//! the NLP clustering (`lazarus-nlp`) and the execution plane
//! (`lazarus-bft` + `lazarus-testbed`) into the control loop of the paper's
//! Figure 4:
//!
//! * [`risk_manager`] — clustering/oracle construction with caching, and
//!   urgent-vulnerability alarms;
//! * [`deploy_manager`] — hosts, Vagrant-like image building, LTU power
//!   control, and add-then-remove reconfiguration plans;
//! * [`controller`] — the daily monitoring round.
//!
//! # Example
//!
//! ```
//! use lazarus_core::controller::{Controller, ControllerConfig};
//! use lazarus_osint::catalog::study_oses;
//! use lazarus_osint::datamgr::DataManager;
//! use lazarus_osint::date::Date;
//! use lazarus_osint::kb::KnowledgeBase;
//! use lazarus_osint::synth::{SyntheticWorld, WorldConfig};
//!
//! let mut cfg = WorldConfig::paper_study(7);
//! cfg.end = Date::from_ymd(2014, 6, 1); // small world for the doctest
//! let world = SyntheticWorld::generate(cfg);
//! let kb: KnowledgeBase = world.vulnerabilities.into_iter().collect();
//!
//! let mut controller =
//!     Controller::new(ControllerConfig::new(study_oses()), DataManager::new(kb));
//! controller.bootstrap(Date::from_ymd(2014, 6, 1));
//! let report = controller.monitor_round(Date::from_ymd(2014, 6, 2));
//! assert!(report.config_risk <= report.threshold);
//! ```

#![warn(missing_docs)]

pub mod controller;
pub mod deploy_manager;
pub mod risk_manager;

pub use controller::{
    AuditEvent, Controller, ControllerConfig, HealthPolicy, LeaderDecision, RoundReport,
};
pub use deploy_manager::{DeployManager, DeploymentStep};
pub use risk_manager::{Alarm, RiskManager};
