//! The Risk manager (paper §5.1, module 2) and vulnerability alarms.
//!
//! Wraps the clustering + oracle pipeline with caching (clusters are
//! rebuilt only when the knowledge base grows) and implements the §2
//! "threat 1" path: when a critical, exploitable vulnerability is published
//! against an *active* replica, an alarm is raised so the controller
//! replaces that replica immediately rather than waiting for the risk
//! threshold.

use lazarus_nlp::VulnClusters;
use lazarus_osint::catalog::OsVersion;
use lazarus_osint::cvss::Severity;
use lazarus_osint::date::Date;
use lazarus_osint::kb::KnowledgeBase;
use lazarus_osint::model::CveId;
use lazarus_risk::oracle::RiskOracle;
use lazarus_risk::score::ScoreParams;

/// An urgent-vulnerability alarm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alarm {
    /// The vulnerability that triggered the alarm.
    pub cve: CveId,
    /// The active replica OSes it hits.
    pub affected: Vec<OsVersion>,
    /// Whether a public exploit is already circulating.
    pub exploited: bool,
}

/// The risk manager: clustering cache, oracle construction, and alarms.
#[derive(Debug)]
pub struct RiskManager {
    params: ScoreParams,
    cluster_seed: u64,
    /// Minimum severity that can raise an alarm.
    pub alarm_severity: Severity,
    cached_clusters: Option<(usize, VulnClusters)>,
    last_alarm_scan: Option<Date>,
}

impl RiskManager {
    /// A manager with the paper's scoring parameters.
    pub fn new(cluster_seed: u64) -> RiskManager {
        RiskManager {
            params: ScoreParams::paper(),
            cluster_seed,
            alarm_severity: Severity::Critical,
            cached_clusters: None,
            last_alarm_scan: None,
        }
    }

    /// The scoring parameters in use.
    pub fn params(&self) -> &ScoreParams {
        &self.params
    }

    /// (Re)builds the description clusters, reusing the cache when the
    /// knowledge base has not grown since the last call.
    pub fn clusters(&mut self, kb: &KnowledgeBase) -> &VulnClusters {
        let needs_rebuild =
            self.cached_clusters.as_ref().map(|(n, _)| *n != kb.len()).unwrap_or(true);
        if needs_rebuild {
            let corpus: Vec<_> = kb.iter().cloned().collect();
            let clusters = VulnClusters::build(&corpus, self.cluster_seed);
            self.cached_clusters = Some((kb.len(), clusters));
        }
        &self.cached_clusters.as_ref().expect("just built").1
    }

    /// Number of clusters in the cached clustering (None before the first
    /// [`clusters`](Self::clusters) call) — the control plane's
    /// cluster-count gauge reads this.
    pub fn cached_cluster_count(&self) -> Option<usize> {
        self.cached_clusters.as_ref().map(|(_, c)| c.k())
    }

    /// Builds the risk oracle for the given universe.
    pub fn oracle(&mut self, kb: &KnowledgeBase, universe: &[OsVersion]) -> RiskOracle {
        let params = *self.params();
        let clusters = self.clusters(kb).clone();
        RiskOracle::build(kb, &clusters, universe, params)
    }

    /// Scans for alarms: vulnerabilities published since the previous scan
    /// (inclusive window start) whose severity reaches
    /// [`alarm_severity`](Self::alarm_severity) and that affect an active
    /// replica. Exploited vulnerabilities alarm regardless of severity band.
    pub fn scan_alarms(
        &mut self,
        kb: &KnowledgeBase,
        active: &[OsVersion],
        today: Date,
    ) -> Vec<Alarm> {
        let since = self.last_alarm_scan.unwrap_or(today);
        self.last_alarm_scan = Some(today + 1);
        let cpes: Vec<_> = active.iter().map(|o| (o, o.to_cpe())).collect();
        let mut alarms = Vec::new();
        for v in kb.published_between(since, today) {
            let exploited = v.is_exploited(today);
            let severe = v.cvss.severity() >= self.alarm_severity;
            if !(severe || (exploited && v.cvss.severity() >= Severity::High)) {
                continue;
            }
            let affected: Vec<OsVersion> = cpes
                .iter()
                .filter(|(_, cpe)| v.affects(cpe) && !v.is_patched_for(cpe, today))
                .map(|(os, _)| **os)
                .collect();
            if !affected.is_empty() {
                alarms.push(Alarm { cve: v.id, affected, exploited });
            }
        }
        alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazarus_osint::catalog::OsFamily;
    use lazarus_osint::cvss::CvssV3;
    use lazarus_osint::model::{AffectedPlatform, ExploitRecord, Vulnerability};

    fn os(f: OsFamily, v: &'static str) -> OsVersion {
        OsVersion::new(f, v)
    }

    fn kb_with(vulns: Vec<Vulnerability>) -> KnowledgeBase {
        vulns.into_iter().collect()
    }

    fn critical(id: u32, published: Date, target: OsVersion) -> Vulnerability {
        Vulnerability::new(
            CveId::new(2018, id),
            published,
            CvssV3::CRITICAL_RCE,
            format!("flaw {id}"),
        )
        .affecting(AffectedPlatform::exact(target.to_cpe()))
    }

    #[test]
    fn alarm_on_critical_hit_of_active_replica() {
        let ub = os(OsFamily::Ubuntu, "16.04");
        let fb = os(OsFamily::FreeBsd, "11");
        let today = Date::from_ymd(2018, 5, 8);
        let kb = kb_with(vec![critical(1, today, ub), critical(2, today, fb)]);
        let mut rm = RiskManager::new(1);
        let alarms = rm.scan_alarms(&kb, &[ub], today);
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].cve, CveId::new(2018, 1));
        assert_eq!(alarms[0].affected, vec![ub]);
        assert!(!alarms[0].exploited);
    }

    #[test]
    fn scan_window_does_not_realarm() {
        let ub = os(OsFamily::Ubuntu, "16.04");
        let today = Date::from_ymd(2018, 5, 8);
        let kb = kb_with(vec![critical(1, today, ub)]);
        let mut rm = RiskManager::new(1);
        assert_eq!(rm.scan_alarms(&kb, &[ub], today).len(), 1);
        // next day: the same CVE does not alarm again
        assert!(rm.scan_alarms(&kb, &[ub], today + 1).is_empty());
    }

    #[test]
    fn exploited_high_also_alarms() {
        let ub = os(OsFamily::Ubuntu, "16.04");
        let today = Date::from_ymd(2018, 5, 8);
        let mut v = critical(1, today, ub);
        v.cvss = "CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H".parse().unwrap(); // 7.8 HIGH
        assert_eq!(v.cvss.severity(), Severity::High);
        v.exploits.push(ExploitRecord { published: today, source: "edb".into(), verified: true });
        let kb = kb_with(vec![v]);
        let mut rm = RiskManager::new(1);
        let alarms = rm.scan_alarms(&kb, &[ub], today);
        assert_eq!(alarms.len(), 1);
        assert!(alarms[0].exploited);
    }

    #[test]
    fn medium_unexploited_does_not_alarm() {
        let ub = os(OsFamily::Ubuntu, "16.04");
        let today = Date::from_ymd(2018, 5, 8);
        let mut v = critical(1, today, ub);
        v.cvss = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:L/I:N/A:N".parse().unwrap(); // 5.3
        let kb = kb_with(vec![v]);
        let mut rm = RiskManager::new(1);
        assert!(rm.scan_alarms(&kb, &[ub], today).is_empty());
    }

    #[test]
    fn patched_vulnerability_does_not_alarm() {
        let ub = os(OsFamily::Ubuntu, "16.04");
        let today = Date::from_ymd(2018, 5, 8);
        let mut v = critical(1, today, ub);
        v.patches.push(lazarus_osint::model::PatchRecord {
            product: ub.to_cpe(),
            released: today,
            advisory: "USN".into(),
        });
        let kb = kb_with(vec![v]);
        let mut rm = RiskManager::new(1);
        assert!(rm.scan_alarms(&kb, &[ub], today).is_empty());
    }

    #[test]
    fn cluster_cache_reuses_until_kb_grows() {
        let ub = os(OsFamily::Ubuntu, "16.04");
        let today = Date::from_ymd(2018, 1, 1);
        let mut kb = kb_with(vec![critical(1, today, ub), critical(2, today, ub)]);
        let mut rm = RiskManager::new(1);
        let k1 = rm.clusters(&kb).k();
        let k2 = rm.clusters(&kb).k();
        assert_eq!(k1, k2);
        kb.upsert(critical(3, today, ub));
        let _ = rm.clusters(&kb);
        assert_eq!(rm.cached_clusters.as_ref().unwrap().0, 3);
    }

    #[test]
    fn oracle_builds_over_universe() {
        let ub = os(OsFamily::Ubuntu, "16.04");
        let de = os(OsFamily::Debian, "8");
        let today = Date::from_ymd(2018, 1, 1);
        let mut v = critical(1, today, ub);
        v.affected.push(AffectedPlatform::exact(de.to_cpe()));
        let kb = kb_with(vec![v]);
        let mut rm = RiskManager::new(1);
        let universe = vec![ub, de, os(OsFamily::FreeBsd, "11"), os(OsFamily::Windows, "10")];
        let oracle = rm.oracle(&kb, &universe);
        assert!(oracle.pair_risk(0, 1, today) > 0.0);
        assert_eq!(oracle.pair_risk(2, 3, today), 0.0);
    }
}
