//! The Lazarus controller: the control-plane loop of Figure 4.
//!
//! Each monitoring round (daily in the paper) the controller:
//!
//! 1. reads the knowledge base maintained by the **Data manager**
//!    (`lazarus_osint::datamgr`);
//! 2. asks the **Risk manager** for the day's risk oracle and for alarms on
//!    newly published critical vulnerabilities;
//! 3. runs Algorithm 1 over the CONFIG/POOL/QUARANTINE partition, with the
//!    adaptive threshold (minimum achievable risk + slack — the automated
//!    form of the §4.4 "increase the threshold" remedy);
//! 4. turns any decision into a **Deploy manager** plan: build image, LTU
//!    power-on, BFT add-then-remove reconfiguration, power-off, quarantine
//!    patching.
//!
//! The controller is deliberately execution-plane-agnostic: the returned
//! [`RoundReport`] carries the plan; the embedder applies it to a simulated
//! cluster (`lazarus-testbed`), the in-memory testkit, or a real
//! provisioner.

use rand::rngs::StdRng;
use rand::SeedableRng;

use lazarus_obs::{FieldValue, HealthSnapshot, Obs};
use lazarus_osint::catalog::OsVersion;
use lazarus_osint::datamgr::{DataManager, RetryPolicy};
use lazarus_osint::date::Date;
use lazarus_osint::sources::{OsintSource, SourceError};
use lazarus_risk::algorithm::{MonitorOutcome, ReplicaSets};
use lazarus_risk::strategies::min_config_risk;
use lazarus_risk::Reconfigurator;

use crate::deploy_manager::{DeployManager, DeploymentStep};
use crate::risk_manager::{Alarm, RiskManager};

/// Controller configuration.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Replica-set size `n` (paper: 4).
    pub n: usize,
    /// The OS universe the controller may deploy.
    pub universe: Vec<OsVersion>,
    /// Risk-threshold slack over the day's minimum achievable risk.
    pub slack: f64,
    /// RNG seed (randomized candidate selection, Algorithm 1 line 15).
    pub seed: u64,
    /// Physical hosts available to the deploy manager.
    pub hosts: usize,
}

impl ControllerConfig {
    /// A §7-style deployment: `n = 4` over the given universe.
    pub fn new(universe: Vec<OsVersion>) -> ControllerConfig {
        ControllerConfig { n: 4, universe, slack: 15.0, seed: 42, hosts: 8 }
    }
}

/// Thresholds of the health-driven role (leader) policy.
///
/// Risk chooses *which* replicas form the CONFIG (Algorithm 1); health
/// ranks *roles within* it. Demotion is hysteresis-gated: the leader must
/// look bad for [`HealthPolicy::hysteresis_rounds`] *consecutive* ingested
/// snapshots before [`Controller::plan_leader`] moves the role, so one
/// noisy window cannot flap the leadership.
#[derive(Debug, Clone)]
pub struct HealthPolicy {
    /// Composite score (permille) below which the leader looks degraded.
    pub demote_score: u32,
    /// Windowed commit p99 (µs) above which the leader looks degraded.
    pub demote_p99_us: u64,
    /// Minimum composite score a replacement must show to be promoted.
    pub promote_score: u32,
    /// Consecutive degraded snapshots required before demotion.
    pub hysteresis_rounds: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            demote_score: 600,
            demote_p99_us: 40_000,
            promote_score: 750,
            hysteresis_rounds: 2,
        }
    }
}

/// What [`Controller::plan_leader`] decided, with the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaderDecision {
    /// The leader after this decision.
    pub leader: u32,
    /// The replica demoted by this decision, if any.
    pub demoted: Option<u32>,
    /// Why: `bootstrap`, `healthy`, `hysteresis-pending`, `demoted`, or
    /// `no-candidate`.
    pub reason: &'static str,
    /// The (current or kept) leader's composite score at decision time.
    pub leader_score: u32,
}

/// An entry of the controller's audit trail.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditEvent {
    /// Initial CONFIG selected and deployed.
    Bootstrapped {
        /// Round date.
        date: Date,
        /// The chosen OSes.
        config: Vec<OsVersion>,
    },
    /// An urgent-vulnerability alarm fired.
    AlarmRaised {
        /// Round date.
        date: Date,
        /// The alarm.
        alarm: Alarm,
    },
    /// A replica swap was planned.
    Reconfigured {
        /// Round date.
        date: Date,
        /// OS leaving (to quarantine).
        removed: OsVersion,
        /// OS joining from the pool.
        added: OsVersion,
        /// Human-readable trigger.
        reason: String,
    },
    /// A reconfiguration was needed but no candidate met the threshold.
    Exhausted {
        /// Round date.
        date: Date,
    },
}

/// The outcome of one monitoring round.
#[derive(Debug)]
pub struct RoundReport {
    /// Round date.
    pub date: Date,
    /// Eq. 5 risk of the active CONFIG at the start of the round.
    pub config_risk: f64,
    /// The effective threshold used (min achievable + slack).
    pub threshold: f64,
    /// Alarms raised this round.
    pub alarms: Vec<Alarm>,
    /// What Algorithm 1 decided.
    pub outcome: MonitorOutcome,
    /// Deployment steps to execute.
    pub plan: Vec<DeploymentStep>,
}

/// The Lazarus controller.
#[derive(Debug)]
pub struct Controller {
    cfg: ControllerConfig,
    /// The shared knowledge-base handle (feed the Data manager externally
    /// or through [`Controller::data`]).
    data: DataManager,
    risk: RiskManager,
    deploy: DeployManager,
    recon: Reconfigurator,
    sets: Option<ReplicaSets>,
    rng: StdRng,
    audit: Vec<AuditEvent>,
    obs: Obs,
    /// Consecutive rounds whose OSINT sync was not fully healthy — the risk
    /// oracle is running on data at least this many rounds old.
    stale_rounds: u64,

    // Health consumer (role selection within the risk-chosen CONFIG).
    health_policy: HealthPolicy,
    last_health: Option<HealthSnapshot>,
    /// Consecutive ingested snapshots in which the current leader looked
    /// degraded (the hysteresis counter).
    leader_bad_rounds: u32,
    current_leader: Option<u32>,
}

impl Controller {
    /// Creates a controller over an externally filled knowledge base.
    pub fn new(cfg: ControllerConfig, data: DataManager) -> Controller {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Controller {
            risk: RiskManager::new(cfg.seed ^ 0xC1A5),
            deploy: DeployManager::new(cfg.hosts),
            recon: Reconfigurator::with_threshold(cfg.slack),
            sets: None,
            rng,
            audit: Vec::new(),
            obs: Obs::noop(),
            stale_rounds: 0,
            health_policy: HealthPolicy::default(),
            last_health: None,
            leader_bad_rounds: 0,
            current_leader: None,
            data,
            cfg,
        }
    }

    /// Overrides the health-driven role policy (defaults are
    /// [`HealthPolicy::default`]).
    pub fn set_health_policy(&mut self, policy: HealthPolicy) {
        self.health_policy = policy;
    }

    /// Attaches an observability bundle: every subsequent round records
    /// per-epoch gauges (`controller_config_risk`, `controller_threshold`,
    /// `controller_cluster_count`), decision counters, deployment-duration
    /// histograms and `controller.*` trace events into it. Before this call
    /// the controller runs on a [`Obs::noop`] bundle (one atomic load per
    /// hook).
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
    }

    /// The data-manager handle (for OSINT synchronization).
    pub fn data(&self) -> &DataManager {
        &self.data
    }

    /// The audit trail.
    pub fn audit(&self) -> &[AuditEvent] {
        &self.audit
    }

    /// The deploy manager (host/replica inventory).
    pub fn deploy(&self) -> &DeployManager {
        &self.deploy
    }

    /// The active CONFIG as OS versions (empty before bootstrap).
    pub fn active_config(&self) -> Vec<OsVersion> {
        match &self.sets {
            Some(sets) => sets.config.iter().map(|&i| self.cfg.universe[i]).collect(),
            None => Vec::new(),
        }
    }

    /// The CONFIG/POOL/QUARANTINE partition (None before bootstrap).
    pub fn sets(&self) -> Option<&ReplicaSets> {
        self.sets.as_ref()
    }

    /// Selects and deploys the initial CONFIG.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn bootstrap(&mut self, today: Date) -> RoundReport {
        assert!(self.sets.is_none(), "already bootstrapped");
        let _span = self
            .obs
            .tracer
            .span("controller.bootstrap", vec![("date", FieldValue::from(today.to_string()))]);
        let oracle = {
            let data = &self.data;
            let risk = &mut self.risk;
            let universe = &self.cfg.universe;
            data.read(|kb| risk.oracle(kb, universe))
        };
        let matrix = oracle.matrix(today);
        let min = min_config_risk(&matrix, self.cfg.n);
        self.recon.threshold = min + self.cfg.slack;
        let config = self.recon.initial_config(&matrix, self.cfg.n, &mut self.rng);
        let sets = ReplicaSets::new(config.clone(), self.cfg.universe.len());
        let oses: Vec<OsVersion> = config.iter().map(|&i| self.cfg.universe[i]).collect();
        let plan = self.deploy.initial_deployment(&oses);
        self.audit.push(AuditEvent::Bootstrapped { date: today, config: oses });
        let config_risk = matrix.risk(&sets.config);
        self.sets = Some(sets);
        let report = RoundReport {
            date: today,
            config_risk,
            threshold: self.recon.threshold,
            alarms: Vec::new(),
            outcome: MonitorOutcome::NoChange,
            plan,
        };
        self.record_round(&report);
        report
    }

    /// One monitoring round (Algorithm 1 + alarms + deployment planning).
    ///
    /// # Panics
    ///
    /// Panics if called before [`bootstrap`](Self::bootstrap).
    pub fn monitor_round(&mut self, today: Date) -> RoundReport {
        assert!(self.sets.is_some(), "bootstrap first");
        let _span = self
            .obs
            .tracer
            .span("controller.round", vec![("date", FieldValue::from(today.to_string()))]);
        let oracle = {
            let data = &self.data;
            let risk = &mut self.risk;
            let universe = &self.cfg.universe;
            data.read(|kb| risk.oracle(kb, universe))
        };
        let matrix = oracle.matrix(today);
        let min = min_config_risk(&matrix, self.cfg.n);
        self.recon.threshold = min + self.cfg.slack;

        let active = self.active_config();
        let alarms = {
            let data = &self.data;
            let risk = &mut self.risk;
            data.read(|kb| risk.scan_alarms(kb, &active, today))
        };
        for alarm in &alarms {
            self.audit.push(AuditEvent::AlarmRaised { date: today, alarm: alarm.clone() });
        }

        let sets = self.sets.as_mut().expect("bootstrapped");
        let config_before = sets.config.clone();
        let config_risk = matrix.risk(&config_before);
        let mut outcome = self.recon.monitor(sets, &matrix, &mut self.rng);

        // Alarm path (§2, threat 1): if an alarmed replica survived the
        // regular round, force its replacement.
        if !matches!(outcome, MonitorOutcome::Reconfigured { .. }) {
            if let Some(alarm) = alarms.iter().find(|a| {
                a.affected.iter().any(|os| {
                    self.sets
                        .as_ref()
                        .expect("set")
                        .config
                        .iter()
                        .any(|&i| self.cfg.universe[i] == *os)
                })
            }) {
                let victim_os = alarm.affected[0];
                outcome = self.force_swap(victim_os, &matrix);
            }
        }

        let mut plan = Vec::new();
        match outcome {
            MonitorOutcome::Reconfigured { removed, added, reason } => {
                let removed_os = self.cfg.universe[removed];
                let added_os = self.cfg.universe[added];
                plan = self.deploy.swap(added_os, removed_os);
                self.audit.push(AuditEvent::Reconfigured {
                    date: today,
                    removed: removed_os,
                    added: added_os,
                    reason: format!("{reason:?}"),
                });
            }
            MonitorOutcome::Exhausted => {
                self.audit.push(AuditEvent::Exhausted { date: today });
            }
            MonitorOutcome::NoChange => {}
        }
        let report = RoundReport {
            date: today,
            config_risk,
            threshold: self.recon.threshold,
            alarms,
            outcome,
            plan,
        };
        self.record_round(&report);
        report
    }

    /// A [`monitor_round`](Self::monitor_round) preceded by a
    /// **fault-tolerant OSINT sync**: feeds are parsed best-effort, sources
    /// are retried under `policy` and dropped from the round if they stay
    /// down. A degraded (or entirely failed) sync never aborts the round —
    /// the controller keeps steering on its previous risk snapshot, which
    /// beats steering on nothing.
    ///
    /// Staleness is loud, not silent: `controller_risk_staleness_rounds`
    /// gauges how many consecutive rounds ran without a fully healthy sync
    /// (0 = fresh) and `controller_stale_rounds_total` counts every such
    /// round, so an operator alert on either catches a rotting knowledge
    /// base long before the risk oracle drifts far from reality.
    ///
    /// Returns the round report plus the sources that stayed down.
    ///
    /// # Panics
    ///
    /// Panics if called before [`bootstrap`](Self::bootstrap).
    pub fn sync_and_monitor<S: AsRef<str>>(
        &mut self,
        feed_documents: &[S],
        sources: &[&(dyn OsintSource + Sync)],
        since: Date,
        policy: RetryPolicy,
        today: Date,
    ) -> (RoundReport, Vec<SourceError>) {
        let feeds_ok = self.data.sync_feeds(feed_documents).is_ok();
        let (_, failures) = self.data.sync_sources_degraded(sources, since, policy);
        if feeds_ok && failures.is_empty() {
            self.stale_rounds = 0;
        } else {
            self.stale_rounds += 1;
            self.obs.registry.counter("controller_stale_rounds_total").inc();
            self.obs.tracer.event(
                "controller.degraded_sync",
                vec![
                    ("feeds_ok", FieldValue::from(feeds_ok)),
                    ("sources_down", FieldValue::from(failures.len())),
                    ("stale_rounds", FieldValue::from(self.stale_rounds as usize)),
                ],
            );
        }
        self.obs.registry.gauge("controller_risk_staleness_rounds").set(self.stale_rounds as f64);
        (self.monitor_round(today), failures)
    }

    /// Consecutive rounds the controller has run without a fully healthy
    /// OSINT sync (0 = the last sync was clean).
    pub fn risk_staleness(&self) -> u64 {
        self.stale_rounds
    }

    /// Seeds the role policy with the leader the deploy plane actually
    /// booted, resetting the demotion hysteresis. Without this the
    /// controller adopts the leader of the first ingested snapshot — which,
    /// if the cluster already failed over on its own, is the *replacement*
    /// rather than the placement under evaluation.
    pub fn assume_leader(&mut self, leader: u32) {
        self.current_leader = Some(leader);
        self.leader_bad_rounds = 0;
    }

    /// Feeds one execution-plane health snapshot into the role policy.
    ///
    /// The controller keeps the latest snapshot and counts *consecutive*
    /// snapshots in which the current leader looked degraded — composite
    /// score below [`HealthPolicy::demote_score`], windowed commit p99
    /// above [`HealthPolicy::demote_p99_us`], or any active anomaly. One
    /// healthy snapshot resets the hysteresis counter.
    pub fn ingest_health(&mut self, snapshot: &HealthSnapshot) {
        let leader = match self.current_leader {
            Some(leader) => leader,
            None => {
                let leader = snapshot.leader.unwrap_or(0);
                self.current_leader = Some(leader);
                leader
            }
        };
        let degraded = snapshot.replica(leader).is_some_and(|h| {
            h.score < self.health_policy.demote_score
                || h.p99_us.is_some_and(|p99| p99 > self.health_policy.demote_p99_us)
                || h.anomalous()
        });
        if degraded {
            self.leader_bad_rounds += 1;
        } else {
            self.leader_bad_rounds = 0;
        }
        self.obs
            .registry
            .gauge("controller_leader_bad_rounds")
            .set(f64::from(self.leader_bad_rounds));
        self.last_health = Some(snapshot.clone());
    }

    /// Decides who should lead, given the ingested health evidence: risk
    /// picks the CONFIG, health ranks the role. The current leader is
    /// demoted only after [`HealthPolicy::hysteresis_rounds`] consecutive
    /// degraded snapshots, and a replacement is never a replica flagged
    /// anomalous or scoring below [`HealthPolicy::promote_score`] — if no
    /// candidate qualifies, the incumbent keeps the role. Every decision
    /// (kept or moved) is logged as a `reconfig_decision` trace event
    /// carrying the scores that justified it; demotions additionally count
    /// into `controller_leader_demotions_total`.
    pub fn plan_leader(&mut self) -> LeaderDecision {
        let Some(snapshot) = &self.last_health else {
            let leader = self.current_leader.unwrap_or(0);
            let decision =
                LeaderDecision { leader, demoted: None, reason: "bootstrap", leader_score: 0 };
            self.record_leader_decision(&decision, 0);
            return decision;
        };
        let leader = self.current_leader.unwrap_or_else(|| snapshot.leader.unwrap_or(0));
        let leader_score = snapshot.replica(leader).map_or(0, |h| h.score);
        let version = snapshot.version;

        let decision = if self.leader_bad_rounds == 0 {
            LeaderDecision { leader, demoted: None, reason: "healthy", leader_score }
        } else if self.leader_bad_rounds < self.health_policy.hysteresis_rounds {
            LeaderDecision { leader, demoted: None, reason: "hysteresis-pending", leader_score }
        } else {
            // Best non-anomalous candidate above the promotion bar; ties
            // break to the lowest id (deterministic).
            let candidate = snapshot
                .replicas
                .iter()
                .filter(|h| h.replica != leader && !h.anomalous())
                .filter(|h| h.score >= self.health_policy.promote_score)
                .max_by(|a, b| a.score.cmp(&b.score).then(b.replica.cmp(&a.replica)));
            match candidate {
                Some(next) => {
                    self.leader_bad_rounds = 0;
                    self.current_leader = Some(next.replica);
                    LeaderDecision {
                        leader: next.replica,
                        demoted: Some(leader),
                        reason: "demoted",
                        leader_score: next.score,
                    }
                }
                None => {
                    LeaderDecision { leader, demoted: None, reason: "no-candidate", leader_score }
                }
            }
        };
        if decision.demoted.is_some() {
            self.obs.registry.counter("controller_leader_demotions_total").inc();
        }
        self.record_leader_decision(&decision, version);
        decision
    }

    /// Emits the `reconfig_decision` trace event for one
    /// [`Controller::plan_leader`] call, carrying the justifying scores.
    fn record_leader_decision(&self, decision: &LeaderDecision, health_version: u64) {
        let mut fields = vec![
            ("decision", FieldValue::from(decision.reason)),
            ("leader", FieldValue::from(decision.leader)),
            ("leader_score", FieldValue::from(u64::from(decision.leader_score))),
            ("bad_rounds", FieldValue::from(u64::from(self.leader_bad_rounds))),
            ("health_version", FieldValue::from(health_version)),
        ];
        if let Some(demoted) = decision.demoted {
            fields.push(("demoted", FieldValue::from(demoted)));
            if let Some(h) =
                self.last_health.as_ref().and_then(|snapshot| snapshot.replica(demoted))
            {
                fields.push(("demoted_score", FieldValue::from(u64::from(h.score))));
                if let Some(p99) = h.p99_us {
                    fields.push(("demoted_p99_us", FieldValue::from(p99)));
                }
            }
        }
        self.obs.tracer.event("reconfig_decision", fields);
    }

    /// Records one round's telemetry into the attached [`Obs`] bundle.
    ///
    /// Gauges here hold the *latest* epoch's values (config risk, effective
    /// threshold, cluster count); decision outcomes accumulate in counters
    /// and the plan's serial duration feeds a histogram so long rollouts
    /// show up in the p99.
    fn record_round(&self, report: &RoundReport) {
        let reg = &self.obs.registry;
        reg.counter("controller_rounds_total").inc();
        reg.gauge("controller_config_risk").set(report.config_risk);
        reg.gauge("controller_threshold").set(report.threshold);
        if let Some(k) = self.risk.cached_cluster_count() {
            reg.gauge("controller_cluster_count").set(k as f64);
        }
        if !report.alarms.is_empty() {
            reg.counter("controller_alarms_total").add(report.alarms.len() as u64);
            for alarm in &report.alarms {
                self.obs.tracer.event(
                    "controller.alarm",
                    vec![
                        ("cve", FieldValue::from(alarm.cve.to_string())),
                        ("exploited", FieldValue::from(alarm.exploited)),
                        ("affected", FieldValue::from(alarm.affected.len())),
                    ],
                );
            }
        }
        match &report.outcome {
            MonitorOutcome::Reconfigured { removed, added, reason } => {
                reg.counter("controller_reconfigurations_total").inc();
                self.obs.tracer.event(
                    "controller.reconfigured",
                    vec![
                        ("removed", FieldValue::from(self.cfg.universe[*removed].to_string())),
                        ("added", FieldValue::from(self.cfg.universe[*added].to_string())),
                        ("reason", FieldValue::from(format!("{reason:?}"))),
                    ],
                );
            }
            MonitorOutcome::Exhausted => {
                reg.counter("controller_exhausted_total").inc();
                self.obs.tracer.event("controller.exhausted", vec![]);
            }
            MonitorOutcome::NoChange => {}
        }
        if !report.plan.is_empty() {
            let duration = DeployManager::plan_duration(&report.plan);
            reg.counter("controller_deploy_steps_total").add(report.plan.len() as u64);
            reg.gauge("controller_last_plan_duration_us").set(duration as f64);
            reg.histogram("controller_plan_duration_us").observe(duration);
        }
    }

    /// Replaces `victim_os` with the pool candidate minimizing risk,
    /// regardless of the threshold (the alarm fast path).
    fn force_swap(
        &mut self,
        victim_os: OsVersion,
        matrix: &lazarus_risk::RiskMatrix,
    ) -> MonitorOutcome {
        let sets = self.sets.as_mut().expect("bootstrapped");
        let Some(victim_idx) = self
            .cfg
            .universe
            .iter()
            .position(|&os| os == victim_os)
            .filter(|i| sets.config.contains(i))
        else {
            return MonitorOutcome::NoChange;
        };
        if sets.pool.is_empty() {
            return MonitorOutcome::Exhausted;
        }
        let slot = sets.config.iter().position(|&r| r == victim_idx).expect("in config");
        let mut best: Option<(f64, usize)> = None;
        for &candidate in &sets.pool {
            let mut config = sets.config.clone();
            config[slot] = candidate;
            let risk = matrix.risk(&config);
            if best.as_ref().is_none_or(|(b, _)| risk < *b) {
                best = Some((risk, candidate));
            }
        }
        let (_, incoming) = best.expect("pool non-empty");
        sets.pool.retain(|&r| r != incoming);
        sets.quarantine.push(victim_idx);
        sets.config[slot] = incoming;
        MonitorOutcome::Reconfigured {
            removed: victim_idx,
            added: incoming,
            reason: lazarus_risk::algorithm::ReconfigReason::HighAverageScore,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazarus_osint::catalog::study_oses;
    use lazarus_osint::cvss::CvssV3;
    use lazarus_osint::kb::KnowledgeBase;
    use lazarus_osint::model::{AffectedPlatform, CveId, ExploitRecord, Vulnerability};
    use lazarus_osint::synth::{SyntheticWorld, WorldConfig};

    fn world_data() -> DataManager {
        let mut cfg = WorldConfig::paper_study(5);
        cfg.start = Date::from_ymd(2017, 9, 1);
        cfg.end = Date::from_ymd(2018, 1, 1);
        let world = SyntheticWorld::generate(cfg);
        let kb: KnowledgeBase = world.vulnerabilities.into_iter().collect();
        DataManager::new(kb)
    }

    #[test]
    fn bootstrap_selects_and_deploys_n_replicas() {
        let data = world_data();
        let mut c = Controller::new(ControllerConfig::new(study_oses()), data);
        let report = c.bootstrap(Date::from_ymd(2018, 1, 1));
        assert_eq!(c.active_config().len(), 4);
        assert_eq!(c.deploy().active().len(), 4);
        assert_eq!(report.plan.len(), 8); // build + power-on ×4
        assert!(report.config_risk <= report.threshold);
        assert!(matches!(c.audit()[0], AuditEvent::Bootstrapped { .. }));
        // distinct OSes
        let mut oses = c.active_config();
        oses.dedup();
        assert_eq!(oses.len(), 4);
    }

    #[test]
    fn degraded_sync_keeps_steering_and_reports_staleness() {
        use lazarus_osint::sources::ExploitDbSource;
        let data = world_data();
        let obs = Obs::unclocked();
        let mut c = Controller::new(ControllerConfig::new(study_oses()), data);
        c.attach_obs(&obs);
        c.bootstrap(Date::from_ymd(2018, 1, 1));

        let dead = ExploitDbSource::new(""); // fails every attempt
        let good = ExploitDbSource::new(
            "id,file,description,date_published,author,type,platform,port,verified,codes\n\
             1,f,d,2018-01-02,a,local,linux,0,1,CVE-2018-0001\n",
        );
        // 1-of-2 sources down: the round completes on partial data.
        let (report, failures) = c.sync_and_monitor(
            &[] as &[&str],
            &[&dead, &good],
            Date::from_ymd(2018, 1, 1),
            RetryPolicy::none(),
            Date::from_ymd(2018, 1, 2),
        );
        assert!(!report.threshold.is_nan());
        assert_eq!(failures.len(), 1);
        assert_eq!(c.risk_staleness(), 1);
        let reg = &obs.registry;
        assert_eq!(reg.gauge("controller_risk_staleness_rounds").get(), 1.0);
        assert_eq!(reg.counter("controller_stale_rounds_total").get(), 1);
        assert_eq!(
            reg.counter_with("osint_source_failures_total", &[("source", "exploit-db")]).get(),
            0,
            "source metrics live on the data manager's registry, not the controller's"
        );

        // Another degraded round deepens the staleness…
        c.sync_and_monitor(
            &[] as &[&str],
            &[&dead],
            Date::from_ymd(2018, 1, 2),
            RetryPolicy::none(),
            Date::from_ymd(2018, 1, 3),
        );
        assert_eq!(c.risk_staleness(), 2);
        assert_eq!(reg.gauge("controller_risk_staleness_rounds").get(), 2.0);

        // …and one healthy sync clears it.
        let (_, failures) = c.sync_and_monitor(
            &[] as &[&str],
            &[&good],
            Date::from_ymd(2018, 1, 3),
            RetryPolicy::none(),
            Date::from_ymd(2018, 1, 4),
        );
        assert!(failures.is_empty());
        assert_eq!(c.risk_staleness(), 0);
        assert_eq!(reg.gauge("controller_risk_staleness_rounds").get(), 0.0);
        assert_eq!(reg.counter("controller_stale_rounds_total").get(), 2);
    }

    #[test]
    fn quiet_rounds_do_not_reconfigure() {
        let data = world_data();
        let mut c = Controller::new(ControllerConfig::new(study_oses()), data);
        c.bootstrap(Date::from_ymd(2018, 1, 1));
        let before = c.active_config();
        // a far-future quiet day (all vulnerabilities old and patched)
        let report = c.monitor_round(Date::from_ymd(2020, 6, 1));
        assert_eq!(report.outcome, MonitorOutcome::NoChange);
        assert!(report.plan.is_empty());
        assert_eq!(c.active_config(), before);
    }

    #[test]
    fn alarm_forces_replacement_and_deployment_plan() {
        let data = world_data();
        let mut c = Controller::new(ControllerConfig::new(study_oses()), data);
        c.bootstrap(Date::from_ymd(2018, 1, 1));
        c.monitor_round(Date::from_ymd(2018, 1, 2)); // set the alarm window
        let victim = c.active_config()[0];
        // Publish an exploited critical against an active replica.
        let today = Date::from_ymd(2018, 1, 3);
        let mut v = Vulnerability::new(
            CveId::new(2018, 99_999),
            today,
            CvssV3::CRITICAL_RCE,
            "remote code execution in the victim, exploited in the wild",
        )
        .affecting(AffectedPlatform::exact(victim.to_cpe()));
        v.exploits.push(ExploitRecord { published: today, source: "edb".into(), verified: true });
        c.data().write(|kb| {
            kb.upsert(v);
        });
        let report = c.monitor_round(today);
        assert!(!report.alarms.is_empty(), "alarm must fire");
        match report.outcome {
            MonitorOutcome::Reconfigured { .. } => {}
            other => panic!("alarmed replica must be replaced, got {other:?}"),
        }
        assert!(!c.active_config().contains(&victim), "victim quarantined");
        // The plan follows add-then-remove.
        let adds = report.plan.iter().position(|s| matches!(s, DeploymentStep::AddReplica { .. }));
        let removes =
            report.plan.iter().position(|s| matches!(s, DeploymentStep::RemoveReplica { .. }));
        assert!(adds.unwrap() < removes.unwrap());
        let sets = c.sets().unwrap();
        assert!(sets.is_partition());
        assert_eq!(sets.quarantine.len(), 1);
    }

    #[test]
    fn audit_trail_records_history() {
        let data = world_data();
        let mut c = Controller::new(ControllerConfig::new(study_oses()), data);
        c.bootstrap(Date::from_ymd(2018, 1, 1));
        for d in 2..8 {
            c.monitor_round(Date::from_ymd(2018, 1, d));
        }
        assert!(!c.audit().is_empty());
        assert!(matches!(c.audit()[0], AuditEvent::Bootstrapped { .. }));
    }

    #[test]
    #[should_panic(expected = "bootstrap first")]
    fn monitor_before_bootstrap_panics() {
        let data = world_data();
        let mut c = Controller::new(ControllerConfig::new(study_oses()), data);
        c.monitor_round(Date::from_ymd(2018, 1, 1));
    }

    #[test]
    #[should_panic(expected = "already bootstrapped")]
    fn double_bootstrap_panics() {
        let data = world_data();
        let mut c = Controller::new(ControllerConfig::new(study_oses()), data);
        c.bootstrap(Date::from_ymd(2018, 1, 1));
        c.bootstrap(Date::from_ymd(2018, 1, 2));
    }

    #[test]
    fn attached_obs_records_rounds_gauges_and_decisions() {
        let data = world_data();
        let mut cfg = ControllerConfig::new(study_oses());
        cfg.slack = 0.5; // tight threshold: reconfigurations likely
        let mut c = Controller::new(cfg, data);
        let obs = Obs::unclocked();
        c.attach_obs(&obs);
        let boot = c.bootstrap(Date::from_ymd(2018, 1, 1));
        let mut reconfigs = 0;
        let mut exhausted = 0;
        for d in 2..20 {
            let r = c.monitor_round(Date::from_ymd(2018, 1, d));
            match r.outcome {
                MonitorOutcome::Reconfigured { .. } => reconfigs += 1,
                MonitorOutcome::Exhausted => exhausted += 1,
                MonitorOutcome::NoChange => {}
            }
        }
        let reg = &obs.registry;
        assert_eq!(reg.counter("controller_rounds_total").get(), 19);
        assert_eq!(reg.counter("controller_reconfigurations_total").get(), reconfigs);
        assert_eq!(reg.counter("controller_exhausted_total").get(), exhausted);
        assert!(reg.gauge("controller_cluster_count").get() >= 1.0);
        assert!(reg.gauge("controller_threshold").get() > 0.0);
        // bootstrap planned 8 steps, so the plan histogram saw ≥ 1 sample
        assert!(reg.histogram("controller_plan_duration_us").snapshot().count >= 1);
        assert!(reg.counter("controller_deploy_steps_total").get() >= boot.plan.len() as u64);
        // the bootstrap span landed in the trace ring
        let spans = obs.tracer.recent();
        assert!(spans.iter().any(|e| e.name == "controller.bootstrap"), "{spans:?}");
        assert!(spans.iter().any(|e| e.name == "controller.round"));
    }

    fn health_snapshot(
        version: u64,
        leader: u32,
        scores: &[(u32, u32, Option<u64>, bool)],
    ) -> lazarus_obs::HealthSnapshot {
        use lazarus_obs::{AnomalyKind, ReplicaHealth};
        lazarus_obs::HealthSnapshot {
            version,
            at_us: version * 1000,
            leader: Some(leader),
            replicas: scores
                .iter()
                .map(|&(id, score, p99, anomalous)| ReplicaHealth {
                    replica: id,
                    version,
                    score,
                    latency_score: score,
                    stability_score: score,
                    liveness_score: score,
                    p50_us: p99,
                    p95_us: p99,
                    p99_us: p99,
                    phase_share_permille: [0; 3],
                    commits: 0,
                    rejects: 0,
                    help_revotes: 0,
                    view_changes: 0,
                    cst_ops: 0,
                    anomalies: if anomalous { vec![AnomalyKind::Silence] } else { Vec::new() },
                })
                .collect(),
        }
    }

    #[test]
    fn leader_demotion_waits_for_hysteresis_and_skips_anomalous() {
        let data = world_data();
        let obs = Obs::unclocked();
        let mut c = Controller::new(ControllerConfig::new(study_oses()), data);
        c.attach_obs(&obs);

        // Round 1: leader 0 degraded once — hysteresis holds the role.
        let sick = &[
            (0, 300, Some(80_000), false),
            (1, 900, Some(4_000), false),
            (2, 950, Some(4_000), true), // best score but anomalous
            (3, 800, Some(4_000), false),
        ];
        c.ingest_health(&health_snapshot(1, 0, sick));
        let d = c.plan_leader();
        assert_eq!((d.leader, d.reason), (0, "hysteresis-pending"), "{d:?}");

        // Round 2: still degraded — demote, but never to the anomalous 2.
        c.ingest_health(&health_snapshot(2, 0, sick));
        let d = c.plan_leader();
        assert_eq!((d.leader, d.demoted, d.reason), (1, Some(0), "demoted"), "{d:?}");
        assert_eq!(obs.registry.counter("controller_leader_demotions_total").get(), 1);

        // Every decision carried a reconfig_decision event with scores.
        let events: Vec<_> =
            obs.tracer.recent().into_iter().filter(|e| e.name == "reconfig_decision").collect();
        assert_eq!(events.len(), 2);
        assert!(events[1].render().contains("demoted_score=300"), "{:?}", events[1].render());

        // Healthy follow-up snapshots keep the new leader in place.
        c.ingest_health(&health_snapshot(3, 1, &[(0, 900, None, false), (1, 900, None, false)]));
        let d = c.plan_leader();
        assert_eq!((d.leader, d.reason), (1, "healthy"));
        assert_eq!(obs.registry.counter("controller_leader_demotions_total").get(), 1);
    }

    #[test]
    fn degraded_leader_survives_when_no_candidate_qualifies() {
        let data = world_data();
        let mut c = Controller::new(ControllerConfig::new(study_oses()), data);
        // Everyone else is anomalous or below the promotion bar.
        let bleak = &[
            (0, 200, Some(90_000), false),
            (1, 500, None, false),
            (2, 990, None, true),
            (3, 400, None, false),
        ];
        c.ingest_health(&health_snapshot(1, 0, bleak));
        c.ingest_health(&health_snapshot(2, 0, bleak));
        let d = c.plan_leader();
        assert_eq!((d.leader, d.demoted, d.reason), (0, None, "no-candidate"), "{d:?}");
    }

    #[test]
    fn plan_leader_without_health_is_a_bootstrap_decision() {
        let data = world_data();
        let mut c = Controller::new(ControllerConfig::new(study_oses()), data);
        let d = c.plan_leader();
        assert_eq!((d.leader, d.reason), (0, "bootstrap"));
    }

    #[test]
    fn deploy_inventory_follows_reconfigurations() {
        let data = world_data();
        // Small slack so reconfigurations are likely.
        let mut cfg = ControllerConfig::new(study_oses());
        cfg.slack = 0.5;
        let mut c = Controller::new(cfg, data);
        c.bootstrap(Date::from_ymd(2018, 1, 1));
        let mut reconfigs = 0;
        for d in 2..20 {
            let r = c.monitor_round(Date::from_ymd(2018, 1, d));
            if matches!(r.outcome, MonitorOutcome::Reconfigured { .. }) {
                reconfigs += 1;
            }
            // deploy inventory always matches the active config
            let mut deployed: Vec<OsVersion> = c.deploy().active().iter().map(|d| d.os).collect();
            let mut active = c.active_config();
            deployed.sort();
            active.sort();
            assert_eq!(deployed, active);
        }
        let _ = reconfigs; // may legitimately be zero on calm landscapes
    }
}
