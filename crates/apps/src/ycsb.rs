//! A YCSB-style workload generator for the KVS.
//!
//! Reproduces the workload of paper §7.3/§7.4: a read/write mix (50/50 in
//! the paper) over small numeric keys with fixed-size values, drawn from a
//! Zipfian key-popularity distribution as in the original YCSB benchmark.
//! Each generator is seeded, so workloads replay identically.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::kvs::KvsOp;

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Fraction of reads (the paper uses 0.5).
    pub read_ratio: f64,
    /// Key space size.
    pub keys: u64,
    /// Value size in bytes (1 KiB in Fig 9, 4 KiB in Fig 10).
    pub value_size: usize,
    /// Zipfian skew (`0.0` = uniform; YCSB default ≈ 0.99).
    pub zipf_theta: f64,
}

impl YcsbConfig {
    /// The Fig 9 workload: 50/50, 1 KiB values.
    pub fn fig9() -> YcsbConfig {
        YcsbConfig { read_ratio: 0.5, keys: 100_000, value_size: 1024, zipf_theta: 0.99 }
    }

    /// The Fig 10 KVS workload: 50/50, 4 KiB values.
    pub fn fig10() -> YcsbConfig {
        YcsbConfig { read_ratio: 0.5, keys: 100_000, value_size: 4096, zipf_theta: 0.99 }
    }
}

/// Op-mix counters a workload can feed (see [`YcsbWorkload::attach_obs`]).
#[derive(Debug, Clone)]
struct YcsbObs {
    gets: lazarus_obs::Counter,
    puts: lazarus_obs::Counter,
    put_bytes: lazarus_obs::Counter,
}

/// The seeded generator.
#[derive(Debug, Clone)]
pub struct YcsbWorkload {
    cfg: YcsbConfig,
    rng: StdRng,
    zipf_zeta: f64,
    obs: Option<YcsbObs>,
}

impl YcsbWorkload {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero or `read_ratio` is outside `0.0..=1.0`.
    pub fn new(cfg: YcsbConfig, seed: u64) -> YcsbWorkload {
        assert!(cfg.keys > 0, "key space must be non-empty");
        assert!((0.0..=1.0).contains(&cfg.read_ratio), "read_ratio out of range");
        // Zeta normalization constant for the (truncated) Zipfian; computed
        // over a capped support for constant-time setup.
        let support = cfg.keys.min(10_000);
        let zipf_zeta = (1..=support).map(|i| 1.0 / (i as f64).powf(cfg.zipf_theta)).sum();
        YcsbWorkload { cfg, rng: StdRng::seed_from_u64(seed), zipf_zeta, obs: None }
    }

    /// Registers op-mix counters (`ycsb_ops_total{op=…}`,
    /// `ycsb_put_bytes_total`) in `registry`; every subsequent
    /// [`next_op`](Self::next_op) accounts the drawn operation.
    pub fn attach_obs(&mut self, registry: &lazarus_obs::Registry) {
        self.obs = Some(YcsbObs {
            gets: registry.counter_with("ycsb_ops_total", &[("op", "get")]),
            puts: registry.counter_with("ycsb_ops_total", &[("op", "put")]),
            put_bytes: registry.counter("ycsb_put_bytes_total"),
        });
    }

    /// Draws the next operation, encoded for the KVS.
    pub fn next_op(&mut self) -> Bytes {
        let key = self.next_key().to_be_bytes().to_vec();
        if self.rng.gen_bool(self.cfg.read_ratio) {
            if let Some(obs) = &self.obs {
                obs.gets.inc();
            }
            KvsOp::Get { key }.encode()
        } else {
            let value = vec![0xAB; self.cfg.value_size];
            if let Some(obs) = &self.obs {
                obs.puts.inc();
                obs.put_bytes.add(value.len() as u64);
            }
            KvsOp::Put { key, value }.encode()
        }
    }

    fn next_key(&mut self) -> u64 {
        if self.cfg.zipf_theta <= 0.0 {
            return self.rng.gen_range(0..self.cfg.keys);
        }
        // Inverse-CDF sampling over the capped support, mapped onto the full
        // key space in blocks (popular block 0 first).
        let support = self.cfg.keys.min(10_000);
        let mut target = self.rng.gen_range(0.0..self.zipf_zeta);
        let mut rank = support;
        for i in 1..=support {
            let w = 1.0 / (i as f64).powf(self.cfg.zipf_theta);
            if target < w {
                rank = i;
                break;
            }
            target -= w;
        }
        let block = self.cfg.keys / support;
        (rank - 1) * block.max(1) % self.cfg.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kvs::KvsOp;

    #[test]
    fn respects_read_ratio() {
        let mut w = YcsbWorkload::new(YcsbConfig { read_ratio: 0.5, ..YcsbConfig::fig9() }, 1);
        let mut reads = 0;
        for _ in 0..2000 {
            match KvsOp::decode(&w.next_op()).unwrap() {
                KvsOp::Get { .. } => reads += 1,
                KvsOp::Put { value, .. } => assert_eq!(value.len(), 1024),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!((800..1200).contains(&reads), "reads {reads}");
    }

    #[test]
    fn all_reads_or_all_writes() {
        let mut r = YcsbWorkload::new(YcsbConfig { read_ratio: 1.0, ..YcsbConfig::fig9() }, 2);
        for _ in 0..50 {
            assert!(matches!(KvsOp::decode(&r.next_op()), Some(KvsOp::Get { .. })));
        }
        let mut w = YcsbWorkload::new(YcsbConfig { read_ratio: 0.0, ..YcsbConfig::fig9() }, 2);
        for _ in 0..50 {
            assert!(matches!(KvsOp::decode(&w.next_op()), Some(KvsOp::Put { .. })));
        }
    }

    #[test]
    fn zipfian_skews_toward_popular_keys() {
        let mut w = YcsbWorkload::new(
            YcsbConfig { read_ratio: 1.0, keys: 1000, value_size: 8, zipf_theta: 0.99 },
            3,
        );
        let mut top_key = 0usize;
        let mut total = 0usize;
        for _ in 0..2000 {
            if let Some(KvsOp::Get { key }) = KvsOp::decode(&w.next_op()) {
                total += 1;
                if key == 0u64.to_be_bytes().to_vec() {
                    top_key += 1;
                }
            }
        }
        // The hottest key should far exceed its uniform share (1/1000).
        assert!(top_key as f64 / total as f64 > 0.05, "{top_key}/{total}");
    }

    #[test]
    fn uniform_mode_spreads_keys() {
        let mut w = YcsbWorkload::new(
            YcsbConfig { read_ratio: 1.0, keys: 10, value_size: 8, zipf_theta: 0.0 },
            4,
        );
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            if let Some(KvsOp::Get { key }) = KvsOp::decode(&w.next_op()) {
                seen.insert(key);
            }
        }
        assert!(seen.len() >= 9, "uniform draw covers the space: {}", seen.len());
    }

    #[test]
    fn seeded_replay_is_identical() {
        let mut a = YcsbWorkload::new(YcsbConfig::fig9(), 42);
        let mut b = YcsbWorkload::new(YcsbConfig::fig9(), 42);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn attached_registry_counts_the_op_mix() {
        let registry = lazarus_obs::Registry::new();
        let mut w = YcsbWorkload::new(YcsbConfig::fig9(), 7);
        w.attach_obs(&registry);
        for _ in 0..100 {
            w.next_op();
        }
        let gets = registry.counter_with("ycsb_ops_total", &[("op", "get")]).get();
        let puts = registry.counter_with("ycsb_ops_total", &[("op", "put")]).get();
        assert_eq!(gets + puts, 100);
        assert_eq!(registry.counter("ycsb_put_bytes_total").get(), puts * 1024);
    }

    #[test]
    #[should_panic(expected = "key space")]
    fn zero_keys_panics() {
        YcsbWorkload::new(YcsbConfig { keys: 0, ..YcsbConfig::fig9() }, 0);
    }
}
