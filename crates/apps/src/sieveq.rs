//! SieveQ: a layered BFT message queue / application-level firewall.
//!
//! SieveQ (paper §7.4, citing Garcia et al. 2018) protects a critical
//! service with a message queue whose *filtering layers* discard invalid
//! traffic before it reaches the BFT-replicated core — which is why its
//! measured slowdown under Lazarus virtualization is the smallest of the
//! three applications: "most of the message validations happen before the
//! message reaches the BFT-replicated state machine".
//!
//! The reproduction keeps that architecture: a [`FilterPipeline`] of
//! stateless sanity layers plus a stateful rate/duplicate layer runs in
//! front (at the sender/front-end), and only accepted messages are ordered
//! into the replicated [`SieveQService`] queue.

use std::collections::{HashMap, VecDeque};

use bytes::{BufMut, Bytes, BytesMut};

use lazarus_bft::crypto::Digest;
use lazarus_bft::service::Service;
use lazarus_bft::types::ClientId;

/// Why a message was rejected by the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterReject {
    /// Message exceeds the configured size bound.
    TooLarge,
    /// Message is empty.
    Empty,
    /// Malformed header (first byte must be a known message kind).
    Malformed,
    /// The sender exceeded its per-window message budget.
    RateLimited,
    /// An identical message was already accepted recently.
    Duplicate,
}

impl std::fmt::Display for FilterReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FilterReject::TooLarge => "message too large",
            FilterReject::Empty => "empty message",
            FilterReject::Malformed => "malformed header",
            FilterReject::RateLimited => "sender rate-limited",
            FilterReject::Duplicate => "duplicate message",
        };
        f.write_str(s)
    }
}

/// Message kinds accepted by the queue front-end.
const KIND_ENQUEUE: u8 = 1;
const KIND_DEQUEUE: u8 = 2;

/// The filtering front-end: syntactic sanity, rate limiting and duplicate
/// suppression, applied before ordering.
#[derive(Debug, Clone)]
pub struct FilterPipeline {
    /// Maximum accepted message size.
    pub max_size: usize,
    /// Messages allowed per sender per window.
    pub rate_limit: u32,
    counters: HashMap<u64, u32>,
    recent: VecDeque<Digest>,
    recent_cap: usize,
}

impl FilterPipeline {
    /// A pipeline with the given bounds.
    pub fn new(max_size: usize, rate_limit: u32) -> FilterPipeline {
        FilterPipeline {
            max_size,
            rate_limit,
            counters: HashMap::new(),
            recent: VecDeque::new(),
            recent_cap: 4096,
        }
    }

    /// Runs all layers over one message from `sender`.
    ///
    /// # Errors
    ///
    /// Returns the first layer's rejection.
    pub fn check(&mut self, sender: u64, message: &[u8]) -> Result<(), FilterReject> {
        // Layer 1: syntactic sanity.
        if message.is_empty() {
            return Err(FilterReject::Empty);
        }
        if message.len() > self.max_size {
            return Err(FilterReject::TooLarge);
        }
        if message[0] != KIND_ENQUEUE && message[0] != KIND_DEQUEUE {
            return Err(FilterReject::Malformed);
        }
        // Layer 2: rate limiting.
        let counter = self.counters.entry(sender).or_insert(0);
        if *counter >= self.rate_limit {
            return Err(FilterReject::RateLimited);
        }
        *counter += 1;
        // Layer 3: duplicate suppression (enqueues only — dequeues are
        // idempotent by design).
        if message[0] == KIND_ENQUEUE {
            let digest = Digest::of(message);
            if self.recent.contains(&digest) {
                return Err(FilterReject::Duplicate);
            }
            self.recent.push_back(digest);
            if self.recent.len() > self.recent_cap {
                self.recent.pop_front();
            }
        }
        Ok(())
    }

    /// Starts a new rate window (clears the counters).
    pub fn roll_window(&mut self) {
        self.counters.clear();
    }
}

/// Builds an ENQUEUE command.
pub fn enqueue_op(body: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + body.len());
    buf.put_u8(KIND_ENQUEUE);
    buf.put_slice(body);
    buf.freeze()
}

/// Builds a DEQUEUE command.
pub fn dequeue_op() -> Bytes {
    Bytes::from_static(&[KIND_DEQUEUE])
}

/// The BFT-replicated queue core.
#[derive(Debug, Clone, Default)]
pub struct SieveQService {
    queue: VecDeque<Vec<u8>>,
    bytes: usize,
    enqueued_total: u64,
}

impl SieveQService {
    /// An empty queue.
    pub fn new() -> SieveQService {
        SieveQService::default()
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total messages ever enqueued.
    pub fn enqueued_total(&self) -> u64 {
        self.enqueued_total
    }
}

impl Service for SieveQService {
    fn execute(&mut self, _client: ClientId, payload: &[u8]) -> Bytes {
        match payload.first() {
            Some(&KIND_ENQUEUE) => {
                let body = payload[1..].to_vec();
                self.bytes += body.len();
                self.queue.push_back(body);
                self.enqueued_total += 1;
                Bytes::from_static(b"OK:queued")
            }
            Some(&KIND_DEQUEUE) => match self.queue.pop_front() {
                Some(body) => {
                    self.bytes -= body.len();
                    Bytes::from(body)
                }
                None => Bytes::from_static(b"ERR:empty"),
            },
            _ => Bytes::from_static(b"ERR:malformed"),
        }
    }

    fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.bytes + 16 * self.queue.len() + 16);
        buf.put_u64(self.enqueued_total);
        buf.put_u64(self.queue.len() as u64);
        for m in &self.queue {
            buf.put_u32(m.len() as u32);
            buf.put_slice(m);
        }
        buf.freeze()
    }

    fn install(&mut self, mut snapshot: &[u8]) {
        fn take<'a>(data: &mut &'a [u8], n: usize) -> &'a [u8] {
            let (head, rest) = data.split_at(n);
            *data = rest;
            head
        }
        self.enqueued_total = u64::from_be_bytes(take(&mut snapshot, 8).try_into().expect("len"));
        let count = u64::from_be_bytes(take(&mut snapshot, 8).try_into().expect("len"));
        self.queue.clear();
        self.bytes = 0;
        for _ in 0..count {
            let len = u32::from_be_bytes(take(&mut snapshot, 4).try_into().expect("len")) as usize;
            let body = take(&mut snapshot, len).to_vec();
            self.bytes += body.len();
            self.queue.push_back(body);
        }
    }

    fn state_size(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_reject_garbage_before_ordering() {
        let mut p = FilterPipeline::new(2048, 100);
        assert_eq!(p.check(1, b""), Err(FilterReject::Empty));
        assert_eq!(p.check(1, &vec![1u8; 4096]), Err(FilterReject::TooLarge));
        assert_eq!(p.check(1, &[9, 1, 2]), Err(FilterReject::Malformed));
        assert_eq!(p.check(1, &enqueue_op(b"fine")), Ok(()));
    }

    #[test]
    fn rate_limit_per_sender() {
        let mut p = FilterPipeline::new(2048, 2);
        assert!(p.check(1, &enqueue_op(b"a")).is_ok());
        assert!(p.check(1, &enqueue_op(b"b")).is_ok());
        assert_eq!(p.check(1, &enqueue_op(b"c")), Err(FilterReject::RateLimited));
        // other senders unaffected
        assert!(p.check(2, &enqueue_op(b"d")).is_ok());
        // new window resets
        p.roll_window();
        assert!(p.check(1, &enqueue_op(b"e")).is_ok());
    }

    #[test]
    fn duplicates_are_suppressed() {
        let mut p = FilterPipeline::new(2048, 100);
        let m = enqueue_op(b"same");
        assert!(p.check(1, &m).is_ok());
        assert_eq!(p.check(2, &m), Err(FilterReject::Duplicate));
        // dequeues are never duplicates
        assert!(p.check(1, &dequeue_op()).is_ok());
        assert!(p.check(1, &dequeue_op()).is_ok());
    }

    #[test]
    fn queue_fifo_semantics() {
        let mut s = SieveQService::new();
        s.execute(ClientId(1), &enqueue_op(b"first"));
        s.execute(ClientId(2), &enqueue_op(b"second"));
        assert_eq!(s.len(), 2);
        assert_eq!(&s.execute(ClientId(3), &dequeue_op())[..], b"first");
        assert_eq!(&s.execute(ClientId(3), &dequeue_op())[..], b"second");
        assert_eq!(&s.execute(ClientId(3), &dequeue_op())[..], b"ERR:empty");
        assert_eq!(s.enqueued_total(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut a = SieveQService::new();
        a.execute(ClientId(1), &enqueue_op(&[1; 100]));
        a.execute(ClientId(1), &enqueue_op(&[2; 200]));
        a.execute(ClientId(1), &dequeue_op());
        let snap = a.snapshot();
        let mut b = SieveQService::new();
        b.install(&snap);
        assert_eq!(b.len(), 1);
        assert_eq!(b.enqueued_total(), 2);
        assert_eq!(b.state_size(), 200);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn malformed_at_service_level_is_safe() {
        // Defense in depth: even if a Byzantine replica bypassed the
        // filters, the core rejects garbage deterministically.
        let mut s = SieveQService::new();
        assert_eq!(&s.execute(ClientId(1), &[77])[..], b"ERR:malformed");
        assert_eq!(&s.execute(ClientId(1), b"")[..], b"ERR:malformed");
    }
}
