//! The BFT applications evaluated on Lazarus (paper §7.4).
//!
//! * [`kvs`] — an in-memory key-value store (with the [`ycsb`] workload
//!   generator), used by the reconfiguration experiment (Fig 9) and the
//!   application benchmark (Fig 10);
//! * [`sieveq`] — the SieveQ layered BFT message queue / application-level
//!   firewall;
//! * [`fabric`] — a Fabric-like BFT ordering service cutting hash-chained
//!   blocks of transactions.
//!
//! All three implement [`lazarus_bft::service::Service`], so they run
//! unmodified on the replication library, in the deterministic testkit, and
//! in the performance testbed.
//!
//! # Example
//!
//! ```
//! use lazarus_apps::kvs::{KvsOp, KvsService};
//! use lazarus_bft::service::Service;
//! use lazarus_bft::types::ClientId;
//!
//! let mut kvs = KvsService::new();
//! kvs.execute(ClientId(1), &KvsOp::Put { key: b"k".to_vec(), value: b"v".to_vec() }.encode());
//! let got = kvs.execute(ClientId(1), &KvsOp::Get { key: b"k".to_vec() }.encode());
//! assert_eq!(&got[..], b"v");
//! ```

#![warn(missing_docs)]

pub mod fabric;
pub mod kvs;
pub mod sieveq;
pub mod ycsb;

pub use fabric::OrderingService;
pub use kvs::KvsService;
pub use sieveq::SieveQService;
pub use ycsb::{YcsbConfig, YcsbWorkload};
