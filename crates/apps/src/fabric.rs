//! A BFT ordering service for a Fabric-like permissioned blockchain.
//!
//! "The ordering service is the core of Fabric, being responsible for
//! ordering and grouping issued transactions in signed blocks that form the
//! blockchain" (paper §7.4, citing Sousa et al. 2018). The replicated
//! service accepts raw transactions, cuts a block every `block_size`
//! transactions (the paper uses 10), hash-chains it to its predecessor, and
//! answers block-header queries so receivers can follow the chain.

use bytes::{BufMut, Bytes, BytesMut};

use lazarus_bft::crypto::Digest;
use lazarus_bft::service::Service;
use lazarus_bft::types::ClientId;

/// Command opcodes.
const OP_SUBMIT: u8 = 1;
const OP_HEADER: u8 = 2;

/// Builds a transaction-submission command.
pub fn submit_op(tx: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + tx.len());
    buf.put_u8(OP_SUBMIT);
    buf.put_slice(tx);
    buf.freeze()
}

/// Builds a block-header query.
pub fn header_op(number: u64) -> Bytes {
    let mut buf = BytesMut::with_capacity(9);
    buf.put_u8(OP_HEADER);
    buf.put_u64(number);
    buf.freeze()
}

/// A cut block's header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    /// Block number (genesis = 0 is implicit; first cut block is 1).
    pub number: u64,
    /// Digest of the previous block header (hash chain).
    pub previous: Digest,
    /// Merkle-style digest over the block's transaction digests.
    pub tx_root: Digest,
    /// Number of transactions.
    pub tx_count: u32,
}

impl BlockHeader {
    /// Canonical digest of this header.
    pub fn digest(&self) -> Digest {
        Digest::of_parts(&[
            &self.number.to_be_bytes(),
            &self.previous.0,
            &self.tx_root.0,
            &self.tx_count.to_be_bytes(),
        ])
    }

    /// Wire encoding (the reply to a header query).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + 32 + 32 + 4);
        buf.put_u64(self.number);
        buf.put_slice(&self.previous.0);
        buf.put_slice(&self.tx_root.0);
        buf.put_u32(self.tx_count);
        buf.freeze()
    }
}

/// The replicated ordering service.
#[derive(Debug, Clone)]
pub struct OrderingService {
    block_size: usize,
    pending: Vec<Digest>,
    pending_bytes: usize,
    headers: Vec<BlockHeader>,
    chain_bytes: usize,
}

impl OrderingService {
    /// A service cutting blocks of `block_size` transactions (paper: 10).
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: usize) -> OrderingService {
        assert!(block_size > 0, "block size must be positive");
        OrderingService {
            block_size,
            pending: Vec::new(),
            pending_bytes: 0,
            headers: Vec::new(),
            chain_bytes: 0,
        }
    }

    /// Number of blocks cut so far.
    pub fn height(&self) -> u64 {
        self.headers.len() as u64
    }

    /// The header of block `number` (1-based), if cut.
    pub fn header(&self, number: u64) -> Option<&BlockHeader> {
        if number == 0 {
            return None;
        }
        self.headers.get(number as usize - 1)
    }

    /// Verifies the hash chain end to end.
    pub fn verify_chain(&self) -> bool {
        let mut previous = Digest::ZERO;
        for (i, h) in self.headers.iter().enumerate() {
            if h.number != i as u64 + 1 || h.previous != previous {
                return false;
            }
            previous = h.digest();
        }
        true
    }

    fn cut_block(&mut self) -> BlockHeader {
        let previous = self.headers.last().map(BlockHeader::digest).unwrap_or(Digest::ZERO);
        let parts: Vec<&[u8]> = self.pending.iter().map(|d| d.0.as_slice()).collect();
        let header = BlockHeader {
            number: self.headers.len() as u64 + 1,
            previous,
            tx_root: Digest::of_parts(&parts),
            tx_count: self.pending.len() as u32,
        };
        self.headers.push(header.clone());
        self.chain_bytes += 76;
        self.pending.clear();
        self.pending_bytes = 0;
        header
    }
}

impl Service for OrderingService {
    fn execute(&mut self, _client: ClientId, payload: &[u8]) -> Bytes {
        match payload.first() {
            Some(&OP_SUBMIT) => {
                let tx = &payload[1..];
                if tx.is_empty() {
                    return Bytes::from_static(b"ERR:empty-tx");
                }
                self.pending.push(Digest::of(tx));
                self.pending_bytes += tx.len();
                if self.pending.len() >= self.block_size {
                    let header = self.cut_block();
                    // Receipt: the block that sealed this transaction.
                    let mut buf = BytesMut::with_capacity(9);
                    buf.put_u8(b'B');
                    buf.put_u64(header.number);
                    buf.freeze()
                } else {
                    Bytes::from_static(b"P") // pending
                }
            }
            Some(&OP_HEADER) if payload.len() == 9 => {
                let number = u64::from_be_bytes(payload[1..9].try_into().expect("checked"));
                match self.header(number) {
                    Some(h) => h.encode(),
                    None => Bytes::from_static(b"ERR:no-such-block"),
                }
            }
            _ => Bytes::from_static(b"ERR:malformed"),
        }
    }

    fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u64(self.block_size as u64);
        buf.put_u64(self.headers.len() as u64);
        for h in &self.headers {
            buf.put_slice(&h.encode());
        }
        buf.put_u64(self.pending.len() as u64);
        for d in &self.pending {
            buf.put_slice(&d.0);
        }
        buf.put_u64(self.pending_bytes as u64);
        buf.freeze()
    }

    fn install(&mut self, mut snapshot: &[u8]) {
        fn take<'a>(data: &mut &'a [u8], n: usize) -> &'a [u8] {
            let (head, rest) = data.split_at(n);
            *data = rest;
            head
        }
        fn take_u64(data: &mut &[u8]) -> u64 {
            u64::from_be_bytes(take(data, 8).try_into().expect("len"))
        }
        self.block_size = take_u64(&mut snapshot) as usize;
        let blocks = take_u64(&mut snapshot);
        self.headers.clear();
        self.chain_bytes = 0;
        for _ in 0..blocks {
            let number = take_u64(&mut snapshot);
            let previous = Digest(take(&mut snapshot, 32).try_into().expect("digest"));
            let tx_root = Digest(take(&mut snapshot, 32).try_into().expect("digest"));
            let tx_count = u32::from_be_bytes(take(&mut snapshot, 4).try_into().expect("count"));
            self.headers.push(BlockHeader { number, previous, tx_root, tx_count });
            self.chain_bytes += 76;
        }
        let pending = take_u64(&mut snapshot);
        self.pending = (0..pending)
            .map(|_| Digest(take(&mut snapshot, 32).try_into().expect("digest")))
            .collect();
        self.pending_bytes = take_u64(&mut snapshot) as usize;
    }

    fn state_size(&self) -> usize {
        self.chain_bytes + self.pending.len() * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_cut_every_block_size_transactions() {
        let mut s = OrderingService::new(10);
        for i in 0..9u32 {
            let r = s.execute(ClientId(1), &submit_op(&i.to_be_bytes()));
            assert_eq!(&r[..], b"P");
        }
        let r = s.execute(ClientId(1), &submit_op(b"tenth"));
        assert_eq!(r[0], b'B');
        assert_eq!(u64::from_be_bytes(r[1..9].try_into().unwrap()), 1);
        assert_eq!(s.height(), 1);
        assert_eq!(s.header(1).unwrap().tx_count, 10);
    }

    #[test]
    fn chain_links_and_verifies() {
        let mut s = OrderingService::new(2);
        for i in 0..10u32 {
            s.execute(ClientId(1), &submit_op(&i.to_be_bytes()));
        }
        assert_eq!(s.height(), 5);
        assert!(s.verify_chain());
        assert_eq!(s.header(1).unwrap().previous, Digest::ZERO);
        assert_eq!(s.header(2).unwrap().previous, s.header(1).unwrap().digest());
        // identical submissions on a second replica produce the same chain
        let mut t = OrderingService::new(2);
        for i in 0..10u32 {
            t.execute(ClientId(9), &submit_op(&i.to_be_bytes()));
        }
        assert_eq!(t.header(5).unwrap().digest(), s.header(5).unwrap().digest());
    }

    #[test]
    fn header_queries() {
        let mut s = OrderingService::new(2);
        s.execute(ClientId(1), &submit_op(b"a"));
        s.execute(ClientId(1), &submit_op(b"b"));
        let reply = s.execute(ClientId(1), &header_op(1));
        assert_eq!(reply.len(), 76);
        assert_eq!(&s.execute(ClientId(1), &header_op(7))[..], b"ERR:no-such-block");
        assert_eq!(&s.execute(ClientId(1), &header_op(0))[..], b"ERR:no-such-block");
    }

    #[test]
    fn rejects_malformed_and_empty() {
        let mut s = OrderingService::new(2);
        assert_eq!(&s.execute(ClientId(1), b"")[..], b"ERR:malformed");
        assert_eq!(&s.execute(ClientId(1), &[OP_SUBMIT])[..], b"ERR:empty-tx");
        assert_eq!(&s.execute(ClientId(1), &[OP_HEADER, 1])[..], b"ERR:malformed");
    }

    #[test]
    fn snapshot_roundtrip_preserves_chain_and_pending() {
        let mut a = OrderingService::new(3);
        for i in 0..7u32 {
            a.execute(ClientId(1), &submit_op(&i.to_be_bytes()));
        }
        let snap = a.snapshot();
        let mut b = OrderingService::new(99);
        b.install(&snap);
        assert_eq!(b.height(), 2);
        assert!(b.verify_chain());
        assert_eq!(a.snapshot(), b.snapshot());
        // the restored replica continues the chain identically (two more
        // submissions complete block 3: pending was 1 of 3)
        for tx in [b"x8".as_slice(), b"x9".as_slice()] {
            a.execute(ClientId(1), &submit_op(tx));
            b.execute(ClientId(1), &submit_op(tx));
        }
        assert_eq!(a.height(), 3);
        assert_eq!(a.header(3).unwrap().digest(), b.header(3).unwrap().digest());
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_panics() {
        OrderingService::new(0);
    }
}
