//! The replicated in-memory Key-Value Store.
//!
//! "A consistent non-relational database that stores data in memory,
//! similarly to a coordination service" (paper §7.4) — the application used
//! for the reconfiguration experiment (Fig 9, 500 MB state, YCSB 50/50) and
//! the first bar group of Fig 10.
//!
//! Operations are length-framed binary commands (PUT/GET/DELETE). Besides
//! the live map, the service can carry *ballast*: an opaque pre-loaded blob
//! standing in for the paper's 500 MB preloaded state, so checkpoints and
//! state transfers move realistic volumes without simulating half a million
//! YCSB preload operations.

use std::collections::BTreeMap;

use bytes::{BufMut, Bytes, BytesMut};

use lazarus_bft::service::Service;
use lazarus_bft::types::ClientId;

/// KVS command opcodes.
const OP_PUT: u8 = 1;
const OP_GET: u8 = 2;
const OP_DELETE: u8 = 3;

/// A KVS command (the client-side encoder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvsOp {
    /// Store `value` under `key`.
    Put {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Fetch the value under `key`.
    Get {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// Remove `key`.
    Delete {
        /// Key bytes.
        key: Vec<u8>,
    },
}

impl KvsOp {
    /// Encodes the command for the wire.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            KvsOp::Put { key, value } => {
                buf.put_u8(OP_PUT);
                buf.put_u32(key.len() as u32);
                buf.put_slice(key);
                buf.put_u32(value.len() as u32);
                buf.put_slice(value);
            }
            KvsOp::Get { key } => {
                buf.put_u8(OP_GET);
                buf.put_u32(key.len() as u32);
                buf.put_slice(key);
            }
            KvsOp::Delete { key } => {
                buf.put_u8(OP_DELETE);
                buf.put_u32(key.len() as u32);
                buf.put_slice(key);
            }
        }
        buf.freeze()
    }

    /// Decodes a command from the wire.
    pub fn decode(mut data: &[u8]) -> Option<KvsOp> {
        fn take<'a>(data: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            if data.len() < n {
                return None;
            }
            let (head, rest) = data.split_at(n);
            *data = rest;
            Some(head)
        }
        fn take_u32(data: &mut &[u8]) -> Option<usize> {
            let b = take(data, 4)?;
            Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]) as usize)
        }
        let op = *take(&mut data, 1)?.first()?;
        let klen = take_u32(&mut data)?;
        let key = take(&mut data, klen)?.to_vec();
        match op {
            OP_PUT => {
                let vlen = take_u32(&mut data)?;
                let value = take(&mut data, vlen)?.to_vec();
                Some(KvsOp::Put { key, value })
            }
            OP_GET => Some(KvsOp::Get { key }),
            OP_DELETE => Some(KvsOp::Delete { key }),
            _ => None,
        }
    }
}

/// The replicated KVS service.
#[derive(Debug, Clone, Default)]
pub struct KvsService {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    data_bytes: usize,
    ballast: Vec<u8>,
}

impl KvsService {
    /// An empty store.
    pub fn new() -> KvsService {
        KvsService::default()
    }

    /// A store carrying `bytes` of opaque ballast state (the Fig 9 500 MB
    /// preload). Ballast is part of snapshots and therefore of checkpoint
    /// and state-transfer cost.
    pub fn with_ballast(bytes: usize) -> KvsService {
        KvsService { ballast: vec![0xB5; bytes], ..Default::default() }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Reads a value directly (test/diagnostic path, not ordered).
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(Vec::as_slice)
    }
}

impl Service for KvsService {
    fn execute(&mut self, _client: ClientId, payload: &[u8]) -> Bytes {
        match KvsOp::decode(payload) {
            Some(KvsOp::Put { key, value }) => {
                let (klen, vlen) = (key.len(), value.len());
                match self.map.insert(key, value) {
                    Some(old) => {
                        // The key's bytes are already accounted for.
                        self.data_bytes = self.data_bytes + vlen - old.len();
                        Bytes::from_static(b"OK:replaced")
                    }
                    None => {
                        self.data_bytes += klen + vlen;
                        Bytes::from_static(b"OK:new")
                    }
                }
            }
            Some(KvsOp::Get { key }) => match self.map.get(&key) {
                Some(v) => Bytes::copy_from_slice(v),
                None => Bytes::from_static(b"ERR:not-found"),
            },
            Some(KvsOp::Delete { key }) => match self.map.remove(&key) {
                Some(old) => {
                    self.data_bytes -= key.len() + old.len();
                    Bytes::from_static(b"OK:deleted")
                }
                None => Bytes::from_static(b"ERR:not-found"),
            },
            None => Bytes::from_static(b"ERR:malformed"),
        }
    }

    fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.ballast.len() + self.data_bytes + 64);
        buf.put_u64(self.ballast.len() as u64);
        buf.put_slice(&self.ballast);
        buf.put_u64(self.map.len() as u64);
        for (k, v) in &self.map {
            buf.put_u32(k.len() as u32);
            buf.put_slice(k);
            buf.put_u32(v.len() as u32);
            buf.put_slice(v);
        }
        buf.freeze()
    }

    fn install(&mut self, mut snapshot: &[u8]) {
        fn take<'a>(data: &mut &'a [u8], n: usize) -> &'a [u8] {
            let (head, rest) = data.split_at(n);
            *data = rest;
            head
        }
        let blen = u64::from_be_bytes(take(&mut snapshot, 8).try_into().expect("len")) as usize;
        self.ballast = take(&mut snapshot, blen).to_vec();
        let entries = u64::from_be_bytes(take(&mut snapshot, 8).try_into().expect("len"));
        self.map.clear();
        self.data_bytes = 0;
        for _ in 0..entries {
            let klen = u32::from_be_bytes(take(&mut snapshot, 4).try_into().expect("len")) as usize;
            let key = take(&mut snapshot, klen).to_vec();
            let vlen = u32::from_be_bytes(take(&mut snapshot, 4).try_into().expect("len")) as usize;
            let value = take(&mut snapshot, vlen).to_vec();
            self.data_bytes += key.len() + value.len();
            self.map.insert(key, value);
        }
    }

    fn state_size(&self) -> usize {
        self.ballast.len() + self.data_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(s: &mut KvsService, k: &[u8], v: &[u8]) -> Bytes {
        s.execute(ClientId(1), &KvsOp::Put { key: k.to_vec(), value: v.to_vec() }.encode())
    }

    #[test]
    fn op_encoding_roundtrips() {
        for op in [
            KvsOp::Put { key: b"k".to_vec(), value: vec![7; 100] },
            KvsOp::Get { key: b"key".to_vec() },
            KvsOp::Delete { key: vec![] },
        ] {
            assert_eq!(KvsOp::decode(&op.encode()), Some(op));
        }
        assert_eq!(KvsOp::decode(b""), None);
        assert_eq!(KvsOp::decode(&[9, 0, 0, 0, 1, b'x']), None); // bad opcode
        assert_eq!(KvsOp::decode(&[1, 0, 0, 0, 9]), None); // truncated
    }

    #[test]
    fn put_get_delete_lifecycle() {
        let mut s = KvsService::new();
        assert_eq!(&put(&mut s, b"a", b"1")[..], b"OK:new");
        assert_eq!(&put(&mut s, b"a", b"2")[..], b"OK:replaced");
        let got = s.execute(ClientId(1), &KvsOp::Get { key: b"a".to_vec() }.encode());
        assert_eq!(&got[..], b"2");
        let del = s.execute(ClientId(1), &KvsOp::Delete { key: b"a".to_vec() }.encode());
        assert_eq!(&del[..], b"OK:deleted");
        let miss = s.execute(ClientId(1), &KvsOp::Get { key: b"a".to_vec() }.encode());
        assert_eq!(&miss[..], b"ERR:not-found");
        assert!(s.is_empty());
    }

    #[test]
    fn malformed_payload_is_rejected_not_fatal() {
        let mut s = KvsService::new();
        let r = s.execute(ClientId(1), b"\xFFgarbage");
        assert_eq!(&r[..], b"ERR:malformed");
    }

    #[test]
    fn snapshot_roundtrip_preserves_map_and_ballast() {
        let mut a = KvsService::with_ballast(1000);
        put(&mut a, b"x", b"42");
        put(&mut a, b"y", &[9; 300]);
        let snap = a.snapshot();
        let mut b = KvsService::new();
        b.install(&snap);
        assert_eq!(b.get(b"x"), Some(&b"42"[..]));
        assert_eq!(b.len(), 2);
        assert_eq!(b.state_size(), a.state_size());
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn state_size_tracks_mutations() {
        let mut s = KvsService::new();
        assert_eq!(s.state_size(), 0);
        put(&mut s, b"k", &[0; 100]);
        assert_eq!(s.state_size(), 101);
        put(&mut s, b"k", &[0; 50]); // overwrite shrinks
        assert_eq!(s.state_size(), 51);
        s.execute(ClientId(1), &KvsOp::Delete { key: b"k".to_vec() }.encode());
        assert_eq!(s.state_size(), 0);
        let big = KvsService::with_ballast(500);
        assert_eq!(big.state_size(), 500);
    }
}
