//! `lazarus-obs` — deterministic metrics and tracing for the Lazarus
//! reproduction.
//!
//! The crate has three parts:
//!
//! * [`metrics`] — a [`Registry`] of lock-cheap [`Counter`]s, [`Gauge`]s,
//!   and fixed-bucket log₂-scale [`Histogram`]s, snapshotable to a
//!   Prometheus-style text exposition and to JSON (the `*_metrics.json`
//!   files the figure harnesses write).
//! * [`trace`] — a [`Tracer`] recording spans and key/value events into a
//!   bounded ring buffer with pluggable [`Sink`]s (stderr, JSONL file,
//!   in-memory for tests).
//! * [`causal`] — cross-replica causal tracing: the [`TraceCtx`] carried
//!   on the wire and the bounded per-replica [`FlightRecorder`] of
//!   protocol events, with fully deterministic ID allocation.
//! * [`profile`] — scoped hierarchical phase timers with dual (sim-time +
//!   wall-clock) attribution, folded-stack/JSON export, and the
//!   [`QueueSample`] queue/backpressure record.
//!
//! Every timestamp flows through the injected [`Clock`] trait
//! ([`clock`]): the discrete-event testbed passes its [`ManualClock`]
//! driven by sim-time, so a fixed-seed run's traces and snapshots are
//! byte-identical at any `LAZARUS_THREADS` setting; the threaded runtime
//! passes a [`WallClock`].
//!
//! Determinism contract: counter adds and histogram observations commute,
//! so they may be recorded from parallel workers; gauges are last-write-wins
//! and must only be set from deterministic (single-threaded) sections.
//!
//! Zero dependencies by design — this crate sits under every other crate in
//! the workspace and must not disturb the offline build.

pub mod causal;
pub mod clock;
pub mod health;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use causal::{slot_trace_id, EventKind, FlightEvent, FlightRecorder, TraceCtx, NO_SPAN};
pub use clock::{Clock, ManualClock, NullClock, WallClock};
pub use health::{
    AnomalyKind, HealthConfig, HealthSnapshot, HealthTracker, ReplicaHealth, RollingWindow,
    WindowStats,
};
pub use metrics::{
    bucket_bound, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot,
    HISTOGRAM_BUCKETS,
};
pub use profile::{escape_frame, Frame, Profile, Profiler, QueueSample, Scope, PROFILE_SCHEMA};
pub use trace::{
    FieldValue, JsonlSink, MemorySink, Sink, SpanGuard, StderrSink, TraceEvent, TraceKind, Tracer,
};

use std::sync::Arc;

/// The registry + tracer pair most call sites thread around together.
///
/// Cloning shares both. [`Obs::noop`] gives a disabled bundle whose
/// per-event cost is one atomic load — the default when a component is not
/// being observed.
#[derive(Debug, Clone)]
pub struct Obs {
    /// Shared metric registry.
    pub registry: Registry,
    /// Shared tracer.
    pub tracer: Tracer,
    clock: Arc<dyn Clock>,
}

impl Obs {
    /// An enabled bundle timestamping from `clock`.
    #[must_use]
    pub fn new(clock: Arc<dyn Clock>) -> Obs {
        Obs { registry: Registry::new(), tracer: Tracer::new(Arc::clone(&clock)), clock }
    }

    /// An enabled bundle on the frozen [`NullClock`] — for pure-CPU
    /// harnesses where only counters/histograms matter, not time.
    #[must_use]
    pub fn unclocked() -> Obs {
        Obs::new(Arc::new(NullClock))
    }

    /// A disabled bundle: metrics still work if touched, but tracing is
    /// off and the clock is frozen.
    #[must_use]
    pub fn noop() -> Obs {
        Obs { registry: Registry::new(), tracer: Tracer::disabled(), clock: Arc::new(NullClock) }
    }

    /// The injected clock.
    #[must_use]
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Current time in microseconds from the injected clock.
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        self.clock.now_micros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_bundle_shares_registry_across_clones() {
        let obs = Obs::unclocked();
        let clone = obs.clone();
        obs.registry.counter("x").inc();
        assert_eq!(clone.registry.counter("x").get(), 1);
    }

    #[test]
    fn noop_bundle_is_silent() {
        let obs = Obs::noop();
        obs.tracer.event("e", vec![]);
        assert!(obs.tracer.recent().is_empty());
        assert_eq!(obs.now_micros(), 0);
    }

    #[test]
    fn manual_clock_drives_obs_time() {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::new(Arc::clone(&clock) as Arc<dyn Clock>);
        clock.set(777);
        assert_eq!(obs.now_micros(), 777);
    }
}
