//! Deterministic hierarchical profiler with dual-clock attribution, plus
//! the queue/backpressure sample record the testbed and runtime emit.
//!
//! # Dual-clock attribution
//!
//! Every frame accumulates two costs:
//!
//! * `sim_us` — virtual time from the injected [`Clock`]. In the
//!   discrete-event testbed the [`ManualClock`] is frozen while a handler
//!   runs, so scope deltas are zero there; the testbed instead charges its
//!   *modeled* processing costs explicitly via [`Profiler::add`]. The
//!   result is a profile that is a pure function of the event schedule —
//!   byte-identical at any `LAZARUS_THREADS` setting.
//! * `wall_ns` — real elapsed time from [`Instant`]. This is where actual
//!   CPU cost shows up, and it is deliberately *excluded* from
//!   [`Profile::deterministic_json`] and [`Profile::folded`] so the
//!   deterministic artifacts stay comparable while the full
//!   [`Profile::to_json`] remains available for local investigation.
//!
//! # Self-time frames
//!
//! Frames store **self** time, not inclusive time. A [`Scope`] tracks the
//! inclusive time of its children through shared accumulators handed to
//! each child, and on drop charges `inclusive − children` to its own
//! frame. For well-nested scopes the folded output therefore conserves
//! counts exactly: the sum of all self times equals the sum of root
//! inclusive times, which is what flamegraph renderers assume.
//!
//! # Folded output
//!
//! [`Profile::folded`] renders the classic collapsed-stack format —
//! `frame;frame;frame <count>` per line, count = `sim_us` — loadable by
//! inferno / `flamegraph.pl` directly. Frame names are escaped on entry
//! ([`escape_frame`]): `;` and whitespace/control characters become `_`
//! so a hostile name cannot forge stack separators or line breaks.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::clock::{Clock, NullClock};
use crate::metrics::json_string;

/// Schema tag stamped into every profile JSON.
pub const PROFILE_SCHEMA: &str = "lazarus-profile-v1";

/// Accumulated cost of one stack path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Frame {
    /// Times the path was entered (scope drops + explicit charges).
    pub calls: u64,
    /// Deterministic virtual self-time, microseconds.
    pub sim_us: u64,
    /// Wall-clock self-time, nanoseconds. Real CPU cost; never part of
    /// the deterministic artifacts.
    pub wall_ns: u64,
}

struct ProfilerInner {
    frames: Mutex<BTreeMap<String, Frame>>,
    clock: Arc<dyn Clock>,
}

impl std::fmt::Debug for ProfilerInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfilerInner").finish_non_exhaustive()
    }
}

/// Shared profile accumulator. Cloning shares the underlying frame map,
/// so one profiler can be attached to many replicas / clusters and still
/// produce a single merged profile.
#[derive(Debug, Clone)]
pub struct Profiler {
    inner: Arc<ProfilerInner>,
}

impl Profiler {
    /// A profiler timestamping virtual time from `clock`.
    #[must_use]
    pub fn new(clock: Arc<dyn Clock>) -> Profiler {
        Profiler { inner: Arc::new(ProfilerInner { frames: Mutex::new(BTreeMap::new()), clock }) }
    }

    /// A profiler on the frozen [`NullClock`]: scope `sim_us` deltas are
    /// zero and all virtual cost comes from [`Profiler::add`] charges.
    #[must_use]
    pub fn unclocked() -> Profiler {
        Profiler::new(Arc::new(NullClock))
    }

    /// Opens a root scope at the escaped, `;`-joined `frames` path.
    /// Dropping the returned guard charges the frame.
    #[must_use]
    pub fn scope(&self, frames: &[&str]) -> Scope {
        Scope::open(self.clone(), join_frames(frames), None)
    }

    /// Charges an explicit modeled cost to a path: one call and `sim_us`
    /// of virtual self-time. This is how the discrete-event testbed
    /// attributes its processing-station costs, since its clock is frozen
    /// while handlers run.
    pub fn add(&self, frames: &[&str], sim_us: u64) {
        self.charge(&join_frames(frames), 1, sim_us, 0);
    }

    fn charge(&self, path: &str, calls: u64, sim_us: u64, wall_ns: u64) {
        let mut map = self.inner.frames.lock().unwrap_or_else(|e| e.into_inner());
        let frame = map.entry(path.to_string()).or_default();
        frame.calls += calls;
        frame.sim_us += sim_us;
        frame.wall_ns += wall_ns;
    }

    /// A point-in-time copy of every accumulated frame, sorted by path.
    #[must_use]
    pub fn snapshot(&self) -> Profile {
        let map = self.inner.frames.lock().unwrap_or_else(|e| e.into_inner());
        Profile { frames: map.iter().map(|(k, v)| (k.clone(), *v)).collect() }
    }
}

/// Escapes one frame name for the folded-stack format: `;` (the stack
/// separator) and all whitespace/control characters become `_`; an empty
/// name becomes `?` so it stays visible in the collapsed output.
#[must_use]
pub fn escape_frame(name: &str) -> String {
    if name.is_empty() {
        return "?".to_string();
    }
    name.chars()
        .map(|c| if c == ';' || c.is_whitespace() || c.is_control() { '_' } else { c })
        .collect()
}

fn join_frames(frames: &[&str]) -> String {
    if frames.is_empty() {
        return "?".to_string();
    }
    let mut path = String::new();
    for (i, f) in frames.iter().enumerate() {
        if i > 0 {
            path.push(';');
        }
        path.push_str(&escape_frame(f));
    }
    path
}

/// RAII phase timer. Obtain roots from [`Profiler::scope`] and nest with
/// [`Scope::child`]; the drop order of well-nested scopes makes frame
/// self-times conserve counts (see module docs).
///
/// Scopes hold no borrows — children keep `Arc` handles to the parent's
/// child-time accumulators — so they can be stored in structs and vectors.
#[derive(Debug)]
pub struct Scope {
    prof: Profiler,
    path: String,
    sim_start: u64,
    wall_start: Instant,
    child_sim: Arc<AtomicU64>,
    child_wall: Arc<AtomicU64>,
    parent: Option<(Arc<AtomicU64>, Arc<AtomicU64>)>,
}

impl Scope {
    fn open(
        prof: Profiler,
        path: String,
        parent: Option<(Arc<AtomicU64>, Arc<AtomicU64>)>,
    ) -> Scope {
        let sim_start = prof.inner.clock.now_micros();
        Scope {
            prof,
            path,
            sim_start,
            wall_start: Instant::now(),
            child_sim: Arc::new(AtomicU64::new(0)),
            child_wall: Arc::new(AtomicU64::new(0)),
            parent,
        }
    }

    /// Opens a child scope one frame deeper. The child's inclusive time is
    /// subtracted from this scope's self-time when both have dropped.
    #[must_use]
    pub fn child(&self, name: &str) -> Scope {
        let mut path = String::with_capacity(self.path.len() + name.len() + 1);
        path.push_str(&self.path);
        path.push(';');
        path.push_str(&escape_frame(name));
        Scope::open(
            self.prof.clone(),
            path,
            Some((Arc::clone(&self.child_sim), Arc::clone(&self.child_wall))),
        )
    }

    /// The escaped `;`-joined path this scope charges.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        let incl_sim = self.prof.inner.clock.now_micros().saturating_sub(self.sim_start);
        let incl_wall = u64::try_from(self.wall_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let self_sim = incl_sim.saturating_sub(self.child_sim.load(Ordering::Relaxed));
        let self_wall = incl_wall.saturating_sub(self.child_wall.load(Ordering::Relaxed));
        self.prof.charge(&self.path, 1, self_sim, self_wall);
        if let Some((sim, wall)) = &self.parent {
            sim.fetch_add(incl_sim, Ordering::Relaxed);
            wall.fetch_add(incl_wall, Ordering::Relaxed);
        }
    }
}

/// A point-in-time profile snapshot: `(path, frame)` pairs sorted by path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Escaped `;`-joined stack paths with their accumulated frames.
    pub frames: Vec<(String, Frame)>,
}

impl Profile {
    /// Collapsed-stack text (`stack count` per line, count = `sim_us`),
    /// loadable by inferno/`flamegraph.pl`. Zero-cost paths are omitted —
    /// a flamegraph renders samples, and a frame with no virtual time has
    /// none to show.
    #[must_use]
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, frame) in &self.frames {
            if frame.sim_us > 0 {
                let _ = writeln!(out, "{path} {}", frame.sim_us);
            }
        }
        out
    }

    /// Full JSON profile including wall-clock self-times.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.render_json(true)
    }

    /// JSON profile restricted to the deterministic fields (`calls`,
    /// `sim_us`) — byte-identical across reruns and thread counts.
    #[must_use]
    pub fn deterministic_json(&self) -> String {
        self.render_json(false)
    }

    fn render_json(&self, wall: bool) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"schema\":{},\"frames\":[", json_string(PROFILE_SCHEMA));
        for (i, (path, frame)) in self.frames.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stack\":{},\"calls\":{},\"sim_us\":{}",
                json_string(path),
                frame.calls,
                frame.sim_us
            );
            if wall {
                let _ = write!(out, ",\"wall_ns\":{}", frame.wall_ns);
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Total virtual self-time over all frames, microseconds.
    #[must_use]
    pub fn total_sim_us(&self) -> u64 {
        self.frames.iter().map(|(_, f)| f.sim_us).sum()
    }

    /// Total wall-clock self-time over all frames, nanoseconds.
    #[must_use]
    pub fn total_wall_ns(&self) -> u64 {
        self.frames.iter().map(|(_, f)| f.wall_ns).sum()
    }
}

/// One periodic queue/backpressure observation of one replica.
///
/// The testbed samples these on its existing health tick (no new events
/// are scheduled, so enabling sampling cannot perturb event interleaving)
/// and the threaded runtime samples its real inbox; both also mirror the
/// values into `lazarus_queue_*` gauges. [`QueueSample::to_jsonl`] is the
/// line format of `queues.jsonl`, which `trace_analyze` merges into the
/// Perfetto trace as counter tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueSample {
    /// Sample timestamp, microseconds on the injected clock.
    pub at_us: u64,
    /// Replica the sample describes.
    pub node: u32,
    /// Messages scheduled for delivery but not yet processed (sim), or
    /// channel length (threaded runtime).
    pub inbox: u64,
    /// Client requests queued but not yet proposed.
    pub pending: u64,
    /// Consensus instances open above the last decided slot.
    pub decided_gap: u64,
    /// Requests taken into the most recent proposal by this replica.
    pub batch_fill: u64,
}

impl QueueSample {
    /// The `queues.jsonl` line for this sample (no trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"at_us\":{},\"node\":{},\"inbox\":{},\"pending\":{},\"decided_gap\":{},\"batch_fill\":{}}}",
            self.at_us, self.node, self.inbox, self.pending, self.decided_gap, self.batch_fill
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn frame(prof: &Profile, path: &str) -> Frame {
        prof.frames
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, f)| *f)
            .unwrap_or_else(|| panic!("no frame {path}"))
    }

    #[test]
    fn scopes_charge_self_time_not_inclusive() {
        let clock = Arc::new(ManualClock::new());
        let prof = Profiler::new(clock.clone());
        {
            let root = prof.scope(&["root"]);
            clock.set(10);
            {
                let _child = root.child("inner");
                clock.set(35);
            }
            clock.set(40);
        }
        let snap = prof.snapshot();
        assert_eq!(frame(&snap, "root").sim_us, 15, "40 total minus 25 in the child");
        assert_eq!(frame(&snap, "root;inner").sim_us, 25);
        assert_eq!(snap.total_sim_us(), 40, "self times conserve the root inclusive time");
    }

    #[test]
    fn add_merges_with_scope_charges() {
        let prof = Profiler::unclocked();
        prof.add(&["root", "recv"], 7);
        prof.add(&["root", "recv"], 3);
        drop(prof.scope(&["root", "recv"]));
        let snap = prof.snapshot();
        let f = frame(&snap, "root;recv");
        assert_eq!(f.calls, 3);
        assert_eq!(f.sim_us, 10);
    }

    #[test]
    fn escaping_keeps_folded_lines_parseable() {
        assert_eq!(escape_frame("a;b c\nd"), "a_b_c_d");
        assert_eq!(escape_frame(""), "?");
        let prof = Profiler::unclocked();
        prof.add(&["weird; name", "tab\there"], 5);
        let folded = prof.snapshot().folded();
        assert_eq!(folded, "weird__name;tab_here 5\n");
    }

    #[test]
    fn folded_omits_zero_cost_frames() {
        let prof = Profiler::unclocked();
        prof.add(&["hot"], 9);
        drop(prof.scope(&["cold"])); // NullClock: zero sim delta
        assert_eq!(prof.snapshot().folded(), "hot 9\n");
    }

    #[test]
    fn json_is_sorted_and_schema_versioned() {
        let prof = Profiler::unclocked();
        prof.add(&["b"], 2);
        prof.add(&["a"], 1);
        let det = prof.snapshot().deterministic_json();
        assert!(det.starts_with("{\"schema\":\"lazarus-profile-v1\""));
        assert!(det.find("\"stack\":\"a\"").unwrap() < det.find("\"stack\":\"b\"").unwrap());
        assert!(!det.contains("wall_ns"));
        assert!(prof.snapshot().to_json().contains("wall_ns"));
    }

    #[test]
    fn shared_profiler_merges_across_clones() {
        let prof = Profiler::unclocked();
        let other = prof.clone();
        prof.add(&["x"], 1);
        other.add(&["x"], 2);
        assert_eq!(frame(&prof.snapshot(), "x").sim_us, 3);
    }

    #[test]
    fn queue_sample_jsonl_shape() {
        let s = QueueSample {
            at_us: 250_000,
            node: 3,
            inbox: 4,
            pending: 17,
            decided_gap: 2,
            batch_fill: 16,
        };
        assert_eq!(
            s.to_jsonl(),
            "{\"at_us\":250000,\"node\":3,\"inbox\":4,\"pending\":17,\"decided_gap\":2,\"batch_fill\":16}"
        );
    }
}
