//! `obs::health` — deterministic streaming health scores per replica.
//!
//! A [`HealthTracker`] folds the raw per-replica signals the rest of the
//! observability stack already produces (commit latencies, per-phase
//! critical-path time, rejected-message and help-revote rates, view-change
//! participation, CST activity, last-activity timestamps) into
//! ring-buffered [`RollingWindow`]s over the injected
//! [`Clock`](crate::Clock), and reduces them on demand into a versioned
//! [`ReplicaHealth`] score with explainable sub-scores. An online anomaly
//! detector runs at every [`HealthTracker::snapshot`] and raises
//! edge-triggered [`AnomalyKind`]s (leader stall, latency inflation,
//! silence) as `health.anomaly` trace events plus
//! `health_anomalies_total{kind=…}` counters; per-replica gauges land under
//! `lazarus_health_*`.
//!
//! Determinism contract: every timestamp comes from the injected clock and
//! every reduction is integer arithmetic over the recorded multiset, so a
//! fixed-seed simulation produces byte-identical snapshots at any
//! `LAZARUS_THREADS` setting. The streaming fold path is panic-free by
//! construction — no `unwrap()` (a CI grep gate holds this line): stale or
//! out-of-order timestamps are clamped, empty windows reduce to `None`
//! percentiles, and missing replicas are registered on first touch.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::clock::Clock;
use crate::metrics::{bucket_bound, bucket_index, HISTOGRAM_BUCKETS};
use crate::trace::FieldValue;
use crate::Obs;

/// Sub-score and composite score ceiling (scores are integer permille).
pub const SCORE_MAX: u32 = 1000;

/// The consensus phases whose critical-path share the tracker accounts.
pub const PHASES: [&str; 3] = ["propose", "write", "accept"];

/// One time bucket of a [`RollingWindow`]: a count/sum pair plus the same
/// log₂ histogram layout the metrics registry uses, so window percentiles
/// and registry percentiles agree bucket-for-bucket.
#[derive(Debug, Clone)]
struct WindowBucket {
    count: u64,
    sum: u64,
    hist: [u64; HISTOGRAM_BUCKETS],
}

impl WindowBucket {
    fn empty() -> WindowBucket {
        WindowBucket { count: 0, sum: 0, hist: [0; HISTOGRAM_BUCKETS] }
    }

    fn clear(&mut self) {
        self.count = 0;
        self.sum = 0;
        self.hist = [0; HISTOGRAM_BUCKETS];
    }
}

/// A ring of time buckets over the injected clock: samples land in the
/// bucket owning their timestamp, buckets older than the window are evicted
/// lazily as time advances, and [`RollingWindow::fold`] reduces the ring to
/// one [`WindowStats`].
///
/// The fold/evict path never panics: time running backwards is clamped to
/// the current head bucket, and a jump farther than the whole window simply
/// clears every bucket.
#[derive(Debug, Clone)]
pub struct RollingWindow {
    bucket_us: u64,
    buckets: Vec<WindowBucket>,
    /// Absolute index (`now / bucket_us`) of the bucket currently at head;
    /// `None` until the first sample or advance.
    head: Option<u64>,
}

impl RollingWindow {
    /// A window spanning `window_us`, bucketed at `bucket_us` granularity.
    /// Both are clamped to at least 1 µs; the ring holds at least one
    /// bucket.
    #[must_use]
    pub fn new(window_us: u64, bucket_us: u64) -> RollingWindow {
        let bucket_us = bucket_us.max(1);
        let len = (window_us.max(1) / bucket_us).max(1) as usize;
        RollingWindow { bucket_us, buckets: vec![WindowBucket::empty(); len], head: None }
    }

    /// The window span in microseconds.
    #[must_use]
    pub fn window_us(&self) -> u64 {
        self.bucket_us * self.buckets.len() as u64
    }

    /// Records `value` at `now_us`, evicting buckets that fell out of the
    /// window. Timestamps earlier than the current head are folded into the
    /// head bucket (the clock contract is monotone; a stale producer must
    /// not corrupt the ring).
    pub fn observe(&mut self, now_us: u64, value: u64) {
        let idx = self.advance_to(now_us);
        let slot = (idx % self.buckets.len() as u64) as usize;
        if let Some(bucket) = self.buckets.get_mut(slot) {
            bucket.count += 1;
            bucket.sum += value;
            bucket.hist[bucket_index(value)] += 1;
        }
    }

    /// Advances the eviction horizon to `now_us` without recording a
    /// sample; returns the head's absolute bucket index.
    pub fn advance_to(&mut self, now_us: u64) -> u64 {
        let idx = now_us / self.bucket_us;
        let head = match self.head {
            None => {
                self.head = Some(idx);
                return idx;
            }
            Some(head) => head,
        };
        if idx <= head {
            // Monotone clamp: late samples join the newest bucket.
            return head;
        }
        let len = self.buckets.len() as u64;
        let steps = (idx - head).min(len);
        for step in 1..=steps {
            let slot = ((head + step) % len) as usize;
            if let Some(bucket) = self.buckets.get_mut(slot) {
                bucket.clear();
            }
        }
        self.head = Some(idx);
        idx
    }

    /// Reduces the live buckets to one [`WindowStats`].
    #[must_use]
    pub fn fold(&self) -> WindowStats {
        let mut stats = WindowStats::empty();
        for bucket in &self.buckets {
            stats.count += bucket.count;
            stats.sum += bucket.sum;
            for (i, n) in bucket.hist.iter().enumerate() {
                stats.hist[i] += n;
            }
        }
        stats
    }
}

/// The fold of one [`RollingWindow`]: sample count, sum, and the merged
/// log₂ histogram, with integer nearest-rank percentiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowStats {
    /// Samples currently inside the window.
    pub count: u64,
    /// Sum of those samples.
    pub sum: u64,
    hist: [u64; HISTOGRAM_BUCKETS],
}

impl WindowStats {
    fn empty() -> WindowStats {
        WindowStats { count: 0, sum: 0, hist: [0; HISTOGRAM_BUCKETS] }
    }

    /// Nearest-rank quantile at `q_permille` (e.g. 990 = p99): the upper
    /// bound of the histogram bucket containing the `⌈q·count/1000⌉`-th
    /// smallest sample. `None` when the window is empty. Pure integer
    /// arithmetic — byte-stable across platforms and thread counts.
    #[must_use]
    pub fn quantile_permille(&self, q_permille: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q_permille.min(1000);
        let rank = (self.count * q).div_ceil(1000).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.hist.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_bound(i));
            }
        }
        Some(bucket_bound(HISTOGRAM_BUCKETS - 1))
    }

    /// Integer mean of the window (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<u64> {
        self.sum.checked_div(self.count)
    }
}

/// What the online detector can flag on a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnomalyKind {
    /// The current leader has stopped moving slots: no commit anywhere in
    /// the cluster (or an open proposal) for longer than
    /// [`HealthConfig::stall_after_us`].
    LeaderStall,
    /// Windowed commit-latency p99 beyond
    /// [`HealthConfig::inflation_factor`] × the latency target.
    LatencyInflation,
    /// No traffic observed from the replica for longer than
    /// [`HealthConfig::silence_after_us`].
    Silence,
}

impl AnomalyKind {
    /// Every kind, in declaration order (the `kind=` label vocabulary).
    pub const ALL: [AnomalyKind; 3] =
        [AnomalyKind::LeaderStall, AnomalyKind::LatencyInflation, AnomalyKind::Silence];

    /// The stable label value used in metrics and trace events.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AnomalyKind::LeaderStall => "leader-stall",
            AnomalyKind::LatencyInflation => "latency-inflation",
            AnomalyKind::Silence => "silence",
        }
    }

    fn bit(self) -> u8 {
        match self {
            AnomalyKind::LeaderStall => 1,
            AnomalyKind::LatencyInflation => 2,
            AnomalyKind::Silence => 4,
        }
    }
}

impl std::fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tuning of the streaming aggregation and the anomaly detector.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Rolling-window span for every folded signal.
    pub window_us: u64,
    /// Ring-bucket granularity inside the window.
    pub bucket_us: u64,
    /// Commit-latency p99 at (or below) which the latency sub-score is
    /// perfect.
    pub target_p99_us: u64,
    /// p99 ≥ `inflation_factor × target_p99_us` raises
    /// [`AnomalyKind::LatencyInflation`].
    pub inflation_factor: u64,
    /// No traffic from a replica for this long raises
    /// [`AnomalyKind::Silence`] (and zeroes its liveness sub-score).
    pub silence_after_us: u64,
    /// No commit anywhere (or a proposal left open) for this long raises
    /// [`AnomalyKind::LeaderStall`] on the current leader. Keep it below
    /// the protocol's own view-change latency, or the watchdog heals the
    /// cluster before the detector ever names the culprit.
    pub stall_after_us: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            window_us: 500_000,
            bucket_us: 100_000,
            target_p99_us: 10_000,
            inflation_factor: 4,
            silence_after_us: 400_000,
            stall_after_us: 300_000,
        }
    }
}

/// One replica's reduced health at a snapshot version: the composite score,
/// the three explainable sub-scores it was folded from, and the windowed
/// evidence behind them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaHealth {
    /// Replica id.
    pub replica: u32,
    /// Snapshot version this reduction belongs to.
    pub version: u64,
    /// Composite score, 0..=[`SCORE_MAX`]: `(4·latency + 3·stability +
    /// 3·liveness) / 10`.
    pub score: u32,
    /// Commit-latency sub-score (p99 against the target).
    pub latency_score: u32,
    /// Protocol-stability sub-score (view changes, CSTs, rejects,
    /// help-revotes charged against the replica).
    pub stability_score: u32,
    /// Recency-of-activity sub-score (decays over the silence horizon).
    pub liveness_score: u32,
    /// Windowed commit-latency percentiles (`None` = no commits in
    /// window).
    pub p50_us: Option<u64>,
    /// p95 of the same window.
    pub p95_us: Option<u64>,
    /// p99 of the same window.
    pub p99_us: Option<u64>,
    /// Share of the propose→commit critical path spent in each consensus
    /// phase, permille of the summed phase time (all zero when no slot
    /// completed in the window). Order follows [`PHASES`].
    pub phase_share_permille: [u32; 3],
    /// Commits folded into the window.
    pub commits: u64,
    /// Rejected messages charged to this replica in the window.
    pub rejects: u64,
    /// Help re-votes it needed in the window.
    pub help_revotes: u64,
    /// View changes it participated in inside the window.
    pub view_changes: u64,
    /// State-transfer completions inside the window.
    pub cst_ops: u64,
    /// Anomalies active at this snapshot, in [`AnomalyKind::ALL`] order.
    pub anomalies: Vec<AnomalyKind>,
}

impl ReplicaHealth {
    /// True when the detector currently flags the replica.
    #[must_use]
    pub fn anomalous(&self) -> bool {
        !self.anomalies.is_empty()
    }

    fn to_json_inner(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"replica\":{},\"version\":{},\"score\":{},\"latency_score\":{},\
             \"stability_score\":{},\"liveness_score\":{}",
            self.replica,
            self.version,
            self.score,
            self.latency_score,
            self.stability_score,
            self.liveness_score
        );
        for (key, v) in [("p50_us", self.p50_us), ("p95_us", self.p95_us), ("p99_us", self.p99_us)]
        {
            match v {
                Some(v) => {
                    let _ = write!(out, ",\"{key}\":{v}");
                }
                None => {
                    let _ = write!(out, ",\"{key}\":null");
                }
            }
        }
        let _ = write!(
            out,
            ",\"phase_share_permille\":[{},{},{}]",
            self.phase_share_permille[0],
            self.phase_share_permille[1],
            self.phase_share_permille[2]
        );
        let _ = write!(
            out,
            ",\"commits\":{},\"rejects\":{},\"help_revotes\":{},\"view_changes\":{},\
             \"cst_ops\":{}",
            self.commits, self.rejects, self.help_revotes, self.view_changes, self.cst_ops
        );
        out.push_str(",\"anomalies\":[");
        for (i, kind) in self.anomalies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{kind}\"");
        }
        out.push_str("]}");
    }
}

/// A versioned, id-sorted reduction of every tracked replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Monotone snapshot version (bumped per [`HealthTracker::snapshot`]).
    pub version: u64,
    /// Clock time the reduction ran at.
    pub at_us: u64,
    /// The leader of the highest view any replica reported.
    pub leader: Option<u32>,
    /// Per-replica health, sorted by replica id.
    pub replicas: Vec<ReplicaHealth>,
}

impl HealthSnapshot {
    /// The entry for `replica`, if tracked.
    #[must_use]
    pub fn replica(&self, replica: u32) -> Option<&ReplicaHealth> {
        self.replicas.iter().find(|r| r.replica == replica)
    }

    /// One-line deterministic JSON rendering (byte-comparable across
    /// reruns and `LAZARUS_THREADS` settings).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + 256 * self.replicas.len());
        let _ = write!(out, "{{\"version\":{},\"at_us\":{}", self.version, self.at_us);
        match self.leader {
            Some(leader) => {
                let _ = write!(out, ",\"leader\":{leader}");
            }
            None => out.push_str(",\"leader\":null"),
        }
        out.push_str(",\"replicas\":[");
        for (i, replica) in self.replicas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            replica.to_json_inner(&mut out);
        }
        out.push_str("]}");
        out
    }
}

#[derive(Debug)]
struct ReplicaState {
    commit_latency_us: RollingWindow,
    phase_us: [RollingWindow; 3],
    rejects: RollingWindow,
    help_revotes: RollingWindow,
    view_changes: RollingWindow,
    cst: RollingWindow,
    last_seen_us: Option<u64>,
    registered_at_us: u64,
    /// Open proposals this replica has observed: slot → opened-at.
    open_proposals: BTreeMap<u64, u64>,
    /// Bitmask of currently active anomalies (edge-trigger memory).
    active: u8,
}

impl ReplicaState {
    fn new(cfg: &HealthConfig, now_us: u64) -> ReplicaState {
        let window = || RollingWindow::new(cfg.window_us, cfg.bucket_us);
        ReplicaState {
            commit_latency_us: window(),
            phase_us: [window(), window(), window()],
            rejects: window(),
            help_revotes: window(),
            view_changes: window(),
            cst: window(),
            last_seen_us: None,
            registered_at_us: now_us,
            open_proposals: BTreeMap::new(),
            active: 0,
        }
    }
}

#[derive(Debug)]
struct TrackerInner {
    replicas: BTreeMap<u32, ReplicaState>,
    version: u64,
    started_at_us: u64,
    /// Highest view any replica reported installed, and its leader.
    cur_view: u64,
    leader: Option<u32>,
    last_commit_us: Option<u64>,
}

/// The streaming aggregation layer: producers push raw signals, consumers
/// pull versioned [`HealthSnapshot`]s.
///
/// Cheap to clone via [`Arc`]; interior mutability makes every producer
/// hook `&self`. Under the discrete-event testbed all calls happen on one
/// thread in virtual-time order, so snapshots are a pure function of the
/// seed; under the threaded runtime the mutex serializes producers and the
/// scores are best-effort wall-clock telemetry.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    inner: Arc<Mutex<TrackerInner>>,
    clock: Arc<dyn Clock>,
    obs: Obs,
    cfg: HealthConfig,
}

impl HealthTracker {
    /// A tracker clocked and metered by `obs`. Pre-registers the
    /// `health_anomalies_total{kind=…}` counters (so they exist at zero)
    /// and the `lazarus_health_*` family help texts.
    #[must_use]
    pub fn new(cfg: HealthConfig, obs: &Obs) -> HealthTracker {
        let registry = &obs.registry;
        for kind in AnomalyKind::ALL {
            registry.counter_with("health_anomalies_total", &[("kind", kind.as_str())]);
        }
        registry.describe("health_anomalies_total", "Anomaly onsets flagged by the detector.");
        registry.describe("lazarus_health_score", "Composite replica health (0-1000 permille).");
        registry.describe("lazarus_health_p99_us", "Windowed commit-latency p99 per replica.");
        registry.describe("lazarus_health_snapshots_total", "Health reductions taken.");
        let now = obs.now_micros();
        HealthTracker {
            inner: Arc::new(Mutex::new(TrackerInner {
                replicas: BTreeMap::new(),
                version: 0,
                started_at_us: now,
                cur_view: 0,
                leader: None,
                last_commit_us: None,
            })),
            clock: Arc::clone(obs.clock()),
            obs: obs.clone(),
            cfg,
        }
    }

    /// The tracker's configuration.
    #[must_use]
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, TrackerInner> {
        // A producer panicking mid-update cannot leave half-updated window
        // arithmetic (all folds are per-field), so a poisoned lock is safe
        // to keep using — health must never take the data plane down.
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn state<'a>(
        inner: &'a mut TrackerInner,
        cfg: &HealthConfig,
        replica: u32,
        now: u64,
    ) -> &'a mut ReplicaState {
        inner.replicas.entry(replica).or_insert_with(|| ReplicaState::new(cfg, now))
    }

    /// Declares `replica` tracked, reporting the view it starts in and that
    /// view's leader.
    pub fn register(&self, replica: u32, view: u64, leader: u32) {
        let now = self.clock.now_micros();
        let mut inner = self.locked();
        Self::state(&mut inner, &self.cfg, replica, now);
        if inner.leader.is_none() || view > inner.cur_view {
            inner.cur_view = view;
            inner.leader = Some(leader);
        }
    }

    /// Any traffic from `replica` hit the wire (silence detector food).
    pub fn seen(&self, replica: u32) {
        let now = self.clock.now_micros();
        let mut inner = self.locked();
        Self::state(&mut inner, &self.cfg, replica, now).last_seen_us = Some(now);
    }

    /// `replica` accepted a proposal for `seq` (opens the stall clock on
    /// that slot).
    pub fn proposal_open(&self, replica: u32, seq: u64) {
        let now = self.clock.now_micros();
        let mut inner = self.locked();
        let state = Self::state(&mut inner, &self.cfg, replica, now);
        state.open_proposals.entry(seq).or_insert(now);
    }

    /// `replica` decided slot `seq` with the given propose→decide latency.
    pub fn commit(&self, replica: u32, seq: u64, latency_us: u64) {
        let now = self.clock.now_micros();
        let mut inner = self.locked();
        inner.last_commit_us = Some(now);
        let state = Self::state(&mut inner, &self.cfg, replica, now);
        state.commit_latency_us.observe(now, latency_us);
        // Deciding is ingress-driven (a quorum of *other* replicas' votes
        // arrived) — deliberately NOT silence-detector food: a mute replica
        // still receives and decides, and only [`HealthTracker::seen`]
        // (egress hitting the wire) proves the replica is participating.
        // The decided slot (and any predecessors a CST skipped over) no
        // longer count as stalled.
        state.open_proposals.retain(|&open_seq, _| open_seq > seq);
    }

    /// Per-phase critical-path time of a decided slot on `replica`
    /// (propose→write, write→accept, accept→commit), in [`PHASES`] order.
    pub fn phases(&self, replica: u32, phase_us: [u64; 3]) {
        let now = self.clock.now_micros();
        let mut inner = self.locked();
        let state = Self::state(&mut inner, &self.cfg, replica, now);
        for (window, us) in state.phase_us.iter_mut().zip(phase_us) {
            window.observe(now, us);
        }
    }

    /// A rejected ingress message, charged to `replica` (the culprit — for
    /// proposal-fault reasons the producer charges the leader, not the
    /// honest replica that refused the message).
    pub fn reject(&self, replica: u32) {
        let now = self.clock.now_micros();
        let mut inner = self.locked();
        Self::state(&mut inner, &self.cfg, replica, now).rejects.observe(now, 1);
    }

    /// `replica` needed (or provided) a help re-vote.
    pub fn help_revote(&self, replica: u32) {
        let now = self.clock.now_micros();
        let mut inner = self.locked();
        Self::state(&mut inner, &self.cfg, replica, now).help_revotes.observe(now, 1);
    }

    /// `replica` installed `view`, whose leader is `leader`.
    pub fn view_change(&self, replica: u32, view: u64, leader: u32) {
        let now = self.clock.now_micros();
        let mut inner = self.locked();
        if view > inner.cur_view {
            inner.cur_view = view;
            inner.leader = Some(leader);
        }
        let state = Self::state(&mut inner, &self.cfg, replica, now);
        state.view_changes.observe(now, 1);
        state.last_seen_us = Some(now);
        // Slots from the dead view restart their stall clocks.
        state.open_proposals.clear();
    }

    /// `replica` completed a state transfer.
    pub fn cst(&self, replica: u32) {
        let now = self.clock.now_micros();
        let mut inner = self.locked();
        let state = Self::state(&mut inner, &self.cfg, replica, now);
        state.cst.observe(now, 1);
        state.open_proposals.clear();
    }

    /// Reduces every tracked replica to a fresh [`ReplicaHealth`], runs the
    /// anomaly detector, publishes `lazarus_health_*` gauges, counts
    /// anomaly *onsets* into `health_anomalies_total{kind=…}`, and emits a
    /// `health.anomaly` trace event per onset. Returns the versioned
    /// snapshot.
    pub fn snapshot(&self) -> HealthSnapshot {
        let now = self.clock.now_micros();
        let cfg = self.cfg.clone();
        let mut inner = self.locked();
        inner.version += 1;
        let version = inner.version;
        let leader = inner.leader;
        let started = inner.started_at_us;
        let last_commit = inner.last_commit_us;

        // Cluster-wide stall evidence: the newest of (tracker start, last
        // commit) is the last time slots demonstrably moved; any proposal
        // left open past the threshold is equivalent evidence.
        let commit_gap = now.saturating_sub(last_commit.unwrap_or(started));
        let mut oldest_open: Option<u64> = None;
        for state in inner.replicas.values() {
            if let Some((_, &opened)) = state.open_proposals.iter().next() {
                oldest_open = Some(oldest_open.map_or(opened, |cur: u64| cur.min(opened)));
            }
        }
        let open_gap = oldest_open.map_or(0, |opened| now.saturating_sub(opened));
        let stalled = commit_gap > cfg.stall_after_us || open_gap > cfg.stall_after_us;

        let mut replicas = Vec::with_capacity(inner.replicas.len());
        let mut onsets: Vec<(u32, AnomalyKind, u32)> = Vec::new();
        for (&id, state) in inner.replicas.iter_mut() {
            let latency = state.commit_latency_us.fold();
            let p50 = latency.quantile_permille(500);
            let p95 = latency.quantile_permille(950);
            let p99 = latency.quantile_permille(990);

            let target = cfg.target_p99_us.max(1);
            let latency_score = match p99 {
                None => SCORE_MAX,
                Some(p99) if p99 <= target => SCORE_MAX,
                Some(p99) => (target.saturating_mul(1000) / p99.max(1)).min(1000) as u32,
            };

            let commits_in_window = latency.count;
            let rejects = state.rejects.fold().count;
            let help_revotes = state.help_revotes.fold().count;
            let view_changes = state.view_changes.fold().count;
            let cst_ops = state.cst.fold().count;
            // One help re-vote per slot is ordinary pipeline skew (in a
            // deterministic topology the same replica decides last every
            // slot); only help *beyond* the window's commit count signals a
            // replica genuinely falling behind.
            let help_excess = help_revotes.saturating_sub(commits_in_window);
            let stability_score = SCORE_MAX
                .saturating_sub((view_changes.min(4) as u32) * 250)
                .saturating_sub((cst_ops.min(5) as u32) * 200)
                .saturating_sub(((rejects * 10).min(300)) as u32)
                .saturating_sub(((help_excess * 50).min(300)) as u32);

            let idle = now.saturating_sub(state.last_seen_us.unwrap_or(state.registered_at_us));
            let silence = cfg.silence_after_us.max(1);
            let liveness_score = if idle >= silence {
                0
            } else {
                SCORE_MAX - ((idle * 1000 / silence) as u32).min(SCORE_MAX)
            };

            let score = (4 * latency_score + 3 * stability_score + 3 * liveness_score) / 10;

            let phase_sums =
                [0usize, 1, 2].map(|i| state.phase_us.get(i).map_or(0, |w| w.fold().sum));
            let phase_total: u64 = phase_sums.iter().sum();
            let phase_share_permille = if phase_total == 0 {
                [0; 3]
            } else {
                phase_sums.map(|sum| (sum * 1000 / phase_total) as u32)
            };

            let mut flags = 0u8;
            if leader == Some(id) && stalled {
                flags |= AnomalyKind::LeaderStall.bit();
            }
            if let (Some(p99), true) = (p99, latency.count > 0) {
                if p99 >= cfg.inflation_factor.max(1).saturating_mul(target) {
                    flags |= AnomalyKind::LatencyInflation.bit();
                }
            }
            if idle >= silence {
                flags |= AnomalyKind::Silence.bit();
            }
            let anomalies: Vec<AnomalyKind> =
                AnomalyKind::ALL.into_iter().filter(|k| flags & k.bit() != 0).collect();
            for kind in &anomalies {
                if state.active & kind.bit() == 0 {
                    onsets.push((id, *kind, score));
                }
            }
            state.active = flags;

            replicas.push(ReplicaHealth {
                replica: id,
                version,
                score,
                latency_score,
                stability_score,
                liveness_score,
                p50_us: p50,
                p95_us: p95,
                p99_us: p99,
                phase_share_permille,
                commits: latency.count,
                rejects,
                help_revotes,
                view_changes,
                cst_ops,
                anomalies,
            });
        }
        drop(inner);

        let registry = &self.obs.registry;
        registry.counter("lazarus_health_snapshots_total").inc();
        let mut label = String::new();
        for health in &replicas {
            label.clear();
            let _ = write!(label, "{}", health.replica);
            registry
                .gauge_with("lazarus_health_score", &[("replica", &label)])
                .set(f64::from(health.score));
            registry
                .gauge_with("lazarus_health_latency_score", &[("replica", &label)])
                .set(f64::from(health.latency_score));
            registry
                .gauge_with("lazarus_health_stability_score", &[("replica", &label)])
                .set(f64::from(health.stability_score));
            registry
                .gauge_with("lazarus_health_liveness_score", &[("replica", &label)])
                .set(f64::from(health.liveness_score));
            registry
                .gauge_with("lazarus_health_p99_us", &[("replica", &label)])
                .set(health.p99_us.map_or(0.0, |v| v as f64));
        }
        for (replica, kind, score) in onsets {
            registry.counter_with("health_anomalies_total", &[("kind", kind.as_str())]).inc();
            self.obs.tracer.event(
                "health.anomaly",
                vec![
                    ("replica", FieldValue::from(replica)),
                    ("kind", FieldValue::from(kind.as_str())),
                    ("score", FieldValue::from(u64::from(score))),
                    ("version", FieldValue::from(version)),
                ],
            );
        }

        HealthSnapshot { version, at_us: now, leader, replicas }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn tracked() -> (Arc<ManualClock>, Obs, HealthTracker) {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::new(Arc::clone(&clock) as Arc<dyn Clock>);
        let tracker = HealthTracker::new(HealthConfig::default(), &obs);
        (clock, obs, tracker)
    }

    #[test]
    fn rolling_window_folds_and_evicts() {
        let mut w = RollingWindow::new(500, 100);
        w.observe(10, 7);
        w.observe(20, 9);
        let stats = w.fold();
        assert_eq!(stats.count, 2);
        assert_eq!(stats.sum, 16);
        assert_eq!(stats.mean(), Some(8));
        // Advance past the whole window: everything evicts.
        w.observe(1000, 5);
        let stats = w.fold();
        assert_eq!((stats.count, stats.sum), (1, 5));
    }

    #[test]
    fn rolling_window_partial_eviction() {
        let mut w = RollingWindow::new(300, 100);
        w.observe(50, 1); // bucket 0
        w.observe(150, 2); // bucket 1
        w.observe(250, 3); // bucket 2
        assert_eq!(w.fold().count, 3);
        // t=350 opens bucket 3, which wraps onto bucket 0 — sample 1 gone.
        w.observe(350, 4);
        let stats = w.fold();
        assert_eq!(stats.count, 3);
        assert_eq!(stats.sum, 9);
    }

    #[test]
    fn rolling_window_clamps_backwards_time() {
        let mut w = RollingWindow::new(300, 100);
        w.observe(250, 3);
        w.observe(10, 1); // late producer: folds into the head bucket
        assert_eq!(w.fold().count, 2);
        // …and does not resurrect on the next advance.
        w.advance_to(260);
        assert_eq!(w.fold().count, 2);
    }

    #[test]
    fn window_quantiles_are_nearest_rank() {
        let mut w = RollingWindow::new(1000, 100);
        for v in [1u64, 2, 2, 4, 8] {
            w.observe(10, v);
        }
        let stats = w.fold();
        assert_eq!(stats.quantile_permille(500), Some(2));
        assert_eq!(stats.quantile_permille(990), Some(8));
        assert_eq!(RollingWindow::new(1000, 100).fold().quantile_permille(500), None);
    }

    #[test]
    fn healthy_replica_scores_full_marks() {
        let (clock, _obs, tracker) = tracked();
        tracker.register(0, 0, 0);
        clock.set(100_000);
        tracker.seen(0);
        tracker.commit(0, 1, 2_000);
        let snap = tracker.snapshot();
        let h = snap.replica(0).expect("tracked");
        assert_eq!(h.score, SCORE_MAX);
        assert_eq!(h.latency_score, SCORE_MAX);
        assert_eq!(h.liveness_score, SCORE_MAX);
        assert!(h.anomalies.is_empty());
        assert_eq!(h.p99_us, Some(2_048), "log2 bucket upper bound");
    }

    #[test]
    fn silent_replica_is_flagged_once_per_onset() {
        let (clock, obs, tracker) = tracked();
        tracker.register(0, 0, 0);
        tracker.register(1, 0, 0);
        clock.set(50_000);
        tracker.seen(1);
        tracker.commit(1, 1, 500); // keeps the cluster un-stalled
        clock.set(300_000);
        tracker.seen(1);
        tracker.commit(1, 2, 500);
        clock.set(500_000);
        tracker.commit(1, 3, 500);
        let snap = tracker.snapshot();
        let h = snap.replica(0).expect("tracked");
        assert_eq!(h.liveness_score, 0);
        assert_eq!(h.anomalies, vec![AnomalyKind::Silence]);
        assert!(snap.replica(1).expect("tracked").anomalies.is_empty());
        let silent =
            obs.registry.counter_with("health_anomalies_total", &[("kind", "silence")]).get();
        assert_eq!(silent, 1);
        // Still silent at the next snapshot: edge-triggered, no re-count.
        clock.set(600_000);
        tracker.commit(1, 4, 500);
        tracker.snapshot();
        let again =
            obs.registry.counter_with("health_anomalies_total", &[("kind", "silence")]).get();
        assert_eq!(again, 1);
        // The trace ring saw the onset event.
        assert!(obs.tracer.recent().iter().any(|e| e.name == "health.anomaly"));
    }

    #[test]
    fn stalled_leader_and_inflated_latency_are_detected() {
        let (clock, _obs, tracker) = tracked();
        tracker.register(0, 0, 0);
        tracker.register(1, 0, 0);
        clock.set(10_000);
        tracker.proposal_open(1, 5);
        tracker.seen(0);
        // 10 ms + stall_after elapses with the proposal still open.
        clock.set(450_000);
        tracker.seen(0);
        tracker.seen(1);
        // An (eventually) committed slot with terrible latency.
        tracker.commit(1, 4, 120_000);
        let snap = tracker.snapshot();
        let leader = snap.replica(0).expect("tracked");
        assert!(leader.anomalies.contains(&AnomalyKind::LeaderStall), "{snap:?}");
        let laggard = snap.replica(1).expect("tracked");
        assert!(laggard.anomalies.contains(&AnomalyKind::LatencyInflation), "{snap:?}");
        assert!(laggard.latency_score < 100, "p99 ≫ target collapses the sub-score");
    }

    #[test]
    fn view_change_updates_leader_and_stability() {
        let (clock, _obs, tracker) = tracked();
        tracker.register(0, 0, 0);
        tracker.register(1, 0, 0);
        clock.set(100_000);
        tracker.view_change(1, 1, 1);
        let snap = tracker.snapshot();
        assert_eq!(snap.leader, Some(1));
        let h = snap.replica(1).expect("tracked");
        assert_eq!(h.view_changes, 1);
        assert_eq!(h.stability_score, SCORE_MAX - 250);
    }

    #[test]
    fn snapshot_json_is_versioned_and_stable() {
        let (clock, _obs, tracker) = tracked();
        tracker.register(0, 0, 0);
        clock.set(42);
        tracker.seen(0);
        let a = tracker.snapshot();
        let b = tracker.snapshot();
        assert_eq!(a.version + 1, b.version);
        assert!(a.to_json().starts_with("{\"version\":1,\"at_us\":42,\"leader\":0"));
        let rerun = a.to_json();
        assert_eq!(a.to_json(), rerun, "rendering is pure");
    }

    #[test]
    fn phase_shares_sum_to_permille() {
        let (clock, _obs, tracker) = tracked();
        tracker.register(0, 0, 0);
        clock.set(1_000);
        tracker.phases(0, [100, 300, 600]);
        let snap = tracker.snapshot();
        let shares = snap.replica(0).expect("tracked").phase_share_permille;
        assert_eq!(shares, [100, 300, 600]);
    }
}
