//! Causal cross-replica tracing: deterministic trace contexts and the
//! protocol flight recorder.
//!
//! Node-local tracing ([`crate::trace`]) cannot explain a slow consensus
//! slot: the PROPOSE leaves one replica's timeline and the WRITE quorum
//! forms on three others. This module adds the Dapper-style glue — a
//! [`TraceCtx`] carried on the wire — plus a bounded per-replica
//! [`FlightRecorder`] of protocol events, so an offline analyzer can stitch
//! the per-replica streams back into one global causal DAG.
//!
//! # Determinism
//!
//! Nothing here draws randomness. Span IDs come from a per-node counter
//! namespaced by the node id ([`FlightRecorder::next_span`]), trace IDs for
//! consensus slots are a pure function of the slot number
//! ([`slot_trace_id`]), and timestamps come from the injected [`Clock`]
//! (sim-time under the testbed). A fixed-seed simulation therefore produces
//! byte-identical flight streams at any `LAZARUS_THREADS` setting.
//!
//! # ID scheme
//!
//! All IDs stay below 2⁵³ so they survive a round-trip through JSON
//! tooling that parses numbers as `f64`:
//!
//! * `span_id = ((node + 1) << 40) | counter` — node-unique, dense,
//!   allocation-ordered; node 0's spans start at `1 << 40`. Zero is
//!   reserved to mean "no span" (a DAG root's `parent_id`).
//! * `trace_id = (1 << 52) | seq` for consensus slot `seq`
//!   ([`slot_trace_id`]) — every replica independently derives the same
//!   trace id for a slot, so "adopt" needs no agreement round.

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::clock::Clock;

/// Reserved `parent_id`/`span_id` meaning "none" (a causal root).
pub const NO_SPAN: u64 = 0;

/// The trace context attached to wire messages and flight events.
///
/// `trace_id` groups all events of one logical operation (a consensus
/// slot, a view change, a client request); `span_id` names this hop;
/// `parent_id` is the span that caused it ([`NO_SPAN`] at a root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Logical-operation id shared by every event of the trace.
    pub trace_id: u64,
    /// Span that caused this one; [`NO_SPAN`] at a DAG root.
    pub parent_id: u64,
    /// This hop's unique span id.
    pub span_id: u64,
}

impl TraceCtx {
    /// Encoded wire length in bytes.
    pub const WIRE_LEN: usize = 24;

    /// A root context: no parent.
    #[must_use]
    pub fn root(trace_id: u64, span_id: u64) -> TraceCtx {
        TraceCtx { trace_id, parent_id: NO_SPAN, span_id }
    }

    /// A child context continuing this trace under a freshly allocated
    /// span id.
    #[must_use]
    pub fn child(&self, span_id: u64) -> TraceCtx {
        TraceCtx { trace_id: self.trace_id, parent_id: self.span_id, span_id }
    }

    /// Big-endian fixed-width encoding (`trace_id ‖ parent_id ‖ span_id`).
    #[must_use]
    pub fn encode(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[..8].copy_from_slice(&self.trace_id.to_be_bytes());
        out[8..16].copy_from_slice(&self.parent_id.to_be_bytes());
        out[16..].copy_from_slice(&self.span_id.to_be_bytes());
        out
    }

    /// Decodes [`encode`](TraceCtx::encode) output; `None` when `bytes` is
    /// shorter than [`WIRE_LEN`](TraceCtx::WIRE_LEN).
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<TraceCtx> {
        if bytes.len() < Self::WIRE_LEN {
            return None;
        }
        let word = |i: usize| {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[i..i + 8]);
            u64::from_be_bytes(buf)
        };
        Some(TraceCtx { trace_id: word(0), parent_id: word(8), span_id: word(16) })
    }
}

/// The shared trace id of consensus slot `seq`: `(1 << 52) | seq`.
///
/// Pure function of the slot number, so every replica adopts the same
/// trace for a slot without coordination, and the id stays exactly
/// representable as an `f64` for JSON consumers.
#[must_use]
pub fn slot_trace_id(seq: u64) -> u64 {
    (1 << 52) | seq
}

/// Every flight-recorder event kind, wire events and protocol events
/// alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A message left a node (transport-side).
    Send,
    /// A message was handed to a replica (transport-side).
    Recv,
    /// The fault plan dropped a message (sender-attributed).
    Drop,
    /// The fault plan delayed a message; `extra` holds the added µs.
    Delay,
    /// The fault plan duplicated a message.
    Dup,
    /// A local timer fired (a causal root).
    Timer,
    /// The leader assembled a proposal for a slot.
    Propose,
    /// The replica broadcast its WRITE vote for a slot.
    Write,
    /// The replica broadcast its ACCEPT vote for a slot.
    Accept,
    /// The slot decided locally.
    Commit,
    /// Decided batches were executed; `extra` holds the request count.
    Exec,
    /// A new view was installed.
    ViewChange,
    /// A throttled help re-vote was sent to a lagging peer.
    HelpRevote,
    /// State transfer started (CST-REQUEST fan-out).
    CstStart,
    /// State transfer completed (snapshot + log adopted).
    CstDone,
    /// A state-transfer chunk was fetched and verified; `extra` holds the
    /// chunk index.
    CstChunk,
    /// The replica rebooted from durable storage; `extra` holds the
    /// recovered stable checkpoint slot.
    Recover,
}

impl EventKind {
    /// All kinds, in a fixed order (the JSONL schema vocabulary).
    pub const ALL: [EventKind; 17] = [
        EventKind::Send,
        EventKind::Recv,
        EventKind::Drop,
        EventKind::Delay,
        EventKind::Dup,
        EventKind::Timer,
        EventKind::Propose,
        EventKind::Write,
        EventKind::Accept,
        EventKind::Commit,
        EventKind::Exec,
        EventKind::ViewChange,
        EventKind::HelpRevote,
        EventKind::CstStart,
        EventKind::CstDone,
        EventKind::CstChunk,
        EventKind::Recover,
    ];

    /// The stable wire name of this kind.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::Send => "send",
            EventKind::Recv => "recv",
            EventKind::Drop => "drop",
            EventKind::Delay => "delay",
            EventKind::Dup => "dup",
            EventKind::Timer => "timer",
            EventKind::Propose => "propose",
            EventKind::Write => "write",
            EventKind::Accept => "accept",
            EventKind::Commit => "commit",
            EventKind::Exec => "exec",
            EventKind::ViewChange => "view_change",
            EventKind::HelpRevote => "help_revote",
            EventKind::CstStart => "cst_start",
            EventKind::CstDone => "cst_done",
            EventKind::CstChunk => "cst_chunk",
            EventKind::Recover => "recover",
        }
    }

    /// Parses [`as_str`](EventKind::as_str) output.
    #[must_use]
    pub fn parse(name: &str) -> Option<EventKind> {
        EventKind::ALL.iter().copied().find(|k| k.as_str() == name)
    }

    /// True for transport-side events recorded by the testbed wire, false
    /// for replica-side protocol events.
    #[must_use]
    pub fn is_wire(&self) -> bool {
        matches!(
            self,
            EventKind::Send | EventKind::Recv | EventKind::Drop | EventKind::Delay | EventKind::Dup
        )
    }
}

/// One flight-recorder entry. Fixed schema: every field is present in the
/// JSONL rendering (absent options render as `null`), so a validator can
/// check lines without per-kind special cases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Event time in µs (sim-time under the testbed).
    pub at_us: u64,
    /// Recording node.
    pub node: u32,
    /// What happened.
    pub event: EventKind,
    /// Message label (`"PROPOSE"`, …) for wire events, `"-"` otherwise.
    pub kind: &'static str,
    /// Consensus slot, when the event is slot-scoped.
    pub seq: Option<u64>,
    /// View number, when known.
    pub view: Option<u64>,
    /// The other endpoint of a wire event.
    pub peer: Option<u32>,
    /// Trace this event belongs to.
    pub trace_id: u64,
    /// Causing span ([`NO_SPAN`] at a root).
    pub parent_id: u64,
    /// This event's span.
    pub span_id: u64,
    /// Kind-specific magnitude (delay µs, exec count, send copies); 0 when
    /// unused.
    pub extra: u64,
}

impl FlightEvent {
    /// The context this event carries.
    #[must_use]
    pub fn ctx(&self) -> TraceCtx {
        TraceCtx { trace_id: self.trace_id, parent_id: self.parent_id, span_id: self.span_id }
    }

    /// One JSONL line (no trailing newline), fixed key order.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let opt = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |n| n.to_string());
        format!(
            "{{\"at_us\":{},\"node\":{},\"event\":\"{}\",\"kind\":\"{}\",\"seq\":{},\
             \"view\":{},\"peer\":{},\"trace_id\":{},\"parent_id\":{},\"span_id\":{},\
             \"extra\":{}}}",
            self.at_us,
            self.node,
            self.event.as_str(),
            self.kind,
            opt(self.seq),
            opt(self.view),
            opt(self.peer.map(u64::from)),
            self.trace_id,
            self.parent_id,
            self.span_id,
            self.extra,
        )
    }
}

#[derive(Debug)]
struct FlightInner {
    ring: VecDeque<FlightEvent>,
    capacity: usize,
    dropped: u64,
    next_span: u64,
}

/// A bounded per-replica ring of [`FlightEvent`]s with deterministic span
/// allocation.
///
/// Cloning shares the ring (the testbed and the replica record into the
/// same stream). When the ring is full the oldest event is evicted and
/// [`dropped`](FlightRecorder::dropped) counts it, so a recorder never
/// grows without bound on long runs.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<FlightInner>>,
    clock: Arc<dyn Clock>,
    node: u32,
}

impl FlightRecorder {
    /// Default ring capacity.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// A recorder for `node` holding at most `capacity` events, stamping
    /// protocol events from `clock`.
    #[must_use]
    pub fn new(node: u32, capacity: usize, clock: Arc<dyn Clock>) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(Mutex::new(FlightInner {
                ring: VecDeque::with_capacity(capacity.min(1024)),
                capacity: capacity.max(1),
                dropped: 0,
                next_span: 1,
            })),
            clock,
            node,
        }
    }

    /// The recording node's id.
    #[must_use]
    pub fn node(&self) -> u32 {
        self.node
    }

    /// The recorder's clock, read now (µs) — for transports that build
    /// wire [`FlightEvent`]s by hand and [`push`](FlightRecorder::push)
    /// them.
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        self.clock.now_micros()
    }

    /// Allocates the next span id: `((node + 1) << 40) | counter`.
    ///
    /// Node-unique and allocation-ordered; never returns [`NO_SPAN`].
    #[must_use]
    pub fn next_span(&self) -> u64 {
        let mut inner = self.inner.lock().expect("flight lock");
        let n = inner.next_span;
        inner.next_span += 1;
        ((u64::from(self.node) + 1) << 40) | n
    }

    /// Appends `event` verbatim (caller supplies the timestamp — used by
    /// the transport, whose send/recv times differ from "now").
    pub fn push(&self, event: FlightEvent) {
        let mut inner = self.inner.lock().expect("flight lock");
        if inner.ring.len() >= inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(event);
    }

    /// Records a replica-side protocol event stamped with the clock's
    /// current time, under a fresh span childed to `ctx`. Returns the
    /// recorded event's context (for further chaining).
    pub fn protocol(
        &self,
        event: EventKind,
        seq: Option<u64>,
        view: Option<u64>,
        ctx: &TraceCtx,
        extra: u64,
    ) -> TraceCtx {
        let span = self.next_span();
        let trace_id = seq.map_or(ctx.trace_id, slot_trace_id);
        let ev = FlightEvent {
            at_us: self.clock.now_micros(),
            node: self.node,
            event,
            kind: "-",
            seq,
            view,
            peer: None,
            trace_id,
            parent_id: ctx.span_id,
            span_id: span,
            extra,
        };
        let out = ev.ctx();
        self.push(ev);
        out
    }

    /// A copy of the ring, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<FlightEvent> {
        self.inner.lock().expect("flight lock").ring.iter().cloned().collect()
    }

    /// Number of events in the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("flight lock").ring.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("flight lock").dropped
    }

    /// Writes the ring as JSONL to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        for ev in self.events() {
            writeln!(out, "{}", ev.to_jsonl())?;
        }
        out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual() -> (Arc<ManualClock>, FlightRecorder) {
        let clock = Arc::new(ManualClock::new());
        let rec = FlightRecorder::new(2, 8, Arc::clone(&clock) as Arc<dyn Clock>);
        (clock, rec)
    }

    #[test]
    fn ctx_encodes_and_decodes() {
        let ctx = TraceCtx { trace_id: slot_trace_id(9), parent_id: 7, span_id: 12345 };
        let wire = ctx.encode();
        assert_eq!(wire.len(), TraceCtx::WIRE_LEN);
        assert_eq!(TraceCtx::decode(&wire), Some(ctx));
        assert_eq!(TraceCtx::decode(&wire[..23]), None);
    }

    #[test]
    fn child_links_to_parent_span() {
        let root = TraceCtx::root(slot_trace_id(1), 42);
        let kid = root.child(43);
        assert_eq!(kid.trace_id, root.trace_id);
        assert_eq!(kid.parent_id, 42);
        assert_eq!(kid.span_id, 43);
    }

    #[test]
    fn slot_trace_ids_are_distinct_and_f64_exact() {
        let a = slot_trace_id(0);
        let b = slot_trace_id(1_000_000);
        assert_ne!(a, b);
        // Survives an f64 round-trip (JSON consumers parse numbers as f64).
        assert_eq!(b as f64 as u64, b);
    }

    #[test]
    fn span_ids_are_node_namespaced_and_sequential() {
        let (_, rec) = manual();
        let a = rec.next_span();
        let b = rec.next_span();
        assert_eq!(a, (3u64 << 40) | 1);
        assert_eq!(b, a + 1);
    }

    #[test]
    fn protocol_events_carry_sim_time_and_slot_trace() {
        let (clock, rec) = manual();
        clock.set(500);
        let root = TraceCtx::root(77, NO_SPAN);
        let ctx = rec.protocol(EventKind::Propose, Some(4), Some(0), &root, 0);
        let evs = rec.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].at_us, 500);
        assert_eq!(evs[0].trace_id, slot_trace_id(4));
        assert_eq!(evs[0].parent_id, NO_SPAN);
        assert_eq!(ctx.span_id, evs[0].span_id);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let (_, rec) = manual();
        for i in 0..12 {
            rec.push(FlightEvent {
                at_us: i,
                node: 2,
                event: EventKind::Timer,
                kind: "-",
                seq: None,
                view: None,
                peer: None,
                trace_id: 1,
                parent_id: NO_SPAN,
                span_id: i + 1,
                extra: 0,
            });
        }
        assert_eq!(rec.len(), 8);
        assert_eq!(rec.dropped(), 4);
        assert_eq!(rec.events()[0].at_us, 4);
    }

    #[test]
    fn jsonl_has_fixed_schema_with_nulls() {
        let ev = FlightEvent {
            at_us: 10,
            node: 1,
            event: EventKind::Send,
            kind: "PROPOSE",
            seq: Some(3),
            view: None,
            peer: Some(2),
            trace_id: slot_trace_id(3),
            parent_id: 5,
            span_id: 6,
            extra: 1,
        };
        assert_eq!(
            ev.to_jsonl(),
            format!(
                "{{\"at_us\":10,\"node\":1,\"event\":\"send\",\"kind\":\"PROPOSE\",\
                 \"seq\":3,\"view\":null,\"peer\":2,\"trace_id\":{},\"parent_id\":5,\
                 \"span_id\":6,\"extra\":1}}",
                slot_trace_id(3)
            )
        );
    }

    #[test]
    fn event_kind_names_round_trip() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::parse("nope"), None);
    }

    #[test]
    fn write_jsonl_creates_parent_dirs() {
        let (_, rec) = manual();
        rec.protocol(EventKind::Commit, Some(1), Some(0), &TraceCtx::root(1, NO_SPAN), 0);
        let dir = std::env::temp_dir().join(format!("lazarus_causal_{}", std::process::id()));
        let path = dir.join("deep/nested/replica_2.jsonl");
        rec.write_jsonl(&path).expect("write");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(body.lines().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
