//! Structured tracing: spans and key/value events into a bounded ring
//! buffer, with pluggable sinks.
//!
//! A [`Tracer`] is cheap to clone and share. Each recorded [`TraceEvent`]
//! carries a timestamp from the injected [`Clock`] — the discrete-event
//! testbed passes its `ManualClock`, so trace output from a fixed-seed
//! simulation is byte-identical at any `LAZARUS_THREADS` setting.
//!
//! Sinks receive each event as it is recorded, already rendered to a stable
//! one-line text form. The [`StderrSink`] is the interactive default; the
//! [`JsonlSink`] appends one JSON object per line to a file; the
//! [`MemorySink`] collects lines for assertions in tests.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::{Clock, NullClock};

/// Default ring-buffer capacity (events retained for [`Tracer::recent`]).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// A typed field value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// What a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A point-in-time event.
    Event,
    /// A span opening.
    SpanStart,
    /// A span closing (carries a `dur_us` field).
    SpanEnd,
}

impl TraceKind {
    fn label(self) -> &'static str {
        match self {
            TraceKind::Event => "event",
            TraceKind::SpanStart => "span_start",
            TraceKind::SpanEnd => "span_end",
        }
    }
}

/// One recorded trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Timestamp from the tracer's clock, in microseconds.
    pub at_us: u64,
    /// Record kind.
    pub kind: TraceKind,
    /// Span id (0 for plain events).
    pub span: u64,
    /// Event name, dot-separated by convention (`replica.view_change`).
    pub name: String,
    /// Key/value payload, in recording order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceEvent {
    /// Renders the stable one-line text form:
    /// `[at_us] kind name k=v k="s" …` (span records include `span=<id>`).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(48 + 16 * self.fields.len());
        let _ = write!(out, "[{:>10}] {} {}", self.at_us, self.kind.label(), self.name);
        if self.span != 0 {
            let _ = write!(out, " span={}", self.span);
        }
        for (k, v) in &self.fields {
            let _ = write!(out, " {k}={v}");
        }
        out
    }

    /// Renders the event as one JSON object (for [`JsonlSink`]).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(64 + 24 * self.fields.len());
        let _ = write!(
            out,
            "{{\"at_us\":{},\"kind\":\"{}\",\"name\":{}",
            self.at_us,
            self.kind.label(),
            crate::metrics::json_string(&self.name)
        );
        if self.span != 0 {
            let _ = write!(out, ",\"span\":{}", self.span);
        }
        for (k, v) in &self.fields {
            let _ = write!(out, ",{}:", crate::metrics::json_string(k));
            match v {
                FieldValue::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                FieldValue::I64(n) => {
                    let _ = write!(out, "{n}");
                }
                FieldValue::F64(n) => {
                    let _ = write!(out, "{}", crate::metrics::json_f64(*n));
                }
                FieldValue::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
                FieldValue::Str(s) => {
                    let _ = write!(out, "{}", crate::metrics::json_string(s));
                }
            }
        }
        out.push('}');
        out
    }
}

/// A destination receiving every recorded trace event.
pub trait Sink: Send {
    /// Called once per recorded event, with the pre-rendered text line.
    fn record(&mut self, event: &TraceEvent);
}

/// Writes the text form of each event to stderr.
///
/// Uses `io::stderr()` directly (not the print macros) so diagnostics keep
/// flowing even under the workspace's no-`println!` lint gate, and so a
/// broken pipe is ignored rather than panicking.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn record(&mut self, event: &TraceEvent) {
        let mut line = event.render();
        line.push('\n');
        let _ = std::io::stderr().write_all(line.as_bytes());
    }
}

/// Appends one JSON object per event to a file.
#[derive(Debug)]
pub struct JsonlSink {
    out: std::io::BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Creates (truncating) `path` and streams events into it, creating
    /// missing parent directories so a `LAZARUS_TRACE_DIR` pointing at a
    /// fresh path never errors. The buffer is flushed on drop.
    pub fn create(path: &str) -> std::io::Result<JsonlSink> {
        if let Some(parent) =
            std::path::Path::new(path).parent().filter(|p| !p.as_os_str().is_empty())
        {
            std::fs::create_dir_all(parent)?;
        }
        Ok(JsonlSink { out: std::io::BufWriter::new(std::fs::File::create(path)?) })
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &TraceEvent) {
        let mut line = event.render_json();
        line.push('\n');
        let _ = self.out.write_all(line.as_bytes());
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Collects rendered lines in memory; the handle returned by
/// [`MemorySink::new`] stays readable after the sink is installed.
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// A fresh sink plus the shared handle to its captured lines.
    #[must_use]
    pub fn new() -> (MemorySink, Arc<Mutex<Vec<String>>>) {
        let lines = Arc::new(Mutex::new(Vec::new()));
        (MemorySink { lines: Arc::clone(&lines) }, lines)
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &TraceEvent) {
        self.lines.lock().expect("memory sink poisoned").push(event.render());
    }
}

#[derive(Debug)]
struct TracerInner {
    clock: Arc<dyn Clock>,
    enabled: AtomicBool,
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
    next_span: AtomicU64,
}

impl std::fmt::Debug for Box<dyn Sink> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sink")
    }
}

/// The tracing facade. Cloning shares the ring buffer and sinks.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// An enabled tracer timestamping from `clock`, with the default ring
    /// capacity and no sinks.
    #[must_use]
    pub fn new(clock: Arc<dyn Clock>) -> Tracer {
        Tracer::with_capacity(clock, DEFAULT_RING_CAPACITY)
    }

    /// As [`Tracer::new`] with an explicit ring capacity.
    #[must_use]
    pub fn with_capacity(clock: Arc<dyn Clock>, capacity: usize) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                clock,
                enabled: AtomicBool::new(true),
                ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
                capacity: capacity.max(1),
                sinks: Mutex::new(Vec::new()),
                next_span: AtomicU64::new(1),
            }),
        }
    }

    /// A permanently disabled tracer: every call is a single atomic load.
    #[must_use]
    pub fn disabled() -> Tracer {
        let t = Tracer::with_capacity(Arc::new(NullClock), 1);
        t.inner.enabled.store(false, Ordering::Relaxed);
        t
    }

    /// Whether events are currently recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables recording at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Installs a sink; it receives every event recorded from now on.
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        self.inner.sinks.lock().expect("sinks poisoned").push(sink);
    }

    /// Records a point-in-time event.
    pub fn event(&self, name: &str, fields: Vec<(&'static str, FieldValue)>) {
        if !self.is_enabled() {
            return;
        }
        self.push(TraceEvent {
            at_us: self.inner.clock.now_micros(),
            kind: TraceKind::Event,
            span: 0,
            name: name.to_string(),
            fields,
        });
    }

    /// Opens a span; the returned guard records the matching `span_end`
    /// (with a `dur_us` field) when dropped.
    #[must_use]
    pub fn span(&self, name: &str, fields: Vec<(&'static str, FieldValue)>) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard { tracer: self.clone(), name: String::new(), span: 0, start_us: 0 };
        }
        let span = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let start_us = self.inner.clock.now_micros();
        self.push(TraceEvent {
            at_us: start_us,
            kind: TraceKind::SpanStart,
            span,
            name: name.to_string(),
            fields,
        });
        SpanGuard { tracer: self.clone(), name: name.to_string(), span, start_us }
    }

    /// The retained ring-buffer contents, oldest first.
    #[must_use]
    pub fn recent(&self) -> Vec<TraceEvent> {
        self.inner.ring.lock().expect("ring poisoned").iter().cloned().collect()
    }

    /// Drains and returns the retained events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.inner.ring.lock().expect("ring poisoned").drain(..).collect()
    }

    fn push(&self, event: TraceEvent) {
        {
            let mut sinks = self.inner.sinks.lock().expect("sinks poisoned");
            for sink in sinks.iter_mut() {
                sink.record(&event);
            }
        }
        let mut ring = self.inner.ring.lock().expect("ring poisoned");
        if ring.len() == self.inner.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }
}

/// Closes its span on drop, recording the elapsed time as `dur_us`.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    name: String,
    span: u64,
    start_us: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.span == 0 {
            return;
        }
        let now = self.tracer.inner.clock.now_micros();
        self.tracer.push(TraceEvent {
            at_us: now,
            kind: TraceKind::SpanEnd,
            span: self.span,
            name: std::mem::take(&mut self.name),
            fields: vec![("dur_us", FieldValue::U64(now.saturating_sub(self.start_us)))],
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn events_carry_clock_time_and_fields() {
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::new(Arc::clone(&clock) as Arc<dyn Clock>);
        clock.set(1500);
        tracer.event("replica.decide", vec![("seq", 7u64.into()), ("ok", true.into())]);
        let events = tracer.recent();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at_us, 1500);
        assert_eq!(events[0].render(), "[      1500] event replica.decide seq=7 ok=true");
    }

    #[test]
    fn spans_record_start_end_and_duration() {
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::new(Arc::clone(&clock) as Arc<dyn Clock>);
        clock.set(100);
        {
            let _g = tracer.span("epoch.round", vec![("epoch", 3u64.into())]);
            clock.set(350);
        }
        let events = tracer.recent();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, TraceKind::SpanStart);
        assert_eq!(events[1].kind, TraceKind::SpanEnd);
        assert_eq!(events[0].span, events[1].span);
        assert_eq!(events[1].fields, vec![("dur_us", FieldValue::U64(250))]);
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let tracer = Tracer::with_capacity(Arc::new(NullClock), 3);
        for i in 0..10u64 {
            tracer.event("tick", vec![("i", i.into())]);
        }
        let events = tracer.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].fields, vec![("i", FieldValue::U64(7))]);
        assert!(tracer.recent().is_empty());
    }

    #[test]
    fn jsonl_sink_creates_parent_dirs_and_flushes_on_drop() {
        let dir = std::env::temp_dir().join(format!("lazarus_jsonl_{}", std::process::id()));
        let path = dir.join("fresh/sub/trace.jsonl");
        let tracer = Tracer::new(Arc::new(NullClock));
        let sink = JsonlSink::create(path.to_str().expect("utf8 path")).expect("create");
        tracer.add_sink(Box::new(sink));
        tracer.event("hello", vec![("who", "world".into())]);
        drop(tracer); // drops the sink, which flushes
        let body = std::fs::read_to_string(&path).expect("read back");
        assert!(body.contains("\"name\":\"hello\""), "{body}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        tracer.event("x", vec![]);
        let _g = tracer.span("y", vec![]);
        drop(_g);
        assert!(tracer.recent().is_empty());
    }

    #[test]
    fn memory_sink_captures_rendered_lines() {
        let tracer = Tracer::new(Arc::new(NullClock));
        let (sink, lines) = MemorySink::new();
        tracer.add_sink(Box::new(sink));
        tracer.event("hello", vec![("who", "world".into())]);
        let lines = lines.lock().unwrap();
        assert_eq!(lines.as_slice(), ["[         0] event hello who=\"world\""]);
    }

    #[test]
    fn jsonl_rendering_is_well_formed() {
        let e = TraceEvent {
            at_us: 9,
            kind: TraceKind::Event,
            span: 0,
            name: "a.b".into(),
            fields: vec![("s", "x\"y".into()), ("n", 4u64.into()), ("f", 0.5f64.into())],
        };
        assert_eq!(
            e.render_json(),
            "{\"at_us\":9,\"kind\":\"event\",\"name\":\"a.b\",\"s\":\"x\\\"y\",\"n\":4,\"f\":0.5}"
        );
    }
}
