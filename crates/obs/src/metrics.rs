//! The metrics registry: lock-cheap counters, gauges, and fixed-bucket
//! log-scale histograms.
//!
//! Handles returned by the [`Registry`] are `Arc`-backed atomics — a
//! counter increment is one relaxed `fetch_add`, a histogram observation is
//! three. Every mutation commutes (adds, `fetch_max`/`fetch_min`), so a
//! snapshot taken after a parallel workload is a pure function of the
//! *multiset* of recorded values, never of thread scheduling — the property
//! the cross-thread determinism CI gate checks.
//!
//! Snapshots render to a Prometheus-style text exposition
//! ([`Snapshot::to_prometheus`]) and to pretty JSON ([`Snapshot::to_json`],
//! the `*_metrics.json` files the figure harnesses emit). Series are sorted
//! by name in both, so output is byte-stable.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero, one per power-of-two octave
/// up to `2^63`, and a final overflow bucket rendered as `+Inf`.
pub const HISTOGRAM_BUCKETS: usize = 66;

/// Upper bound (inclusive) of histogram bucket `i`.
///
/// `bound(0) == 0`, `bound(i) == 2^(i-1)` for `1 <= i <= 64`, and the last
/// bucket is unbounded (`u64::MAX`, rendered `+Inf`).
#[must_use]
pub fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=64 => 1u64 << (i - 1),
        _ => u64::MAX,
    }
}

/// The bucket index holding `value`: the smallest `i` with
/// `value <= bucket_bound(i)`.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (65 - (value - 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (last write wins).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: f64) {
        self.cell.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket log₂-scale histogram of `u64` samples (latencies in µs,
/// sizes in bytes, …).
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, value: u64) {
        self.core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(value, Ordering::Relaxed);
        self.core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// An immutable copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.core.buckets[i].load(Ordering::Relaxed)),
            count: self.core.count.load(Ordering::Relaxed),
            sum: self.core.sum.load(Ordering::Relaxed),
            max: self.core.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_bound`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile estimate: the upper bound of the bucket
    /// containing the `⌈q·count⌉`-th smallest sample. `None` when empty.
    ///
    /// Log-scale buckets bound the estimate to within 2× of the true value;
    /// callers needing exact percentiles keep the raw samples (as the
    /// testbed's `Metrics` does).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_bound(i));
            }
        }
        Some(bucket_bound(HISTOGRAM_BUCKETS - 1))
    }

    /// Mean sample value (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The metric registry. Cloning shares the underlying store.
///
/// Registration (name → handle) takes a mutex; the returned handles are
/// lock-free. Callers on hot paths register once and reuse the handle.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
    helps: Arc<Mutex<BTreeMap<String, String>>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Renders `name{k1="v1",…}` — the series-key convention for labelled
    /// metrics. Label order is preserved as given. Label values are escaped
    /// per the Prometheus text exposition format (`\` → `\\`, `"` → `\"`,
    /// newline → `\n`), so the key is safe to emit verbatim.
    #[must_use]
    pub fn series(name: &str, labels: &[(&str, &str)]) -> String {
        if labels.is_empty() {
            return name.to_string();
        }
        let mut out = String::with_capacity(name.len() + 16 * labels.len());
        out.push_str(name);
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"");
            for c in v.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
        out
    }

    /// The counter registered under `name` (created on first use).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))));
        match metric {
            Metric::Counter(cell) => Counter { cell: Arc::clone(cell) },
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// A labelled counter: `counter(series(name, labels))`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.counter(&Self::series(name, labels))
    }

    /// The gauge registered under `name` (created on first use, at 0.0).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))));
        match metric {
            Metric::Gauge(cell) => Gauge { cell: Arc::clone(cell) },
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// A labelled gauge: `gauge(series(name, labels))`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.gauge(&Self::series(name, labels))
    }

    /// The histogram registered under `name` (created on first use).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCore::new())));
        match metric {
            Metric::Histogram(core) => Histogram { core: Arc::clone(core) },
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// A labelled histogram: `histogram(series(name, labels))`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram(&Self::series(name, labels))
    }

    /// Registers the `# HELP` text of a metric family (the bare name,
    /// without labels). Families without a description get a readable
    /// default derived from the name.
    pub fn describe(&self, family: &str, help: &str) {
        self.helps.lock().expect("registry poisoned").insert(family.to_string(), help.to_string());
    }

    /// A frozen, name-sorted copy of every registered series.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("registry poisoned");
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(cell) => {
                    counters.push((name.clone(), cell.load(Ordering::Relaxed)));
                }
                Metric::Gauge(cell) => {
                    gauges.push((name.clone(), f64::from_bits(cell.load(Ordering::Relaxed))));
                }
                Metric::Histogram(core) => {
                    let h = Histogram { core: Arc::clone(core) };
                    histograms.push((name.clone(), h.snapshot()));
                }
            }
        }
        let helps = self
            .helps
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        Snapshot { counters, gauges, histograms, helps }
    }
}

/// A frozen view of a [`Registry`], ready for rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(series, value)` counters, sorted by series name.
    pub counters: Vec<(String, u64)>,
    /// `(series, value)` gauges, sorted by series name.
    pub gauges: Vec<(String, f64)>,
    /// `(series, state)` histograms, sorted by series name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(family, help)` descriptions registered via [`Registry::describe`],
    /// sorted by family name.
    pub helps: Vec<(String, String)>,
}

/// Splits `name{labels}` into `(name, Some(labels))`.
fn split_series(series: &str) -> (&str, Option<&str>) {
    match series.find('{') {
        Some(i) => (&series[..i], Some(series[i + 1..].trim_end_matches('}'))),
        None => (series, None),
    }
}

/// Rejoins a family name with existing labels plus one extra label.
fn with_extra_label(family: &str, labels: Option<&str>, extra: &str) -> String {
    match labels {
        Some(l) if !l.is_empty() => format!("{family}{{{l},{extra}}}"),
        _ => format!("{family}{{{extra}}}"),
    }
}

impl Snapshot {
    /// The `# HELP` text of `family`: the registered description, or a
    /// readable default derived from the name (underscores → spaces).
    #[must_use]
    pub fn help_for(&self, family: &str) -> String {
        self.helps
            .iter()
            .find(|(f, _)| f == family)
            .map_or_else(|| family.replace('_', " "), |(_, h)| h.clone())
    }

    /// Renders the Prometheus text exposition format (metric families get
    /// one `# HELP` and one `# TYPE` line; histogram buckets are cumulative
    /// with an `le` label, `+Inf` last).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let helps = &self.helps;
        let mut type_line = |out: &mut String, series: &str, kind: &str| {
            let (family, _) = split_series(series);
            if family != last_family {
                let help = helps
                    .iter()
                    .find(|(f, _)| f == family)
                    .map_or_else(|| family.replace('_', " "), |(_, h)| h.clone());
                let _ = writeln!(out, "# HELP {family} {help}");
                let _ = writeln!(out, "# TYPE {family} {kind}");
                last_family = family.to_string();
            }
        };
        for (series, value) in &self.counters {
            type_line(&mut out, series, "counter");
            let _ = writeln!(out, "{series} {value}");
        }
        for (series, value) in &self.gauges {
            type_line(&mut out, series, "gauge");
            let _ = writeln!(out, "{series} {value}");
        }
        for (series, h) in &self.histograms {
            type_line(&mut out, series, "histogram");
            let (family, labels) = split_series(series);
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                cumulative += n;
                // Only materialize the buckets that carry data (plus +Inf),
                // as fixed 66-bucket series would drown the exposition.
                if n == 0 && i != HISTOGRAM_BUCKETS - 1 {
                    continue;
                }
                let le = if i == HISTOGRAM_BUCKETS - 1 {
                    "+Inf".to_string()
                } else {
                    bucket_bound(i).to_string()
                };
                let key =
                    with_extra_label(&format!("{family}_bucket"), labels, &format!("le=\"{le}\""));
                let _ = writeln!(out, "{key} {cumulative}");
            }
            let sum_key = match labels {
                Some(l) if !l.is_empty() => format!("{family}_sum{{{l}}}"),
                _ => format!("{family}_sum"),
            };
            let count_key = match labels {
                Some(l) if !l.is_empty() => format!("{family}_count{{{l}}}"),
                _ => format!("{family}_count"),
            };
            let _ = writeln!(out, "{sum_key} {}", h.sum);
            let _ = writeln!(out, "{count_key} {}", h.count);
        }
        out
    }

    /// Renders the snapshot as pretty-printed JSON — the format of the
    /// `*_metrics.json` files the figure harnesses write.
    ///
    /// Histograms are summarized (`count`, `sum`, `mean`, `p50`, `p95`,
    /// `p99`, `max`) with only their non-empty buckets listed as
    /// `[upper_bound, count]` pairs.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(out, "  \"counters\": {{");
        for (i, (series, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {value}", json_string(series));
        }
        let _ = write!(out, "\n  }},\n  \"gauges\": {{");
        for (i, (series, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {}", json_string(series), json_f64(*value));
        }
        let _ = write!(out, "\n  }},\n  \"histograms\": {{");
        for (i, (series, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {{", json_string(series));
            let _ = write!(out, "\n      \"count\": {},", h.count);
            let _ = write!(out, "\n      \"sum\": {},", h.sum);
            let _ =
                write!(out, "\n      \"mean\": {},", h.mean().map_or("null".to_string(), json_f64));
            for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                let _ = write!(
                    out,
                    "\n      \"{label}\": {},",
                    h.quantile(q).map_or("null".to_string(), |v| v.to_string())
                );
            }
            let _ = write!(out, "\n      \"max\": {},", h.max);
            let _ = write!(out, "\n      \"buckets\": [");
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let sep = if first { "" } else { ", " };
                first = false;
                let le = if b == HISTOGRAM_BUCKETS - 1 {
                    "\"+Inf\"".to_string()
                } else {
                    bucket_bound(b).to_string()
                };
                let _ = write!(out, "{sep}[{le}, {n}]");
            }
            let _ = write!(out, "]\n    }}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// JSON string literal with RFC 8259 escaping.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number rendering: Rust's shortest-round-trip `Display`, with the
/// non-finite values JSON lacks mapped to `null`.
pub(crate) fn json_f64(value: f64) -> String {
    if value.is_finite() {
        value.to_string()
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_up() {
        let registry = Registry::new();
        let c = registry.counter("ops_total");
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        // same name → same cell
        assert_eq!(registry.counter("ops_total").get(), 10);
    }

    #[test]
    fn gauges_hold_last_value() {
        let registry = Registry::new();
        let g = registry.gauge_with("risk", &[("epoch", "3")]);
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(registry.gauge("risk{epoch=\"3\"}").get(), -2.25);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        // Exact bucket edges land in the bucket they bound.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_bound(bucket_index(1024)), 1024);
        // One past an edge spills into the next bucket.
        assert_eq!(bucket_index(3), 3);
        assert_eq!(bucket_index(5), 4);
        assert_eq!(bucket_index(1025), 12);
        // Extremes.
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn every_power_of_two_is_its_own_bound() {
        for k in 0..=63u32 {
            let v = 1u64 << k;
            assert_eq!(bucket_bound(bucket_index(v)), v, "2^{k}");
            if v > 2 {
                assert_eq!(bucket_index(v - 1), bucket_index(v), "2^{k}-1 shares the bucket");
            }
        }
    }

    #[test]
    fn histogram_quantiles_use_nearest_rank() {
        let registry = Registry::new();
        let h = registry.histogram("lat_us");
        for v in [1u64, 2, 2, 4, 8] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 17);
        assert_eq!(snap.max, 8);
        // ranks: ⌈0.5·5⌉ = 3 → third smallest (2); ⌈0.99·5⌉ = 5 → 8.
        assert_eq!(snap.quantile(0.50), Some(2));
        assert_eq!(snap.quantile(0.99), Some(8));
        assert_eq!(snap.quantile(0.0), Some(1));
        assert!(HistogramSnapshot { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, max: 0 }
            .quantile(0.5)
            .is_none());
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let registry = Registry::new();
        registry.counter("z_total").inc();
        registry.counter("a_total").add(2);
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a_total", "z_total"]);
        assert_eq!(registry.snapshot(), snap, "idempotent");
    }

    #[test]
    fn prometheus_exposition_golden() {
        let registry = Registry::new();
        registry.counter_with("lazarus_messages_total", &[("kind", "PROPOSE")]).add(3);
        registry.counter_with("lazarus_messages_total", &[("kind", "WRITE")]).add(9);
        registry.gauge_with("lazarus_config_risk", &[("epoch", "0")]).set(12.5);
        let h = registry.histogram("lazarus_commit_latency_us");
        h.observe(900);
        h.observe(1024);
        h.observe(1025);
        // Kind-grouped (counters, gauges, histograms), name-sorted within
        // each group — the fixed order `to_prometheus` promises. Families
        // without a registered description get the derived default help.
        let expected = "\
# HELP lazarus_messages_total lazarus messages total
# TYPE lazarus_messages_total counter
lazarus_messages_total{kind=\"PROPOSE\"} 3
lazarus_messages_total{kind=\"WRITE\"} 9
# HELP lazarus_config_risk lazarus config risk
# TYPE lazarus_config_risk gauge
lazarus_config_risk{epoch=\"0\"} 12.5
# HELP lazarus_commit_latency_us lazarus commit latency us
# TYPE lazarus_commit_latency_us histogram
lazarus_commit_latency_us_bucket{le=\"1024\"} 2
lazarus_commit_latency_us_bucket{le=\"2048\"} 3
lazarus_commit_latency_us_bucket{le=\"+Inf\"} 3
lazarus_commit_latency_us_sum 2949
lazarus_commit_latency_us_count 3
";
        assert_eq!(registry.snapshot().to_prometheus(), expected);
    }

    #[test]
    fn prometheus_exposition_escapes_label_values() {
        let registry = Registry::new();
        registry.counter_with("odd_total", &[("path", "a\\b")]).add(1);
        registry.counter_with("odd_total", &[("path", "say \"hi\"")]).add(2);
        registry.counter_with("odd_total", &[("path", "two\nlines")]).add(3);
        let expected = "\
# HELP odd_total odd total
# TYPE odd_total counter
odd_total{path=\"a\\\\b\"} 1
odd_total{path=\"say \\\"hi\\\"\"} 2
odd_total{path=\"two\\nlines\"} 3
";
        assert_eq!(registry.snapshot().to_prometheus(), expected);
        // The escaped forms stay distinct series keys.
        assert_eq!(registry.counter_with("odd_total", &[("path", "a\\b")]).get(), 1);
    }

    #[test]
    fn prometheus_help_lines_use_registered_descriptions() {
        let registry = Registry::new();
        registry.counter_with("bft_wire_messages_total", &[("kind", "WRITE")]).add(4);
        registry.gauge("bft_open_slot").set(7.0);
        registry.describe("bft_wire_messages_total", "Messages sent on the wire, by kind.");
        let expected = "\
# HELP bft_wire_messages_total Messages sent on the wire, by kind.
# TYPE bft_wire_messages_total counter
bft_wire_messages_total{kind=\"WRITE\"} 4
# HELP bft_open_slot bft open slot
# TYPE bft_open_slot gauge
bft_open_slot 7
";
        let snap = registry.snapshot();
        assert_eq!(snap.to_prometheus(), expected);
        assert_eq!(snap.help_for("bft_wire_messages_total"), "Messages sent on the wire, by kind.");
        assert_eq!(snap.help_for("bft_open_slot"), "bft open slot");
    }

    #[test]
    fn json_rendering_is_valid_and_stable() {
        let registry = Registry::new();
        registry.counter("runs_total").add(7);
        registry.gauge("pct").set(37.5);
        registry.histogram("lat").observe(5);
        let a = registry.snapshot().to_json();
        let b = registry.snapshot().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"runs_total\": 7"));
        assert!(a.contains("\"pct\": 37.5"));
        assert!(a.contains("[8, 1]"), "sample 5 lands in the le=8 bucket: {a}");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.0), "2");
    }
}
