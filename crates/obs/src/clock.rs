//! Injected time sources for traces and latency measurements.
//!
//! Every timestamp the observability layer records comes through the
//! [`Clock`] trait, never from `std::time` directly. This is what lets the
//! discrete-event testbed drive spans and latency histograms off *virtual*
//! time — a fixed-seed simulation then produces byte-identical traces and
//! snapshots at any worker-thread count — while the threaded wall-clock
//! runtime plugs in a monotonic [`WallClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A source of the "current time" in microseconds.
///
/// Implementations must be cheap and thread-safe; they are consulted on the
/// replica hot path.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// The current time in microseconds since an arbitrary epoch.
    fn now_micros(&self) -> u64;
}

/// A manually driven clock (virtual time).
///
/// The discrete-event simulator owns one and [`set`](ManualClock::set)s it
/// to the event timestamp as the event queue advances, so every trace event
/// and histogram sample recorded while handling that event carries sim-time.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock at time zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Sets the current time (monotonicity is the caller's contract).
    pub fn set(&self, micros: u64) {
        self.now.store(micros, Ordering::Relaxed);
    }

    /// Advances the clock by `delta` microseconds and returns the new time.
    pub fn advance(&self, delta: u64) -> u64 {
        self.now.fetch_add(delta, Ordering::Relaxed) + delta
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// Monotonic wall-clock time since the clock's creation.
///
/// Used by the threaded runtime and the Criterion benches, where real
/// elapsed time is the measurement. Not deterministic — never use it in a
/// path whose output is compared across runs.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose epoch is "now".
    pub fn new() -> WallClock {
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A clock frozen at zero — for contexts with no meaningful time axis
/// (pure-CPU figure harnesses, disabled tracers).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullClock;

impl Clock for NullClock {
    fn now_micros(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_settable() {
        let c = ManualClock::new();
        assert_eq!(c.now_micros(), 0);
        c.set(42);
        assert_eq!(c.now_micros(), 42);
        assert_eq!(c.advance(8), 50);
        assert_eq!(c.now_micros(), 50);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn null_clock_is_frozen() {
        assert_eq!(NullClock.now_micros(), 0);
        assert_eq!(NullClock.now_micros(), 0);
    }
}
