//! The BFT client.
//!
//! Clients broadcast each operation to every replica and wait for `f + 1`
//! matching replies (the standard BFT client rule: at least one of any
//! `f + 1` repliers is correct). Replies carry the membership epoch, so the
//! client learns about reconfigurations and refreshes its replica set from
//! the controller when the epoch moves.
//!
//! A client multiplexes up to `max_in_flight` concurrent operations over
//! one logical connection ([`Client::pipelined`]); the default depth of 1
//! reproduces the classic closed-loop client. Replies for the different
//! outstanding operations are aggregated independently, keyed by operation
//! number.

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;

use crate::crypto::{Digest, Keyring, Principal};
use crate::messages::{Message, Reply, Request};
use crate::types::{ClientId, Epoch, Membership, ReplicaId};

/// One in-flight operation.
#[derive(Debug)]
struct PendingOp {
    payload: Bytes,
    votes: HashMap<Digest, Vec<ReplicaId>>,
    results: HashMap<Digest, Bytes>,
}

/// A BFT client state machine multiplexing up to `max_in_flight`
/// outstanding operations (1 = classic closed loop).
#[derive(Debug)]
pub struct Client {
    id: ClientId,
    keyring: Keyring,
    membership: Membership,
    next_op: u64,
    max_in_flight: usize,
    pending: BTreeMap<u64, PendingOp>,
}

/// The completed result of an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The client operation number.
    pub op: u64,
    /// The agreed result.
    pub result: Bytes,
    /// The highest epoch observed among the matching replies.
    pub epoch: Epoch,
}

impl Client {
    /// Creates a closed-loop client (one operation in flight at a time).
    pub fn new(id: ClientId, membership: Membership, master_secret: &[u8]) -> Client {
        Self::pipelined(id, membership, master_secret, 1)
    }

    /// Creates a client that keeps up to `depth` operations in flight over
    /// one logical connection (clamped to at least 1). This is how the
    /// testbed multiplexes the request streams of many simulated clients
    /// without paying one connection per stream.
    pub fn pipelined(
        id: ClientId,
        membership: Membership,
        master_secret: &[u8],
        depth: usize,
    ) -> Client {
        Client {
            id,
            keyring: Keyring::new(master_secret),
            membership,
            next_op: 1,
            max_in_flight: depth.max(1),
            pending: BTreeMap::new(),
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The membership the client currently targets.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Adopts a new membership (after a reconfiguration notice).
    pub fn set_membership(&mut self, membership: Membership) {
        self.membership = membership;
    }

    /// True when the client is at its in-flight capacity (a depth-1 client
    /// is busy whenever anything is outstanding).
    pub fn busy(&self) -> bool {
        self.pending.len() >= self.max_in_flight
    }

    /// True when another operation may be started without panicking.
    pub fn can_invoke(&self) -> bool {
        !self.busy()
    }

    /// Number of operations currently outstanding.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// True while operation `op` is still awaiting its `f + 1` quorum.
    pub fn has_pending(&self, op: u64) -> bool {
        self.pending.contains_key(&op)
    }

    fn request_for(&self, op: u64, payload: &Bytes) -> Request {
        let tag = self
            .keyring
            .sign(Principal::Client(self.id.0), &Request::auth_bytes(self.id, op, payload));
        Request { client: self.id, op, payload: payload.clone(), tag }
    }

    /// Starts an operation: returns the request messages to send (one per
    /// replica).
    ///
    /// # Panics
    ///
    /// Panics if the client already has `max_in_flight` operations in
    /// flight — check [`Client::can_invoke`] first when pipelining.
    pub fn invoke(&mut self, payload: Bytes) -> Vec<(ReplicaId, Message)> {
        assert!(self.can_invoke(), "client already at max operations in flight");
        let op = self.next_op;
        self.next_op += 1;
        let request = self.request_for(op, &payload);
        self.pending
            .insert(op, PendingOp { payload, votes: HashMap::new(), results: HashMap::new() });
        self.membership.replicas.iter().map(|&r| (r, Message::Request(request.clone()))).collect()
    }

    /// Retransmission of every in-flight request (on timeout), if any,
    /// lowest operation first.
    pub fn retransmit(&self) -> Vec<(ReplicaId, Message)> {
        self.pending.keys().flat_map(|&op| self.retransmit_op(op)).collect()
    }

    /// Retransmission of one in-flight operation (empty when `op` is no
    /// longer pending).
    pub fn retransmit_op(&self, op: u64) -> Vec<(ReplicaId, Message)> {
        let Some(pending) = self.pending.get(&op) else { return Vec::new() };
        let request = self.request_for(op, &pending.payload);
        self.membership.replicas.iter().map(|&r| (r, Message::Request(request.clone()))).collect()
    }

    /// Processes a reply. Returns the completion once `f + 1` matching
    /// replies arrived for that reply's operation.
    pub fn on_reply(&mut self, reply: Reply) -> Option<Completion> {
        let pending = self.pending.get_mut(&reply.op)?;
        // Verify the replica's tag.
        let mut bytes = Vec::with_capacity(16 + reply.result.len());
        bytes.extend_from_slice(&reply.op.to_be_bytes());
        bytes.extend_from_slice(&reply.result);
        if !self.keyring.verify(Principal::Replica(reply.from.0), &bytes, &reply.tag) {
            return None;
        }
        let digest = Digest::of_parts(&[&reply.result, &reply.epoch.0.to_be_bytes()]);
        let voters = pending.votes.entry(digest).or_default();
        if voters.contains(&reply.from) {
            return None;
        }
        voters.push(reply.from);
        pending.results.insert(digest, reply.result.clone());
        if voters.len() > self.membership.f() {
            let result = pending.results[&digest].clone();
            self.pending.remove(&reply.op);
            Some(Completion { op: reply.op, result, epoch: reply.epoch })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::AuthTag;

    fn membership() -> Membership {
        Membership::new(Epoch(0), (0..4).map(ReplicaId).collect())
    }

    fn reply_from(client: &Client, replica: u32, op: u64, result: &[u8], epoch: Epoch) -> Reply {
        let keyring = Keyring::new(b"secret");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&op.to_be_bytes());
        bytes.extend_from_slice(result);
        let _ = client;
        Reply {
            from: ReplicaId(replica),
            op,
            result: Bytes::copy_from_slice(result),
            epoch,
            tag: keyring.sign(Principal::Replica(replica), &bytes),
        }
    }

    #[test]
    fn invoke_sends_to_all_replicas() {
        let mut c = Client::new(ClientId(7), membership(), b"secret");
        let sends = c.invoke(Bytes::from_static(b"op"));
        assert_eq!(sends.len(), 4);
        assert!(c.busy());
        let targets: Vec<u32> = sends.iter().map(|(r, _)| r.0).collect();
        assert_eq!(targets, vec![0, 1, 2, 3]);
    }

    #[test]
    fn completes_with_f_plus_one_matching() {
        let mut c = Client::new(ClientId(7), membership(), b"secret");
        c.invoke(Bytes::from_static(b"op"));
        assert!(c.on_reply(reply_from(&c, 0, 1, b"res", Epoch(0))).is_none());
        let done = c.on_reply(reply_from(&c, 1, 1, b"res", Epoch(0))).expect("f+1 matching");
        assert_eq!(done.op, 1);
        assert_eq!(&done.result[..], b"res");
        assert!(!c.busy());
    }

    #[test]
    fn divergent_replies_do_not_complete() {
        let mut c = Client::new(ClientId(7), membership(), b"secret");
        c.invoke(Bytes::from_static(b"op"));
        assert!(c.on_reply(reply_from(&c, 0, 1, b"a", Epoch(0))).is_none());
        assert!(c.on_reply(reply_from(&c, 1, 1, b"b", Epoch(0))).is_none());
        // a second vote for "a" completes
        assert!(c.on_reply(reply_from(&c, 2, 1, b"a", Epoch(0))).is_some());
    }

    #[test]
    fn duplicate_and_stale_replies_ignored() {
        let mut c = Client::new(ClientId(7), membership(), b"secret");
        c.invoke(Bytes::from_static(b"op"));
        assert!(c.on_reply(reply_from(&c, 0, 1, b"res", Epoch(0))).is_none());
        // same replica repeating does not count twice
        assert!(c.on_reply(reply_from(&c, 0, 1, b"res", Epoch(0))).is_none());
        // wrong op
        assert!(c.on_reply(reply_from(&c, 1, 9, b"res", Epoch(0))).is_none());
        assert!(c.busy());
    }

    #[test]
    fn forged_reply_tag_rejected() {
        let mut c = Client::new(ClientId(7), membership(), b"secret");
        c.invoke(Bytes::from_static(b"op"));
        let mut r = reply_from(&c, 0, 1, b"res", Epoch(0));
        r.tag = AuthTag([0; 32]);
        assert!(c.on_reply(r).is_none());
        // and a reply signed under a different master secret
        let other = {
            let keyring = Keyring::new(b"other");
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&1u64.to_be_bytes());
            bytes.extend_from_slice(b"res");
            Reply {
                from: ReplicaId(1),
                op: 1,
                result: Bytes::from_static(b"res"),
                epoch: Epoch(0),
                tag: keyring.sign(Principal::Replica(1), &bytes),
            }
        };
        assert!(c.on_reply(other).is_none());
    }

    #[test]
    fn epoch_mismatch_counts_separately() {
        let mut c = Client::new(ClientId(7), membership(), b"secret");
        c.invoke(Bytes::from_static(b"op"));
        assert!(c.on_reply(reply_from(&c, 0, 1, b"res", Epoch(0))).is_none());
        // an epoch-1 reply is a different vote bucket
        assert!(c.on_reply(reply_from(&c, 1, 1, b"res", Epoch(1))).is_none());
        let done = c.on_reply(reply_from(&c, 2, 1, b"res", Epoch(1))).expect("two epoch-1 votes");
        assert_eq!(done.epoch, Epoch(1));
    }

    #[test]
    fn retransmit_reissues_same_op() {
        let mut c = Client::new(ClientId(7), membership(), b"secret");
        let first = c.invoke(Bytes::from_static(b"op"));
        let again = c.retransmit();
        assert_eq!(first.len(), again.len());
        match (&first[0].1, &again[0].1) {
            (Message::Request(a), Message::Request(b)) => {
                assert_eq!(a.op, b.op);
                assert_eq!(a.payload, b.payload);
            }
            _ => panic!("expected requests"),
        }
        // idle client retransmits nothing
        let mut idle = Client::new(ClientId(8), membership(), b"secret");
        idle.next_op = 5;
        assert!(idle.retransmit().is_empty());
    }

    #[test]
    #[should_panic(expected = "in flight")]
    fn closed_loop_enforced() {
        let mut c = Client::new(ClientId(7), membership(), b"secret");
        c.invoke(Bytes::from_static(b"a"));
        c.invoke(Bytes::from_static(b"b"));
    }

    #[test]
    fn pipelined_client_multiplexes_operations() {
        let mut c = Client::pipelined(ClientId(7), membership(), b"secret", 3);
        c.invoke(Bytes::from_static(b"a"));
        c.invoke(Bytes::from_static(b"b"));
        assert_eq!(c.in_flight(), 2);
        assert!(c.can_invoke());
        c.invoke(Bytes::from_static(b"c"));
        assert!(c.busy(), "at depth");
        // Replies aggregate per operation; op 2 can complete before op 1.
        assert!(c.on_reply(reply_from(&c, 0, 2, b"rb", Epoch(0))).is_none());
        let done = c.on_reply(reply_from(&c, 1, 2, b"rb", Epoch(0))).expect("op 2 quorum");
        assert_eq!(done.op, 2);
        assert_eq!(c.in_flight(), 2);
        assert!(c.has_pending(1) && !c.has_pending(2) && c.has_pending(3));
        // Retransmit covers every outstanding op; per-op retransmit is exact.
        assert_eq!(c.retransmit().len(), 8);
        assert!(c.retransmit_op(2).is_empty());
        assert_eq!(c.retransmit_op(3).len(), 4);
    }

    #[test]
    #[should_panic(expected = "in flight")]
    fn pipelined_depth_enforced() {
        let mut c = Client::pipelined(ClientId(7), membership(), b"secret", 2);
        c.invoke(Bytes::from_static(b"a"));
        c.invoke(Bytes::from_static(b"b"));
        c.invoke(Bytes::from_static(b"c"));
    }
}
