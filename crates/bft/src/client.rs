//! The BFT client.
//!
//! Clients broadcast each operation to every replica and wait for `f + 1`
//! matching replies (the standard BFT client rule: at least one of any
//! `f + 1` repliers is correct). Replies carry the membership epoch, so the
//! client learns about reconfigurations and refreshes its replica set from
//! the controller when the epoch moves.

use std::collections::HashMap;

use bytes::Bytes;

use crate::crypto::{Digest, Keyring, Principal};
use crate::messages::{Message, Reply, Request};
use crate::types::{ClientId, Epoch, Membership, ReplicaId};

/// One in-flight operation.
#[derive(Debug)]
struct PendingOp {
    op: u64,
    payload: Bytes,
    votes: HashMap<Digest, Vec<ReplicaId>>,
    results: HashMap<Digest, Bytes>,
}

/// A closed-loop BFT client state machine.
#[derive(Debug)]
pub struct Client {
    id: ClientId,
    keyring: Keyring,
    membership: Membership,
    next_op: u64,
    pending: Option<PendingOp>,
}

/// The completed result of an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The client operation number.
    pub op: u64,
    /// The agreed result.
    pub result: Bytes,
    /// The highest epoch observed among the matching replies.
    pub epoch: Epoch,
}

impl Client {
    /// Creates a client for the given deployment.
    pub fn new(id: ClientId, membership: Membership, master_secret: &[u8]) -> Client {
        Client { id, keyring: Keyring::new(master_secret), membership, next_op: 1, pending: None }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The membership the client currently targets.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Adopts a new membership (after a reconfiguration notice).
    pub fn set_membership(&mut self, membership: Membership) {
        self.membership = membership;
    }

    /// True when an operation is in flight.
    pub fn busy(&self) -> bool {
        self.pending.is_some()
    }

    /// Starts an operation: returns the request messages to send (one per
    /// replica).
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight (this is a closed-loop
    /// client).
    pub fn invoke(&mut self, payload: Bytes) -> Vec<(ReplicaId, Message)> {
        assert!(self.pending.is_none(), "closed-loop client already has an operation in flight");
        let op = self.next_op;
        self.next_op += 1;
        let tag = self
            .keyring
            .sign(Principal::Client(self.id.0), &Request::auth_bytes(self.id, op, &payload));
        let request = Request { client: self.id, op, payload: payload.clone(), tag };
        self.pending =
            Some(PendingOp { op, payload, votes: HashMap::new(), results: HashMap::new() });
        self.membership.replicas.iter().map(|&r| (r, Message::Request(request.clone()))).collect()
    }

    /// Retransmission of the in-flight request (on timeout), if any.
    pub fn retransmit(&self) -> Vec<(ReplicaId, Message)> {
        let Some(pending) = &self.pending else { return Vec::new() };
        let tag = self.keyring.sign(
            Principal::Client(self.id.0),
            &Request::auth_bytes(self.id, pending.op, &pending.payload),
        );
        let request =
            Request { client: self.id, op: pending.op, payload: pending.payload.clone(), tag };
        self.membership.replicas.iter().map(|&r| (r, Message::Request(request.clone()))).collect()
    }

    /// Processes a reply. Returns the completion once `f + 1` matching
    /// replies arrived.
    pub fn on_reply(&mut self, reply: Reply) -> Option<Completion> {
        let pending = self.pending.as_mut()?;
        if reply.op != pending.op {
            return None;
        }
        // Verify the replica's tag.
        let mut bytes = Vec::with_capacity(16 + reply.result.len());
        bytes.extend_from_slice(&reply.op.to_be_bytes());
        bytes.extend_from_slice(&reply.result);
        if !self.keyring.verify(Principal::Replica(reply.from.0), &bytes, &reply.tag) {
            return None;
        }
        let digest = Digest::of_parts(&[&reply.result, &reply.epoch.0.to_be_bytes()]);
        let voters = pending.votes.entry(digest).or_default();
        if voters.contains(&reply.from) {
            return None;
        }
        voters.push(reply.from);
        pending.results.insert(digest, reply.result.clone());
        if voters.len() > self.membership.f() {
            let result = pending.results[&digest].clone();
            let op = pending.op;
            self.pending = None;
            Some(Completion { op, result, epoch: reply.epoch })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::AuthTag;

    fn membership() -> Membership {
        Membership::new(Epoch(0), (0..4).map(ReplicaId).collect())
    }

    fn reply_from(client: &Client, replica: u32, op: u64, result: &[u8], epoch: Epoch) -> Reply {
        let keyring = Keyring::new(b"secret");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&op.to_be_bytes());
        bytes.extend_from_slice(result);
        let _ = client;
        Reply {
            from: ReplicaId(replica),
            op,
            result: Bytes::copy_from_slice(result),
            epoch,
            tag: keyring.sign(Principal::Replica(replica), &bytes),
        }
    }

    #[test]
    fn invoke_sends_to_all_replicas() {
        let mut c = Client::new(ClientId(7), membership(), b"secret");
        let sends = c.invoke(Bytes::from_static(b"op"));
        assert_eq!(sends.len(), 4);
        assert!(c.busy());
        let targets: Vec<u32> = sends.iter().map(|(r, _)| r.0).collect();
        assert_eq!(targets, vec![0, 1, 2, 3]);
    }

    #[test]
    fn completes_with_f_plus_one_matching() {
        let mut c = Client::new(ClientId(7), membership(), b"secret");
        c.invoke(Bytes::from_static(b"op"));
        assert!(c.on_reply(reply_from(&c, 0, 1, b"res", Epoch(0))).is_none());
        let done = c.on_reply(reply_from(&c, 1, 1, b"res", Epoch(0))).expect("f+1 matching");
        assert_eq!(done.op, 1);
        assert_eq!(&done.result[..], b"res");
        assert!(!c.busy());
    }

    #[test]
    fn divergent_replies_do_not_complete() {
        let mut c = Client::new(ClientId(7), membership(), b"secret");
        c.invoke(Bytes::from_static(b"op"));
        assert!(c.on_reply(reply_from(&c, 0, 1, b"a", Epoch(0))).is_none());
        assert!(c.on_reply(reply_from(&c, 1, 1, b"b", Epoch(0))).is_none());
        // a second vote for "a" completes
        assert!(c.on_reply(reply_from(&c, 2, 1, b"a", Epoch(0))).is_some());
    }

    #[test]
    fn duplicate_and_stale_replies_ignored() {
        let mut c = Client::new(ClientId(7), membership(), b"secret");
        c.invoke(Bytes::from_static(b"op"));
        assert!(c.on_reply(reply_from(&c, 0, 1, b"res", Epoch(0))).is_none());
        // same replica repeating does not count twice
        assert!(c.on_reply(reply_from(&c, 0, 1, b"res", Epoch(0))).is_none());
        // wrong op
        assert!(c.on_reply(reply_from(&c, 1, 9, b"res", Epoch(0))).is_none());
        assert!(c.busy());
    }

    #[test]
    fn forged_reply_tag_rejected() {
        let mut c = Client::new(ClientId(7), membership(), b"secret");
        c.invoke(Bytes::from_static(b"op"));
        let mut r = reply_from(&c, 0, 1, b"res", Epoch(0));
        r.tag = AuthTag([0; 32]);
        assert!(c.on_reply(r).is_none());
        // and a reply signed under a different master secret
        let other = {
            let keyring = Keyring::new(b"other");
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&1u64.to_be_bytes());
            bytes.extend_from_slice(b"res");
            Reply {
                from: ReplicaId(1),
                op: 1,
                result: Bytes::from_static(b"res"),
                epoch: Epoch(0),
                tag: keyring.sign(Principal::Replica(1), &bytes),
            }
        };
        assert!(c.on_reply(other).is_none());
    }

    #[test]
    fn epoch_mismatch_counts_separately() {
        let mut c = Client::new(ClientId(7), membership(), b"secret");
        c.invoke(Bytes::from_static(b"op"));
        assert!(c.on_reply(reply_from(&c, 0, 1, b"res", Epoch(0))).is_none());
        // an epoch-1 reply is a different vote bucket
        assert!(c.on_reply(reply_from(&c, 1, 1, b"res", Epoch(1))).is_none());
        let done = c.on_reply(reply_from(&c, 2, 1, b"res", Epoch(1))).expect("two epoch-1 votes");
        assert_eq!(done.epoch, Epoch(1));
    }

    #[test]
    fn retransmit_reissues_same_op() {
        let mut c = Client::new(ClientId(7), membership(), b"secret");
        let first = c.invoke(Bytes::from_static(b"op"));
        let again = c.retransmit();
        assert_eq!(first.len(), again.len());
        match (&first[0].1, &again[0].1) {
            (Message::Request(a), Message::Request(b)) => {
                assert_eq!(a.op, b.op);
                assert_eq!(a.payload, b.payload);
            }
            _ => panic!("expected requests"),
        }
        // idle client retransmits nothing
        let mut idle = Client::new(ClientId(8), membership(), b"secret");
        idle.next_op = 5;
        assert!(idle.retransmit().is_empty());
    }

    #[test]
    #[should_panic(expected = "in flight")]
    fn closed_loop_enforced() {
        let mut c = Client::new(ClientId(7), membership(), b"secret");
        c.invoke(Bytes::from_static(b"a"));
        c.invoke(Bytes::from_static(b"b"));
    }
}
