//! The replica state machine.
//!
//! A Mod-SMaRt-style replica: sequential consensus slots (PROPOSE → WRITE →
//! ACCEPT with Byzantine quorums), request watchdogs that escalate to a
//! leader change (STOP / STOP-DATA / SYNC), quorum-stable checkpoints with
//! log trimming, state transfer for joining or lagging replicas, and
//! controller-signed replica-set reconfiguration — the feature Lazarus
//! drives (add the new replica, then remove the quarantined one, §7.3).
//!
//! The replica is a *pure state machine*: every input (`on_message`,
//! `on_client_request`, `on_timer`) returns a list of [`Action`]s for the
//! embedding runtime to perform. This keeps the protocol deterministic and
//! lets the same code run under the discrete-event testbed (virtual time)
//! and the threaded runtime (wall-clock benches).
//!
//! # Simplifications vs. a hardened deployment
//!
//! * Message authentication uses pairwise MACs from the simulated
//!   [`Keyring`](crate::crypto::Keyring); leader-change certificates are
//!   accepted from quorum counting without per-vote signatures.
//! * The client-reply cache is not carried by state transfer, so a freshly
//!   transferred replica may re-execute one in-flight duplicate per client
//!   (clients filter by `op`, so this is invisible to callers).

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use bytes::Bytes;
use lazarus_obs::causal::{EventKind, FlightRecorder, TraceCtx, NO_SPAN};
use lazarus_obs::profile::{Profiler, Scope};

use crate::consensus::Instance;
use crate::crypto::{Digest, Keyring, Principal};
use crate::log::{Checkpoint, DecidedLog};
use crate::messages::{
    Batch, CheckpointMsg, ChunkManifest, ConsensusMsg, CstReply, Message, ReconfigCommand, Reply,
    Request, WriteCertificate,
};
use crate::obs::ReplicaObs;
use crate::service::Service;
use crate::storage::{Recovered, Storage};
use crate::types::{ClientId, Epoch, Membership, ReplicaId, SeqNo, View};

/// The pseudo-client identity under which reconfiguration commands enter
/// the total order.
pub const CONTROLLER_CLIENT: ClientId = ClientId(u64::MAX);

/// Timers a replica may arm; durations are chosen by the runtime from the
/// hint carried in [`Action::SetTimer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerId {
    /// Request watchdog (escalates to forwarding, then to a leader change).
    Request,
    /// Waiting for the new leader's SYNC after a view change.
    Sync,
    /// State-transfer retry.
    Cst,
}

/// Per-input context the embedding runtime hands the replica alongside a
/// message or timer. Today it carries the optional causal [`TraceCtx`] of
/// the transport's receive (or timer) span; bundling it as a struct keeps
/// the ingress API at one entry point per input kind, so future per-input
/// metadata (deadlines, priorities) extends this struct instead of forking
/// `on_message` again.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ctx {
    /// Causal context of the input; `None` makes the events recorded while
    /// handling it causal roots.
    pub trace: Option<TraceCtx>,
}

impl Ctx {
    /// An input with no causal context (a root).
    pub const UNTRACED: Ctx = Ctx { trace: None };

    /// An input handled under `trace`: every protocol event recorded while
    /// it runs links to that span.
    pub fn traced(trace: TraceCtx) -> Ctx {
        Ctx { trace: Some(trace) }
    }
}

impl From<Option<TraceCtx>> for Ctx {
    fn from(trace: Option<TraceCtx>) -> Ctx {
        Ctx { trace }
    }
}

/// Effects requested by the state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Send a protocol message to another replica.
    Send(ReplicaId, Message),
    /// Send one shared message to every listed peer.
    ///
    /// The message lives behind an [`Arc`] so runtimes sign and serialize it
    /// once per broadcast and deliver it by reference — the per-peer
    /// delivery set (and wire accounting) is identical to pushing one
    /// [`Action::Send`] per peer, without the per-peer deep clone.
    Broadcast(Vec<ReplicaId>, Arc<Message>),
    /// Send a reply to a client.
    SendClient(ClientId, Reply),
    /// Arm (or re-arm) a timer after the given logical duration.
    SetTimer(TimerId, u64),
    /// Cancel a timer.
    CancelTimer(TimerId),
    /// A slot was executed (`seq`, number of requests) — for metrics.
    Executed(SeqNo, usize),
    /// The membership changed (reconfiguration executed).
    EpochChanged(Membership),
    /// This replica was removed from the membership and stopped.
    Retired,
    /// This replica finished a state transfer at the given slot.
    StateTransferred(SeqNo),
}

/// Per-client at-most-once execution ledger.
///
/// A pipelined client keeps several operations outstanding at once, and a
/// view change can commit them *out of op order* (an abandoned slot's
/// request is re-proposed after a later op already executed). Executed-op
/// tracking is therefore exact, not a monotone high-water mark: `hwm`
/// covers the contiguous executed prefix, and `replies` caches the reply
/// for `hwm` plus every executed op above it — at most the client's
/// pipeline depth plus one entries.
#[derive(Debug, Clone, Default)]
struct ClientLedger {
    /// Every op `<= hwm` has executed.
    hwm: u64,
    /// Cached replies: the op at `hwm` plus executed ops above it.
    replies: BTreeMap<u64, Reply>,
}

impl ClientLedger {
    /// True when `op` already executed (its re-execution must be refused).
    fn executed(&self, op: u64) -> bool {
        op <= self.hwm || self.replies.contains_key(&op)
    }

    /// The cached reply for `op`, when still held.
    fn reply(&self, op: u64) -> Option<&Reply> {
        self.replies.get(&op)
    }

    /// Records an execution, advancing the contiguous prefix and dropping
    /// reply cache entries below it.
    fn record(&mut self, op: u64, reply: Reply) {
        self.replies.insert(op, reply);
        while self.replies.contains_key(&(self.hwm + 1)) {
            self.hwm += 1;
        }
        self.replies.retain(|&o, _| o >= self.hwm);
    }
}

/// Liveness/participation status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Normal operation.
    Active,
    /// Fetching state (joining or recovering from a gap).
    StateTransfer,
    /// Removed from the membership.
    Retired,
}

/// Static replica configuration.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// This replica's identity.
    pub id: ReplicaId,
    /// Initial membership.
    pub membership: Membership,
    /// Checkpoint cadence in slots.
    pub checkpoint_period: u64,
    /// Maximum requests per proposed batch.
    pub max_batch: usize,
    /// Watchdog period hint (logical time units).
    pub request_timeout: u64,
    /// Slot gap that triggers a state transfer.
    pub cst_gap: u64,
    /// Deployment master secret for the keyring.
    pub master_secret: Vec<u8>,
    /// Start in joining mode (fetch state before participating).
    pub join: bool,
    /// View to start in. Leader of view `v` is `replicas[v % n]`, so the
    /// control plane places its chosen leader by booting the whole cluster
    /// at the matching view. Every replica must agree on it.
    pub initial_view: View,
    /// Chunk size for state transfer: snapshots stream as CRC-verifiable
    /// chunks of this many bytes. Must agree cluster-wide (the chunk
    /// manifest a donor derives must match the one the requester
    /// certified).
    pub cst_chunk_bytes: usize,
    /// Consensus pipelining window: how many slots may be in flight above
    /// the last executed slot (BFT-SMaRt-style). 1 (the default) keeps the
    /// classic single-open-slot behaviour; values are clamped to at least 1.
    pub window: u64,
    /// How the leader sizes proposal batches (see [`crate::batcher`]).
    pub batch_policy: crate::batcher::BatchPolicy,
}

impl ReplicaConfig {
    /// A sensible default configuration for `id` in `membership`.
    pub fn new(id: ReplicaId, membership: Membership) -> ReplicaConfig {
        ReplicaConfig {
            id,
            membership,
            checkpoint_period: 1000,
            max_batch: 400,
            request_timeout: 200,
            cst_gap: 2000,
            master_secret: b"lazarus-deployment".to_vec(),
            join: false,
            initial_view: View(0),
            cst_chunk_bytes: 256 * 1024,
            window: 1,
            batch_policy: crate::batcher::BatchPolicy::Fixed,
        }
    }
}

/// In-progress state transfer bookkeeping for one round (one designee).
#[derive(Debug)]
struct CstState {
    /// Per-peer summary digest + full reply received this round.
    replies: HashMap<ReplicaId, (Digest, CstReply)>,
    /// The certified state once f+1 summaries matched.
    certified: Option<CertifiedCst>,
    /// Round counter; offsets the chunk-to-peer striping so a rotation
    /// spreads re-requests onto different donors.
    designee: usize,
}

/// A state certified by f+1 matching summary digests: at least one of the
/// matching senders is correct, so the checkpoint digest, chunk manifest,
/// suffix batches, membership, and view are all trustworthy.
#[derive(Debug, Clone)]
struct CertifiedCst {
    reply: CstReply,
    /// The replicas whose summaries matched, sorted by id — the only peers
    /// chunk requests go to.
    sources: Vec<ReplicaId>,
}

/// Verified snapshot chunks accumulated across transfer rounds. Lives
/// *outside* [`CstState`] so a designee rotation (which resets the round)
/// keeps the chunks — the heart of resumable state transfer: a partition
/// mid-transfer wastes no completed chunk.
#[derive(Debug)]
struct ChunkStore {
    checkpoint_seq: SeqNo,
    manifest_digest: Digest,
    chunks: Vec<Option<Bytes>>,
}

impl ChunkStore {
    fn done(&self) -> usize {
        self.chunks.iter().filter(|c| c.is_some()).count()
    }
}

/// What a reboot from durable storage recovered, for the embedding runtime
/// (metrics gauge, invariant checking, logs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Slot of the recovered stable checkpoint (genesis when none).
    pub stable_seq: SeqNo,
    /// Digest of the recovered stable checkpoint's snapshot.
    pub stable_digest: Digest,
    /// Decided batches replayed through the service above the checkpoint.
    pub replayed: u64,
    /// True when the journal ended in a torn (partially written) record.
    pub torn_tail: bool,
    /// Deterministic virtual replay cost in µs (byte-derived, not wall
    /// time).
    pub virtual_us: u64,
}

/// The replica state machine (generic over the replicated [`Service`]).
pub struct Replica<S: Service> {
    cfg: ReplicaConfig,
    keyring: Keyring,
    service: S,
    membership: Membership,
    view: View,
    status: Status,

    // Request handling. Digests are cached alongside each queued request —
    // SHA-256 recomputation on every scan dominates profiles otherwise.
    pending: VecDeque<(Digest, Request)>,
    pending_digests: HashSet<Digest>,
    // Pending requests already carried by an in-flight proposal (always a
    // subset of `pending_digests`): with several slots open concurrently,
    // the leader must not propose the same request into two batches.
    // Cleared on view change (re-proposals restore it from certificates).
    in_flight: HashSet<Digest>,
    last_replies: HashMap<ClientId, ClientLedger>,
    watchdog_strikes: u8,
    executed_at_last_strike: SeqNo,

    // Ordering.
    log: DecidedLog,
    insts: BTreeMap<u64, Instance>,
    last_decided: SeqNo,
    future: BTreeMap<u64, Vec<(ReplicaId, ConsensusMsg)>>,

    // Laggard help: the (slot, view) we last re-voted towards each peer, so
    // two up-to-date replicas exchanging stale votes cannot ping-pong help
    // messages forever. At most one entry per peer.
    helped: HashMap<ReplicaId, (SeqNo, View)>,

    // Leader change.
    stops: HashMap<u64, HashSet<ReplicaId>>,
    stop_datas: HashMap<u64, HashMap<ReplicaId, (SeqNo, Vec<WriteCertificate>)>>,
    sent_stop_for: Option<View>,

    // State transfer. The chunk store outlives individual CST rounds so
    // verified chunks survive designee rotation (resumable transfer).
    cst: Option<CstState>,
    chunk_store: Option<ChunkStore>,

    // Optional instrumentation (None = one branch per hook).
    obs: Option<ReplicaObs>,

    // Optional causal flight recorder, plus the context of the input
    // currently being handled — every protocol event recorded while an
    // input runs is parented to that input's receive (or timer) span.
    flight: Option<FlightRecorder>,
    cur_ctx: TraceCtx,

    // Optional phase profiler, plus the root scope of the input currently
    // being handled — internal phases (enqueue/propose/execute/cst) open
    // children of it. `last_batch_fill` is the leader-side batch occupancy
    // the queue sampler reads.
    profiler: Option<Profiler>,
    cur_scope: Option<Scope>,
    last_batch_fill: usize,
}

impl<S: Service> std::fmt::Debug for Replica<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.cfg.id)
            .field("view", &self.view)
            .field("epoch", &self.membership.epoch)
            .field("status", &self.status)
            .field("last_decided", &self.last_decided)
            .finish()
    }
}

impl<S: Service> Replica<S> {
    /// Creates the replica (volatile in-memory log). Joining replicas
    /// immediately request state.
    pub fn new(cfg: ReplicaConfig, service: S) -> (Replica<S>, Vec<Action>) {
        let genesis = service.snapshot();
        let log = DecidedLog::new(cfg.checkpoint_period, genesis);
        Self::boot(Self::fresh(cfg, service, log))
    }

    /// Creates the replica with a durable [`Storage`] backend behind the
    /// decided log: every decided batch and stable checkpoint is written
    /// through, so a later crash can be recovered from via
    /// [`Replica::recover`].
    pub fn with_storage(
        cfg: ReplicaConfig,
        service: S,
        storage: Box<dyn Storage>,
    ) -> (Replica<S>, Vec<Action>) {
        let genesis = service.snapshot();
        let log = DecidedLog::with_storage(cfg.checkpoint_period, genesis, storage);
        Self::boot(Self::fresh(cfg, service, log))
    }

    /// Reboots the replica from what a durable journal recovered: installs
    /// the recovered stable checkpoint into the service, replays the
    /// contiguous decided suffix (client replies suppressed), and resumes
    /// with the journal as the write-through backend. Returns the usual
    /// boot actions plus a [`RecoveryInfo`] for the embedding runtime.
    pub fn recover(
        cfg: ReplicaConfig,
        mut service: S,
        storage: Box<dyn Storage>,
        recovered: Recovered,
    ) -> (Replica<S>, Vec<Action>, RecoveryInfo) {
        let genesis = service.snapshot();
        let torn_tail = recovered.torn_tail;
        let virtual_us = recovered.virtual_recovery_us();
        if let Some(stable) = &recovered.stable {
            service.install(&stable.snapshot);
        }
        let log = DecidedLog::from_recovered(cfg.checkpoint_period, genesis, storage, recovered);
        let stable_seq = log.stable_checkpoint().seq;
        let stable_digest = log.stable_checkpoint().digest;
        let mut replica = Self::fresh(cfg, service, log);
        let mut actions = Vec::new();
        replica.last_decided = stable_seq;
        // Replay the decided suffix with client replies suppressed (the
        // clients were answered before the crash; re-sending would be
        // harmless but noisy). A gap in the journaled suffix ends the
        // replay — slots past a gap cannot be executed in order.
        replica.status = Status::StateTransfer;
        let mut replayed = 0u64;
        for (seq, batch) in replica.log.suffix(stable_seq) {
            if seq.0 != replica.last_decided.0 + 1 {
                break;
            }
            replica.execute_batch(seq, &batch, &mut actions);
            replica.last_decided = seq;
            replayed += 1;
        }
        replica.status = if replica.cfg.join { Status::StateTransfer } else { Status::Active };
        if replica.cfg.join {
            replica.start_cst(&mut actions);
        } else {
            actions.push(Action::SetTimer(TimerId::Request, replica.cfg.request_timeout));
        }
        let info = RecoveryInfo { stable_seq, stable_digest, replayed, torn_tail, virtual_us };
        (replica, actions, info)
    }

    /// Emits the recovery gauge + flight event for a reboot. Separate from
    /// [`Replica::recover`] because instrumentation attaches after
    /// construction ([`Self::attach`]).
    pub fn note_recovered(&mut self, info: &RecoveryInfo) {
        if let Some(obs) = &self.obs {
            obs.recovered(info.stable_seq, info.virtual_us, info.torn_tail);
        }
        self.flight_event(EventKind::Recover, Some(info.stable_seq.0), None, info.virtual_us);
    }

    fn fresh(cfg: ReplicaConfig, service: S, log: DecidedLog) -> Replica<S> {
        let keyring = Keyring::new(&cfg.master_secret);
        let membership = cfg.membership.clone();
        let status = if cfg.join { Status::StateTransfer } else { Status::Active };
        let initial_view = cfg.initial_view;
        Replica {
            cfg,
            keyring,
            service,
            membership,
            view: initial_view,
            status,
            pending: VecDeque::new(),
            pending_digests: HashSet::new(),
            in_flight: HashSet::new(),
            last_replies: HashMap::new(),
            watchdog_strikes: 0,
            executed_at_last_strike: SeqNo(0),
            log,
            insts: BTreeMap::new(),
            last_decided: SeqNo(0),
            future: BTreeMap::new(),
            helped: HashMap::new(),
            stops: HashMap::new(),
            stop_datas: HashMap::new(),
            sent_stop_for: None,
            cst: None,
            chunk_store: None,
            obs: None,
            flight: None,
            cur_ctx: TraceCtx::root(NO_SPAN, NO_SPAN),
            profiler: None,
            cur_scope: None,
            last_batch_fill: 0,
        }
    }

    fn boot(mut replica: Replica<S>) -> (Replica<S>, Vec<Action>) {
        let mut actions = Vec::new();
        if replica.cfg().join {
            replica.start_cst(&mut actions);
        } else {
            actions.push(Action::SetTimer(TimerId::Request, replica.cfg.request_timeout));
        }
        (replica, actions)
    }

    /// The static configuration.
    pub fn cfg(&self) -> &ReplicaConfig {
        &self.cfg
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.cfg.id
    }

    /// Current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// Current membership.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Participation status.
    pub fn status(&self) -> Status {
        self.status
    }

    /// Highest contiguously decided (and executed) slot.
    pub fn last_decided(&self) -> SeqNo {
        self.last_decided
    }

    /// Read access to the replicated service.
    pub fn service(&self) -> &S {
        &self.service
    }

    /// Read access to the decided log.
    pub fn decided_log(&self) -> &DecidedLog {
        &self.log
    }

    /// True when this replica currently leads.
    pub fn is_leader(&self) -> bool {
        self.membership.leader(self.view) == self.cfg.id
    }

    /// Attaches an instrumentation bundle: metrics, health tracking, the
    /// causal flight recorder, and the phase profiler — each optional,
    /// applied in dependency order (the health tracker hooks into the
    /// metrics bundle, so `obs` attaches first).
    ///
    /// * metrics (`obs`) — per-replica counters/histograms against the
    ///   shared registry and injected clock; without one every hook is a
    ///   single `Option` branch;
    /// * health — the streaming tracker; the replica registers itself under
    ///   its current view and leader (requires metrics, now or earlier);
    /// * flight — protocol milestones (propose / write / accept / commit /
    ///   exec / view-change / help re-vote / cst) recorded into its ring,
    ///   each parented to the context of the input being handled;
    /// * profiler — every input opens a scope at
    ///   `replica_<id>;on_message;<label>` (or `on_timer`) with internal
    ///   phases as children. In the discrete-event testbed the clock is
    ///   frozen while a handler runs, so scopes contribute deterministic
    ///   call counts; virtual time is charged by the embedder.
    pub fn attach(&mut self, instruments: crate::obs::Instruments) {
        if let Some(obs) = &instruments.obs {
            self.obs = Some(ReplicaObs::new(obs, self.cfg.id));
        }
        if let Some(health) = instruments.health {
            let view = self.view;
            let leader = self.membership.leader(view);
            if let Some(obs) = self.obs.as_mut() {
                obs.attach_health(health, view, leader);
            }
        }
        if let Some(flight) = instruments.flight {
            self.flight = Some(flight);
        }
        if let Some(profiler) = instruments.profiler {
            self.profiler = Some(profiler);
        }
    }

    /// Attaches the metrics bundle only.
    #[deprecated(note = "use Replica::attach with an Instruments bundle")]
    pub fn attach_obs(&mut self, obs: &lazarus_obs::Obs) {
        self.attach(crate::obs::Instruments::new().with_obs(obs.clone()));
    }

    /// Attaches the streaming health tracker only.
    #[deprecated(note = "use Replica::attach with an Instruments bundle")]
    pub fn attach_health(&mut self, health: lazarus_obs::HealthTracker) {
        self.attach(crate::obs::Instruments::new().with_health(health));
    }

    /// Attaches the causal flight recorder only.
    #[deprecated(note = "use Replica::attach with an Instruments bundle")]
    pub fn attach_flight(&mut self, flight: FlightRecorder) {
        self.attach(crate::obs::Instruments::new().with_flight(flight));
    }

    /// The attached flight recorder, if any.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Attaches the phase profiler only.
    #[deprecated(note = "use Replica::attach with an Instruments bundle")]
    pub fn attach_profiler(&mut self, profiler: Profiler) {
        self.attach(crate::obs::Instruments::new().with_profiler(profiler));
    }

    /// Opens the root scope for one input; the returned value is stored in
    /// `cur_scope` so phase children can be created from `&self`.
    fn input_scope(&self, entry: &str, label: &str) -> Option<Scope> {
        self.profiler
            .as_ref()
            .map(|p| p.scope(&[&format!("replica_{}", self.cfg.id.0), entry, label]))
    }

    /// A child scope of the current input's root scope, if profiling.
    fn phase_scope(&self, name: &str) -> Option<Scope> {
        self.cur_scope.as_ref().map(|s| s.child(name))
    }

    /// Client requests queued but not yet proposed (queue sampler).
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    /// Consensus instances open above the last executed slot — in-flight
    /// ordering work plus any decided-but-unexecuted slots waiting for the
    /// contiguous prefix to catch up (with `window > 1` decisions can land
    /// out of order; execution stays in slot order).
    pub fn open_instances(&self) -> usize {
        self.insts.range(self.last_decided.0 + 1..).count()
    }

    /// Requests taken into this replica's most recent proposal (leader-side
    /// batch occupancy; stays at its last value on non-leaders).
    pub fn last_batch_fill(&self) -> usize {
        self.last_batch_fill
    }

    /// Records one protocol event under the current input's context.
    fn flight_event(&self, event: EventKind, seq: Option<u64>, view: Option<u64>, extra: u64) {
        if let Some(flight) = &self.flight {
            flight.protocol(event, seq, view, &self.cur_ctx, extra);
        }
    }

    /// Counts a refused ingress message under
    /// `bft_rejected_messages_total{reason=…}`. Rejection is the designed
    /// response to forged, stale, or Byzantine traffic: drop, count, move
    /// on — never panic. This variant is for rejections with no
    /// attributable replica (client-origin, or benign pipeline skew like
    /// votes on already-decided slots); it carries no health charge.
    fn reject(&self, reason: &'static str) {
        if let Some(obs) = &self.obs {
            obs.rejected(reason, None);
        }
    }

    /// As [`Self::reject`], but the refused message came from member
    /// replica `from` whose own behaviour caused the refusal — the health
    /// tracker charges the rejection to that sender.
    fn reject_from(&self, reason: &'static str, from: ReplicaId) {
        if let Some(obs) = &self.obs {
            obs.rejected(reason, Some(from));
        }
    }

    /// Validity gate for proposed batches: every request must carry a valid
    /// client (or controller) tag. A leader that tampers with request
    /// payloads produces a batch that fails this check everywhere, so the
    /// corruption is rejected before it can be voted on — let alone
    /// executed.
    fn verify_batch(&self, batch: &Batch) -> bool {
        batch.requests().iter().all(|request| {
            let principal = if request.client == CONTROLLER_CLIENT {
                Principal::Controller
            } else {
                Principal::Client(request.client.0)
            };
            let bytes = Request::auth_bytes(request.client, request.op, &request.payload);
            self.keyring.verify(principal, &bytes, &request.tag)
        })
    }

    // -----------------------------------------------------------------
    // Inputs
    // -----------------------------------------------------------------

    /// Handles a client request arriving at this replica.
    pub fn on_client_request(&mut self, request: Request) -> Vec<Action> {
        let mut actions = Vec::new();
        self.enqueue_request(request, &mut actions);
        self.maybe_propose(&mut actions);
        actions
    }

    /// Handles a protocol message under the given input [`Ctx`]: the
    /// transport passes the [`TraceCtx`] of its receive span (adopted from
    /// the wire envelope) via [`Ctx::traced`], and every protocol event
    /// recorded while this input runs links to it; [`Ctx::UNTRACED`] makes
    /// the events causal roots.
    pub fn on_message(&mut self, message: Message, ctx: Ctx) -> Vec<Action> {
        self.cur_ctx = ctx.trace.unwrap_or(TraceCtx::root(NO_SPAN, NO_SPAN));
        if self.status == Status::Retired {
            return Vec::new();
        }
        self.cur_scope = self.input_scope("on_message", message.label());
        if let Some(obs) = &self.obs {
            obs.message_in(message.label());
        }
        let mut actions = Vec::new();
        match message {
            Message::Request(request) => {
                self.enqueue_request(request, &mut actions);
                self.maybe_propose(&mut actions);
            }
            Message::Consensus { from, msg } => {
                self.on_consensus(from, msg, &mut actions);
            }
            Message::Checkpoint { from, msg } => {
                self.on_checkpoint(from, msg);
            }
            Message::Stop { from, view } => {
                self.on_stop(from, view, &mut actions);
            }
            Message::StopData { from, new_view, last_decided, prepared } => {
                self.on_stop_data(from, new_view, last_decided, prepared, &mut actions);
            }
            Message::Sync { from, new_view, repropose } => {
                self.on_sync(from, new_view, repropose, &mut actions);
            }
            Message::CstRequest { from, from_seq } => {
                self.on_cst_request(from, from_seq, &mut actions);
            }
            Message::CstReply { from, reply } => {
                self.on_cst_reply(from, *reply, &mut actions);
            }
            Message::CstChunkRequest { from, seq, index } => {
                self.on_cst_chunk_request(from, seq, index, &mut actions);
            }
            Message::CstChunkReply { from, seq, index, data } => {
                self.on_cst_chunk_reply(from, seq, index, data, &mut actions);
            }
            Message::Reconfig(cmd) => {
                self.on_reconfig_command(cmd, &mut actions);
            }
        }
        self.cur_scope = None;
        actions
    }

    /// [`on_message`](Replica::on_message) with the context passed as a
    /// bare optional trace.
    #[deprecated(note = "use on_message(message, ctx) with a replica::Ctx")]
    pub fn on_message_traced(&mut self, message: Message, ctx: Option<TraceCtx>) -> Vec<Action> {
        self.on_message(message, Ctx::from(ctx))
    }

    /// Handles a timer expiry under the given input [`Ctx`] (the
    /// transport's timer span — timers are causal roots of everything they
    /// trigger, e.g. watchdog-driven view changes).
    pub fn on_timer(&mut self, timer: TimerId, ctx: Ctx) -> Vec<Action> {
        self.cur_ctx = ctx.trace.unwrap_or(TraceCtx::root(NO_SPAN, NO_SPAN));
        if self.status == Status::Retired {
            return Vec::new();
        }
        let timer_label = match timer {
            TimerId::Request => "request",
            TimerId::Sync => "sync",
            TimerId::Cst => "cst",
        };
        self.cur_scope = self.input_scope("on_timer", timer_label);
        let mut actions = Vec::new();
        match timer {
            TimerId::Request => self.on_request_timer(&mut actions),
            TimerId::Sync => {
                // The new leader never sent SYNC — stop again.
                if self.status == Status::Active {
                    self.trigger_stop(&mut actions);
                }
            }
            TimerId::Cst => {
                if self.status == Status::StateTransfer {
                    // Rotate the donor stripe and retry. Verified chunks are
                    // kept — the next round only fetches what is missing.
                    self.rotate_cst(&mut actions);
                }
            }
        }
        self.cur_scope = None;
        actions
    }

    /// [`on_timer`](Replica::on_timer) with the context passed as a bare
    /// optional trace.
    #[deprecated(note = "use on_timer(timer, ctx) with a replica::Ctx")]
    pub fn on_timer_traced(&mut self, timer: TimerId, ctx: Option<TraceCtx>) -> Vec<Action> {
        self.on_timer(timer, Ctx::from(ctx))
    }

    // -----------------------------------------------------------------
    // Requests and proposals
    // -----------------------------------------------------------------

    fn enqueue_request(&mut self, request: Request, _actions: &mut [Action]) {
        let _phase = self.phase_scope("enqueue");
        // Authentication: reject forged client tags.
        let principal = if request.client == CONTROLLER_CLIENT {
            Principal::Controller
        } else {
            Principal::Client(request.client.0)
        };
        let bytes = Request::auth_bytes(request.client, request.op, &request.payload);
        if !self.keyring.verify(principal, &bytes, &request.tag) {
            self.reject("bad-request-sig");
            return;
        }
        // Drop already-answered or queued duplicates.
        if let Some(ledger) = self.last_replies.get(&request.client) {
            if ledger.executed(request.op) && request.client != CONTROLLER_CLIENT {
                self.reject("stale-request");
                return;
            }
        }
        let digest = request.digest();
        if self.pending_digests.contains(&digest) {
            self.reject("duplicate-request");
            return;
        }
        self.pending_digests.insert(digest);
        self.pending.push_back((digest, request));
    }

    fn open_slot(&self) -> SeqNo {
        self.last_decided.next()
    }

    /// The configured pipelining window, clamped to at least one slot.
    fn window(&self) -> u64 {
        self.cfg.window.max(1)
    }

    /// Highest slot currently eligible for consensus work: slots in
    /// `(last_decided, horizon]` are in the window; traffic beyond it is
    /// buffered in `future` until execution slides the window forward.
    fn horizon(&self) -> u64 {
        self.last_decided.0 + self.window()
    }

    fn instance(&mut self, seq: SeqNo) -> &mut Instance {
        let view = self.view;
        self.insts.entry(seq.0).or_insert_with(|| Instance::new(seq, view))
    }

    /// Fills vacant window slots with proposals. With `window=1` this is
    /// the classic single-open-slot assembler; with a wider window the
    /// leader keeps proposing into free slots while earlier slots are still
    /// gathering votes, and the [`crate::batcher`] policy decides how much
    /// of the eligible queue each proposal carries.
    fn maybe_propose(&mut self, actions: &mut Vec<Action>) {
        if self.status != Status::Active || !self.is_leader() {
            return;
        }
        loop {
            // Lowest vacant in-window slot, and the free-slot count the
            // adaptive policy divides the queue over.
            let mut target = None;
            let mut free = 0u64;
            for s in self.last_decided.0 + 1..=self.horizon() {
                let vacant = self.insts.get(&s).is_none_or(|i| i.batch.is_none() && !i.decided);
                if vacant {
                    free += 1;
                    if target.is_none() {
                        target = Some(SeqNo(s));
                    }
                }
            }
            let Some(seq) = target else { return };
            let eligible = self.pending.len().saturating_sub(self.in_flight.len());
            let take = crate::batcher::plan_take(
                self.cfg.batch_policy,
                eligible,
                free,
                self.cfg.max_batch,
            );
            if take == 0 {
                return;
            }
            let _phase = self.phase_scope("propose");
            self.last_batch_fill = take;
            let mut taken: Vec<Digest> = Vec::with_capacity(take);
            let mut requests: Vec<Request> = Vec::with_capacity(take);
            for (digest, request) in &self.pending {
                if requests.len() == take {
                    break;
                }
                if self.in_flight.contains(digest) {
                    continue;
                }
                taken.push(*digest);
                requests.push(request.clone());
            }
            self.in_flight.extend(taken);
            let view = self.view;
            let batch = Batch::new(requests);
            let msg = ConsensusMsg::Propose { view, seq, batch: batch.clone() };
            self.broadcast_consensus(msg.clone(), actions);
            self.handle_consensus_local(self.cfg.id, msg, actions);
        }
    }

    /// Emits one [`Action::Broadcast`] of `message` to every other replica.
    fn broadcast(&self, message: Message, actions: &mut Vec<Action>) {
        let peers: Vec<ReplicaId> = self.membership.others(self.cfg.id).collect();
        if !peers.is_empty() {
            actions.push(Action::Broadcast(peers, Arc::new(message)));
        }
    }

    fn broadcast_consensus(&self, msg: ConsensusMsg, actions: &mut Vec<Action>) {
        self.broadcast(Message::Consensus { from: self.cfg.id, msg }, actions);
    }

    fn on_consensus(&mut self, from: ReplicaId, msg: ConsensusMsg, actions: &mut Vec<Action>) {
        let seq = msg.seq();
        if seq <= self.last_decided {
            self.reject("stale-consensus");
            // A member still voting on the slot we just decided is lagging
            // one slot behind (its votes were lost). Decided values are
            // permanent, so re-voting WRITE + ACCEPT for the logged batch is
            // always safe — and it lets the laggard close the slot without a
            // full state transfer. Without this, a replica that decided a
            // slot alone stops voting on it ("stale") and the remaining
            // voters may sit just below quorum forever.
            // At most one help per (peer, slot, view): our help votes are
            // themselves consensus messages for the helper's own decided
            // slot, so unthrottled help between two up-to-date replicas
            // would storm back and forth indefinitely.
            let view = msg.view();
            if seq == self.last_decided
                && from != self.cfg.id
                && self.membership.contains(from)
                && self.helped.get(&from) != Some(&(seq, view))
            {
                if let Some(batch) = self.log.get(seq) {
                    self.helped.insert(from, (seq, view));
                    if let Some(obs) = &self.obs {
                        obs.help_revote(from, seq);
                    }
                    self.flight_event(
                        EventKind::HelpRevote,
                        Some(seq.0),
                        Some(view.0),
                        u64::from(from.0),
                    );
                    let digest = batch.digest();
                    for vote in [
                        ConsensusMsg::Write { view, seq, digest },
                        ConsensusMsg::Accept { view, seq, digest },
                    ] {
                        actions.push(Action::Send(
                            from,
                            Message::Consensus { from: self.cfg.id, msg: vote },
                        ));
                    }
                }
            }
            return;
        }
        if self.status == Status::StateTransfer {
            // Keep the evidence; it is replayed after the transfer.
            self.future.entry(seq.0).or_default().push((from, msg));
            return;
        }
        if self.status != Status::Active {
            return;
        }
        if !self.membership.contains(from) {
            self.reject("non-member");
            return;
        }
        if seq.0 > self.horizon() {
            // Beyond the window: buffer. If the cluster is provably past our
            // window (f+1 distinct senders vouch for a slot beyond it — at
            // least one of them is correct) or the gap is large, transfer
            // state.
            self.future.entry(seq.0).or_default().push((from, msg));
            let distinct: HashSet<ReplicaId> = self
                .future
                .get(&seq.0)
                .map(|v| v.iter().map(|(f, _)| *f).collect())
                .unwrap_or_default();
            if distinct.len() > self.membership.f()
                || seq.0 > self.last_decided.0 + self.cfg.cst_gap
            {
                self.start_cst(actions);
            }
            return;
        }
        self.handle_consensus_local(from, msg, actions);
    }

    /// Core consensus handling for one in-window slot.
    fn handle_consensus_local(
        &mut self,
        from: ReplicaId,
        msg: ConsensusMsg,
        actions: &mut Vec<Action>,
    ) {
        let seq = msg.seq();
        // Callers gate on the window, but replaying buffered traffic can
        // decide slots mid-loop — messages that went stale (or slid beyond
        // the advancing horizon) while buffered are dropped here rather
        // than resurrecting bookkeeping for a closed slot.
        if seq.0 <= self.last_decided.0 || seq.0 > self.horizon() {
            return;
        }
        let view = self.view;
        match msg {
            ConsensusMsg::Propose { view: pview, seq, batch } => {
                if pview != view {
                    self.reject_from("wrong-view", from);
                    return;
                }
                // Only the leader of the view may propose.
                if from != self.membership.leader(view) {
                    self.reject_from("not-leader", from);
                    return;
                }
                // Our own proposals were tag-verified request by request as
                // they were enqueued; a remote leader's batch gets the full
                // validity check here.
                if from != self.cfg.id && !self.verify_batch(&batch) {
                    self.reject_from("bad-batch", from);
                    return;
                }
                let inst = self.instance(seq);
                if !inst.set_proposal(pview, batch) {
                    self.reject_from("equivocation", from);
                    return;
                }
                if let Some(obs) = self.obs.as_mut() {
                    obs.proposal_seen(seq);
                }
                self.flight_event(EventKind::Propose, Some(seq.0), Some(pview.0), 0);
            }
            ConsensusMsg::Write { view: wview, seq, digest } => {
                self.instance(seq).on_write(from, wview, digest);
            }
            ConsensusMsg::Accept { view: aview, seq, digest } => {
                self.instance(seq).on_accept(from, aview, digest);
            }
        }
        self.try_advance(seq, actions);
    }

    /// Drives one slot through its phases as evidence accumulates. Slots
    /// advance independently — any in-window slot (or a view-change
    /// re-proposal just beyond it) may reach a decision out of order; only
    /// *execution* is serialized, by [`Self::execute_ready`].
    fn try_advance(&mut self, seq: SeqNo, actions: &mut Vec<Action>) {
        if seq.0 <= self.last_decided.0 {
            return;
        }
        let quorum = self.membership.quorum();
        let view = self.view;
        let me = self.cfg.id;

        let inst = match self.insts.get_mut(&seq.0) {
            Some(i) => i,
            None => return,
        };
        if inst.view != view || inst.decided {
            return;
        }
        let digest = match inst.digest {
            Some(d) => d,
            None => return, // no proposal yet
        };
        // Phase 1 → 2: echo the proposal.
        if !inst.sent_write {
            inst.sent_write = true;
            inst.on_write(me, view, digest);
            let msg = ConsensusMsg::Write { view, seq, digest };
            self.broadcast_consensus(msg, actions);
            self.flight_event(EventKind::Write, Some(seq.0), Some(view.0), 0);
            if let Some(obs) = self.obs.as_mut() {
                obs.wrote(seq);
            }
            // fallthrough to re-check quorums with our own vote
        }
        let inst = self.insts.get_mut(&seq.0).expect("instance exists");
        // Phase 2 → 3: write quorum observed.
        if !inst.sent_accept && inst.write_votes() >= quorum {
            inst.sent_accept = true;
            inst.on_accept(me, view, digest);
            let msg = ConsensusMsg::Accept { view, seq, digest };
            self.broadcast_consensus(msg, actions);
            self.flight_event(EventKind::Accept, Some(seq.0), Some(view.0), 0);
            if let Some(obs) = self.obs.as_mut() {
                obs.accepted(seq);
            }
        }
        let inst = self.insts.get_mut(&seq.0).expect("instance exists");
        // Decision. The slot may be ahead of the contiguous prefix — it
        // stays decided-but-unexecuted (the gap `open_instances()` reports)
        // until its predecessors land.
        if inst.accept_votes() >= quorum && inst.batch.is_some() {
            inst.decided = true;
            self.execute_ready(actions);
        }
    }

    /// Applies the contiguous prefix of decided slots in order: log append,
    /// execution, checkpointing — then replays buffered traffic that slid
    /// into the advanced window and refills it with proposals. Decisions
    /// landing out of order wait in `insts` until the slot below them
    /// executes.
    fn execute_ready(&mut self, actions: &mut Vec<Action>) {
        loop {
            let next = self.open_slot();
            let ready =
                self.insts.get(&next.0).is_some_and(|inst| inst.decided && inst.batch.is_some());
            if !ready {
                break;
            }
            let Some(inst) = self.insts.remove(&next.0) else { break };
            let Some(batch) = inst.batch else { break };
            let checkpoint_due = self.log.append(next, batch.clone());
            self.execute_batch(next, &batch, actions);
            self.last_decided = next;
            if let Some(obs) = self.obs.as_mut() {
                obs.decided(next);
            }
            self.flight_event(
                EventKind::Commit,
                Some(next.0),
                Some(self.view.0),
                batch.len() as u64,
            );
            if checkpoint_due {
                let snapshot = self.service.snapshot();
                let digest = self.log.local_checkpoint(next, snapshot);
                let msg = CheckpointMsg { seq: next, digest };
                self.broadcast(Message::Checkpoint { from: self.cfg.id, msg }, actions);
                // Count our own vote.
                let quorum = self.membership.quorum();
                self.log.on_checkpoint_vote(self.cfg.id, next, digest, quorum);
                if let Some(obs) = &self.obs {
                    obs.checkpoint(next);
                }
            }
            // Progress resets the watchdog escalation (and its baseline, so
            // the next timer tick doesn't see stale progress).
            self.watchdog_strikes = 0;
            self.executed_at_last_strike = next;
        }

        // Execution slid the window forward: replay buffered messages for
        // every slot now inside it, lowest first.
        while let Some(slot) = self.future.range(..=self.horizon()).next().map(|(&slot, _)| slot) {
            let Some(buffered) = self.future.remove(&slot) else { break };
            for (from, msg) in buffered {
                self.handle_consensus_local(from, msg, actions);
            }
        }
        self.maybe_propose(actions);
    }

    fn execute_batch(&mut self, seq: SeqNo, batch: &Batch, actions: &mut Vec<Action>) {
        let _phase = self.phase_scope("execute");
        let mut executed = 0usize;
        for request in batch.requests() {
            let digest = request.digest();
            if self.pending_digests.remove(&digest) {
                self.in_flight.remove(&digest);
                if let Some(pos) = self.pending.iter().position(|(d, _)| *d == digest) {
                    self.pending.remove(pos);
                }
            }
            if request.client == CONTROLLER_CLIENT {
                self.apply_reconfig_payload(&request.payload, actions);
                executed += 1;
                continue;
            }
            // At-most-once execution per (client, op): a duplicate with a
            // cached reply gets the cached reply resent; an executed op
            // whose reply aged out of the cache is silently refused.
            if let Some(ledger) = self.last_replies.get(&request.client) {
                if let Some(reply) = ledger.reply(request.op) {
                    actions.push(Action::SendClient(request.client, reply.clone()));
                    continue;
                }
                if ledger.executed(request.op) {
                    continue;
                }
            }
            let result = self.service.execute(request.client, &request.payload);
            executed += 1;
            let reply = self.make_reply(request.op, result);
            self.last_replies.entry(request.client).or_default().record(request.op, reply.clone());
            if self.status != Status::StateTransfer {
                actions.push(Action::SendClient(request.client, reply));
            }
        }
        if let Some(obs) = &self.obs {
            obs.executed(executed);
        }
        self.flight_event(EventKind::Exec, Some(seq.0), None, executed as u64);
        actions.push(Action::Executed(seq, executed));
    }

    fn make_reply(&self, op: u64, result: Bytes) -> Reply {
        let mut bytes = Vec::with_capacity(16 + result.len());
        bytes.extend_from_slice(&op.to_be_bytes());
        bytes.extend_from_slice(&result);
        let tag = self.keyring.sign(Principal::Replica(self.cfg.id.0), &bytes);
        Reply { from: self.cfg.id, op, result, epoch: self.membership.epoch, tag }
    }

    // -----------------------------------------------------------------
    // Watchdog / leader change
    // -----------------------------------------------------------------

    fn on_request_timer(&mut self, actions: &mut Vec<Action>) {
        actions.push(Action::SetTimer(TimerId::Request, self.cfg.request_timeout));
        if self.status != Status::Active || self.pending.is_empty() {
            self.watchdog_strikes = 0;
            return;
        }
        let progressed = self.last_decided > self.executed_at_last_strike;
        self.executed_at_last_strike = self.last_decided;
        if progressed {
            self.watchdog_strikes = 0;
            return;
        }
        self.watchdog_strikes = self.watchdog_strikes.saturating_add(1);
        match self.watchdog_strikes {
            1 => {
                // First strike: forward pending requests to the leader.
                let leader = self.membership.leader(self.view);
                if leader != self.cfg.id {
                    for (_, request) in self.pending.iter().take(self.cfg.max_batch) {
                        actions.push(Action::Send(leader, Message::Request(request.clone())));
                    }
                } else {
                    self.maybe_propose(actions);
                }
            }
            _ => {
                // Second strike: the leader is faulty — change it.
                self.trigger_stop(actions);
                self.watchdog_strikes = 0;
            }
        }
    }

    fn trigger_stop(&mut self, actions: &mut Vec<Action>) {
        let view = self.view;
        if self.sent_stop_for.is_some_and(|v| v >= view) {
            // Already stopped for this view, yet the watchdog fired again:
            // our STOP may have been lost (drops, partitions). Re-broadcast
            // it — STOP votes live in per-view sets, so retransmission is
            // idempotent, and without it a single lost STOP wedges the
            // leader change forever.
            self.broadcast(Message::Stop { from: self.cfg.id, view }, actions);
            return;
        }
        self.sent_stop_for = Some(view);
        self.broadcast(Message::Stop { from: self.cfg.id, view }, actions);
        self.record_stop(self.cfg.id, view, actions);
    }

    fn on_stop(&mut self, from: ReplicaId, view: View, actions: &mut Vec<Action>) {
        if self.status != Status::Active {
            return;
        }
        if !self.membership.contains(from) {
            self.reject("non-member");
            return;
        }
        if view < self.view {
            self.reject("stale-view-change");
            return;
        }
        self.record_stop(from, view, actions);
    }

    fn record_stop(&mut self, from: ReplicaId, view: View, actions: &mut Vec<Action>) {
        self.stops.entry(view.0).or_default().insert(from);
        let f = self.membership.f();
        // Regency catch-up (Mod-SMaRt): f + 1 distinct replicas — at least
        // one of them correct — are stopping a view *ahead* of ours, so we
        // missed one or more leader changes (their SYNCs were lost). Views
        // can otherwise split permanently: each replica STOPs only its own
        // view, no view ever gathers a quorum, and every view's leader sits
        // in a different view. Adopt the lowest such view and join its wave.
        let jump = self
            .stops
            .iter()
            .filter(|&(&v, votes)| v > self.view.0 && votes.len() > f)
            .map(|(&v, _)| v)
            .min();
        if let Some(v) = jump {
            self.adopt_view(View(v));
        }
        let cur = self.view;
        let count = self.stops.get(&cur.0).map(HashSet::len).unwrap_or(0);
        if count > f && self.sent_stop_for.is_none_or(|v| v < cur) {
            // Join the stop wave (Mod-SMaRt's f+1 amplification).
            self.sent_stop_for = Some(cur);
            self.broadcast(Message::Stop { from: self.cfg.id, view: cur }, actions);
            self.stops.entry(cur.0).or_default().insert(self.cfg.id);
        }
        let count = self.stops.get(&cur.0).map(HashSet::len).unwrap_or(0);
        if count >= self.membership.quorum() {
            self.install_view(cur.next(), actions);
        }
    }

    /// Jumps straight to `view` without a STOP quorum of our own — only
    /// called when f + 1 replicas are already stopping it. Only the view
    /// number moves: open instances keep their votes and write certificates
    /// untouched, because [`Replica::install_view`] captures that evidence
    /// for STOP-DATA *before* resetting the slots — wiping it here would
    /// let the new leader re-propose over a value some replica already
    /// accepted (or decided), violating agreement.
    fn adopt_view(&mut self, view: View) {
        self.view = view;
        self.flight_event(EventKind::ViewChange, None, Some(view.0), 1);
    }

    fn install_view(&mut self, new_view: View, actions: &mut Vec<Action>) {
        self.view = new_view;
        self.stops.remove(&new_view.0.saturating_sub(1));
        let new_leader = self.membership.leader(new_view);
        if let Some(obs) = self.obs.as_mut() {
            obs.view_change(new_view, new_leader);
        }
        self.flight_event(EventKind::ViewChange, None, Some(new_view.0), 0);
        // Capture the whole window's evidence *before* resetting its slots —
        // write certificates and out-of-order decisions are what the new
        // leader must respect.
        let prepared = self.prepared_certificates();
        let open_slots: Vec<u64> =
            self.insts.range(self.last_decided.0 + 1..).map(|(&s, _)| s).collect();
        for s in open_slots {
            if let Some(inst) = self.insts.get_mut(&s) {
                inst.reset_for_view(new_view);
            }
        }
        // Every undecided in-flight proposal is abandoned; SYNC re-proposals
        // re-mark what they carry forward.
        self.in_flight.clear();
        let leader = new_leader;
        if leader == self.cfg.id {
            let last_decided = self.last_decided;
            let entry = self.stop_datas.entry(new_view.0).or_default();
            entry.insert(self.cfg.id, (last_decided, prepared));
            self.maybe_sync(new_view, actions);
        } else {
            actions.push(Action::Send(
                leader,
                Message::StopData {
                    from: self.cfg.id,
                    new_view,
                    last_decided: self.last_decided,
                    prepared,
                },
            ));
            actions.push(Action::SetTimer(TimerId::Sync, self.cfg.request_timeout * 4));
        }
    }

    fn on_stop_data(
        &mut self,
        from: ReplicaId,
        new_view: View,
        last_decided: SeqNo,
        prepared: Vec<WriteCertificate>,
        actions: &mut Vec<Action>,
    ) {
        if self.status != Status::Active {
            return;
        }
        if !self.membership.contains(from) {
            self.reject("non-member");
            return;
        }
        if self.membership.leader(new_view) != self.cfg.id || new_view < self.view {
            self.reject("stale-view-change");
            return;
        }
        let entry = self.stop_datas.entry(new_view.0).or_default();
        entry.insert(from, (last_decided, prepared));
        if new_view == self.view {
            self.maybe_sync(new_view, actions);
        }
    }

    fn maybe_sync(&mut self, new_view: View, actions: &mut Vec<Action>) {
        let quorum = self.membership.quorum();
        let Some(reports) = self.stop_datas.get(&new_view.0) else { return };
        if reports.len() < quorum {
            return;
        }
        // How far anyone claims to have decided. With a pipelined window
        // this can run several slots past our own prefix and still be
        // coverable by re-proposals — every decided slot had 2f+1 ACCEPT
        // senders, so (per the argument below) the quorum's certificates
        // reach it. Only a decided slot with *no* certificate in any report
        // forces a state transfer; that case is detected per slot.
        let max_decided = reports.values().map(|(d, _)| *d).max().unwrap_or(self.last_decided);
        // Highest-view evidence per slot across the quorum's reports. Any
        // slot a replica decided (possibly out of order) had 2f+1 ACCEPT
        // senders, each holding a certificate; at least one of them is a
        // correct member of this stop-data quorum — so every possibly
        // decided slot above our prefix is represented here.
        let mut best: BTreeMap<u64, WriteCertificate> = BTreeMap::new();
        for (_, certs) in reports.values() {
            for cert in certs {
                if cert.seq.0 <= self.last_decided.0 {
                    continue;
                }
                if best.get(&cert.seq.0).is_none_or(|b| cert.view > b.view) {
                    best.insert(cert.seq.0, cert.clone());
                }
            }
        }
        let top = max_decided.0.max(best.keys().next_back().copied().unwrap_or(0));
        let mut repropose = Vec::new();
        // Quorum members behind the leader's own decided prefix may be
        // unable to state-transfer it: certification needs f + 1 matching
        // donors, and after repeated view changes the leader can be the
        // *only* replica holding some decided slots. The SYNC re-carries
        // those from the leader's log (they are decided, so this is the one
        // value consensus can re-confirm) so the quorum converges on a
        // common prefix before any new proposal. Slots already folded into
        // a quorum-stable checkpoint are omitted — enough donors exist for
        // a regular state transfer below that line.
        let min_decided = reports.values().map(|(d, _)| *d).min().unwrap_or(self.last_decided);
        for s in min_decided.0 + 1..=self.last_decided.0 {
            if let Some(batch) = self.log.get(SeqNo(s)) {
                repropose.push(WriteCertificate {
                    view: new_view,
                    seq: SeqNo(s),
                    batch: batch.clone(),
                });
            }
        }
        for s in self.last_decided.0 + 1..=top {
            match best.remove(&s) {
                Some(cert) => repropose.push(cert),
                // Someone already decided this slot but no report carries
                // its certificate (deciders whose slot is fully closed
                // report none). Leading with a fresh proposal could
                // contradict that decision; fetch the decided state instead.
                None if s <= max_decided.0 => {
                    self.start_cst(actions);
                    return;
                }
                // A hole below a certified slot: re-propose an explicit
                // no-op batch so execution stays contiguous without
                // guessing a value nobody certified.
                None => repropose.push(WriteCertificate {
                    view: new_view,
                    seq: SeqNo(s),
                    batch: Batch::new(Vec::new()),
                }),
            }
        }
        self.stop_datas.remove(&new_view.0);
        self.broadcast(
            Message::Sync { from: self.cfg.id, new_view, repropose: repropose.clone() },
            actions,
        );
        self.adopt_sync(new_view, repropose, actions);
    }

    fn on_sync(
        &mut self,
        from: ReplicaId,
        new_view: View,
        repropose: Vec<WriteCertificate>,
        actions: &mut Vec<Action>,
    ) {
        if self.status != Status::Active {
            return;
        }
        if new_view < self.view {
            self.reject("stale-view-change");
            return;
        }
        if self.membership.leader(new_view) != from {
            self.reject_from("not-leader", from);
            return;
        }
        actions.push(Action::CancelTimer(TimerId::Sync));
        self.adopt_sync(new_view, repropose, actions);
    }

    fn adopt_sync(
        &mut self,
        new_view: View,
        repropose: Vec<WriteCertificate>,
        actions: &mut Vec<Action>,
    ) {
        if new_view > self.view {
            self.view = new_view;
            let open_slots: Vec<u64> =
                self.insts.range(self.last_decided.0 + 1..).map(|(&s, _)| s).collect();
            for s in open_slots {
                if let Some(inst) = self.insts.get_mut(&s) {
                    inst.reset_for_view(new_view);
                }
            }
            self.in_flight.clear();
        }
        for cert in repropose {
            if cert.seq.0 <= self.last_decided.0 {
                // Already executed here, but peers re-running consensus for
                // this slot in the sync view still need votes to re-form
                // their quorums — without them, a slot decided by fewer
                // than a quorum of the survivors can never close. The
                // decision is irrevocable, so re-affirming its digest is
                // always safe (and our own log, not the certificate, is
                // the vote's source of truth).
                if let Some(batch) = self.log.get(cert.seq) {
                    let digest = batch.digest();
                    let view = self.view;
                    let seq = cert.seq;
                    self.broadcast_consensus(ConsensusMsg::Write { view, seq, digest }, actions);
                    self.broadcast_consensus(ConsensusMsg::Accept { view, seq, digest }, actions);
                }
                continue;
            }
            // A write certificate travels through STOP-DATA/SYNC, so a
            // Byzantine reporter (or new leader) could smuggle a tampered
            // batch in — the validity gate applies here too.
            if !self.verify_batch(&cert.batch) {
                self.reject("bad-batch");
                continue;
            }
            // Requests re-proposed from a certificate are in flight again —
            // the leader must not batch them a second time.
            for request in cert.batch.requests() {
                let digest = request.digest();
                if self.pending_digests.contains(&digest) {
                    self.in_flight.insert(digest);
                }
            }
            let view = self.view;
            let seq = cert.seq;
            // A slot we decided out of order keeps its (irrevocable) value;
            // the certificate necessarily carries the same one. As above,
            // the decision is re-affirmed so peers that reset the slot
            // during the view change can re-form their quorums around it.
            let inst = self.instance(seq);
            if inst.decided {
                let decided_digest = inst.digest;
                if let Some(digest) = decided_digest {
                    self.broadcast_consensus(ConsensusMsg::Write { view, seq, digest }, actions);
                    self.broadcast_consensus(ConsensusMsg::Accept { view, seq, digest }, actions);
                }
                continue;
            }
            inst.set_proposal(view, cert.batch);
            self.try_advance(seq, actions);
        }
        self.maybe_propose(actions);
    }

    // -----------------------------------------------------------------
    // Checkpointing
    // -----------------------------------------------------------------

    fn on_checkpoint(&mut self, from: ReplicaId, msg: CheckpointMsg) {
        if !self.membership.contains(from) {
            self.reject("non-member");
            return;
        }
        let quorum = self.membership.quorum();
        self.log.on_checkpoint_vote(from, msg.seq, msg.digest, quorum);
    }

    // -----------------------------------------------------------------
    // State transfer
    // -----------------------------------------------------------------

    fn start_cst(&mut self, actions: &mut Vec<Action>) {
        if self.cst.is_some() {
            return;
        }
        self.start_cst_with_designee(0, actions);
    }

    fn start_cst_with_designee(&mut self, designee: usize, actions: &mut Vec<Action>) {
        let _phase = self.phase_scope("cst");
        self.status = Status::StateTransfer;
        let others: Vec<ReplicaId> = self.membership.others(self.cfg.id).collect();
        if others.is_empty() {
            return;
        }
        let designee = designee % others.len();
        self.cst = Some(CstState { replies: HashMap::new(), certified: None, designee });
        self.flight_event(EventKind::CstStart, Some(self.last_decided.0), Some(self.view.0), 0);
        for peer in others {
            actions.push(Action::Send(
                peer,
                Message::CstRequest { from: self.cfg.id, from_seq: self.last_decided },
            ));
        }
        actions.push(Action::SetTimer(TimerId::Cst, self.cfg.request_timeout * 8));
    }

    /// Aborts the current CST round and starts the next one. The chunk
    /// store is *kept*: verified chunks of the same checkpoint resume.
    fn rotate_cst(&mut self, actions: &mut Vec<Action>) {
        let next = self.cst.as_ref().map(|c| c.designee + 1).unwrap_or(0);
        self.cst = None;
        self.start_cst_with_designee(next, actions);
    }

    fn on_cst_request(&mut self, from: ReplicaId, _from_seq: SeqNo, actions: &mut Vec<Action>) {
        if self.status != Status::Active {
            return;
        }
        let stable = self.log.stable_checkpoint();
        let reply = CstReply {
            checkpoint_seq: stable.seq,
            snapshot_digest: stable.digest,
            manifest: ChunkManifest::build(&stable.snapshot, self.cfg.cst_chunk_bytes),
            suffix: self.log.suffix(stable.seq),
            membership: self.membership.clone(),
            view: self.view,
        };
        actions.push(Action::Send(
            from,
            Message::CstReply { from: self.cfg.id, reply: Box::new(reply) },
        ));
    }

    fn on_cst_reply(&mut self, from: ReplicaId, reply: CstReply, actions: &mut Vec<Action>) {
        if self.status != Status::StateTransfer {
            return;
        }
        let n_others = self.membership.others(self.cfg.id).count();
        let Some(cst) = self.cst.as_mut() else { return };
        if cst.certified.is_some() {
            return; // past the summary phase; chunks are in flight
        }
        let base = reply.base_digest();
        let f = reply.membership.f();
        cst.replies.insert(from, (base, reply));
        // f+1 matching base summaries certify the checkpoint digest, chunk
        // manifest and membership — at least one of the matching senders is
        // correct. Their live logs may be caught at different decided
        // points (a donor can be one slot ahead of another while consensus
        // is in flight), so the *suffix* certified is the longest prefix
        // all matching donors agree on; anything past it re-decides through
        // normal consensus once this replica rejoins the ring. Requiring
        // byte-equal suffixes instead would wedge CST whenever the Active
        // donors never quiesce at the same slot. Sources are sorted by id
        // so chunk striping (and everything downstream) is deterministic.
        let mut sources: Vec<ReplicaId> =
            cst.replies.iter().filter(|(_, (b, _))| *b == base).map(|(id, _)| *id).collect();
        sources.sort_unstable();
        if sources.len() > f {
            let mut reply = cst.replies[&sources[0]].1.clone();
            let suffixes: Vec<&[(SeqNo, Batch)]> =
                sources.iter().map(|id| cst.replies[id].1.suffix.as_slice()).collect();
            let shortest = suffixes.iter().map(|s| s.len()).min().unwrap_or(0);
            let mut common = 0;
            while common < shortest {
                let (seq0, batch0) = &suffixes[0][common];
                let agreed = suffixes[1..]
                    .iter()
                    .all(|s| s[common].0 == *seq0 && s[common].1.digest() == batch0.digest());
                if !agreed {
                    break;
                }
                common += 1;
            }
            reply.suffix.truncate(common);
            cst.certified = Some(CertifiedCst { reply, sources });
            self.begin_chunk_phase(actions);
            return;
        }
        if cst.replies.len() >= n_others {
            // Everyone answered yet no summary reached f+1 (peers split
            // across checkpoints, or Byzantine noise): rotate now instead
            // of waiting out the CST timer.
            self.rotate_cst(actions);
        }
    }

    /// Entered once a summary is certified: set up (or resume) the chunk
    /// store and request every missing chunk, striped across the matching
    /// sources.
    fn begin_chunk_phase(&mut self, actions: &mut Vec<Action>) {
        let Some(cert) = self.cst.as_ref().and_then(|c| c.certified.as_ref()) else { return };
        let seq = cert.reply.checkpoint_seq;
        let manifest_digest = cert.reply.manifest.digest();
        let chunk_count = cert.reply.manifest.chunk_count();
        let resumable = self
            .chunk_store
            .as_ref()
            .is_some_and(|s| s.checkpoint_seq == seq && s.manifest_digest == manifest_digest);
        if resumable {
            // Chunks verified before the interruption (designee rotation,
            // partition, donor crash) are kept — zero re-fetch.
            let kept = self.chunk_store.as_ref().map(ChunkStore::done).unwrap_or(0);
            if kept > 0 {
                if let Some(obs) = &self.obs {
                    obs.cst_chunks_resumed(kept as u64);
                }
            }
        } else {
            self.chunk_store = Some(ChunkStore {
                checkpoint_seq: seq,
                manifest_digest,
                chunks: vec![None; chunk_count],
            });
        }
        self.request_missing_chunks(actions);
        self.maybe_finish_cst(actions);
    }

    fn request_missing_chunks(&mut self, actions: &mut Vec<Action>) {
        let Some(cst) = self.cst.as_ref() else { return };
        let Some(cert) = cst.certified.as_ref() else { return };
        let Some(store) = self.chunk_store.as_ref() else { return };
        let seq = cert.reply.checkpoint_seq;
        let me = self.cfg.id;
        for (index, slot) in store.chunks.iter().enumerate() {
            if slot.is_none() {
                let target = cert.sources[(cst.designee + index) % cert.sources.len()];
                actions.push(Action::Send(
                    target,
                    Message::CstChunkRequest { from: me, seq, index: index as u32 },
                ));
            }
        }
    }

    fn on_cst_chunk_request(
        &mut self,
        from: ReplicaId,
        seq: SeqNo,
        index: u32,
        actions: &mut Vec<Action>,
    ) {
        if self.status != Status::Active {
            return;
        }
        let stable = self.log.stable_checkpoint();
        if stable.seq != seq {
            return; // benign: the requester certified a different checkpoint
        }
        // Serving a chunk needs only its byte range, never the per-chunk
        // digests — rebuilding the manifest here would re-hash the whole
        // snapshot for every chunk request and stall the donor process.
        // The range arithmetic mirrors `ChunkManifest::chunk_range` for
        // the same snapshot and the cluster-wide chunk size.
        let chunk_size = self.cfg.cst_chunk_bytes.max(1);
        let start = (index as usize).saturating_mul(chunk_size);
        let end = start.saturating_add(chunk_size).min(stable.snapshot.len());
        if start >= end {
            self.reject_from("bad-chunk", from);
            return;
        }
        let data = Bytes::copy_from_slice(&stable.snapshot[start..end]);
        actions.push(Action::Send(
            from,
            Message::CstChunkReply { from: self.cfg.id, seq, index, data },
        ));
    }

    fn on_cst_chunk_reply(
        &mut self,
        from: ReplicaId,
        seq: SeqNo,
        index: u32,
        data: Bytes,
        actions: &mut Vec<Action>,
    ) {
        if self.status != Status::StateTransfer {
            return;
        }
        let Some(cst) = self.cst.as_ref() else { return };
        let Some(cert) = cst.certified.as_ref() else { return };
        if seq != cert.reply.checkpoint_seq {
            return; // stale round
        }
        let index_us = index as usize;
        let chunk_ok = cert.reply.manifest.verify_chunk(index_us, &data);
        // Where to re-request from on a bad chunk: the next source in the
        // stripe, so a single corrupt donor cannot pin a chunk forever.
        let next_source = cert.sources[(cst.designee + index_us + 1) % cert.sources.len()];
        let (in_range, duplicate) = match self.chunk_store.as_ref() {
            Some(store) => (
                index_us < store.chunks.len(),
                store.chunks.get(index_us).is_some_and(|c| c.is_some()),
            ),
            None => return,
        };
        if !in_range {
            self.reject_from("bad-chunk", from);
            return;
        }
        if duplicate {
            return;
        }
        if !chunk_ok {
            // Corrupt or wrong-sized chunk: count it, charge the sender,
            // and re-request from a different source.
            self.reject_from("bad-chunk", from);
            if let Some(obs) = &self.obs {
                obs.cst_chunk_rejected();
            }
            actions.push(Action::Send(
                next_source,
                Message::CstChunkRequest { from: self.cfg.id, seq, index },
            ));
            return;
        }
        if let Some(store) = self.chunk_store.as_mut() {
            store.chunks[index_us] = Some(data);
        }
        if let Some(obs) = &self.obs {
            obs.cst_chunk_fetched();
        }
        self.flight_event(EventKind::CstChunk, Some(seq.0), None, u64::from(index));
        self.maybe_finish_cst(actions);
    }

    /// Assembles and installs the snapshot once every chunk is present.
    fn maybe_finish_cst(&mut self, actions: &mut Vec<Action>) {
        let complete =
            self.chunk_store.as_ref().is_some_and(|s| s.chunks.iter().all(|c| c.is_some()));
        if !complete {
            return;
        }
        let Some(cert) = self.cst.as_ref().and_then(|c| c.certified.clone()) else { return };
        let Some(store) = self.chunk_store.take() else { return };
        let mut snapshot = Vec::with_capacity(cert.reply.manifest.total_len as usize);
        for chunk in store.chunks.into_iter().flatten() {
            snapshot.extend_from_slice(&chunk);
        }
        let snapshot = Bytes::from(snapshot);
        if Digest::of(&snapshot) != cert.reply.snapshot_digest {
            // Only reachable when f+1 summaries certified a manifest that is
            // inconsistent with its own snapshot digest — collusion beyond
            // the fault budget. Refuse it and retry elsewhere regardless.
            self.reject("bad-snapshot");
            self.rotate_cst(actions);
            return;
        }
        self.finish_cst(cert.reply, snapshot, actions);
    }

    fn finish_cst(&mut self, full: CstReply, snapshot: Bytes, actions: &mut Vec<Action>) {
        // A transfer may certify *less* state than this replica already
        // executed (donors caught mid-decision certify only their common
        // prefix). Installing it would rewind the decided log and let the
        // replica re-vote slots it already executed — a direct agreement
        // violation. Refuse and return to the ring; the gap that triggered
        // the transfer closes through normal consensus or a later, further
        // along transfer.
        let end = full.suffix.last().map(|(s, _)| *s).unwrap_or(full.checkpoint_seq);
        if end <= self.last_decided {
            self.cst = None;
            self.chunk_store = None;
            self.status = Status::Active;
            actions.push(Action::CancelTimer(TimerId::Cst));
            actions.push(Action::SetTimer(TimerId::Request, self.cfg.request_timeout));
            // A leader that detoured into this transfer from a pending view
            // change still owes the quorum its SYNC (stop-data reports are
            // only dropped once the SYNC goes out). Proposing fresh batches
            // here could contradict slots that quorum already decided, and
            // immediately re-running the sync could ping-pong back into the
            // same refused transfer — stay quiet and let the Sync watchdogs
            // escalate the view change if the gap does not close.
            let view = self.view;
            if !(self.stop_datas.contains_key(&view.0)
                && self.membership.leader(view) == self.cfg.id)
            {
                self.maybe_propose(actions);
            }
            return;
        }
        // The log re-verifies the checkpoint digest and the suffix ordering
        // before anything is installed; a forged certified reply is counted
        // and dropped, never trusted.
        let checkpoint = Checkpoint {
            seq: full.checkpoint_seq,
            snapshot: snapshot.clone(),
            digest: full.snapshot_digest,
        };
        if let Err(err) = self.log.install(checkpoint, full.suffix.clone()) {
            self.reject(err.reason());
            self.rotate_cst(actions);
            return;
        }
        self.service.install(&snapshot);
        // Installing the checkpoint rolled the service back to the
        // checkpoint's state; the at-most-once ledger must roll back with it
        // or the suffix replay below would *skip* ops this replica executed
        // before the transfer, leaving the service permanently behind the
        // slots it claims to have decided (state divergence). Rebuilding the
        // ledger from the replayed suffix mirrors journal recovery.
        self.last_replies.clear();
        self.membership = full.membership.clone();
        self.view = full.view;
        self.last_decided = full.checkpoint_seq;
        // Open instances are superseded by the installed prefix — but
        // slots *beyond* it with evidence (decided, or an ACCEPT sent)
        // must survive: a decided slot re-voted differently, or an ACCEPT
        // promise forgotten and missing from a later STOP-DATA report,
        // would let a new leader re-propose over a decided value.
        self.insts.retain(|&s, inst| s > end.0 && inst.evidence().is_some());
        self.in_flight.clear();
        self.cst = None;
        // Replay the decided suffix through the service.
        for (seq, batch) in full.suffix {
            self.execute_batch(seq, &batch, actions);
            self.last_decided = seq;
        }
        self.status = Status::Active;
        actions.push(Action::CancelTimer(TimerId::Cst));
        actions.push(Action::StateTransferred(self.last_decided));
        if let Some(obs) = &self.obs {
            obs.state_transferred(self.last_decided);
        }
        self.flight_event(EventKind::CstDone, Some(self.last_decided.0), Some(self.view.0), 0);
        actions.push(Action::SetTimer(TimerId::Request, self.cfg.request_timeout));
        // Replay consensus traffic buffered during the transfer, for every
        // slot now inside the window (lowest first).
        let last = self.last_decided;
        self.future.retain(|&s, _| s > last.0);
        while let Some(slot) = self.future.range(..=self.horizon()).next().map(|(&slot, _)| slot) {
            let Some(buffered) = self.future.remove(&slot) else { break };
            for (from, msg) in buffered {
                if self.membership.contains(from) {
                    self.handle_consensus_local(from, msg, actions);
                }
            }
        }
        // Same hazard as the refusal path above: with a view change still
        // pending for the (possibly just-installed) current view, the
        // leader's first duty is the SYNC — its certificates re-propose any
        // decided-elsewhere slots; a fresh proposal could contradict them.
        let view = self.view;
        if self.stop_datas.contains_key(&view.0) && self.membership.leader(view) == self.cfg.id {
            self.maybe_sync(view, actions);
            if self.status != Status::Active {
                return;
            }
        }
        self.maybe_propose(actions);
    }

    // -----------------------------------------------------------------
    // Reconfiguration
    // -----------------------------------------------------------------

    /// Builds the ordered-request encoding of a reconfiguration command.
    pub fn encode_reconfig(
        epoch: Epoch,
        add: Option<ReplicaId>,
        remove: Option<ReplicaId>,
    ) -> Bytes {
        let mut out = Vec::with_capacity(12);
        out.extend_from_slice(&epoch.0.to_be_bytes());
        out.extend_from_slice(&add.map(|r| r.0 + 1).unwrap_or(0).to_be_bytes());
        out.extend_from_slice(&remove.map(|r| r.0 + 1).unwrap_or(0).to_be_bytes());
        Bytes::from(out)
    }

    fn decode_reconfig(payload: &[u8]) -> Option<(Epoch, Option<ReplicaId>, Option<ReplicaId>)> {
        if payload.len() != 12 {
            return None;
        }
        let word = |i: usize| {
            u32::from_be_bytes([payload[i], payload[i + 1], payload[i + 2], payload[i + 3]])
        };
        let epoch = Epoch(word(0));
        let add = match word(4) {
            0 => None,
            v => Some(ReplicaId(v - 1)),
        };
        let remove = match word(8) {
            0 => None,
            v => Some(ReplicaId(v - 1)),
        };
        Some((epoch, add, remove))
    }

    fn on_reconfig_command(&mut self, cmd: ReconfigCommand, actions: &mut Vec<Action>) {
        // Verify the controller's authorization.
        let bytes = ReconfigCommand::auth_bytes(cmd.epoch, cmd.add, cmd.remove);
        if !self.keyring.verify(Principal::Controller, &bytes, &cmd.tag) {
            self.reject("bad-reconfig-sig");
            return;
        }
        if cmd.epoch != self.membership.epoch {
            self.reject("stale-reconfig");
            return; // stale or replayed
        }
        // Enter the total order as a controller request.
        let payload = Self::encode_reconfig(cmd.epoch, cmd.add, cmd.remove);
        let op = cmd.epoch.0 as u64 + 1;
        let request = Request {
            client: CONTROLLER_CLIENT,
            op,
            tag: self
                .keyring
                .sign(Principal::Controller, &Request::auth_bytes(CONTROLLER_CLIENT, op, &payload)),
            payload,
        };
        self.enqueue_request(request, actions);
        self.maybe_propose(actions);
        // Non-leaders hand it to the leader immediately (no watchdog wait).
        if !self.is_leader() {
            let leader = self.membership.leader(self.view);
            if let Some((_, r)) = self.pending.back().cloned() {
                if r.client == CONTROLLER_CLIENT {
                    actions.push(Action::Send(leader, Message::Request(r)));
                }
            }
        }
    }

    fn apply_reconfig_payload(&mut self, payload: &[u8], actions: &mut Vec<Action>) {
        let Some((epoch, add, remove)) = Self::decode_reconfig(payload) else {
            return;
        };
        if epoch != self.membership.epoch {
            return;
        }
        self.membership = self.membership.reconfigured(add, remove);
        if let Some(obs) = &self.obs {
            obs.epoch_changed(self.membership.epoch, self.membership.n());
        }
        actions.push(Action::EpochChanged(self.membership.clone()));
        if remove == Some(self.cfg.id) {
            self.status = Status::Retired;
            actions.push(Action::Retired);
        }
    }
}

impl<S: Service> Replica<S> {
    /// Our evidence for every in-window slot, ordered by slot: write
    /// certificates where the ACCEPT phase was reached, plus the batches of
    /// slots decided out of order — the values a new leader must re-propose
    /// (see [`Instance::evidence`]).
    fn prepared_certificates(&self) -> Vec<WriteCertificate> {
        // The full range above the executed prefix, not just the window —
        // view-change re-proposals may have planted instances one window
        // beyond ours, and their evidence must survive a further change.
        self.insts
            .range(self.last_decided.0 + 1..)
            .filter_map(|(_, inst)| inst.evidence())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::service::CounterService;
    use crate::testkit::{TestCluster, TEST_SECRET};

    fn client(id: u64, cluster: &TestCluster) -> Client {
        Client::new(ClientId(id), cluster.membership(), TEST_SECRET)
    }

    #[test]
    fn normal_case_decides_and_replies() {
        let mut cluster = TestCluster::new(4, 1000);
        let mut c = client(1, &cluster);
        let result = cluster.run_client_op(&mut c, b"ping");
        assert_eq!(&result[..], b"ping");
        // all four replicas executed slot 1
        for id in 0..4 {
            assert_eq!(cluster.replica(id).last_decided(), SeqNo(1));
            assert_eq!(cluster.replica(id).service().executed(), 1);
        }
    }

    #[test]
    fn many_sequential_ops_stay_consistent() {
        let mut cluster = TestCluster::new(4, 1000);
        let mut c = client(1, &cluster);
        for i in 0..20u32 {
            let payload = i.to_be_bytes();
            let result = cluster.run_client_op(&mut c, &payload);
            assert_eq!(&result[..], &payload);
        }
        for id in 0..4 {
            assert_eq!(cluster.replica(id).service().executed(), 20);
        }
    }

    #[test]
    fn multiple_clients_interleave() {
        let mut cluster = TestCluster::new(4, 1000);
        let mut c1 = client(1, &cluster);
        let mut c2 = client(2, &cluster);
        // launch both, then pump
        for (to, m) in c1.invoke(Bytes::from_static(b"a")) {
            cluster.inject(to, m);
        }
        for (to, m) in c2.invoke(Bytes::from_static(b"b")) {
            cluster.inject(to, m);
        }
        cluster.run_to_quiescence();
        let mut done = 0;
        for (cid, reply) in std::mem::take(&mut cluster.client_replies) {
            if (cid == c1.id() && c1.on_reply(reply.clone()).is_some())
                || (cid == c2.id() && c2.on_reply(reply).is_some())
            {
                done += 1;
            }
        }
        assert_eq!(done, 2);
        // identical service state everywhere
        let snap0 = cluster.replica(0).service().snapshot();
        for id in 1..4 {
            assert_eq!(cluster.replica(id).service().snapshot(), snap0);
        }
    }

    #[test]
    fn duplicate_request_executes_once() {
        let mut cluster = TestCluster::new(4, 1000);
        let mut c = client(1, &cluster);
        let sends = c.invoke(Bytes::from_static(b"once"));
        for (to, m) in sends.clone() {
            cluster.inject(to, m);
        }
        // the same request injected again (e.g. a client retransmission)
        for (to, m) in sends {
            cluster.inject(to, m);
        }
        cluster.run_to_quiescence();
        for id in 0..4 {
            assert_eq!(cluster.replica(id).service().executed(), 1, "replica {id}");
        }
    }

    #[test]
    fn checkpoint_stabilizes_and_trims() {
        let mut cluster = TestCluster::new(4, 2);
        let mut c = client(1, &cluster);
        for _ in 0..5 {
            cluster.run_client_op(&mut c, b"x");
        }
        for id in 0..4 {
            let log = cluster.replica(id).decided_log();
            assert_eq!(log.stable_checkpoint().seq, SeqNo(4), "replica {id}");
            assert!(log.len() <= 1, "trimmed log, replica {id}");
        }
    }

    #[test]
    fn leader_crash_triggers_view_change_and_progress() {
        let mut cluster = TestCluster::new(4, 1000);
        let mut c = client(1, &cluster);
        cluster.run_client_op(&mut c, b"before");
        // Crash the view-0 leader (replica 0).
        cluster.crash(0);
        for (to, m) in c.invoke(Bytes::from_static(b"after")) {
            cluster.inject(to, m);
        }
        cluster.run_to_quiescence();
        // Watchdogs: first tick forwards to the (dead) leader…
        cluster.fire_timers(TimerId::Request);
        cluster.run_to_quiescence();
        // …second tick stops the view.
        cluster.fire_timers(TimerId::Request);
        cluster.run_to_quiescence();
        // Replicas 1..3 moved to view 1 and decided the request.
        let mut completed = false;
        for (cid, reply) in std::mem::take(&mut cluster.client_replies) {
            if cid == c.id() && c.on_reply(reply).is_some() {
                completed = true;
            }
        }
        assert!(completed, "operation must complete under the new leader");
        for id in 1..4 {
            assert_eq!(cluster.replica(id).view(), View(1), "replica {id}");
            assert_eq!(cluster.replica(id).last_decided(), SeqNo(2));
            assert!(cluster.replica(id).is_leader() == (id == 1));
        }
    }

    #[test]
    fn lagging_replica_catches_up_via_state_transfer() {
        let mut cluster = TestCluster::new(4, 2);
        let mut c = client(1, &cluster);
        cluster.run_client_op(&mut c, b"warm");
        // Join a brand-new replica 9 that must fetch the state.
        cluster.spawn_joiner(9, cluster.membership());
        cluster.run_to_quiescence();
        assert_eq!(cluster.replica(9).status(), Status::Active);
        assert_eq!(cluster.replica(9).service().executed(), 1);
        assert_eq!(cluster.replica(9).last_decided(), SeqNo(1));
    }

    #[test]
    fn reconfiguration_add_then_remove() {
        let mut cluster = TestCluster::new(4, 1000);
        let mut c = client(1, &cluster);
        cluster.run_client_op(&mut c, b"seed");

        // The controller adds replica 4 (Lazarus: add first).
        let keyring = Keyring::new(TEST_SECRET);
        let add = ReconfigCommand {
            epoch: Epoch(0),
            add: Some(ReplicaId(4)),
            remove: None,
            tag: keyring.sign(
                Principal::Controller,
                &ReconfigCommand::auth_bytes(Epoch(0), Some(ReplicaId(4)), None),
            ),
        };
        // Boot the joiner with the post-reconfig membership.
        let new_membership = cluster.membership().reconfigured(Some(ReplicaId(4)), None);
        cluster.spawn_joiner(4, new_membership.clone());
        for id in 0..4 {
            cluster.inject(ReplicaId(id), Message::Reconfig(add.clone()));
        }
        cluster.run_to_quiescence();
        for id in 0..4 {
            assert_eq!(cluster.replica(id).membership().epoch, Epoch(1), "replica {id}");
            assert!(cluster.replica(id).membership().contains(ReplicaId(4)));
            assert_eq!(cluster.replica(id).membership().n(), 5);
        }
        // The joiner transferred state and is active.
        assert_eq!(cluster.replica(4).status(), Status::Active);

        // Now remove replica 3 (Lazarus: quarantine the old one).
        let remove = ReconfigCommand {
            epoch: Epoch(1),
            add: None,
            remove: Some(ReplicaId(3)),
            tag: keyring.sign(
                Principal::Controller,
                &ReconfigCommand::auth_bytes(Epoch(1), None, Some(ReplicaId(3))),
            ),
        };
        for id in [0u32, 1, 2, 3, 4] {
            cluster.inject(ReplicaId(id), Message::Reconfig(remove.clone()));
        }
        cluster.run_to_quiescence();
        for id in [0u32, 1, 2, 4] {
            assert_eq!(cluster.replica(id).membership().epoch, Epoch(2), "replica {id}");
            assert!(!cluster.replica(id).membership().contains(ReplicaId(3)));
            assert_eq!(cluster.replica(id).membership().n(), 4);
        }
        assert_eq!(cluster.replica(3).status(), Status::Retired);

        // The reconfigured cluster still serves requests.
        c.set_membership(cluster.replica(0).membership().clone());
        let result = cluster.run_client_op(&mut c, b"post-reconfig");
        assert_eq!(&result[..], b"post-reconfig");
    }

    #[test]
    fn forged_reconfig_is_ignored() {
        let mut cluster = TestCluster::new(4, 1000);
        let forged = ReconfigCommand {
            epoch: Epoch(0),
            add: None,
            remove: Some(ReplicaId(0)),
            tag: crate::crypto::AuthTag([7; 32]),
        };
        for id in 0..4 {
            cluster.inject(ReplicaId(id), Message::Reconfig(forged.clone()));
        }
        cluster.run_to_quiescence();
        for id in 0..4 {
            assert_eq!(cluster.replica(id).membership().epoch, Epoch(0));
            assert_eq!(cluster.replica(id).membership().n(), 4);
        }
    }

    #[test]
    fn forged_client_request_is_ignored() {
        let mut cluster = TestCluster::new(4, 1000);
        let forged = Request {
            client: ClientId(1),
            op: 1,
            payload: Bytes::from_static(b"evil"),
            tag: crate::crypto::AuthTag([0; 32]),
        };
        for id in 0..4 {
            cluster.inject(ReplicaId(id), Message::Request(forged.clone()));
        }
        cluster.run_to_quiescence();
        for id in 0..4 {
            assert_eq!(cluster.replica(id).service().executed(), 0);
        }
    }

    #[test]
    fn randomized_delivery_preserves_agreement() {
        for seed in 0..10 {
            let mut cluster = TestCluster::new(4, 5);
            cluster.randomize_delivery(seed);
            let mut c = client(1, &cluster);
            for i in 0..8u32 {
                let result = cluster.run_client_op(&mut c, &i.to_be_bytes());
                assert_eq!(&result[..], &i.to_be_bytes());
            }
            let snap = cluster.replica(0).service().snapshot();
            for id in 1..4 {
                assert_eq!(cluster.replica(id).service().snapshot(), snap, "seed {seed}");
            }
        }
    }

    fn chunk_requests(actions: &[Action]) -> Vec<(ReplicaId, u32)> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send(to, Message::CstChunkRequest { index, .. }) => Some((*to, *index)),
                _ => None,
            })
            .collect()
    }

    /// A joiner plus the donor-side reply for a 10-chunk snapshot, driven
    /// by direct message injection (no cluster) so the chunk round-trips
    /// are observable one by one.
    fn chunked_cst_fixture() -> (Replica<CounterService>, Vec<u8>, CstReply) {
        let membership = Membership::new(Epoch(0), (0..4).map(ReplicaId).collect());
        let mut cfg = ReplicaConfig::new(ReplicaId(9), membership.clone());
        cfg.join = true;
        cfg.cst_chunk_bytes = 16;
        let (joiner, actions) = Replica::new(cfg, CounterService::new());
        let summary_requests = actions
            .iter()
            .filter(|a| matches!(a, Action::Send(_, Message::CstRequest { .. })))
            .count();
        assert_eq!(summary_requests, 4, "every donor is asked for a summary");
        let snapshot: Vec<u8> = (0..160u32).map(|i| i as u8).collect();
        let reply = CstReply {
            checkpoint_seq: SeqNo(40),
            snapshot_digest: Digest::of(&snapshot),
            manifest: ChunkManifest::build(&snapshot, 16),
            suffix: Vec::new(),
            membership,
            view: View(0),
        };
        assert_eq!(reply.manifest.chunk_count(), 10);
        (joiner, snapshot, reply)
    }

    fn serve_chunk(
        joiner: &mut Replica<CounterService>,
        snapshot: &[u8],
        reply: &CstReply,
        to: ReplicaId,
        index: u32,
    ) -> Vec<Action> {
        let data = Bytes::copy_from_slice(
            reply.manifest.slice(snapshot, index as usize).expect("chunk in range"),
        );
        joiner.on_message(
            Message::CstChunkReply { from: to, seq: reply.checkpoint_seq, index, data },
            Ctx::UNTRACED,
        )
    }

    /// Satellite: kill the designee after k fetched chunks; after rotation
    /// the transfer resumes and re-fetches exactly zero completed chunks.
    #[test]
    fn chunked_cst_resumes_with_zero_refetched_chunks() {
        let (mut joiner, snapshot, reply) = chunked_cst_fixture();
        // f+1 = 2 matching summaries certify the manifest.
        let first = joiner.on_message(
            Message::CstReply { from: ReplicaId(0), reply: Box::new(reply.clone()) },
            Ctx::UNTRACED,
        );
        assert!(chunk_requests(&first).is_empty(), "one summary is below f+1");
        let actions = joiner.on_message(
            Message::CstReply { from: ReplicaId(1), reply: Box::new(reply.clone()) },
            Ctx::UNTRACED,
        );
        let round1 = chunk_requests(&actions);
        assert_eq!(round1.len(), 10, "all chunks requested, striped over sources");

        // Serve 4 chunks, then the designee dies: the CST timer rotates.
        for (to, index) in &round1[..4] {
            serve_chunk(&mut joiner, &snapshot, &reply, *to, *index);
        }
        let actions = joiner.on_timer(TimerId::Cst, Ctx::UNTRACED);
        assert!(
            actions.iter().any(|a| matches!(a, Action::Send(_, Message::CstRequest { .. }))),
            "rotation restarts the summary phase"
        );
        assert_eq!(joiner.status(), Status::StateTransfer);

        // Re-certify from two different donors and resume.
        joiner.on_message(
            Message::CstReply { from: ReplicaId(2), reply: Box::new(reply.clone()) },
            Ctx::UNTRACED,
        );
        let actions = joiner.on_message(
            Message::CstReply { from: ReplicaId(3), reply: Box::new(reply.clone()) },
            Ctx::UNTRACED,
        );
        let round2 = chunk_requests(&actions);
        assert_eq!(round2.len(), 6, "only the missing chunks are requested");
        let fetched: HashSet<u32> = round1[..4].iter().map(|(_, i)| *i).collect();
        assert!(
            round2.iter().all(|(_, i)| !fetched.contains(i)),
            "zero re-fetched completed chunks"
        );

        // Serve the rest: the transfer completes against the certified
        // checkpoint.
        for (to, index) in round2 {
            serve_chunk(&mut joiner, &snapshot, &reply, to, index);
        }
        assert_eq!(joiner.status(), Status::Active);
        assert_eq!(joiner.last_decided(), SeqNo(40));
        assert_eq!(joiner.decided_log().stable_checkpoint().digest, Digest::of(&snapshot));
    }

    /// A corrupt chunk is refused (never installed) and re-requested from a
    /// different source; the good copy then completes the slot.
    #[test]
    fn corrupt_chunk_is_rejected_and_rerequested() {
        let (mut joiner, snapshot, reply) = chunked_cst_fixture();
        joiner.on_message(
            Message::CstReply { from: ReplicaId(0), reply: Box::new(reply.clone()) },
            Ctx::UNTRACED,
        );
        let actions = joiner.on_message(
            Message::CstReply { from: ReplicaId(1), reply: Box::new(reply.clone()) },
            Ctx::UNTRACED,
        );
        let round = chunk_requests(&actions);
        let (victim_target, victim_index) = round[0];

        let actions = joiner.on_message(
            Message::CstChunkReply {
                from: victim_target,
                seq: reply.checkpoint_seq,
                index: victim_index,
                data: Bytes::from_static(&[0xAA; 16]),
            },
            Ctx::UNTRACED,
        );
        let rerequests = chunk_requests(&actions);
        assert_eq!(rerequests.len(), 1, "the bad chunk is re-requested");
        assert_eq!(rerequests[0].1, victim_index);
        assert_ne!(rerequests[0].0, victim_target, "…from a different source");

        for (to, index) in round {
            serve_chunk(&mut joiner, &snapshot, &reply, to, index);
        }
        assert_eq!(joiner.status(), Status::Active);
        assert_eq!(joiner.decided_log().stable_checkpoint().digest, Digest::of(&snapshot));
    }

    /// Tentpole: a journal-backed replica reboots from its own storage —
    /// stable checkpoint installed, decided suffix replayed — instead of
    /// starting empty.
    #[test]
    fn replica_recovers_from_journal() {
        use crate::storage::{Journal, JournalConfig};
        let dir =
            std::env::temp_dir().join(format!("lazarus_replica_recover_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let jcfg = JournalConfig { fsync: false, ..JournalConfig::new(&dir) };

        // A 4-replica cluster where replica 0 journals every decided slot:
        // five client ops leave a stable checkpoint at 4 (period 2) plus
        // slot 5 in its journal.
        let mut cfg = ReplicaConfig::new(
            ReplicaId(0),
            Membership::new(Epoch(0), (0..4).map(ReplicaId).collect()),
        );
        cfg.checkpoint_period = 2;
        {
            let mut cluster = TestCluster::new(4, 2);
            let (journal, recovered) = Journal::open(jcfg.clone()).expect("open journal");
            assert!(recovered.is_empty());
            let (replica, actions) =
                Replica::with_storage(cfg.clone(), CounterService::new(), Box::new(journal));
            cluster.insert_replica(0, replica, actions);
            let mut c = client(7, &cluster);
            for op in 1..=5u64 {
                cluster.run_client_op(&mut c, &op.to_be_bytes());
            }
            assert_eq!(cluster.replica(0).last_decided(), SeqNo(5));
            assert_eq!(cluster.replica(0).decided_log().stable_checkpoint().seq, SeqNo(4));
            assert_eq!(cluster.replica(0).decided_log().storage_errors(), 0);
        }

        // Crash (drop) and reboot from the journal.
        let (journal, recovered) = Journal::open(jcfg).expect("reopen journal");
        let (rebooted, _, info) =
            Replica::recover(cfg, CounterService::new(), Box::new(journal), recovered);
        assert_eq!(info.stable_seq, SeqNo(4));
        assert_eq!(info.replayed, 1, "slot 5 replays above the checkpoint");
        assert!(!info.torn_tail);
        assert!(info.virtual_us > 0);
        assert_eq!(rebooted.status(), Status::Active);
        assert_eq!(rebooted.last_decided(), SeqNo(5));
        assert_eq!(rebooted.service().executed(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reconfig_encoding_roundtrip() {
        type R = Replica<crate::service::CounterService>;
        let payload = R::encode_reconfig(Epoch(3), Some(ReplicaId(7)), None);
        assert_eq!(R::decode_reconfig(&payload), Some((Epoch(3), Some(ReplicaId(7)), None)));
        let payload = R::encode_reconfig(Epoch(0), None, Some(ReplicaId(0)));
        assert_eq!(R::decode_reconfig(&payload), Some((Epoch(0), None, Some(ReplicaId(0)))));
        assert_eq!(R::decode_reconfig(b"short"), None);
    }

    /// Injects `ops` distinct single-request operations to the leader only
    /// (no deliveries yet) and returns the pipelined client driving them.
    fn inject_ops_to_leader(cluster: &mut TestCluster, ops: &[&[u8]]) -> Client {
        let mut c =
            Client::pipelined(ClientId(1), cluster.membership(), TEST_SECRET, ops.len().max(1));
        for payload in ops {
            for (to, m) in c.invoke(Bytes::copy_from_slice(payload)) {
                if to == ReplicaId(0) {
                    cluster.inject(to, m);
                }
            }
        }
        c
    }

    #[test]
    fn window_allows_multiple_slots_in_flight() {
        // Window 4: three back-to-back requests open three consensus slots
        // before any vote returns.
        let mut w4 = TestCluster::new_windowed(4, 1000, 4);
        inject_ops_to_leader(&mut w4, &[b"a", b"b", b"c"]);
        for _ in 0..3 {
            w4.step();
        }
        assert_eq!(w4.replica(0).open_instances(), 3, "window 4 pipelines all three");

        // Window 1 (default): the same traffic opens one slot; the rest of
        // the queue waits for the decision.
        let mut w1 = TestCluster::new(4, 1000);
        inject_ops_to_leader(&mut w1, &[b"a", b"b", b"c"]);
        for _ in 0..3 {
            w1.step();
        }
        assert_eq!(w1.replica(0).open_instances(), 1, "window 1 serializes slots");

        // Both pipelines drain to the same final service state. The window-4
        // run spread the three requests over three single-request slots; the
        // window-1 run coalesced the two queued ones into slot 2's batch.
        w4.run_to_quiescence();
        w1.run_to_quiescence();
        for id in 0..4 {
            assert_eq!(w4.replica(id).last_decided(), SeqNo(3), "replica {id}");
            assert_eq!(w1.replica(id).last_decided(), SeqNo(2), "replica {id}");
            assert_eq!(w4.replica(id).service().executed(), 3, "replica {id}");
            assert_eq!(w1.replica(id).service().executed(), 3, "replica {id}");
        }
        assert_eq!(w4.replica(0).service().snapshot(), w1.replica(0).service().snapshot());
    }

    #[test]
    fn decisions_beyond_a_hole_wait_for_the_gap() {
        // Lose slot 2 entirely: slot 3 decides but must not execute until
        // the hole is filled.
        let mut cluster = TestCluster::new_windowed(4, 1000, 4);
        inject_ops_to_leader(&mut cluster, &[b"a", b"b", b"c"]);
        for _ in 0..3 {
            cluster.step();
        }
        cluster.drop_queued(|_, m| matches!(m.consensus_slot(), Some((_, SeqNo(2)))));
        cluster.run_to_quiescence();
        for id in 0..4 {
            assert_eq!(cluster.replica(id).last_decided(), SeqNo(1), "replica {id}: slot 1 only");
            assert_eq!(
                cluster.replica(id).service().executed(),
                1,
                "replica {id}: slot 3 is decided but held back by the slot-2 hole"
            );
        }
        assert!(cluster.replica(1).open_instances() >= 1, "slot 3 parked above the gap");
    }

    #[test]
    fn view_change_abandons_partially_decided_window() {
        // Full client broadcast this time, so every replica holds the
        // pending requests and can watchdog the leader.
        let mut cluster = TestCluster::new_windowed(4, 1000, 4);
        let mut c = Client::pipelined(ClientId(1), cluster.membership(), TEST_SECRET, 3);
        for payload in [&b"a"[..], b"b", b"c"] {
            for (to, m) in c.invoke(Bytes::copy_from_slice(payload)) {
                cluster.inject(to, m);
            }
        }
        // Deliver all twelve request copies: the leader opens slots 1..3.
        for _ in 0..12 {
            cluster.step();
        }
        assert_eq!(cluster.replica(0).open_instances(), 3);
        // Slot 2 vanishes from the wire; 1 and 3 decide, 3 cannot execute.
        cluster.drop_queued(|_, m| matches!(m.consensus_slot(), Some((_, SeqNo(2)))));
        cluster.run_to_quiescence();
        for id in 0..4 {
            assert_eq!(cluster.replica(id).last_decided(), SeqNo(1), "replica {id}");
        }

        // Watchdog: forward to the (stuck) leader, then stop the view. The
        // new leader must re-propose decided-but-unexecuted slot 3 verbatim,
        // fill slot 2 with a no-op, and re-propose the abandoned request.
        cluster.fire_timers(TimerId::Request);
        cluster.run_to_quiescence();
        cluster.fire_timers(TimerId::Request);
        cluster.run_to_quiescence();
        cluster.fire_timers(TimerId::Request);
        cluster.run_to_quiescence();

        let mut completed = 0;
        for (cid, reply) in std::mem::take(&mut cluster.client_replies) {
            if cid == c.id() && c.on_reply(reply).is_some() {
                completed += 1;
            }
        }
        assert_eq!(completed, 3, "every operation survives the window abandonment");
        let snap0 = cluster.replica(0).service().snapshot();
        for id in 0..4 {
            let r = cluster.replica(id);
            assert!(r.view() > View(0), "replica {id} moved on");
            assert_eq!(r.service().executed(), 3, "replica {id}: a no-op gap adds nothing");
            assert!(r.last_decided() >= SeqNo(3), "replica {id}");
            assert_eq!(r.service().snapshot(), snap0, "replica {id} state agrees");
        }
    }
}
