//! A minimal deterministic in-memory cluster for protocol testing.
//!
//! This is *not* the performance testbed (see `lazarus-testbed` for the
//! discrete-event simulator with timing); it is a synchronous message pump
//! used by unit, integration and property tests: actions go into a FIFO (or
//! seeded-random) queue, crashed replicas drop their traffic, and timers
//! fire only when the test says so. Determinism makes every failure
//! reproducible from its seed.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::Arc;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::messages::{Message, Reply};
use crate::replica::{Action, Ctx, Replica, ReplicaConfig, TimerId};
use crate::service::CounterService;
use crate::types::{ClientId, Epoch, Membership, ReplicaId};

/// The shared test master secret.
pub const TEST_SECRET: &[u8] = b"lazarus-deployment";

/// Seeded per-delivery link faults for [`TestCluster`]: each queued message
/// is independently dropped, deferred to the back of the queue, or
/// duplicated. Combined with [`TestCluster::randomize_delivery`] (reorder)
/// this covers the drop/delay/dup/reorder fault matrix in a synchronous
/// pump, reproducible from the seed.
struct LinkChaos {
    rng: StdRng,
    drop_p: f64,
    delay_p: f64,
    dup_p: f64,
}

/// An in-memory cluster of [`CounterService`] replicas.
pub struct TestCluster {
    replicas: BTreeMap<u32, Replica<CounterService>>,
    queue: VecDeque<(ReplicaId, Arc<Message>)>,
    /// Replies emitted to clients, in delivery order.
    pub client_replies: Vec<(ClientId, Reply)>,
    /// Every reply emission tagged with the replica that produced it, in
    /// emission order: the first occurrence of a `(replica, client, op)`
    /// triple marks where that replica *executed* the operation (later
    /// occurrences are cached at-most-once resends).
    pub reply_log: Vec<(ReplicaId, ClientId, u64)>,
    crashed: HashSet<ReplicaId>,
    armed: HashSet<(ReplicaId, TimerId)>,
    rng: Option<StdRng>,
    chaos: Option<LinkChaos>,
    /// Messages delivered so far (diagnostic).
    pub delivered: usize,
}

impl std::fmt::Debug for TestCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestCluster")
            .field("replicas", &self.replicas.len())
            .field("queued", &self.queue.len())
            .field("crashed", &self.crashed)
            .finish()
    }
}

impl TestCluster {
    /// A fresh cluster of `n` replicas with the given checkpoint period.
    pub fn new(n: u32, checkpoint_period: u64) -> TestCluster {
        Self::new_windowed(n, checkpoint_period, 1)
    }

    /// As [`TestCluster::new`], with a consensus pipeline `window` (number
    /// of slots allowed in flight at once; `1` reproduces the classic
    /// one-at-a-time pipeline).
    pub fn new_windowed(n: u32, checkpoint_period: u64, window: u64) -> TestCluster {
        let membership = Membership::new(Epoch(0), (0..n).map(ReplicaId).collect());
        let mut cluster = TestCluster {
            replicas: BTreeMap::new(),
            queue: VecDeque::new(),
            client_replies: Vec::new(),
            reply_log: Vec::new(),
            crashed: HashSet::new(),
            armed: HashSet::new(),
            rng: None,
            chaos: None,
            delivered: 0,
        };
        for id in 0..n {
            let mut cfg = ReplicaConfig::new(ReplicaId(id), membership.clone());
            cfg.checkpoint_period = checkpoint_period;
            cfg.window = window;
            let (replica, actions) = Replica::new(cfg, CounterService::new());
            cluster.replicas.insert(id, replica);
            cluster.absorb(ReplicaId(id), actions);
        }
        cluster
    }

    /// Switches delivery order to seeded-random (for schedule exploration).
    pub fn randomize_delivery(&mut self, seed: u64) {
        self.rng = Some(StdRng::seed_from_u64(seed));
    }

    /// Enables seeded link faults: each delivery attempt independently drops
    /// the message with `drop_p`, defers it to the back of the queue with
    /// `delay_p`, or duplicates it with `dup_p`. Deterministic from `seed`.
    ///
    /// Drops apply to *every* message class (requests, protocol traffic,
    /// replies), so tests driving a faulty cluster must retransmit and fire
    /// [`TimerId::Request`] watchdogs in rounds, exactly like a real client.
    pub fn chaos_links(&mut self, seed: u64, drop_p: f64, delay_p: f64, dup_p: f64) {
        self.chaos = Some(LinkChaos { rng: StdRng::seed_from_u64(seed), drop_p, delay_p, dup_p });
    }

    /// Heals the links: stops injecting drop/delay/dup faults (delivery
    /// order randomization, if any, stays in effect).
    pub fn heal_links(&mut self) {
        self.chaos = None;
    }

    /// The default membership used by this cluster's clients.
    pub fn membership(&self) -> Membership {
        self.replicas.values().next().map(|r| r.membership().clone()).expect("cluster has replicas")
    }

    /// Access to a replica.
    ///
    /// # Panics
    ///
    /// Panics if the replica does not exist.
    pub fn replica(&self, id: u32) -> &Replica<CounterService> {
        &self.replicas[&id]
    }

    /// Marks a replica crashed: its queued and future traffic is dropped and
    /// it takes no further steps.
    pub fn crash(&mut self, id: u32) {
        self.crashed.insert(ReplicaId(id));
    }

    /// Injects a message addressed to `to`.
    pub fn inject(&mut self, to: ReplicaId, message: Message) {
        self.queue.push_back((to, Arc::new(message)));
    }

    /// Drops every currently queued message matching `pred` — selective
    /// message loss for protocol tests (e.g. losing one slot's PROPOSE to
    /// force a hole in a pipelined window).
    pub fn drop_queued(&mut self, mut pred: impl FnMut(ReplicaId, &Message) -> bool) {
        self.queue.retain(|(to, m)| !pred(*to, m));
    }

    /// Fires a timer on a live replica and absorbs the resulting actions.
    /// Returns `true` if the timer was armed.
    pub fn fire_timer(&mut self, id: u32, timer: TimerId) -> bool {
        if self.crashed.contains(&ReplicaId(id)) {
            return false;
        }
        if !self.armed.remove(&(ReplicaId(id), timer)) {
            return false;
        }
        let actions = match self.replicas.get_mut(&id) {
            Some(r) => r.on_timer(timer, Ctx::UNTRACED),
            None => return false,
        };
        self.absorb(ReplicaId(id), actions);
        true
    }

    /// Fires a timer on every live replica (e.g. a cluster-wide watchdog
    /// tick).
    pub fn fire_timers(&mut self, timer: TimerId) {
        let ids: Vec<u32> = self.replicas.keys().copied().collect();
        for id in ids {
            self.fire_timer(id, timer);
        }
    }

    fn absorb(&mut self, from: ReplicaId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send(to, message) => {
                    if !self.crashed.contains(&from) {
                        self.queue.push_back((to, Arc::new(message)));
                    }
                }
                Action::Broadcast(peers, message) => {
                    if !self.crashed.contains(&from) {
                        // One shared allocation, N queue entries.
                        for to in peers {
                            self.queue.push_back((to, Arc::clone(&message)));
                        }
                    }
                }
                Action::SendClient(client, reply) => {
                    if !self.crashed.contains(&from) {
                        self.reply_log.push((from, client, reply.op));
                        self.client_replies.push((client, reply));
                    }
                }
                Action::SetTimer(timer, _) => {
                    self.armed.insert((from, timer));
                }
                Action::CancelTimer(timer) => {
                    self.armed.remove(&(from, timer));
                }
                Action::Executed(..)
                | Action::EpochChanged(_)
                | Action::Retired
                | Action::StateTransferred(_) => {}
            }
        }
    }

    /// Delivers one queued message. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let next = match &mut self.rng {
            Some(rng) if self.queue.len() > 1 => {
                let i = rng.gen_range(0..self.queue.len());
                self.queue.swap_remove_back(i)
            }
            _ => self.queue.pop_front(),
        };
        let Some((to, message)) = next else { return false };
        if let Some(chaos) = &mut self.chaos {
            let roll: f64 = chaos.rng.gen();
            if roll < chaos.drop_p {
                return true; // lost on the wire
            }
            if roll < chaos.drop_p + chaos.delay_p {
                self.queue.push_back((to, message)); // delivered later
                return true;
            }
            if roll < chaos.drop_p + chaos.delay_p + chaos.dup_p {
                self.queue.push_back((to, Arc::clone(&message)));
            }
        }
        self.delivered += 1;
        if self.crashed.contains(&to) {
            return true;
        }
        let Some(replica) = self.replicas.get_mut(&to.0) else { return true };
        // Last holder takes the message without a copy; earlier holders make
        // a shallow clone (batches share their request slice).
        let message = Arc::try_unwrap(message).unwrap_or_else(|shared| (*shared).clone());
        let actions = replica.on_message(message, Ctx::UNTRACED);
        self.absorb(to, actions);
        true
    }

    /// Runs until no messages remain (bounded to avoid runaway loops).
    ///
    /// # Panics
    ///
    /// Panics after a million deliveries — protocols must quiesce.
    pub fn run_to_quiescence(&mut self) {
        let mut steps = 0usize;
        while self.step() {
            steps += 1;
            assert!(steps < 1_000_000, "cluster did not quiesce");
        }
    }

    /// Inserts (or replaces) a replica the caller built — e.g. a
    /// journal-backed one via [`Replica::with_storage`] or
    /// [`Replica::recover`] — absorbing its boot actions.
    pub fn insert_replica(
        &mut self,
        id: u32,
        replica: Replica<CounterService>,
        actions: Vec<Action>,
    ) {
        self.crashed.remove(&ReplicaId(id));
        self.replicas.insert(id, replica);
        self.absorb(ReplicaId(id), actions);
    }

    /// Adds a brand-new joining replica (status `StateTransfer`): it will
    /// fetch state from the others. The caller is responsible for having the
    /// controller reconfigure it into the membership.
    pub fn spawn_joiner(&mut self, id: u32, membership: Membership) {
        let mut cfg = ReplicaConfig::new(ReplicaId(id), membership);
        cfg.join = true;
        let (replica, actions) = Replica::new(cfg, CounterService::new());
        self.replicas.insert(id, replica);
        self.absorb(ReplicaId(id), actions);
    }

    /// Convenience: drive a full client operation to completion, asserting
    /// it completes. Returns the agreed result.
    pub fn run_client_op(&mut self, client: &mut crate::client::Client, payload: &[u8]) -> Bytes {
        for (to, message) in client.invoke(Bytes::copy_from_slice(payload)) {
            self.inject(to, message);
        }
        self.run_to_quiescence();
        let mut done = None;
        let replies = std::mem::take(&mut self.client_replies);
        for (cid, reply) in replies {
            if cid == client.id() {
                if let Some(completion) = client.on_reply(reply) {
                    done = Some(completion);
                }
            }
        }
        done.expect("operation should complete").result
    }
}
