//! Per-slot consensus bookkeeping (the VP-Consensus phases).
//!
//! Each slot runs PROPOSE → WRITE → ACCEPT. The instance tracks votes per
//! digest (so an equivocating leader cannot mix votes for different values)
//! and remembers whether this replica already sent its WRITE/ACCEPT, which
//! both drives the protocol and yields the write certificate needed by the
//! leader-change protocol.

use std::collections::BTreeMap;

use lazarus_obs::causal::slot_trace_id;

use crate::crypto::Digest;
use crate::messages::{Batch, WriteCertificate};
use crate::types::{ReplicaId, SeqNo, View};

/// State of one consensus slot.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The slot.
    pub seq: SeqNo,
    /// The view of the current proposal.
    pub view: View,
    /// The proposed batch (from PROPOSE, or a SYNC re-proposal).
    pub batch: Option<Batch>,
    /// Digest of `batch`.
    pub digest: Option<Digest>,
    writes: BTreeMap<Digest, Vec<ReplicaId>>,
    accepts: BTreeMap<Digest, Vec<ReplicaId>>,
    /// Whether this replica broadcast its WRITE.
    pub sent_write: bool,
    /// Whether this replica broadcast its ACCEPT (implies it saw a write
    /// quorum — the precondition of a write certificate).
    pub sent_accept: bool,
    /// Whether the slot is decided.
    pub decided: bool,
    /// Causal trace id of this slot ([`slot_trace_id`]): a pure function of
    /// `seq`, so every replica adopts the same trace without coordination.
    /// Survives [`reset_for_view`](Instance::reset_for_view) — a slot's
    /// trace spans leader changes.
    pub trace_id: u64,
}

impl Instance {
    /// A fresh instance for `seq` in `view`.
    pub fn new(seq: SeqNo, view: View) -> Instance {
        Instance {
            seq,
            view,
            batch: None,
            digest: None,
            writes: BTreeMap::new(),
            accepts: BTreeMap::new(),
            sent_write: false,
            sent_accept: false,
            decided: false,
            trace_id: slot_trace_id(seq.0),
        }
    }

    /// Installs the proposal. Returns `false` when a *different* proposal
    /// was already accepted for this view (leader equivocation — the caller
    /// should ignore the message).
    pub fn set_proposal(&mut self, view: View, batch: Batch) -> bool {
        let digest = batch.digest();
        match self.digest {
            Some(existing) if self.view == view => existing == digest,
            _ => {
                // Votes and phase flags from an older view are meaningless
                // for the re-proposal: a replica that WROTE or ACCEPTed the
                // value in the old view must vote again in the new one, or
                // the quorum can never re-form after a leader change.
                if self.view != view {
                    self.writes.clear();
                    self.accepts.clear();
                    self.sent_write = false;
                    self.sent_accept = false;
                }
                self.view = view;
                self.digest = Some(digest);
                self.batch = Some(batch);
                true
            }
        }
    }

    /// Records a WRITE vote. Returns the current count for that digest.
    pub fn on_write(&mut self, from: ReplicaId, view: View, digest: Digest) -> usize {
        if view != self.view {
            return 0;
        }
        let voters = self.writes.entry(digest).or_default();
        if !voters.contains(&from) {
            voters.push(from);
        }
        voters.len()
    }

    /// Records an ACCEPT vote. Returns the current count for that digest.
    pub fn on_accept(&mut self, from: ReplicaId, view: View, digest: Digest) -> usize {
        if view != self.view {
            return 0;
        }
        let voters = self.accepts.entry(digest).or_default();
        if !voters.contains(&from) {
            voters.push(from);
        }
        voters.len()
    }

    /// WRITE votes currently held for our proposal's digest.
    pub fn write_votes(&self) -> usize {
        match self.digest {
            Some(d) => self.writes.get(&d).map(Vec::len).unwrap_or(0),
            None => 0,
        }
    }

    /// ACCEPT votes currently held for our proposal's digest.
    pub fn accept_votes(&self) -> usize {
        match self.digest {
            Some(d) => self.accepts.get(&d).map(Vec::len).unwrap_or(0),
            None => 0,
        }
    }

    /// The write certificate if this replica reached the ACCEPT phase.
    pub fn certificate(&self) -> Option<WriteCertificate> {
        if self.sent_accept && !self.decided {
            self.batch.clone().map(|batch| WriteCertificate {
                view: self.view,
                seq: self.seq,
                batch,
            })
        } else {
            None
        }
    }

    /// Leader-change evidence for this slot: the write certificate once the
    /// ACCEPT phase was reached, or the decided batch itself. A decision is
    /// irrevocable even while the slot waits (decided-but-unexecuted) for
    /// its predecessors, so a new leader must carry the value forward
    /// unchanged — which is why, unlike [`certificate`](Instance::certificate),
    /// decided slots report evidence too.
    pub fn evidence(&self) -> Option<WriteCertificate> {
        if self.sent_accept || self.decided {
            self.batch.clone().map(|batch| WriteCertificate {
                view: self.view,
                seq: self.seq,
                batch,
            })
        } else {
            None
        }
    }

    /// Restarts the instance in a later view (leader change), keeping any
    /// re-proposed value out until SYNC/PROPOSE installs one.
    pub fn reset_for_view(&mut self, view: View) {
        if self.decided {
            return;
        }
        self.view = view;
        self.batch = None;
        self.digest = None;
        self.writes.clear();
        self.accepts.clear();
        self.sent_write = false;
        self.sent_accept = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(tagbyte: u8) -> Batch {
        use crate::crypto::AuthTag;
        use crate::types::ClientId;
        Batch::new(vec![crate::messages::Request {
            client: ClientId(1),
            op: 1,
            payload: bytes::Bytes::copy_from_slice(&[tagbyte]),
            tag: AuthTag([0; 32]),
        }])
    }

    #[test]
    fn proposal_then_votes() {
        let mut inst = Instance::new(SeqNo(1), View(0));
        let b = batch(1);
        let d = b.digest();
        assert!(inst.set_proposal(View(0), b));
        assert_eq!(inst.on_write(ReplicaId(0), View(0), d), 1);
        assert_eq!(inst.on_write(ReplicaId(1), View(0), d), 2);
        // duplicate vote ignored
        assert_eq!(inst.on_write(ReplicaId(1), View(0), d), 2);
        assert_eq!(inst.write_votes(), 2);
        assert_eq!(inst.on_accept(ReplicaId(2), View(0), d), 1);
        assert_eq!(inst.accept_votes(), 1);
    }

    #[test]
    fn equivocation_is_rejected() {
        let mut inst = Instance::new(SeqNo(1), View(0));
        assert!(inst.set_proposal(View(0), batch(1)));
        assert!(!inst.set_proposal(View(0), batch(2)));
        // same proposal again is fine (idempotent)
        assert!(inst.set_proposal(View(0), batch(1)));
    }

    #[test]
    fn votes_for_other_views_do_not_count() {
        let mut inst = Instance::new(SeqNo(1), View(0));
        let b = batch(1);
        let d = b.digest();
        inst.set_proposal(View(0), b);
        assert_eq!(inst.on_write(ReplicaId(1), View(1), d), 0);
        assert_eq!(inst.write_votes(), 0);
    }

    #[test]
    fn votes_per_digest_are_segregated() {
        let mut inst = Instance::new(SeqNo(1), View(0));
        let good = batch(1);
        let d_good = good.digest();
        let d_evil = batch(2).digest();
        inst.set_proposal(View(0), good);
        inst.on_write(ReplicaId(1), View(0), d_evil);
        inst.on_write(ReplicaId(2), View(0), d_evil);
        assert_eq!(inst.write_votes(), 0, "votes for another digest don't help");
        inst.on_write(ReplicaId(3), View(0), d_good);
        assert_eq!(inst.write_votes(), 1);
    }

    #[test]
    fn certificate_only_after_accept_phase() {
        let mut inst = Instance::new(SeqNo(1), View(0));
        inst.set_proposal(View(0), batch(1));
        assert!(inst.certificate().is_none());
        inst.sent_accept = true;
        let cert = inst.certificate().expect("certificate");
        assert_eq!(cert.seq, SeqNo(1));
        assert_eq!(cert.view, View(0));
        inst.decided = true;
        assert!(inst.certificate().is_none(), "decided slots need no cert");
    }

    #[test]
    fn trace_id_is_slot_derived_and_survives_view_resets() {
        let mut inst = Instance::new(SeqNo(9), View(0));
        assert_eq!(inst.trace_id, slot_trace_id(9));
        inst.reset_for_view(View(3));
        assert_eq!(inst.trace_id, slot_trace_id(9), "a slot's trace spans leader changes");
        assert_ne!(Instance::new(SeqNo(10), View(0)).trace_id, inst.trace_id);
    }

    #[test]
    fn reset_for_view_clears_undecided_state() {
        let mut inst = Instance::new(SeqNo(1), View(0));
        let b = batch(1);
        let d = b.digest();
        inst.set_proposal(View(0), b);
        inst.on_write(ReplicaId(1), View(0), d);
        inst.sent_write = true;
        inst.reset_for_view(View(1));
        assert_eq!(inst.view, View(1));
        assert!(inst.batch.is_none());
        assert!(!inst.sent_write);
        assert_eq!(inst.write_votes(), 0);
        // decided instances are immutable
        let mut done = Instance::new(SeqNo(2), View(0));
        done.set_proposal(View(0), batch(3));
        done.decided = true;
        done.reset_for_view(View(5));
        assert_eq!(done.view, View(0));
        assert!(done.batch.is_some());
    }
}
