//! Core identifier types of the replication library.

use std::fmt;

/// A replica identifier (stable across views and epochs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReplicaId(pub u32);

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A client identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A consensus instance number (the slot in the total order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeqNo(pub u64);

impl SeqNo {
    /// The next slot.
    pub fn next(self) -> SeqNo {
        SeqNo(self.0 + 1)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A leader-regency (view) number within a membership epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct View(pub u64);

impl View {
    /// The following view.
    pub fn next(self) -> View {
        View(self.0 + 1)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A membership epoch: bumped by every reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Epoch(pub u32);

impl Epoch {
    /// The following epoch.
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The replica membership of one epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    /// Epoch this membership belongs to.
    pub epoch: Epoch,
    /// Member replicas, sorted by id.
    pub replicas: Vec<ReplicaId>,
}

impl Membership {
    /// Creates a membership; replicas are sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 replicas are given (BFT needs `n ≥ 3f + 1`
    /// with `f ≥ 1`).
    pub fn new(epoch: Epoch, mut replicas: Vec<ReplicaId>) -> Membership {
        replicas.sort_unstable();
        replicas.dedup();
        assert!(replicas.len() >= 4, "membership needs at least 4 replicas");
        Membership { epoch, replicas }
    }

    /// Number of replicas `n`.
    pub fn n(&self) -> usize {
        self.replicas.len()
    }

    /// Fault threshold `f = ⌊(n − 1) / 3⌋`.
    pub fn f(&self) -> usize {
        (self.n() - 1) / 3
    }

    /// Byzantine quorum size `⌈(n + f + 1) / 2⌉` (equals `2f + 1` when
    /// `n = 3f + 1`).
    pub fn quorum(&self) -> usize {
        (self.n() + self.f() + 1).div_ceil(2)
    }

    /// The leader of `view` (round-robin over members).
    pub fn leader(&self, view: View) -> ReplicaId {
        self.replicas[(view.0 % self.n() as u64) as usize]
    }

    /// Whether `id` is a member.
    pub fn contains(&self, id: ReplicaId) -> bool {
        self.replicas.binary_search(&id).is_ok()
    }

    /// Members other than `id`.
    pub fn others(&self, id: ReplicaId) -> impl Iterator<Item = ReplicaId> + '_ {
        self.replicas.iter().copied().filter(move |&r| r != id)
    }

    /// The membership after adding `add` and removing `remove`, in the next
    /// epoch.
    ///
    /// # Panics
    ///
    /// Panics if the result would drop below 4 replicas.
    pub fn reconfigured(&self, add: Option<ReplicaId>, remove: Option<ReplicaId>) -> Membership {
        let mut replicas = self.replicas.clone();
        if let Some(r) = add {
            if !replicas.contains(&r) {
                replicas.push(r);
            }
        }
        if let Some(r) = remove {
            replicas.retain(|&x| x != r);
        }
        Membership::new(self.epoch.next(), replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn membership(n: u32) -> Membership {
        Membership::new(Epoch(0), (0..n).map(ReplicaId).collect())
    }

    #[test]
    fn quorum_math() {
        let m = membership(4);
        assert_eq!(m.n(), 4);
        assert_eq!(m.f(), 1);
        assert_eq!(m.quorum(), 3);
        let m = membership(7);
        assert_eq!(m.f(), 2);
        assert_eq!(m.quorum(), 5);
        let m = membership(5); // n = 3f+2
        assert_eq!(m.f(), 1);
        assert_eq!(m.quorum(), 4);
    }

    #[test]
    fn leader_rotates() {
        let m = membership(4);
        assert_eq!(m.leader(View(0)), ReplicaId(0));
        assert_eq!(m.leader(View(1)), ReplicaId(1));
        assert_eq!(m.leader(View(4)), ReplicaId(0));
    }

    #[test]
    fn reconfiguration_bumps_epoch() {
        let m = membership(4);
        let m2 = m.reconfigured(Some(ReplicaId(9)), Some(ReplicaId(1)));
        assert_eq!(m2.epoch, Epoch(1));
        assert_eq!(m2.n(), 4);
        assert!(m2.contains(ReplicaId(9)));
        assert!(!m2.contains(ReplicaId(1)));
        // leaders recomputed over the new set
        assert_eq!(m2.leader(View(3)), ReplicaId(9));
    }

    #[test]
    fn add_existing_and_remove_missing_are_noops() {
        let m = membership(4);
        let m2 = m.reconfigured(Some(ReplicaId(2)), Some(ReplicaId(77)));
        assert_eq!(m2.replicas, m.replicas);
        assert_eq!(m2.epoch, Epoch(1));
    }

    #[test]
    #[should_panic(expected = "at least 4 replicas")]
    fn too_small_membership_panics() {
        membership(3);
    }

    #[test]
    fn sequence_helpers() {
        assert_eq!(SeqNo(3).next(), SeqNo(4));
        assert_eq!(View(0).next(), View(1));
        assert_eq!(Epoch(1).next(), Epoch(2));
        assert_eq!(
            format!("{} {} {} {}", ReplicaId(2), ClientId(5), SeqNo(9), View(1)),
            "r2 c5 #9 v1"
        );
    }
}
