//! A threaded wall-clock runtime for the replication library.
//!
//! The replica state machines are runtime-agnostic; this module gives them a
//! real execution environment: one OS thread per replica, crossbeam
//! channels as the network, and wall-clock timers derived from the replica's
//! `SetTimer` hints. It is the runtime used by the Criterion wall-clock
//! benchmarks and by embedders that want actual concurrency rather than
//! virtual time (the discrete-event simulator lives in `lazarus-testbed`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;

use lazarus_obs::causal::{
    slot_trace_id, EventKind, FlightEvent, FlightRecorder, TraceCtx, NO_SPAN,
};
use lazarus_obs::profile::Profiler;
use lazarus_obs::{Gauge, HealthConfig, HealthTracker, Obs, WallClock};

use crate::client::Client;
use crate::messages::{Message, Reply};
use crate::obs::{Instruments, WireObs};
use crate::replica::{Action, Replica, ReplicaConfig, TimerId};
use crate::service::Service;
use crate::types::{ClientId, Epoch, Membership, ReplicaId};

enum Input {
    Msg(Arc<Message>, Option<TraceCtx>),
    Shutdown,
}

/// A root context with no trace: what a replica handles when the input
/// carried no [`TraceCtx`] (client traffic, startup actions).
const UNTRACED: TraceCtx = TraceCtx { trace_id: 0, parent_id: NO_SPAN, span_id: NO_SPAN };

/// Allocates a wire span for `message` leaving for `to`, records the
/// `send` event, and returns the context to attach on the wire. `None`
/// when the sender has no flight recorder (tracing off).
fn send_ctx(
    flight: Option<&FlightRecorder>,
    message: &Message,
    to: ReplicaId,
    handling: &TraceCtx,
) -> Option<TraceCtx> {
    let flight = flight?;
    let slot = message.consensus_slot();
    let trace_id = slot.map_or(handling.trace_id, |(_, seq)| slot_trace_id(seq.0));
    let ctx = TraceCtx { trace_id, parent_id: handling.span_id, span_id: flight.next_span() };
    flight.push(FlightEvent {
        at_us: flight.now_micros(),
        node: flight.node(),
        event: EventKind::Send,
        kind: message.label(),
        seq: slot.map(|(_, s)| s.0),
        view: slot.map(|(v, _)| v.0),
        peer: Some(to.0),
        trace_id: ctx.trace_id,
        parent_id: ctx.parent_id,
        span_id: ctx.span_id,
        extra: 0,
    });
    Some(ctx)
}

/// Records the `recv` event for an arriving message and returns the
/// handling context (a fresh span parented to the wire span). Without a
/// flight recorder the wire context is adopted as-is.
fn recv_ctx(
    flight: Option<&FlightRecorder>,
    message: &Message,
    wire: Option<TraceCtx>,
) -> Option<TraceCtx> {
    let Some(flight) = flight else { return wire };
    let slot = message.consensus_slot();
    let trace_id =
        wire.map(|c| c.trace_id).or_else(|| slot.map(|(_, seq)| slot_trace_id(seq.0))).unwrap_or(0);
    let ctx = TraceCtx {
        trace_id,
        parent_id: wire.map_or(NO_SPAN, |c| c.span_id),
        span_id: flight.next_span(),
    };
    flight.push(FlightEvent {
        at_us: flight.now_micros(),
        node: flight.node(),
        event: EventKind::Recv,
        kind: message.label(),
        seq: slot.map(|(_, s)| s.0),
        view: slot.map(|(v, _)| v.0),
        peer: message.sender().map(|r| r.0),
        trace_id: ctx.trace_id,
        parent_id: ctx.parent_id,
        span_id: ctx.span_id,
        extra: 0,
    });
    Some(ctx)
}

type ReplyRouter = Arc<Mutex<HashMap<ClientId, Sender<Reply>>>>;

/// A running cluster of replica threads.
pub struct ThreadCluster {
    inboxes: HashMap<u32, Sender<Input>>,
    membership: Membership,
    master_secret: Vec<u8>,
    router: ReplyRouter,
    handles: Vec<JoinHandle<()>>,
    running: Arc<AtomicBool>,
    obs: Option<Obs>,
    health: Option<HealthTracker>,
    flights: HashMap<u32, FlightRecorder>,
    profiler: Option<Profiler>,
}

impl std::fmt::Debug for ThreadCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCluster")
            .field("replicas", &self.inboxes.len())
            .field("running", &self.running.load(Ordering::Relaxed))
            .finish()
    }
}

impl ThreadCluster {
    /// Starts `n` replica threads running services from `make_service`.
    pub fn start<S, F>(n: u32, checkpoint_period: u64, make_service: F) -> ThreadCluster
    where
        S: Service + 'static,
        F: FnMut() -> S,
    {
        Self::start_inner(n, checkpoint_period, make_service, None)
    }

    /// As [`ThreadCluster::start`], with every replica instrumented against
    /// a fresh wall-clock [`Obs`] bundle (readable via
    /// [`ThreadCluster::obs`]).
    pub fn start_observed<S, F>(n: u32, checkpoint_period: u64, make_service: F) -> ThreadCluster
    where
        S: Service + 'static,
        F: FnMut() -> S,
    {
        let obs = Obs::new(Arc::new(WallClock::new()));
        Self::start_instrumented(
            n,
            checkpoint_period,
            make_service,
            Instruments::new().with_obs(obs),
        )
    }

    /// As [`ThreadCluster::start`], with every replica attached to the
    /// given [`Instruments`] base: the bundle's metrics, health tracker,
    /// and profiler are shared across all replica threads (a missing health
    /// tracker or profiler is derived from the bundle's `obs` when one is
    /// present). Per-replica flight recorders are always created internally
    /// — a recorder in `base` is ignored, since one shared ring cannot
    /// carry per-replica streams.
    pub fn start_instrumented<S, F>(
        n: u32,
        checkpoint_period: u64,
        make_service: F,
        base: Instruments,
    ) -> ThreadCluster
    where
        S: Service + 'static,
        F: FnMut() -> S,
    {
        Self::start_inner(n, checkpoint_period, make_service, Some(base))
    }

    fn start_inner<S, F>(
        n: u32,
        checkpoint_period: u64,
        mut make_service: F,
        base: Option<Instruments>,
    ) -> ThreadCluster
    where
        S: Service + 'static,
        F: FnMut() -> S,
    {
        let obs = base.as_ref().and_then(|b| b.obs.clone());
        let membership = Membership::new(Epoch(0), (0..n).map(ReplicaId).collect());
        let master_secret = b"lazarus-deployment".to_vec();
        let router: ReplyRouter = Arc::new(Mutex::new(HashMap::new()));
        let running = Arc::new(AtomicBool::new(true));

        let mut inboxes = HashMap::new();
        let mut rxs = Vec::new();
        for id in 0..n {
            let (tx, rx) = channel::unbounded();
            inboxes.insert(id, tx);
            rxs.push(rx);
        }

        // One shared health tracker across all replica threads: producer
        // hooks commute under its mutex, scores read from wall-clock
        // telemetry (best-effort, unlike the deterministic sim-time health
        // the testbed produces).
        let health = base
            .as_ref()
            .and_then(|b| b.health.clone())
            .or_else(|| obs.as_ref().map(|o| HealthTracker::new(HealthConfig::default(), o)));
        // One shared profiler across all replica threads: frame charges
        // commute under its mutex, and the per-replica root frames keep
        // the threads' stacks apart. Wall-clock scopes measure real CPU;
        // scope `sim_us` deltas follow the bundle's wall clock here.
        let profiler = base
            .as_ref()
            .and_then(|b| b.profiler.clone())
            .or_else(|| obs.as_ref().map(|o| Profiler::new(Arc::clone(o.clock()))));
        let mut handles = Vec::new();
        let mut flights = HashMap::new();
        for (id, rx) in (0..n).zip(rxs) {
            let mut cfg = ReplicaConfig::new(ReplicaId(id), membership.clone());
            cfg.checkpoint_period = checkpoint_period;
            cfg.master_secret = master_secret.clone();
            cfg.request_timeout = 50; // ms, wall clock
            let (mut replica, initial_actions) = Replica::new(cfg, make_service());
            let wire = obs.as_ref().map(WireObs::new);
            // Real inbox depth of this replica's channel, sampled on every
            // loop iteration (wall-clock telemetry; the deterministic
            // counterpart is the testbed's health-tick sampler).
            let inbox_gauge = obs.as_ref().map(|o| {
                o.registry.gauge_with("lazarus_queue_inbox_depth", &[("replica", &id.to_string())])
            });
            // An observed cluster also records causal flight events
            // (wall-clock stamps — best-effort, unlike the deterministic
            // sim-time streams the testbed produces).
            let flight = obs.as_ref().map(|o| {
                let rec = FlightRecorder::new(
                    id,
                    FlightRecorder::DEFAULT_CAPACITY,
                    Arc::clone(o.clock()),
                );
                flights.insert(id, rec.clone());
                rec
            });
            let mut instruments = Instruments::new();
            if let Some(o) = &obs {
                instruments = instruments.with_obs(o.clone());
            }
            if let Some(h) = &health {
                instruments = instruments.with_health(h.clone());
            }
            if let Some(rec) = &flight {
                instruments = instruments.with_flight(rec.clone());
            }
            if let Some(p) = &profiler {
                instruments = instruments.with_profiler(p.clone());
            }
            replica.attach(instruments);
            let peers = inboxes.clone();
            let router = Arc::clone(&router);
            let running = Arc::clone(&running);
            let health_tx = health.clone();
            handles.push(std::thread::spawn(move || {
                replica_loop(
                    replica,
                    rx,
                    peers,
                    router,
                    running,
                    initial_actions,
                    wire,
                    flight,
                    health_tx,
                    inbox_gauge,
                );
            }));
        }

        ThreadCluster {
            inboxes,
            membership,
            master_secret,
            router,
            handles,
            running,
            obs,
            health,
            flights,
            profiler,
        }
    }

    /// The instrumentation bundle, when started via
    /// [`ThreadCluster::start_observed`].
    pub fn obs(&self) -> Option<&Obs> {
        self.obs.as_ref()
    }

    /// The shared health tracker, when started via
    /// [`ThreadCluster::start_observed`]. Call
    /// [`HealthTracker::snapshot`] to reduce the current windows.
    pub fn health(&self) -> Option<&HealthTracker> {
        self.health.as_ref()
    }

    /// The shared phase profiler, when started via
    /// [`ThreadCluster::start_observed`]. Snapshot it for a wall-clock
    /// phase profile of every replica thread.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// Replica `id`'s flight recorder (shares the ring with the replica
    /// thread), when started via [`ThreadCluster::start_observed`].
    pub fn flight(&self, id: u32) -> Option<&FlightRecorder> {
        self.flights.get(&id)
    }

    /// The cluster membership (for external clients).
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Creates a blocking client handle.
    pub fn client(&self, id: u64) -> ThreadClient {
        let (tx, rx) = channel::unbounded();
        self.router.lock().insert(ClientId(id), tx);
        ThreadClient {
            client: Client::new(ClientId(id), self.membership.clone(), &self.master_secret),
            inboxes: self.inboxes.clone(),
            replies: rx,
        }
    }

    /// Stops every replica thread and joins them.
    pub fn shutdown(mut self) {
        self.running.store(false, Ordering::Relaxed);
        for tx in self.inboxes.values() {
            let _ = tx.send(Input::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn replica_loop<S: Service>(
    mut replica: Replica<S>,
    rx: Receiver<Input>,
    peers: HashMap<u32, Sender<Input>>,
    router: ReplyRouter,
    running: Arc<AtomicBool>,
    initial_actions: Vec<Action>,
    wire: Option<WireObs>,
    flight: Option<FlightRecorder>,
    health: Option<HealthTracker>,
    inbox_gauge: Option<Gauge>,
) {
    let me = replica.id().0;
    let mut timers: HashMap<TimerId, Instant> = HashMap::new();
    let apply =
        |actions: Vec<Action>, timers: &mut HashMap<TimerId, Instant>, handling: TraceCtx| {
            for action in actions {
                match action {
                    Action::Send(to, message) => {
                        if let Some(wire) = &wire {
                            wire.sent(message.label(), message.wire_size(), 1);
                        }
                        if let Some(health) = &health {
                            health.seen(me);
                        }
                        let ctx = send_ctx(flight.as_ref(), &message, to, &handling);
                        if let Some(tx) = peers.get(&to.0) {
                            let _ = tx.send(Input::Msg(Arc::new(message), ctx));
                        }
                    }
                    Action::Broadcast(peers_list, message) => {
                        if let Some(wire) = &wire {
                            wire.sent(message.label(), message.wire_size(), peers_list.len());
                        }
                        if let Some(health) = &health {
                            health.seen(me);
                        }
                        // One shared allocation fanned out to every peer inbox;
                        // each copy gets its own wire span (distinct DAG edges).
                        for to in peers_list {
                            let ctx = send_ctx(flight.as_ref(), &message, to, &handling);
                            if let Some(tx) = peers.get(&to.0) {
                                let _ = tx.send(Input::Msg(Arc::clone(&message), ctx));
                            }
                        }
                    }
                    Action::SendClient(client, reply) => {
                        if let Some(tx) = router.lock().get(&client) {
                            let _ = tx.send(reply);
                        }
                    }
                    Action::SetTimer(timer, hint_ms) => {
                        timers.insert(timer, Instant::now() + Duration::from_millis(hint_ms));
                    }
                    Action::CancelTimer(timer) => {
                        timers.remove(&timer);
                    }
                    _ => {}
                }
            }
        };
    apply(initial_actions, &mut timers, UNTRACED);

    while running.load(Ordering::Relaxed) {
        let next_deadline = timers.values().min().copied();
        let timeout = next_deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(Input::Msg(message, wire_ctx)) => {
                if let Some(gauge) = &inbox_gauge {
                    gauge.set(rx.len() as f64);
                }
                let ctx = recv_ctx(flight.as_ref(), &message, wire_ctx);
                let message = Arc::try_unwrap(message).unwrap_or_else(|shared| (*shared).clone());
                let actions = replica.on_message(message, ctx.into());
                apply(actions, &mut timers, ctx.unwrap_or(UNTRACED));
            }
            Ok(Input::Shutdown) => break,
            Err(channel::RecvTimeoutError::Timeout) => {
                let now = Instant::now();
                let due: Vec<TimerId> =
                    timers.iter().filter(|(_, &d)| d <= now).map(|(&t, _)| t).collect();
                for timer in due {
                    timers.remove(&timer);
                    // A timer is a causal root of everything it triggers.
                    let ctx = flight
                        .as_ref()
                        .map(|f| f.protocol(EventKind::Timer, None, None, &UNTRACED, 0));
                    let actions = replica.on_timer(timer, ctx.into());
                    apply(actions, &mut timers, ctx.unwrap_or(UNTRACED));
                }
            }
            Err(channel::RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// A blocking client over the threaded cluster.
#[derive(Debug)]
pub struct ThreadClient {
    client: Client,
    inboxes: HashMap<u32, Sender<Input>>,
    replies: Receiver<Reply>,
}

/// Error returned when an invocation does not complete in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvokeTimeout;

impl std::fmt::Display for InvokeTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("operation timed out waiting for f+1 matching replies")
    }
}

impl std::error::Error for InvokeTimeout {}

impl ThreadClient {
    /// Invokes one operation and blocks until `f + 1` matching replies
    /// arrive (retransmitting every 500 ms).
    ///
    /// # Errors
    ///
    /// Returns [`InvokeTimeout`] after `timeout`.
    pub fn invoke(&mut self, payload: Bytes, timeout: Duration) -> Result<Bytes, InvokeTimeout> {
        let deadline = Instant::now() + timeout;
        for (to, message) in self.client.invoke(payload) {
            if let Some(tx) = self.inboxes.get(&to.0) {
                let _ = tx.send(Input::Msg(Arc::new(message), None));
            }
        }
        let mut next_retry = Instant::now() + Duration::from_millis(500);
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(InvokeTimeout);
            }
            let wait = next_retry.min(deadline).saturating_duration_since(now);
            match self.replies.recv_timeout(wait) {
                Ok(reply) => {
                    if let Some(done) = self.client.on_reply(reply) {
                        return Ok(done.result);
                    }
                }
                Err(channel::RecvTimeoutError::Timeout) => {
                    if Instant::now() >= next_retry {
                        for (to, message) in self.client.retransmit() {
                            if let Some(tx) = self.inboxes.get(&to.0) {
                                let _ = tx.send(Input::Msg(Arc::new(message), None));
                            }
                        }
                        next_retry = Instant::now() + Duration::from_millis(500);
                    }
                }
                Err(channel::RecvTimeoutError::Disconnected) => return Err(InvokeTimeout),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::CounterService;

    #[test]
    fn threaded_cluster_serves_operations() {
        let cluster = ThreadCluster::start(4, 10_000, CounterService::new);
        let mut client = cluster.client(1);
        for i in 0..20u32 {
            let payload = Bytes::copy_from_slice(&i.to_be_bytes());
            let reply = client.invoke(payload.clone(), Duration::from_secs(5)).expect("completes");
            assert_eq!(reply, payload);
        }
        cluster.shutdown();
    }

    #[test]
    fn concurrent_clients_make_progress() {
        let cluster = ThreadCluster::start(4, 10_000, CounterService::new);
        let mut joins = Vec::new();
        for c in 1..=4u64 {
            let mut client = cluster.client(c);
            joins.push(std::thread::spawn(move || {
                for i in 0..10u32 {
                    let payload = Bytes::from(format!("c{c}-{i}"));
                    let reply =
                        client.invoke(payload.clone(), Duration::from_secs(10)).expect("completes");
                    assert_eq!(reply, payload);
                }
            }));
        }
        for j in joins {
            j.join().expect("client thread");
        }
        cluster.shutdown();
    }

    #[test]
    fn observed_cluster_accounts_wire_traffic() {
        let cluster = ThreadCluster::start_observed(4, 10_000, CounterService::new);
        let mut client = cluster.client(1);
        for i in 0..5u32 {
            let payload = Bytes::copy_from_slice(&i.to_be_bytes());
            client.invoke(payload, Duration::from_secs(5)).expect("completes");
        }
        let snap = cluster.obs().expect("observed").registry.snapshot();
        let get = |name: &str| {
            snap.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
        };
        assert!(get("bft_wire_messages_total{kind=\"PROPOSE\"}") >= 5);
        assert!(get("bft_wire_bytes_total{kind=\"WRITE\"}") > 0);
        // The client returns on f+1 matching replies, so stragglers may not
        // have decided every slot yet — a quorum has, though.
        assert!(get("bft_slots_decided_total") >= 5 * 3, "a quorum decides every slot");
        let (_, hist) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "bft_commit_latency_us")
            .expect("latency histogram registered");
        assert!(hist.count >= 5 * 3);
        cluster.shutdown();
    }

    #[test]
    fn observed_cluster_records_causal_flight_events() {
        use lazarus_obs::causal::EventKind;
        let cluster = ThreadCluster::start_observed(4, 10_000, CounterService::new);
        let mut client = cluster.client(1);
        for i in 0..3u32 {
            let payload = Bytes::copy_from_slice(&i.to_be_bytes());
            client.invoke(payload, Duration::from_secs(5)).expect("completes");
        }
        // Collect every replica's stream; the wire spans recorded at a
        // sender must be the parents adopted by receivers.
        let mut spans = std::collections::HashSet::new();
        let mut events = Vec::new();
        for id in 0..4 {
            let flight = cluster.flight(id).expect("observed cluster records flight");
            for ev in flight.events() {
                spans.insert(ev.span_id);
                events.push(ev);
            }
        }
        cluster.shutdown();
        let recvs: Vec<_> =
            events.iter().filter(|e| e.event == EventKind::Recv && e.parent_id != 0).collect();
        assert!(!recvs.is_empty(), "replica-to-replica traffic records recv events");
        for recv in &recvs {
            assert!(spans.contains(&recv.parent_id), "recv parent is a recorded send span");
        }
        // Protocol milestones landed in the same streams, linked to slots.
        assert!(events
            .iter()
            .any(|e| e.event == EventKind::Commit && e.trace_id == slot_trace_id(1)));
    }

    #[test]
    fn shutdown_is_clean() {
        let cluster = ThreadCluster::start(4, 10_000, CounterService::new);
        cluster.shutdown(); // no hang, no panic
    }
}
