//! Protocol messages.
//!
//! The message vocabulary of a Mod-SMaRt-style protocol: client requests and
//! replies; the three-phase consensus messages (PROPOSE / WRITE / ACCEPT);
//! the leader-change messages (STOP / STOP-DATA / SYNC); checkpointing;
//! state transfer (CST); and the controller-signed reconfiguration command
//! that Lazarus uses to rotate replicas.
//!
//! The [`envelope`] module frames a serialized message with a versioned
//! header that can carry an optional causal [`TraceCtx`]; decoders that
//! predate the envelope skip the header by length and still recover the
//! payload.

use lazarus_obs::causal::TraceCtx;

use std::sync::{Arc, OnceLock};

use bytes::Bytes;

use crate::crypto::{AuthTag, Digest};
use crate::types::{ClientId, Epoch, Membership, ReplicaId, SeqNo, View};

/// A client operation to be totally ordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Issuing client.
    pub client: ClientId,
    /// Client-local sequence number (for reply matching and dedup).
    pub op: u64,
    /// Opaque service payload.
    pub payload: Bytes,
    /// Client authentication tag.
    pub tag: AuthTag,
}

impl Request {
    /// Canonical digest of the request.
    pub fn digest(&self) -> Digest {
        Digest::of_parts(&[&self.client.0.to_be_bytes(), &self.op.to_be_bytes(), &self.payload])
    }

    /// The bytes the client tag authenticates.
    pub fn auth_bytes(client: ClientId, op: u64, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + payload.len());
        out.extend_from_slice(&client.0.to_be_bytes());
        out.extend_from_slice(&op.to_be_bytes());
        out.extend_from_slice(payload);
        out
    }
}

/// An ordered batch of requests (the value decided by one consensus
/// instance).
///
/// Cloning is O(1): the request slice lives behind an [`Arc`] shared by all
/// clones, and the batch digest is memoized in a [`OnceLock`] on the shared
/// allocation, so a batch is hashed at most once no matter how many times it
/// is proposed, logged, certified, or re-sent.
#[derive(Clone, Default)]
pub struct Batch {
    inner: Arc<BatchInner>,
}

#[derive(Default)]
struct BatchInner {
    /// Requests in proposal order.
    requests: Vec<Request>,
    /// Lazily-computed digest, shared by every clone.
    digest: OnceLock<Digest>,
}

impl Batch {
    /// Builds a batch from requests in proposal order.
    pub fn new(requests: Vec<Request>) -> Batch {
        Batch { inner: Arc::new(BatchInner { requests, digest: OnceLock::new() }) }
    }

    /// Requests in proposal order.
    pub fn requests(&self) -> &[Request] {
        &self.inner.requests
    }

    /// Digest of the batch (digest of the request digests, order-sensitive).
    ///
    /// Computed on first call and memoized; subsequent calls — including on
    /// clones made before or after the first call — return the cached value.
    pub fn digest(&self) -> Digest {
        *self.inner.digest.get_or_init(|| {
            let digests: Vec<[u8; 32]> = self.inner.requests.iter().map(|r| r.digest().0).collect();
            let parts: Vec<&[u8]> = digests.iter().map(|d| d.as_slice()).collect();
            Digest::of_parts(&parts)
        })
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.inner.requests.len()
    }

    /// True when the batch carries no requests.
    pub fn is_empty(&self) -> bool {
        self.inner.requests.is_empty()
    }
}

impl From<Vec<Request>> for Batch {
    fn from(requests: Vec<Request>) -> Batch {
        Batch::new(requests)
    }
}

impl std::fmt::Debug for Batch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batch").field("requests", &self.inner.requests).finish()
    }
}

impl PartialEq for Batch {
    fn eq(&self, other: &Batch) -> bool {
        // Clones share the allocation; compare by content otherwise. The
        // memoized digest is deliberately excluded.
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner.requests == other.inner.requests
    }
}

impl Eq for Batch {}

/// The reply sent back to a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Responding replica.
    pub from: ReplicaId,
    /// The client's operation number this answers.
    pub op: u64,
    /// Service result.
    pub result: Bytes,
    /// Membership epoch at execution time (lets clients track
    /// reconfigurations).
    pub epoch: Epoch,
    /// Replica authentication tag.
    pub tag: AuthTag,
}

/// Consensus phase of one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsensusMsg {
    /// Leader's proposal of a batch for slot `seq`.
    Propose {
        /// Leader regency the proposal belongs to.
        view: View,
        /// Slot.
        seq: SeqNo,
        /// Proposed value.
        batch: Batch,
    },
    /// First echo phase: the replica vouches for the proposal digest.
    Write {
        /// Regency.
        view: View,
        /// Slot.
        seq: SeqNo,
        /// Digest of the proposed batch.
        digest: Digest,
    },
    /// Second phase: a write quorum was observed.
    Accept {
        /// Regency.
        view: View,
        /// Slot.
        seq: SeqNo,
        /// Digest of the proposed batch.
        digest: Digest,
    },
}

impl ConsensusMsg {
    /// The slot this message concerns.
    pub fn seq(&self) -> SeqNo {
        match self {
            ConsensusMsg::Propose { seq, .. }
            | ConsensusMsg::Write { seq, .. }
            | ConsensusMsg::Accept { seq, .. } => *seq,
        }
    }

    /// The regency this message belongs to.
    pub fn view(&self) -> View {
        match self {
            ConsensusMsg::Propose { view, .. }
            | ConsensusMsg::Write { view, .. }
            | ConsensusMsg::Accept { view, .. } => *view,
        }
    }
}

/// Evidence that a batch reached the WRITE quorum in some view — the value
/// a new leader must re-propose (carried in STOP-DATA).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteCertificate {
    /// View in which the quorum was observed.
    pub view: View,
    /// Slot.
    pub seq: SeqNo,
    /// The batch itself (so the new leader can re-propose it).
    pub batch: Batch,
}

/// A reconfiguration command, authenticated by the controller's key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigCommand {
    /// Epoch this command applies to (guards against replay).
    pub epoch: Epoch,
    /// Replica joining, if any.
    pub add: Option<ReplicaId>,
    /// Replica leaving, if any.
    pub remove: Option<ReplicaId>,
    /// Controller tag over the command bytes.
    pub tag: AuthTag,
}

impl ReconfigCommand {
    /// The bytes the controller tag authenticates.
    pub fn auth_bytes(epoch: Epoch, add: Option<ReplicaId>, remove: Option<ReplicaId>) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&epoch.0.to_be_bytes());
        out.extend_from_slice(&add.map(|r| r.0 + 1).unwrap_or(0).to_be_bytes());
        out.extend_from_slice(&remove.map(|r| r.0 + 1).unwrap_or(0).to_be_bytes());
        out
    }
}

/// A checkpoint proof fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMsg {
    /// Last slot covered by the snapshot.
    pub seq: SeqNo,
    /// Digest of the service snapshot.
    pub digest: Digest,
}

/// Per-chunk digests of a snapshot split into fixed-size chunks.
///
/// The manifest is what CST repliers certify (`f + 1` matching summaries);
/// the chunk bytes themselves then stream in from *any* mix of peers in
/// [`Message::CstChunkReply`] messages, each verifiable in isolation
/// against its manifest digest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChunkManifest {
    /// Size of every chunk except possibly the last, in bytes.
    pub chunk_size: u32,
    /// Total snapshot length in bytes.
    pub total_len: u64,
    /// Digest of each chunk, in offset order (empty for an empty snapshot).
    pub chunks: Vec<Digest>,
}

impl ChunkManifest {
    /// Splits `snapshot` into `chunk_size`-byte chunks and digests each
    /// (`chunk_size` is clamped to at least 1).
    pub fn build(snapshot: &[u8], chunk_size: usize) -> ChunkManifest {
        let chunk_size = chunk_size.max(1);
        ChunkManifest {
            chunk_size: chunk_size as u32,
            total_len: snapshot.len() as u64,
            chunks: snapshot.chunks(chunk_size).map(Digest::of).collect(),
        }
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The byte range of chunk `index` within the snapshot, `None` when out
    /// of range.
    pub fn chunk_range(&self, index: usize) -> Option<std::ops::Range<usize>> {
        if index >= self.chunks.len() {
            return None;
        }
        let start = index * self.chunk_size as usize;
        let end = (start + self.chunk_size as usize).min(self.total_len as usize);
        Some(start..end)
    }

    /// Chunk `index` of `snapshot`, `None` when out of range or when the
    /// snapshot is shorter than the manifest claims.
    pub fn slice<'a>(&self, snapshot: &'a [u8], index: usize) -> Option<&'a [u8]> {
        snapshot.get(self.chunk_range(index)?)
    }

    /// True when `data` is exactly chunk `index`: right length, right
    /// digest.
    pub fn verify_chunk(&self, index: usize, data: &[u8]) -> bool {
        match (self.chunk_range(index), self.chunks.get(index)) {
            (Some(range), Some(digest)) => range.len() == data.len() && Digest::of(data) == *digest,
            _ => false,
        }
    }

    /// Digest over the whole manifest (covered by the CST summary, so a
    /// certified summary pins every chunk digest).
    pub fn digest(&self) -> Digest {
        let mut parts: Vec<Vec<u8>> = vec![
            u64::from(self.chunk_size).to_be_bytes().to_vec(),
            self.total_len.to_be_bytes().to_vec(),
        ];
        for c in &self.chunks {
            parts.push(c.0.to_vec());
        }
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        Digest::of_parts(&refs)
    }
}

/// State-transfer reply: a stable checkpoint summary plus the decided
/// suffix. The snapshot bytes are *not* carried here — they stream in as
/// verified chunks ([`Message::CstChunkReply`]) named by the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CstReply {
    /// Slot of the included checkpoint.
    pub checkpoint_seq: SeqNo,
    /// Digest of the whole snapshot.
    pub snapshot_digest: Digest,
    /// Per-chunk digests of the snapshot.
    pub manifest: ChunkManifest,
    /// Decided batches after the checkpoint, in slot order.
    pub suffix: Vec<(SeqNo, Batch)>,
    /// Membership at the reply.
    pub membership: Membership,
    /// Current view at the reply.
    pub view: View,
}

impl CstReply {
    /// Digest over everything [`CstReply::summary_digest`] covers *except*
    /// the decided suffix: checkpoint seq, snapshot digest, chunk manifest,
    /// and membership. Donors serving the same stable checkpoint share this
    /// base even when their live logs are caught at different decided
    /// points; certification then installs the longest suffix prefix the
    /// f + 1 base-matching donors agree on.
    pub fn base_digest(&self) -> Digest {
        let mut parts: Vec<Vec<u8>> = vec![
            self.checkpoint_seq.0.to_be_bytes().to_vec(),
            self.snapshot_digest.0.to_vec(),
            self.manifest.digest().0.to_vec(),
            self.membership.epoch.0.to_be_bytes().to_vec(),
        ];
        for r in &self.membership.replicas {
            parts.push(r.0.to_be_bytes().to_vec());
        }
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        Digest::of_parts(&refs)
    }

    /// Digest summarizing the reply (checkpoint digest + chunk manifest +
    /// suffix digests + membership), used to cross-check `f + 1` replies.
    pub fn summary_digest(&self) -> Digest {
        let mut parts: Vec<Vec<u8>> = vec![
            self.checkpoint_seq.0.to_be_bytes().to_vec(),
            self.snapshot_digest.0.to_vec(),
            self.manifest.digest().0.to_vec(),
            self.membership.epoch.0.to_be_bytes().to_vec(),
        ];
        for r in &self.membership.replicas {
            parts.push(r.0.to_be_bytes().to_vec());
        }
        for (seq, batch) in &self.suffix {
            parts.push(seq.0.to_be_bytes().to_vec());
            parts.push(batch.digest().0.to_vec());
        }
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        Digest::of_parts(&refs)
    }
}

/// Every replica-to-replica (and client-to-replica) message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A client request (possibly forwarded by another replica).
    Request(Request),
    /// A consensus-phase message.
    Consensus {
        /// Sending replica.
        from: ReplicaId,
        /// Phase payload.
        msg: ConsensusMsg,
    },
    /// Checkpoint announcement.
    Checkpoint {
        /// Sending replica.
        from: ReplicaId,
        /// Proof fragment.
        msg: CheckpointMsg,
    },
    /// Leader-change: `STOP` — the sender asks to move past `view`.
    Stop {
        /// Sending replica.
        from: ReplicaId,
        /// The view being abandoned.
        view: View,
    },
    /// Leader-change: `STOP-DATA` — the sender reports its prepared state to
    /// the leader of `new_view`.
    StopData {
        /// Sending replica.
        from: ReplicaId,
        /// The view being installed.
        new_view: View,
        /// Highest slot decided by the sender.
        last_decided: SeqNo,
        /// The sender's evidence for every in-flight window slot: write
        /// certificates where the ACCEPT phase was reached, plus the
        /// batches of slots decided out of order (not yet covered by
        /// `last_decided`), ordered by slot.
        prepared: Vec<WriteCertificate>,
    },
    /// Leader-change: `SYNC` — the new leader's installation message.
    Sync {
        /// Sending replica (the new leader).
        from: ReplicaId,
        /// The view being installed.
        new_view: View,
        /// The values that must be re-proposed before new proposals, ordered
        /// by slot: for each undecided window slot the highest write
        /// certificate among 2f+1 STOP-DATA messages (or an explicit no-op
        /// filler for a hole below a certified slot).
        repropose: Vec<WriteCertificate>,
    },
    /// State-transfer request: the sender wants everything after `from_seq`.
    CstRequest {
        /// Requesting replica.
        from: ReplicaId,
        /// Last slot the requester has applied.
        from_seq: SeqNo,
    },
    /// State-transfer reply (summary + suffix; snapshot bytes stream
    /// separately as chunks).
    CstReply {
        /// Replying replica.
        from: ReplicaId,
        /// Payload.
        reply: Box<CstReply>,
    },
    /// State-transfer chunk request: one snapshot chunk of the checkpoint
    /// at `seq`.
    CstChunkRequest {
        /// Requesting replica.
        from: ReplicaId,
        /// Checkpoint slot the chunk belongs to.
        seq: SeqNo,
        /// Chunk index within the manifest.
        index: u32,
    },
    /// State-transfer chunk reply: the snapshot bytes of one chunk,
    /// verifiable against the certified manifest.
    CstChunkReply {
        /// Replying replica.
        from: ReplicaId,
        /// Checkpoint slot the chunk belongs to.
        seq: SeqNo,
        /// Chunk index within the manifest.
        index: u32,
        /// The chunk bytes.
        data: Bytes,
    },
    /// A controller-issued reconfiguration (enters the total order like a
    /// request).
    Reconfig(ReconfigCommand),
}

impl Message {
    /// Short label for logs and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            Message::Request(_) => "REQUEST",
            Message::Consensus { msg: ConsensusMsg::Propose { .. }, .. } => "PROPOSE",
            Message::Consensus { msg: ConsensusMsg::Write { .. }, .. } => "WRITE",
            Message::Consensus { msg: ConsensusMsg::Accept { .. }, .. } => "ACCEPT",
            Message::Checkpoint { .. } => "CHECKPOINT",
            Message::Stop { .. } => "STOP",
            Message::StopData { .. } => "STOP-DATA",
            Message::Sync { .. } => "SYNC",
            Message::CstRequest { .. } => "CST-REQUEST",
            Message::CstReply { .. } => "CST-REPLY",
            Message::CstChunkRequest { .. } => "CST-CHUNK-REQUEST",
            Message::CstChunkReply { .. } => "CST-CHUNK-REPLY",
            Message::Reconfig(_) => "RECONFIG",
        }
    }

    /// Approximate wire size in bytes (drives the performance model of the
    /// testbed; exact serialization is not required for the simulation).
    pub fn wire_size(&self) -> usize {
        const HEADER: usize = 48; // ids, view/seq numbers, tag
        match self {
            Message::Request(r) => HEADER + r.payload.len(),
            Message::Consensus { msg: ConsensusMsg::Propose { batch, .. }, .. } => {
                HEADER + batch.requests().iter().map(|r| 48 + r.payload.len()).sum::<usize>()
            }
            Message::Consensus { .. } => HEADER + 32,
            Message::Checkpoint { .. } => HEADER + 40,
            Message::Stop { .. } => HEADER,
            Message::StopData { prepared, .. } => {
                HEADER
                    + prepared
                        .iter()
                        .flat_map(|c| c.batch.requests().iter())
                        .map(|r| 48 + r.payload.len())
                        .sum::<usize>()
            }
            Message::Sync { repropose, .. } => {
                HEADER
                    + repropose
                        .iter()
                        .flat_map(|c| c.batch.requests().iter())
                        .map(|r| 48 + r.payload.len())
                        .sum::<usize>()
            }
            Message::CstRequest { .. } => HEADER,
            Message::CstReply { from: _, reply } => {
                HEADER
                    + 32
                    + 12
                    + 32 * reply.manifest.chunk_count()
                    + reply
                        .suffix
                        .iter()
                        .map(|(_, b)| {
                            b.requests().iter().map(|r| 48 + r.payload.len()).sum::<usize>()
                        })
                        .sum::<usize>()
            }
            Message::CstChunkRequest { .. } => HEADER + 12,
            Message::CstChunkReply { data, .. } => HEADER + 12 + data.len(),
            Message::Reconfig(_) => HEADER + 16,
        }
    }

    /// The sending replica, when the message has one (client requests and
    /// controller reconfigurations don't).
    pub fn sender(&self) -> Option<ReplicaId> {
        match self {
            Message::Consensus { from, .. }
            | Message::Checkpoint { from, .. }
            | Message::Stop { from, .. }
            | Message::StopData { from, .. }
            | Message::Sync { from, .. }
            | Message::CstRequest { from, .. }
            | Message::CstReply { from, .. }
            | Message::CstChunkRequest { from, .. }
            | Message::CstChunkReply { from, .. } => Some(*from),
            Message::Request(_) | Message::Reconfig(_) => None,
        }
    }

    /// The `(view, slot)` a consensus-phase message concerns, `None` for
    /// every other message kind.
    pub fn consensus_slot(&self) -> Option<(View, SeqNo)> {
        match self {
            Message::Consensus { msg, .. } => Some((msg.view(), msg.seq())),
            _ => None,
        }
    }
}

/// Versioned wire framing carrying an optional [`TraceCtx`] alongside a
/// serialized message payload.
///
/// Layout: `[MAGIC][VERSION][header_len: u16 BE][header][payload]` where
/// `header` is `[flags: u8]` followed by flag-gated extensions (today only
/// [`FLAG_TRACE_CTX`] → a 24-byte [`TraceCtx`]). `header_len` counts the
/// header bytes only, so a decoder that understands *no* flags — see
/// [`decode_legacy`](envelope::decode_legacy) — skips the header wholesale
/// and still recovers the payload: trace contexts are forward-compatible
/// metadata, never load-bearing.
pub mod envelope {
    use super::TraceCtx;

    /// First frame byte, guarding against mis-framed input.
    pub const MAGIC: u8 = 0xC7;
    /// Current envelope version.
    pub const VERSION: u8 = 1;
    /// Header flag: a 24-byte [`TraceCtx`] follows the flags byte.
    pub const FLAG_TRACE_CTX: u8 = 0b0000_0001;

    /// Frames `payload`, attaching `ctx` when present.
    #[must_use]
    pub fn encode(ctx: Option<&TraceCtx>, payload: &[u8]) -> Vec<u8> {
        let header_len = 1 + if ctx.is_some() { TraceCtx::WIRE_LEN } else { 0 };
        let mut out = Vec::with_capacity(4 + header_len + payload.len());
        out.push(MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&(header_len as u16).to_be_bytes());
        match ctx {
            Some(ctx) => {
                out.push(FLAG_TRACE_CTX);
                out.extend_from_slice(&ctx.encode());
            }
            None => out.push(0),
        }
        out.extend_from_slice(payload);
        out
    }

    /// Splits `frame` into `(header, payload)` after validating magic,
    /// version, and length. `None` on malformed input.
    fn split(frame: &[u8]) -> Option<(&[u8], &[u8])> {
        if frame.len() < 4 || frame[0] != MAGIC || frame[1] == 0 || frame[1] > VERSION {
            return None;
        }
        let header_len = usize::from(u16::from_be_bytes([frame[2], frame[3]]));
        let body = &frame[4..];
        if body.len() < header_len {
            return None;
        }
        Some((&body[..header_len], &body[header_len..]))
    }

    /// Decodes a frame into its optional [`TraceCtx`] and payload.
    ///
    /// Unknown header flags are ignored (their extension bytes, if any,
    /// were length-prefixed away by `header_len`), so a v1 decoder accepts
    /// frames from future encoders that only add flag-gated extensions.
    #[must_use]
    pub fn decode(frame: &[u8]) -> Option<(Option<TraceCtx>, &[u8])> {
        let (header, payload) = split(frame)?;
        let flags = *header.first()?;
        let ctx = if flags & FLAG_TRACE_CTX != 0 {
            Some(TraceCtx::decode(header.get(1..)?)?)
        } else {
            None
        };
        Some((ctx, payload))
    }

    /// A decoder that predates the trace-context envelope: it understands
    /// no flags and skips the whole header by length. Demonstrates (and
    /// pins, via tests) the forward-compatibility contract — old nodes
    /// accept traced frames and simply lose the metadata.
    #[must_use]
    pub fn decode_legacy(frame: &[u8]) -> Option<&[u8]> {
        split(frame).map(|(_, payload)| payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::Keyring;

    fn request(client: u64, op: u64, payload: &[u8]) -> Request {
        let ring = Keyring::new(b"test");
        Request {
            client: ClientId(client),
            op,
            payload: Bytes::copy_from_slice(payload),
            tag: ring.sign(
                crate::crypto::Principal::Client(client),
                &Request::auth_bytes(ClientId(client), op, payload),
            ),
        }
    }

    #[test]
    fn request_digest_depends_on_content() {
        let a = request(1, 1, b"x");
        let b = request(1, 1, b"y");
        let c = request(1, 2, b"x");
        let d = request(2, 1, b"x");
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_ne!(a.digest(), d.digest());
        assert_eq!(a.digest(), request(1, 1, b"x").digest());
    }

    #[test]
    fn batch_digest_is_order_sensitive() {
        let a = request(1, 1, b"x");
        let b = request(2, 1, b"y");
        let ab = Batch::new(vec![a.clone(), b.clone()]);
        let ba = Batch::new(vec![b, a]);
        assert_ne!(ab.digest(), ba.digest());
        assert!(!ab.is_empty());
        assert_eq!(ab.len(), 2);
        assert!(Batch::default().is_empty());
    }

    #[test]
    fn consensus_accessors() {
        let m = ConsensusMsg::Write { view: View(3), seq: SeqNo(7), digest: Digest::ZERO };
        assert_eq!(m.seq(), SeqNo(7));
        assert_eq!(m.view(), View(3));
    }

    #[test]
    fn labels_and_sizes() {
        let r = request(1, 1, &[0u8; 100]);
        let msg = Message::Request(r.clone());
        assert_eq!(msg.label(), "REQUEST");
        assert!(msg.wire_size() >= 100);
        let propose = Message::Consensus {
            from: ReplicaId(0),
            msg: ConsensusMsg::Propose { view: View(0), seq: SeqNo(1), batch: Batch::new(vec![r]) },
        };
        assert_eq!(propose.label(), "PROPOSE");
        assert!(propose.wire_size() > msg.wire_size());
        let write = Message::Consensus {
            from: ReplicaId(0),
            msg: ConsensusMsg::Write { view: View(0), seq: SeqNo(1), digest: Digest::ZERO },
        };
        assert!(write.wire_size() < propose.wire_size());
    }

    #[test]
    fn reconfig_auth_bytes_distinguish_commands() {
        let a = ReconfigCommand::auth_bytes(Epoch(0), Some(ReplicaId(4)), Some(ReplicaId(1)));
        let b = ReconfigCommand::auth_bytes(Epoch(0), Some(ReplicaId(1)), Some(ReplicaId(4)));
        let c = ReconfigCommand::auth_bytes(Epoch(1), Some(ReplicaId(4)), Some(ReplicaId(1)));
        let d = ReconfigCommand::auth_bytes(Epoch(0), None, None);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn sender_and_slot_accessors() {
        let write = Message::Consensus {
            from: ReplicaId(2),
            msg: ConsensusMsg::Write { view: View(1), seq: SeqNo(9), digest: Digest::ZERO },
        };
        assert_eq!(write.sender(), Some(ReplicaId(2)));
        assert_eq!(write.consensus_slot(), Some((View(1), SeqNo(9))));
        let req = Message::Request(request(1, 1, b"x"));
        assert_eq!(req.sender(), None);
        assert_eq!(req.consensus_slot(), None);
    }

    #[test]
    fn envelope_round_trips_with_and_without_ctx() {
        let payload = b"serialized message bytes";
        let ctx = TraceCtx { trace_id: 77, parent_id: 5, span_id: 6 };
        let framed = envelope::encode(Some(&ctx), payload);
        assert_eq!(envelope::decode(&framed), Some((Some(ctx), payload.as_slice())));
        let bare = envelope::encode(None, payload);
        assert_eq!(envelope::decode(&bare), Some((None, payload.as_slice())));
        assert!(bare.len() < framed.len());
    }

    #[test]
    fn envelope_rejects_malformed_frames() {
        let good = envelope::encode(None, b"x");
        assert_eq!(envelope::decode(&[]), None);
        assert_eq!(envelope::decode(&good[..3]), None);
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(envelope::decode(&bad_magic), None);
        let mut future_version = good.clone();
        future_version[1] = envelope::VERSION + 1;
        assert_eq!(envelope::decode(&future_version), None);
        let mut truncated_header = envelope::encode(Some(&TraceCtx::root(1, 2)), b"x");
        truncated_header.truncate(8);
        assert_eq!(envelope::decode(&truncated_header), None);
    }

    #[test]
    fn legacy_decoder_skips_unknown_header_flags() {
        // A frame using a flag the legacy decoder has never heard of still
        // yields the payload, because the header is length-prefixed.
        let ctx = TraceCtx { trace_id: 3, parent_id: 2, span_id: 1 };
        let framed = envelope::encode(Some(&ctx), b"payload");
        assert_eq!(envelope::decode_legacy(&framed), Some(b"payload".as_slice()));
        assert_eq!(envelope::decode_legacy(&envelope::encode(None, b"p")), Some(b"p".as_slice()));
        assert_eq!(envelope::decode_legacy(&[0u8; 2]), None);
    }

    proptest::proptest! {
        /// Satellite: any `TraceCtx` wire round-trips through the envelope,
        /// and a decoder without envelope support still accepts the frame.
        #[test]
        fn envelope_ctx_round_trip(
            trace_id in 0u64..=u64::MAX,
            parent_id in 0u64..=u64::MAX,
            span_id in 0u64..=u64::MAX,
            payload in "\\PC{0,64}",
        ) {
            let ctx = TraceCtx { trace_id, parent_id, span_id };
            let framed = envelope::encode(Some(&ctx), payload.as_bytes());
            let (decoded, body) = envelope::decode(&framed).expect("well-formed frame");
            proptest::prop_assert_eq!(decoded, Some(ctx));
            proptest::prop_assert_eq!(body, payload.as_bytes());
            // Forward compatibility: the ctx-blind decoder recovers the
            // identical payload from the same frame.
            proptest::prop_assert_eq!(envelope::decode_legacy(&framed), Some(payload.as_bytes()));
        }
    }

    #[test]
    fn cst_summary_digest_detects_divergence() {
        let membership = Membership::new(Epoch(0), (0..4).map(ReplicaId).collect());
        let state = b"the full service state";
        let base = CstReply {
            checkpoint_seq: SeqNo(10),
            snapshot_digest: Digest::of(state),
            manifest: ChunkManifest::build(state, 8),
            suffix: vec![(SeqNo(11), Batch::new(vec![request(1, 1, b"x")]))],
            membership: membership.clone(),
            view: View(0),
        };
        // the summary covers content, not who sent it
        assert_eq!(base.summary_digest(), base.clone().summary_digest());
        let diverged = CstReply { snapshot_digest: Digest::of(b"other"), ..base.clone() };
        assert_ne!(base.summary_digest(), diverged.summary_digest());
        // a different chunking of the same state is a different summary:
        // the manifest is pinned by certification, chunk by chunk
        let rechunked = CstReply { manifest: ChunkManifest::build(state, 4), ..base.clone() };
        assert_ne!(base.summary_digest(), rechunked.summary_digest());
        let longer = CstReply {
            suffix: vec![
                (SeqNo(11), Batch::new(vec![request(1, 1, b"x")])),
                (SeqNo(12), Batch::default()),
            ],
            ..base.clone()
        };
        assert_ne!(base.summary_digest(), longer.summary_digest());
    }

    #[test]
    fn chunk_manifest_splits_verifies_and_rejects() {
        let state: Vec<u8> = (0..100u8).collect();
        let manifest = ChunkManifest::build(&state, 32);
        assert_eq!(manifest.chunk_count(), 4);
        assert_eq!(manifest.total_len, 100);
        assert_eq!(manifest.chunk_range(3), Some(96..100));
        assert_eq!(manifest.chunk_range(4), None);
        for i in 0..manifest.chunk_count() {
            let chunk = manifest.slice(&state, i).expect("in range");
            assert!(manifest.verify_chunk(i, chunk));
        }
        // Wrong bytes, wrong length, wrong index all fail closed.
        assert!(!manifest.verify_chunk(0, &state[1..33]));
        assert!(!manifest.verify_chunk(3, &state[96..99]));
        assert!(!manifest.verify_chunk(9, &state[..32]));
        // Empty snapshot: no chunks, nothing to fetch.
        let empty = ChunkManifest::build(b"", 32);
        assert_eq!(empty.chunk_count(), 0);
        assert_eq!(empty.total_len, 0);
        // Reassembling every chunk reproduces the snapshot digest.
        let mut assembled = Vec::new();
        for i in 0..manifest.chunk_count() {
            assembled.extend_from_slice(manifest.slice(&state, i).expect("in range"));
        }
        assert_eq!(Digest::of(&assembled), Digest::of(&state));
    }

    #[test]
    fn chunk_message_labels_and_sizes() {
        let req = Message::CstChunkRequest { from: ReplicaId(4), seq: SeqNo(10), index: 2 };
        assert_eq!(req.label(), "CST-CHUNK-REQUEST");
        assert_eq!(req.sender(), Some(ReplicaId(4)));
        assert_eq!(req.consensus_slot(), None);
        let reply = Message::CstChunkReply {
            from: ReplicaId(1),
            seq: SeqNo(10),
            index: 2,
            data: Bytes::from_static(&[0u8; 256]),
        };
        assert_eq!(reply.label(), "CST-CHUNK-REPLY");
        assert_eq!(reply.sender(), Some(ReplicaId(1)));
        assert!(reply.wire_size() >= 256 + req.wire_size());
    }
}
