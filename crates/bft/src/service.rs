//! The replicated-service interface.
//!
//! Applications implement [`Service`]; the replica feeds it the totally
//! ordered operations and uses snapshots for checkpointing and state
//! transfer — the same contract as BFT-SMaRt's `Executable` +
//! `Recoverable`.

use bytes::Bytes;

use crate::types::ClientId;

/// A deterministic state machine replicated by the library.
///
/// Implementations must be deterministic: the same operation sequence from
/// the same initial state must produce the same results and snapshots on
/// every replica.
pub trait Service: Send {
    /// Executes one ordered operation and returns the reply payload.
    fn execute(&mut self, client: ClientId, payload: &[u8]) -> Bytes;

    /// Serializes the full service state.
    fn snapshot(&self) -> Bytes;

    /// Replaces the service state with a snapshot produced by
    /// [`snapshot`](Self::snapshot).
    fn install(&mut self, snapshot: &[u8]);

    /// Approximate in-memory state size in bytes (drives checkpoint /
    /// state-transfer timing in the testbed). Defaults to the snapshot
    /// length.
    fn state_size(&self) -> usize {
        self.snapshot().len()
    }
}

/// A trivial counter service used by tests and the microbenchmarks: the
/// payload is echoed back, and the state is the number of executed
/// operations (the "0/0 empty service" of §7.1 with verifiable state).
#[derive(Debug, Clone, Default)]
pub struct CounterService {
    executed: u64,
}

impl CounterService {
    /// Fresh counter.
    pub fn new() -> CounterService {
        CounterService::default()
    }

    /// Number of operations executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }
}

impl Service for CounterService {
    fn execute(&mut self, _client: ClientId, payload: &[u8]) -> Bytes {
        self.executed += 1;
        // Echo service: reply mirrors the request payload (the §7.1
        // microbenchmark's variable-size reply).
        Bytes::copy_from_slice(payload)
    }

    fn snapshot(&self) -> Bytes {
        Bytes::copy_from_slice(&self.executed.to_be_bytes())
    }

    fn install(&mut self, snapshot: &[u8]) {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&snapshot[..8]);
        self.executed = u64::from_be_bytes(buf);
    }
}

/// A service with a configurable multi-megabyte state blob, used by the
/// testbed and benches to exercise chunked state transfer: every executed
/// operation deterministically perturbs a slice of the blob, and the
/// snapshot is the execution counter followed by the whole blob.
#[derive(Debug, Clone)]
pub struct BlobService {
    executed: u64,
    blob: Vec<u8>,
}

impl BlobService {
    /// A blob of `size` bytes filled with a deterministic pattern.
    pub fn new(size: usize) -> BlobService {
        let blob = (0..size).map(|i| (i.wrapping_mul(31).wrapping_add(7)) as u8).collect();
        BlobService { executed: 0, blob }
    }

    /// Number of operations executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The blob size in bytes.
    pub fn blob_len(&self) -> usize {
        self.blob.len()
    }
}

impl Service for BlobService {
    fn execute(&mut self, _client: ClientId, payload: &[u8]) -> Bytes {
        self.executed += 1;
        // Perturb a payload-dependent window of the blob so state transfer
        // really must move the mutated bytes.
        if !self.blob.is_empty() {
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.executed;
            for &b in payload {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            let start = (h as usize) % self.blob.len();
            let span = 64.min(self.blob.len() - start);
            for (i, byte) in self.blob[start..start + span].iter_mut().enumerate() {
                *byte = byte.wrapping_add(1).wrapping_add(i as u8);
            }
        }
        Bytes::copy_from_slice(payload)
    }

    fn snapshot(&self) -> Bytes {
        let mut out = Vec::with_capacity(8 + self.blob.len());
        out.extend_from_slice(&self.executed.to_be_bytes());
        out.extend_from_slice(&self.blob);
        Bytes::from(out)
    }

    fn install(&mut self, snapshot: &[u8]) {
        if snapshot.len() < 8 {
            return; // malformed snapshot: keep current state rather than panic
        }
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&snapshot[..8]);
        self.executed = u64::from_be_bytes(buf);
        self.blob = snapshot[8..].to_vec();
    }

    fn state_size(&self) -> usize {
        8 + self.blob.len()
    }
}

impl Service for Box<dyn Service> {
    fn execute(&mut self, client: ClientId, payload: &[u8]) -> Bytes {
        (**self).execute(client, payload)
    }

    fn snapshot(&self) -> Bytes {
        (**self).snapshot()
    }

    fn install(&mut self, snapshot: &[u8]) {
        (**self).install(snapshot)
    }

    fn state_size(&self) -> usize {
        (**self).state_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_executes_and_echoes() {
        let mut s = CounterService::new();
        let out = s.execute(ClientId(1), b"hello");
        assert_eq!(&out[..], b"hello");
        assert_eq!(s.executed(), 1);
        s.execute(ClientId(2), b"");
        assert_eq!(s.executed(), 2);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut a = CounterService::new();
        for i in 0..5u64 {
            a.execute(ClientId(i), b"x");
        }
        let snap = a.snapshot();
        let mut b = CounterService::new();
        b.install(&snap);
        assert_eq!(b.executed(), 5);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.state_size(), 8);
    }

    #[test]
    fn blob_service_roundtrip_and_divergence() {
        let mut a = BlobService::new(4096);
        assert_eq!(a.state_size(), 8 + 4096);
        let before = a.snapshot();
        a.execute(ClientId(1), b"mutate");
        let after = a.snapshot();
        assert_ne!(before, after, "execution must perturb the blob");

        let mut b = BlobService::new(4096);
        b.install(&after);
        assert_eq!(b.executed(), 1);
        assert_eq!(b.snapshot(), after);

        // Malformed snapshots are ignored, not panicked on.
        b.install(b"short");
        assert_eq!(b.snapshot(), after);
    }
}
