//! Leader-side batch assembly for the consensus pipeline.
//!
//! The leader calls [`plan_take`] once per vacant in-window slot to decide
//! how many eligible pending requests the next PROPOSE should carry. Two
//! policies exist:
//!
//! * [`BatchPolicy::Fixed`] — the classic greedy assembler: take everything
//!   eligible, capped at `max_batch`. With a window of 1 this is exactly the
//!   pre-pipelining behaviour.
//! * [`BatchPolicy::Adaptive`] — queue-depth-aware: spread the eligible
//!   queue evenly across the free window slots, so light load ships small
//!   low-latency batches (one request per slot) while overload fills every
//!   slot toward `max_batch`. This is the policy the roadmap's pipelining
//!   prototype measured; the signal (`pending_requests()`) is the same
//!   queue-depth probe the health telemetry samples.
//!
//! The function is pure so the policy can be unit-tested at its boundaries
//! (empty queue, exactly `max_batch`, overload) without a replica.

/// How the leader sizes the batch proposed into a free consensus slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// Take everything eligible up to `max_batch` (greedy; the historical
    /// single-slot behaviour).
    #[default]
    Fixed,
    /// Divide the eligible queue across the free window slots, clamped to
    /// `[1, max_batch]` — small batches at low load, full batches under
    /// overload.
    Adaptive,
}

/// Plans the size of the next proposal batch.
///
/// `eligible` is the number of pending requests not already carried by an
/// in-flight proposal; `free_slots` is how many window slots (including the
/// one being filled) currently have no proposal. Returns 0 when there is
/// nothing to propose.
pub fn plan_take(policy: BatchPolicy, eligible: usize, free_slots: u64, max_batch: usize) -> usize {
    if eligible == 0 {
        return 0;
    }
    let max_batch = max_batch.max(1);
    match policy {
        BatchPolicy::Fixed => eligible.min(max_batch),
        BatchPolicy::Adaptive => {
            let slots = (free_slots.max(1) as usize).min(eligible);
            eligible.div_ceil(slots).clamp(1, max_batch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_proposes_nothing() {
        for policy in [BatchPolicy::Fixed, BatchPolicy::Adaptive] {
            assert_eq!(plan_take(policy, 0, 4, 400), 0);
            assert_eq!(plan_take(policy, 0, 1, 400), 0);
        }
    }

    #[test]
    fn fixed_takes_everything_up_to_max_batch() {
        assert_eq!(plan_take(BatchPolicy::Fixed, 3, 4, 400), 3);
        assert_eq!(plan_take(BatchPolicy::Fixed, 400, 4, 400), 400);
        assert_eq!(plan_take(BatchPolicy::Fixed, 10_000, 4, 400), 400);
    }

    #[test]
    fn adaptive_spreads_light_load_across_free_slots() {
        // 4 requests over 4 free slots: one per slot for minimum latency.
        assert_eq!(plan_take(BatchPolicy::Adaptive, 4, 4, 400), 1);
        // 10 requests over 4 slots: ceil(10/4) = 3.
        assert_eq!(plan_take(BatchPolicy::Adaptive, 10, 4, 400), 3);
        // Fewer requests than slots: still at least one request per batch.
        assert_eq!(plan_take(BatchPolicy::Adaptive, 2, 8, 400), 1);
    }

    #[test]
    fn adaptive_fills_exactly_max_batch_at_the_boundary() {
        // eligible == free_slots * max_batch: every slot ships a full batch.
        assert_eq!(plan_take(BatchPolicy::Adaptive, 4 * 400, 4, 400), 400);
        // One request short of the boundary stays under max_batch.
        assert_eq!(plan_take(BatchPolicy::Adaptive, 4 * 400 - 4, 4, 400), 399);
    }

    #[test]
    fn overload_clamps_to_max_batch() {
        assert_eq!(plan_take(BatchPolicy::Adaptive, 1_000_000, 4, 400), 400);
        assert_eq!(plan_take(BatchPolicy::Adaptive, 1_000_000, 1, 400), 400);
    }

    #[test]
    fn single_slot_adaptive_matches_fixed() {
        // With window=1 the adaptive policy degenerates to the greedy one,
        // which is what keeps the default configuration byte-identical.
        for eligible in [1usize, 7, 399, 400, 401, 5_000] {
            assert_eq!(
                plan_take(BatchPolicy::Adaptive, eligible, 1, 400),
                plan_take(BatchPolicy::Fixed, eligible, 1, 400),
            );
        }
    }

    #[test]
    fn degenerate_max_batch_still_makes_progress() {
        assert_eq!(plan_take(BatchPolicy::Fixed, 5, 1, 0), 1);
        assert_eq!(plan_take(BatchPolicy::Adaptive, 5, 4, 0), 1);
    }
}
